//! DVFS extension, end-to-end: Equation 1's coefficients are
//! operating-point-specific, and the per-P-state model set repairs the
//! mismatch.

use tdp_counters::Subsystem;
use tdp_workloads::{Workload, WorkloadSet};
use trickledown::{
    CpuPowerModel, PStateModelSet, SubsystemPowerModel as _, Testbed, TestbedConfig,
};

/// Captures a gcc trace at a given frequency scale and fits Equation 1
/// on it.
fn fit_at(scale: f64, seed: u64) -> (CpuPowerModel, trickledown::Trace) {
    let mut bed = Testbed::new(TestbedConfig::with_seed(seed));
    bed.machine_mut().set_frequency_scale(scale);
    bed.deploy(WorkloadSet::new(Workload::Gcc, 8, 2_000).with_delay(2_000));
    let trace = bed.run_seconds(Workload::Gcc, 30);
    let model = CpuPowerModel::fit(&trace.inputs(), &trace.measured(Subsystem::Cpu))
        .expect("gcc ramp fits");
    (model, trace)
}

fn avg_err(model: &CpuPowerModel, trace: &trickledown::Trace) -> f64 {
    let modeled: Vec<f64> = trace
        .inputs()
        .into_iter()
        .map(|s| model.predict(s))
        .collect();
    tdp_modeling::metrics::average_error(&modeled, &trace.measured(Subsystem::Cpu))
}

#[test]
fn nominal_model_breaks_under_dvfs_and_pstate_set_repairs_it() {
    let (nominal, _) = fit_at(1.0, 61);
    let (scaled, scaled_trace) = fit_at(0.625, 62);

    // The nominal model grossly overestimates at the low P-state
    // (voltage scaling is invisible to the counters)…
    let naive_err = avg_err(&nominal, &scaled_trace);
    assert!(
        naive_err > 25.0,
        "nominal model must break at 0.625x: {naive_err:.1}%"
    );
    // …while the matching P-state model tracks.
    let matched_err = avg_err(&scaled, &scaled_trace);
    assert!(
        matched_err < 5.0,
        "per-state model holds: {matched_err:.1}%"
    );

    // The set dispatches by nearest scale.
    let set = PStateModelSet::new(vec![(1.0, nominal), (0.625, scaled)]).expect("valid set");
    let via_set: Vec<f64> = scaled_trace
        .inputs()
        .into_iter()
        .map(|s| set.predict_at(0.625, s))
        .collect();
    let set_err =
        tdp_modeling::metrics::average_error(&via_set, &scaled_trace.measured(Subsystem::Cpu));
    assert!((set_err - matched_err).abs() < 1e-9);

    // The fitted coefficients themselves shrink with the voltage.
    assert!(scaled.active_w < 0.75 * set.model_at(1.0).active_w);
    assert!(scaled.upc_w < set.model_at(1.0).upc_w);
}

#[test]
fn scaled_machine_does_proportionally_less_work() {
    let run = |scale: f64| {
        let mut bed = Testbed::new(TestbedConfig::with_seed(63));
        bed.machine_mut().set_frequency_scale(scale);
        bed.deploy(WorkloadSet::new(Workload::Vortex, 4, 0));
        let trace = bed.run_seconds(Workload::Vortex, 5).skip_warmup(1);
        let uops: u64 = trace
            .records
            .iter()
            .map(|r| r.raw.total(tdp_counters::PerfEvent::RetiredUops).unwrap())
            .sum();
        let cpu_w: f64 = trace.measured(Subsystem::Cpu).iter().sum::<f64>() / trace.len() as f64;
        (uops, cpu_w)
    };
    let (full_uops, full_w) = run(1.0);
    let (half_uops, half_w) = run(0.5);
    let work_ratio = half_uops as f64 / full_uops as f64;
    assert!(
        (work_ratio - 0.5).abs() < 0.03,
        "work follows the clock: {work_ratio}"
    );
    // Energy per uop improves: that's the whole point of DVFS.
    let epi_full = full_w / full_uops as f64;
    let epi_half = half_w / half_uops as f64;
    assert!(
        epi_half < 0.75 * epi_full,
        "energy per op drops superlinearly: {epi_half:e} vs {epi_full:e}"
    );
}
