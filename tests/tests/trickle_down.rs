//! Causality tests: events raised in or near the CPU must propagate
//! outward exactly the way the paper's Figure 1 describes, and the
//! ground-truth power of each subsystem must respond to — and only to —
//! the traffic that reaches it.

use tdp_counters::{PerfEvent, Subsystem};
use tdp_workloads::{Workload, WorkloadSet};
use trickledown::testbed::{capture, Trace};

fn mean_measured(trace: &Trace, s: Subsystem) -> f64 {
    let v = trace.measured(s);
    v.iter().sum::<f64>() / v.len() as f64
}

fn total_event(trace: &Trace, e: PerfEvent) -> u64 {
    trace.records.iter().filter_map(|r| r.raw.total(e)).sum()
}

fn steady(workload: Workload, instances: usize, seconds: u64, seed: u64) -> Trace {
    let trace = capture(WorkloadSet::new(workload, instances, 100), seconds, seed);
    trace.skip_warmup(3)
}

#[test]
fn idle_machine_idles_everywhere() {
    let idle = capture(WorkloadSet::standard(Workload::Idle), 10, 1);
    assert_eq!(total_event(&idle, PerfEvent::DiskInterrupts), 0);
    assert_eq!(total_event(&idle, PerfEvent::DmaOtherBusTransactions), 0);
    // Timer interrupts still tick: 4 CPUs × 1 kHz × 10 s.
    let timers = total_event(&idle, PerfEvent::TimerInterrupts);
    assert!((39_000..=41_000).contains(&timers), "{timers}");
    assert!(mean_measured(&idle, Subsystem::Disk) < 22.0);
    assert!(mean_measured(&idle, Subsystem::Memory) < 29.0);
}

#[test]
fn cache_misses_trickle_into_bus_dram_and_memory_power() {
    let idle = steady(Workload::Idle, 0, 15, 2);
    let hot = steady(Workload::Lucas, 8, 15, 2);

    let idle_bus = total_event(&idle, PerfEvent::BusTransactionsAll);
    let hot_bus = total_event(&hot, PerfEvent::BusTransactionsAll);
    assert!(
        hot_bus > idle_bus * 100,
        "streaming FP floods the bus: {idle_bus} vs {hot_bus}"
    );
    let dmem = mean_measured(&hot, Subsystem::Memory) - mean_measured(&idle, Subsystem::Memory);
    assert!(dmem > 8.0, "memory power follows: +{dmem:.1} W");
    // And the disk stays asleep: no file I/O in SPEC workloads.
    assert_eq!(total_event(&hot, PerfEvent::DiskInterrupts), 0);
}

#[test]
fn disk_io_trickles_through_uncacheable_dma_and_interrupts() {
    // DiskLoad's overwrite phase runs 26 s before the first sync();
    // capture long enough to include the flush burst.
    let trace = steady(Workload::DiskLoad, 4, 40, 3);
    // Every stage of the §3.3 chain is visible at the CPU:
    let unc = total_event(&trace, PerfEvent::UncacheableAccesses);
    let dma = total_event(&trace, PerfEvent::DmaOtherBusTransactions);
    let ints = total_event(&trace, PerfEvent::DiskInterrupts);
    assert!(unc > 0, "MMIO configuration accesses");
    assert!(dma > 0, "DMA transfers on the processor bus");
    assert!(ints > 0, "completion interrupts");
    // Commands are large; DMA lines per interrupt should be in the
    // thousands (512 KiB / 64 B = 8192 payload lines).
    let lines_per_int = dma as f64 / ints as f64;
    assert!(
        (2_000.0..20_000.0).contains(&lines_per_int),
        "lines per interrupt {lines_per_int}"
    );
    // And the I/O + disk subsystems responded.
    let idle = steady(Workload::Idle, 0, 10, 3);
    assert!(mean_measured(&trace, Subsystem::Io) > mean_measured(&idle, Subsystem::Io) + 1.0);
    assert!(mean_measured(&trace, Subsystem::Disk) > mean_measured(&idle, Subsystem::Disk) + 0.3);
}

#[test]
fn compute_only_work_stays_in_the_cpu_subsystem() {
    let idle = steady(Workload::Idle, 0, 12, 4);
    let hot = steady(Workload::Vortex, 8, 12, 4);
    let dcpu = mean_measured(&hot, Subsystem::Cpu) - mean_measured(&idle, Subsystem::Cpu);
    let dmem = mean_measured(&hot, Subsystem::Memory) - mean_measured(&idle, Subsystem::Memory);
    let ddisk =
        (mean_measured(&hot, Subsystem::Disk) - mean_measured(&idle, Subsystem::Disk)).abs();
    assert!(dcpu > 100.0, "vortex is compute-bound: +{dcpu:.0} W CPU");
    assert!(dmem < 12.0, "modest memory footprint: +{dmem:.1} W");
    assert!(ddisk < 0.3, "no disk involvement: {ddisk:.2} W");
}

#[test]
fn dma_is_visible_in_all_transactions_but_not_self_transactions() {
    let trace = steady(Workload::DiskLoad, 4, 20, 5);
    let all = total_event(&trace, PerfEvent::BusTransactionsAll);
    let own = total_event(&trace, PerfEvent::BusTransactionsSelf);
    let dma = total_event(&trace, PerfEvent::DmaOtherBusTransactions);
    assert_eq!(all, own + dma, "the bus metrics are consistent");
    assert!(dma > 0);
}

#[test]
fn smp_saturates_at_eight_threads() {
    // "most workloads saturate (no increased subsystem utilization)
    // with eight threads" (§3.2.1).
    let eight = steady(Workload::Mgrid, 8, 12, 6);
    let twelve = steady(Workload::Mgrid, 12, 12, 6);
    let p8 = mean_measured(&eight, Subsystem::Cpu) + mean_measured(&eight, Subsystem::Memory);
    let p12 = mean_measured(&twelve, Subsystem::Cpu) + mean_measured(&twelve, Subsystem::Memory);
    assert!(
        (p12 - p8).abs() / p8 < 0.05,
        "beyond 8 threads nothing changes: {p8:.1} vs {p12:.1}"
    );
}

#[test]
fn network_traffic_trickles_through_nic_interrupts() {
    // Web serving (the §2.3 motivation, an extension workload): network
    // DMA shows up as coalesced NIC interrupts and I/O power.
    let mut bed = trickledown::Testbed::new(trickledown::TestbedConfig::with_seed(40));
    for i in 0..8 {
        bed.machine_mut()
            .os_mut()
            .spawn(Box::new(tdp_workloads::WebServerBehavior::new(i)), 0);
    }
    let trace = bed.run_seconds(Workload::Idle, 15).skip_warmup(2);
    let nic_ints = total_event(&trace, PerfEvent::NicInterrupts);
    assert!(nic_ints > 0, "NIC interrupts observed at the CPU");
    // Interrupt coalescing: far fewer interrupts than KiB served.
    let window_s = trace.len() as u64;
    assert!(
        nic_ints < 3_000 * window_s,
        "coalescing bounds the rate: {nic_ints}"
    );
    let idle = steady(Workload::Idle, 0, 10, 40);
    let dio = mean_measured(&trace, Subsystem::Io) - mean_measured(&idle, Subsystem::Io);
    assert!(dio > 0.5, "network serving raises I/O power: +{dio:.2} W");
    // And the interrupt-based Equation 5 sees it: device interrupts per
    // cycle are nonzero on every sampled window.
    assert!(trace
        .records
        .iter()
        .all(|r| r.input.sum(|c| c.device_interrupts_per_cycle) > 0.0));
}

#[test]
fn finite_workloads_finish_and_the_machine_returns_to_idle() {
    use tdp_workloads::{SpecCpuBehavior, SpecParams};
    let mut bed = trickledown::Testbed::new(trickledown::TestbedConfig::with_seed(41));
    for i in 0..4 {
        bed.machine_mut().os_mut().spawn(
            Box::new(SpecCpuBehavior::new(SpecParams::VORTEX, i).with_duration_ms(3_000)),
            0,
        );
    }
    let busy = bed.run_seconds(Workload::Vortex, 3);
    assert!(
        mean_measured(&busy, Subsystem::Cpu) > 100.0,
        "running hot while scheduled"
    );
    // One more second and everyone has exited; power falls to idle.
    let _drain = bed.run_seconds(Workload::Vortex, 2);
    assert!(bed.machine_mut().os().all_finished());
    let after = bed.run_seconds(Workload::Idle, 3);
    assert!(
        mean_measured(&after, Subsystem::Cpu) < 40.0,
        "idle again: {:.1} W",
        mean_measured(&after, Subsystem::Cpu)
    );
}
