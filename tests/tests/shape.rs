//! The paper's qualitative claims as a test: runs the bench crate's
//! shape checks at smoke scale and requires the load-bearing ones to
//! hold. (The full-scale run is `repro shape`; this keeps the claims
//! enforced under `cargo test --workspace`.)

use tdp_bench::experiments::{shape_checks, tables_3_and_4};
use tdp_bench::{calibrate, capture_all, ExperimentConfig};
use trickledown::PowerCharacterization;

#[test]
fn paper_shape_checks_hold_at_smoke_scale() {
    let cfg = ExperimentConfig {
        seed: 2007,
        trace_seconds: 40,
        ramp_seconds: 3,
        out_dir: std::env::temp_dir().join("tdp-system-tests-shape"),
    };
    let model = calibrate(&cfg);
    let traces = capture_all(&cfg);
    let characterization = PowerCharacterization::from_traces(&traces);
    let (report, _) = tables_3_and_4(&cfg, &model, &traces);
    let checks = shape_checks(&characterization, &report);
    assert!(checks.len() >= 14, "all check families produced verdicts");
    let failed: Vec<&str> = checks
        .iter()
        .filter(|(_, ok)| !ok)
        .map(|(label, _)| label.as_str())
        .collect();
    // At smoke scale allow at most one marginal miss (short traces make
    // close orderings noisy); the full-scale run requires 15/15.
    assert!(
        failed.len() <= 1,
        "shape checks failed at smoke scale: {failed:#?}"
    );
}
