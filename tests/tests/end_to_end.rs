//! End-to-end integration: calibrate on training traces, validate on
//! unseen workloads, persist and reload the model.

use tdp_counters::Subsystem;
use tdp_workloads::{Workload, WorkloadSet};
use trickledown::testbed::capture;
use trickledown::{
    CalibrationSuite, Calibrator, SystemPowerEstimator, SystemPowerModel, ValidationReport,
};

fn small_suite(seed: u64) -> CalibrationSuite {
    CalibrationSuite::capture(seed, 3)
}

#[test]
fn calibrated_model_generalises_to_unseen_workloads() {
    let model = Calibrator::new()
        .calibrate(&small_suite(1))
        .expect("training traces fit");

    // None of these workloads appear in the training recipe.
    let unseen = [
        (Workload::Vortex, 8usize),
        (Workload::Mesa, 8),
        (Workload::SpecJbb, 8),
    ];
    for (w, instances) in unseen {
        let trace = capture(WorkloadSet::new(w, instances, 500), 20, 77);
        let report = ValidationReport::validate(&model, &[trace]);
        let row = &report.rows[0];
        for &s in Subsystem::ALL {
            assert!(
                row.error_pct(s) < 15.0,
                "{w}/{s}: {:.2}% error",
                row.error_pct(s)
            );
        }
        // Total power error is what an operator would see.
        assert!(row.error_pct(Subsystem::Cpu) < 10.0, "{w} cpu error");
    }
}

#[test]
fn model_persists_through_json_file() {
    let model = Calibrator::new()
        .calibrate(&small_suite(2))
        .expect("calibrates");
    let path = std::env::temp_dir().join("tdp-system-tests-model.json");
    std::fs::write(&path, model.to_json().unwrap()).unwrap();
    let loaded = SystemPowerModel::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(model, loaded);

    // The reloaded model predicts identically.
    let trace = capture(WorkloadSet::new(Workload::Gcc, 2, 500), 6, 3);
    for record in &trace.records {
        let a = model.predict(&record.input);
        let b = loaded.predict(&record.input);
        assert_eq!(a.as_array(), b.as_array());
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let model = Calibrator::new()
            .calibrate(&small_suite(9))
            .expect("calibrates");
        let trace = capture(WorkloadSet::new(Workload::Art, 4, 400), 10, 9);
        let mut est = SystemPowerEstimator::new(model);
        trace
            .records
            .iter()
            .map(|r| est.push(&r.input).total())
            .collect::<Vec<f64>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn estimator_tracks_measured_total_within_bounds() {
    let model = Calibrator::new()
        .calibrate(&small_suite(4))
        .expect("calibrates");
    let mut est = SystemPowerEstimator::new(model);
    let trace = capture(WorkloadSet::new(Workload::Wupwise, 8, 300), 20, 5);
    for record in &trace.records {
        let e = est.push(&record.input);
        let measured = record.measured.watts.total();
        let err = (e.total() - measured).abs() / measured;
        assert!(
            err < 0.20,
            "total-power error {:.1}% at t={}s",
            err * 100.0,
            record.input.time_ms / 1000
        );
    }
}

#[test]
fn paper_coefficients_predict_idle_sanely() {
    // The published model was fitted on different hardware, but its DC
    // terms should still land near our simulated idle (both platforms
    // idle around 141 W total).
    let model = SystemPowerModel::paper();
    let trace = capture(WorkloadSet::standard(Workload::Idle), 8, 6);
    let report = ValidationReport::validate(&model, &[trace]);
    let row = &report.rows[0];
    assert!(row.error_pct(Subsystem::Disk) < 2.0);
    assert!(row.error_pct(Subsystem::Io) < 2.0);
    assert!(row.error_pct(Subsystem::Memory) < 8.0);
    assert!(row.error_pct(Subsystem::Cpu) < 8.0);
}
