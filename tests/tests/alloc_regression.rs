//! Allocation-count regression tests for the tick hot path.
//!
//! A counting `#[global_allocator]` (own test binary, so it observes
//! everything) pins the buffer-reuse contract: once the machine's
//! scratch buffers reach steady state, `Machine::tick_into` and
//! `Machine::read_counters_into` must run without heap allocation —
//! and a whole fleet estimation window
//! (`tdp_fleet::FleetEstimator`) must allocate nothing at all.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use tdp_simsys::behavior::spin_loop_behavior;
use tdp_simsys::{Machine, MachineConfig, TickActivity};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A machine running four busy compute threads, ticked past warm-up so
/// every internal scratch buffer has reached its steady capacity.
fn warmed_machine() -> (Machine, TickActivity) {
    let mut machine = Machine::new(MachineConfig::default());
    for cpu in 0..4 {
        machine
            .os_mut()
            .spawn(Box::new(spin_loop_behavior(1.5)), cpu);
    }
    let mut activity = TickActivity::empty();
    for _ in 0..5_000 {
        machine.tick_into(&mut activity);
    }
    (machine, activity)
}

#[test]
fn steady_state_tick_into_does_not_allocate() {
    let (mut machine, mut activity) = warmed_machine();
    const TICKS: u64 = 10_000;
    let before = allocations();
    for _ in 0..TICKS {
        machine.tick_into(&mut activity);
    }
    let delta = allocations() - before;
    // The contract is zero steady-state allocations; a tiny budget
    // absorbs one-off buffer growth if a scratch vector crosses a
    // capacity threshold mid-measurement.
    assert!(
        delta <= 8,
        "tick_into allocated {delta} times over {TICKS} ticks \
         ({} per 1000 ticks) — hot-path regression",
        delta as f64 * 1000.0 / TICKS as f64
    );
}

#[test]
fn steady_state_counter_reads_do_not_allocate() {
    let (mut machine, mut activity) = warmed_machine();
    let mut set = tdp_counters::SampleSet::empty();
    // Prime the sample-set buffers (first fill sizes per_cpu etc.).
    for _ in 0..3 {
        for _ in 0..100 {
            machine.tick_into(&mut activity);
        }
        machine.read_counters_into(&mut set);
    }
    let before = allocations();
    for _ in 0..50 {
        for _ in 0..100 {
            machine.tick_into(&mut activity);
        }
        machine.read_counters_into(&mut set);
    }
    let delta = allocations() - before;
    assert!(
        delta <= 8,
        "50 sampling windows allocated {delta} times — \
         read_counters_into regression"
    );
}

#[test]
fn steady_state_fleet_window_does_not_allocate() {
    // Fleet estimation is advertised as allocation-free once the column
    // buffers reach their steady capacity: per window, one
    // `begin_window`, one `push_sample_set` per machine and one
    // `estimate` must not touch the heap.
    const MACHINES: usize = 64;
    let (mut machine, mut activity) = warmed_machine();
    let mut set = tdp_counters::SampleSet::empty();
    for _ in 0..100 {
        machine.tick_into(&mut activity);
    }
    machine.read_counters_into(&mut set);

    let mut fleet =
        tdp_fleet::FleetEstimator::with_capacity(trickledown::SystemPowerModel::paper(), MACHINES);
    // Prime: first window sizes the estimate columns.
    for _ in 0..3 {
        fleet.begin_window();
        for _ in 0..MACHINES {
            fleet.push_sample_set(&set);
        }
        fleet.estimate();
    }

    let before = allocations();
    for _ in 0..50 {
        fleet.begin_window();
        for _ in 0..MACHINES {
            fleet.push_sample_set(&set);
        }
        std::hint::black_box(fleet.estimate().fleet_total());
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "50 fleet windows allocated {delta} times — the steady-state \
         fleet path must be allocation-free"
    );
}

#[test]
fn steady_state_fused_planar_ingest_does_not_allocate() {
    // The fused planar wire path carries the same contract as the
    // in-memory fleet window: once the decoder's lane buffer, the
    // identity-directory memo slab, the ingest ledger, and the batch
    // columns have reached steady capacity, encoding + ingesting +
    // estimating a window must not touch the heap. (The encoder writes
    // into a caller-drained byte buffer we recycle below.)
    const MACHINES: usize = 64;
    let (mut machine, mut activity) = warmed_machine();
    let mut set = tdp_counters::SampleSet::empty();
    for _ in 0..100 {
        machine.tick_into(&mut activity);
    }
    machine.read_counters_into(&mut set);

    // Every window is pre-encoded (fresh window sequences — replayed
    // sequences read as duplicates and skip the fold), so the measured
    // stretch is exactly the consumer: decode, identity-directory
    // memo, ledger, column fold, estimate.
    const PRIME: usize = 5;
    const WINDOWS: usize = 50;
    let mut enc = tdp_wire::WireEncoder::with_kind(tdp_wire::FrameKind::Planar);
    let bufs: Vec<Vec<u8>> = (0..PRIME + WINDOWS)
        .map(|w| {
            set.seq = w as u64 + 1;
            for m in 0..MACHINES as u64 {
                enc.push_sample_set(m, &set).unwrap();
            }
            enc.take_bytes()
        })
        .collect();

    let mut est =
        tdp_fleet::FleetEstimator::with_capacity(trickledown::SystemPowerModel::paper(), MACHINES);
    let mut state = tdp_wire::IngestState::new();
    // Prime: the first window announces layouts and sizes every slab
    // (ledger, identity-directory memo, lane buffer, batch columns);
    // later windows only change counter magnitudes, so plane widths —
    // and buffer capacities — hold steady.
    for buf in &bufs[..PRIME] {
        tdp_wire::ingest_serial_with(&mut state, buf, MACHINES, &mut est);
        est.estimate();
    }

    let before = allocations();
    for buf in &bufs[PRIME..] {
        let rep = tdp_wire::ingest_serial_with(&mut state, buf, MACHINES, &mut est);
        assert_eq!(rep.rows_written, MACHINES as u64, "clean windows commit");
        std::hint::black_box(est.estimate().fleet_total());
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "{WINDOWS} fused planar windows allocated {delta} times — the \
         steady-state wire ingest path must be allocation-free"
    );
}

#[test]
fn allocating_tick_wrapper_still_works() {
    // The compatibility wrapper allocates per call by design; assert it
    // produces the same activity as the in-place path on a twin machine.
    let (mut a, mut buf) = warmed_machine();
    let (mut b, _) = warmed_machine();
    for _ in 0..100 {
        a.tick_into(&mut buf);
        let owned = b.tick();
        assert_eq!(buf, owned);
    }
}
