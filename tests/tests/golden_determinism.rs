//! Golden-trace determinism: the pooled parallel capture must be
//! bit-identical to a serial capture of the same workloads, and repeat
//! runs must be bit-identical to each other.
//!
//! This is the contract that makes the parallel pipeline safe to use
//! for reproduction experiments: per-workload seeding is independent of
//! scheduling, and `tdp_parallel::par_map` returns results in input
//! order, so core count and worker interleaving cannot leak into the
//! captured records.

use tdp_bench::{capture_all, capture_workload, ExperimentConfig};
use tdp_workloads::Workload;

fn tiny_cfg() -> ExperimentConfig {
    ExperimentConfig {
        seed: 424_242,
        trace_seconds: 3,
        ramp_seconds: 1,
        out_dir: std::env::temp_dir().join("tdp-golden-determinism"),
    }
}

#[test]
fn parallel_capture_matches_serial_capture_bit_for_bit() {
    let cfg = tiny_cfg();
    let parallel = capture_all(&cfg);
    let serial: Vec<_> = Workload::ALL
        .iter()
        .map(|&w| capture_workload(&cfg, w))
        .collect();
    assert_eq!(parallel.len(), serial.len());
    for (p, s) in parallel.iter().zip(&serial) {
        assert_eq!(p.workload, s.workload, "workload order preserved");
        // Trace derives PartialEq over every record: inputs, raw
        // counter sets and measured watts must all match exactly.
        assert_eq!(p, s, "{:?} trace diverged", p.workload);
    }
}

#[test]
fn repeat_parallel_captures_are_identical() {
    let cfg = tiny_cfg();
    let a = capture_all(&cfg);
    let b = capture_all(&cfg);
    assert_eq!(a, b);
}

#[test]
fn serialized_golden_trace_is_stable_across_runs() {
    // JSON serialisation pins the exact float bits; two captures of the
    // same seed must render identical documents.
    let cfg = tiny_cfg();
    let a = capture_workload(&cfg, Workload::Gcc).to_json().unwrap();
    let b = capture_workload(&cfg, Workload::Gcc).to_json().unwrap();
    assert_eq!(a, b);
}
