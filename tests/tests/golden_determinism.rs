//! Golden-trace determinism: the pooled parallel capture must be
//! bit-identical to a serial capture of the same workloads, and repeat
//! runs must be bit-identical to each other.
//!
//! This is the contract that makes the parallel pipeline safe to use
//! for reproduction experiments: per-workload seeding is independent of
//! scheduling, and `tdp_parallel::par_map` returns results in input
//! order, so core count and worker interleaving cannot leak into the
//! captured records.

use tdp_bench::{capture_all, capture_workload, ExperimentConfig};
use tdp_counters::SampleSet;
use tdp_fleet::FleetEstimator;
use tdp_parallel::WorkerPool;
use tdp_simsys::behavior::spin_loop_behavior;
use tdp_simsys::{Machine, MachineConfig};
use tdp_workloads::Workload;
use trickledown::SystemPowerModel;

fn tiny_cfg() -> ExperimentConfig {
    ExperimentConfig {
        seed: 424_242,
        trace_seconds: 3,
        ramp_seconds: 1,
        out_dir: std::env::temp_dir().join("tdp-golden-determinism"),
    }
}

#[test]
fn parallel_capture_matches_serial_capture_bit_for_bit() {
    let cfg = tiny_cfg();
    let parallel = capture_all(&cfg);
    let serial: Vec<_> = Workload::ALL
        .iter()
        .map(|&w| capture_workload(&cfg, w))
        .collect();
    assert_eq!(parallel.len(), serial.len());
    for (p, s) in parallel.iter().zip(&serial) {
        assert_eq!(p.workload, s.workload, "workload order preserved");
        // Trace derives PartialEq over every record: inputs, raw
        // counter sets and measured watts must all match exactly.
        assert_eq!(p, s, "{:?} trace diverged", p.workload);
    }
}

#[test]
fn repeat_parallel_captures_are_identical() {
    let cfg = tiny_cfg();
    let a = capture_all(&cfg);
    let b = capture_all(&cfg);
    assert_eq!(a, b);
}

/// Counter reads from simulated machines in distinct states, enough of
/// them that the pooled fleet path splits them into several shards.
fn fleet_sets() -> Vec<SampleSet> {
    (0..70)
        .map(|m| {
            let mut machine = Machine::new(MachineConfig::default());
            for cpu in 0..4 {
                machine
                    .os_mut()
                    .spawn(Box::new(spin_loop_behavior(0.3 + m as f64 * 0.02)), cpu);
            }
            for _ in 0..200 + m * 17 {
                machine.tick();
            }
            machine.read_counters()
        })
        .collect()
}

#[test]
fn fleet_pooled_estimation_is_bit_identical_across_worker_counts() {
    let sets = fleet_sets();
    let model = SystemPowerModel::paper();
    let mut serial = FleetEstimator::new(model.clone());
    serial.process_window(&sets);
    let baseline = serial.estimates();

    // 1 = inline serial loop, 2 = smallest true multi-shard split, and
    // a count at least as large as the host provides.
    let max_workers = tdp_parallel::available_workers().max(3);
    for workers in [1, 2, max_workers] {
        let pool = WorkerPool::new(workers);
        let mut pooled = FleetEstimator::new(model.clone());
        pooled.process_window_pooled(&pool, &sets);
        let est = pooled.estimates();
        assert_eq!(est.cpu(), baseline.cpu(), "cpu, workers={workers}");
        assert_eq!(est.memory(), baseline.memory(), "memory, workers={workers}");
        assert_eq!(est.disk(), baseline.disk(), "disk, workers={workers}");
        assert_eq!(est.io(), baseline.io(), "io, workers={workers}");
        assert_eq!(
            est.chipset(),
            baseline.chipset(),
            "chipset, workers={workers}"
        );
        assert_eq!(est.total(), baseline.total(), "total, workers={workers}");
    }
}

#[test]
fn pool_par_map_is_order_preserving_at_any_worker_count() {
    let items: Vec<u64> = (0..997).collect();
    let f = |x: u64| x.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 42;
    let expect: Vec<u64> = items.iter().copied().map(f).collect();
    for workers in [1, 2, 8] {
        let pool = WorkerPool::new(workers);
        assert_eq!(
            pool.par_map_chunks(items.clone(), 13, f),
            expect,
            "workers={workers}"
        );
    }
}

#[test]
fn serialized_golden_trace_is_stable_across_runs() {
    // JSON serialisation pins the exact float bits; two captures of the
    // same seed must render identical documents.
    let cfg = tiny_cfg();
    let a = capture_workload(&cfg, Workload::Gcc).to_json().unwrap();
    let b = capture_workload(&cfg, Workload::Gcc).to_json().unwrap();
    assert_eq!(a, b);
}
