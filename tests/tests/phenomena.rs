//! The paper's headline phenomena, reproduced end-to-end at
//! integration-test scale.

use tdp_counters::Subsystem;
use tdp_simsys::MachineConfig;
use tdp_workloads::{Workload, WorkloadSet};
use trickledown::testbed::{Testbed, TestbedConfig, Trace};
use trickledown::{MemoryInput, MemoryPowerModel, SubsystemPowerModel as _};

/// A testbed whose prefetcher trains quickly, so the Figure-4 dynamics
/// fit in test time.
fn fast_train_trace(
    workload: Workload,
    instances: usize,
    stagger_ms: u64,
    seconds: u64,
    seed: u64,
) -> Trace {
    let mut machine = MachineConfig {
        seed,
        ..MachineConfig::default()
    };
    machine.prefetch.train_ticks = 8_000.0; // 8 s instead of 40 s
    let mut bed = Testbed::new(TestbedConfig {
        machine,
        ..TestbedConfig::default()
    });
    bed.deploy(WorkloadSet::new(workload, instances, stagger_ms).with_delay(2_000));
    bed.run_seconds(workload, seconds)
}

/// §4.2.2 / Figures 3–5: the cache-miss model holds on mesa, fails on
/// mcf at high utilization; the bus-transaction model holds on both.
#[test]
fn cache_miss_model_fails_where_bus_model_holds() {
    let mesa = fast_train_trace(Workload::Mesa, 8, 2_000, 45, 11);
    let mcf = fast_train_trace(Workload::Mcf, 8, 2_000, 45, 12);

    // Train Equation 2 on mesa (the paper's Figure 3 procedure).
    let l3 = MemoryPowerModel::fit(
        MemoryInput::L3LoadMisses,
        &mesa.inputs(),
        &mesa.measured(Subsystem::Memory),
    )
    .expect("mesa has L3-miss variation");
    // Equation 2 fits its own training workload well.
    let mesa_modeled: Vec<f64> = mesa.inputs().into_iter().map(|s| l3.predict(s)).collect();
    let mesa_err =
        tdp_modeling::metrics::average_error(&mesa_modeled, &mesa.measured(Subsystem::Memory));
    assert!(mesa_err < 5.0, "Eq 2 on mesa: {mesa_err:.2}% (paper ~1%)");

    // On mcf's mature phase (prefetcher trained, misses hidden) it
    // underestimates badly…
    let late: Vec<_> = mcf
        .records
        .iter()
        .filter(|r| r.input.time_ms > 30_000)
        .collect();
    assert!(!late.is_empty());
    let mut under = 0usize;
    let mut err_sum = 0.0;
    for r in &late {
        let measured = r.measured.watts.get(Subsystem::Memory);
        let modeled = l3.predict(&r.input);
        if modeled < measured {
            under += 1;
        }
        err_sum += (modeled - measured).abs() / measured * 100.0;
    }
    let l3_err = err_sum / late.len() as f64;
    assert!(
        l3_err > 8.0,
        "Eq 2 must fail on mature mcf: {l3_err:.2}% error"
    );
    assert!(
        under as f64 > 0.9 * late.len() as f64,
        "and the failure is an *under*estimate ({} of {})",
        under,
        late.len()
    );

    // …while Equation 3, fitted on the same mcf trace, stays accurate.
    let bus = MemoryPowerModel::fit(
        MemoryInput::BusTransactions,
        &mcf.inputs(),
        &mcf.measured(Subsystem::Memory),
    )
    .expect("mcf has bus variation");
    let mut bus_err_sum = 0.0;
    for r in &late {
        let measured = r.measured.watts.get(Subsystem::Memory);
        bus_err_sum += (bus.predict(&r.input) - measured).abs() / measured * 100.0;
    }
    let bus_err = bus_err_sum / late.len() as f64;
    assert!(
        bus_err < 4.0,
        "Eq 3 holds where Eq 2 failed: {bus_err:.2}% (paper: 2.2%)"
    );
    assert!(bus_err < l3_err / 2.0);
}

/// §4.2.2 / Figure 4: as the prefetcher matures on mcf, visible L3
/// misses per cycle fall while bus traffic does not.
#[test]
fn prefetch_hides_misses_but_not_traffic() {
    let mcf = fast_train_trace(Workload::Mcf, 4, 500, 40, 13);
    let early: Vec<_> = mcf
        .records
        .iter()
        .filter(|r| (4_000..8_000).contains(&r.input.time_ms))
        .collect();
    let late: Vec<_> = mcf
        .records
        .iter()
        .filter(|r| r.input.time_ms > 30_000)
        .collect();
    let avg = |rs: &[&trickledown::TraceRecord], f: &dyn Fn(&trickledown::CpuRates) -> f64| {
        rs.iter().map(|r| r.input.sum(f)).sum::<f64>() / rs.len() as f64
    };
    let miss_early = avg(&early, &|c| c.l3_load_misses);
    let miss_late = avg(&late, &|c| c.l3_load_misses);
    let bus_early = avg(&early, &|c| c.bus_tx_per_mcycle);
    let bus_late = avg(&late, &|c| c.bus_tx_per_mcycle);
    assert!(
        miss_late < 0.6 * miss_early,
        "visible misses collapse: {miss_early:.5} -> {miss_late:.5}"
    );
    assert!(
        bus_late > 0.85 * bus_early,
        "bus traffic does not: {bus_early:.0} -> {bus_late:.0}"
    );
}

/// §4.1: the disk subsystem's dynamic range is tiny because the platters
/// never stop spinning — "the largest we could expect to see is a 20%
/// increase in power compared to the idle state".
#[test]
fn disk_dynamic_range_is_bounded_by_rotation() {
    let idle = fast_train_trace(Workload::Idle, 0, 0, 10, 14);
    let load = fast_train_trace(Workload::DiskLoad, 4, 1_000, 40, 14);
    let idle_disk: f64 = idle.measured(Subsystem::Disk).iter().sum::<f64>() / idle.len() as f64;
    let peak_disk = load
        .measured(Subsystem::Disk)
        .into_iter()
        .fold(0.0f64, f64::max);
    assert!(peak_disk > idle_disk, "some dynamic range exists");
    assert!(
        peak_disk < idle_disk * 1.20,
        "but under +20%: idle {idle_disk:.1} W, peak {peak_disk:.1} W"
    );
}

/// §4.2.1: per-CPU attribution — a busy CPU is billed more than an idle
/// one within the same window.
#[test]
fn per_cpu_attribution_separates_busy_from_idle() {
    let trace = fast_train_trace(Workload::Vortex, 2, 100, 10, 15);
    let model = trickledown::SystemPowerModel::paper();
    let last = trace.records.last().unwrap();
    let per_cpu: Vec<f64> = last
        .input
        .per_cpu
        .iter()
        .map(|c| model.cpu.predict_single(c))
        .collect();
    let max = per_cpu.iter().cloned().fold(0.0f64, f64::max);
    let min = per_cpu.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        max > 3.0 * min,
        "two busy CPUs vs two idle ones: {per_cpu:?}"
    );
}

/// §2.4 extension: the phase detector segments a staggered gcc ramp
/// into one phase per utilization step.
#[test]
fn phase_detector_finds_the_instance_ramp() {
    use trickledown::{PhaseConfig, PhaseDetector, SystemPowerEstimator};

    let trace = fast_train_trace(Workload::Gcc, 4, 10_000, 50, 16);
    let model = trickledown::SystemPowerModel::paper();
    let mut est = SystemPowerEstimator::new(model);
    let estimates: Vec<_> = trace.records.iter().map(|r| est.push(&r.input)).collect();
    let phases = PhaseDetector::segment(
        PhaseConfig {
            threshold_w: 10.0,
            min_stable_windows: 3,
        },
        &estimates,
    );
    // Idle lead-in + four instance steps: at least 4 phases, and the
    // stable ones must be ordered by increasing CPU power.
    assert!(
        phases.len() >= 4,
        "ramp should segment into phases: {}",
        phases.len()
    );
    let stable: Vec<f64> = phases
        .iter()
        .filter(|p| p.stable && p.windows >= 5)
        .map(|p| p.total_w())
        .collect();
    assert!(stable.len() >= 3);
    for w in stable.windows(2) {
        assert!(
            w[1] > w[0] - 12.0,
            "phases trend upward along the ramp: {stable:?}"
        );
    }
}
