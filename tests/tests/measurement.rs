//! Measurement-chain integration: sampling discipline, sync alignment
//! and noise characteristics of the simulated bench.

use tdp_counters::{PerfEvent, SamplerConfig, Subsystem};
use tdp_modeling::OnlineStats;
use tdp_workloads::{Workload, WorkloadSet};
use trickledown::testbed::{Testbed, TestbedConfig};

#[test]
fn counter_windows_and_power_windows_stay_aligned_under_jitter() {
    let mut cfg = TestbedConfig::with_seed(31);
    cfg.sampler = SamplerConfig {
        period_ms: 1000,
        max_jitter_ms: 3,
    };
    let mut bed = Testbed::new(cfg);
    bed.deploy(WorkloadSet::new(Workload::Gcc, 4, 500));
    let trace = bed.run_seconds(Workload::Gcc, 20);

    for r in &trace.records {
        assert_eq!(r.raw.time_ms, r.measured.time_ms, "same sync pulse");
        assert_eq!(r.raw.window_ms, r.measured.window_ms);
        assert!((997..=1006).contains(&r.raw.window_ms), "1 Hz ± jitter");
    }
    // The sync recorder can answer alignment queries for every window.
    let sync = bed.sync_recorder();
    for r in &trace.records {
        assert_eq!(sync.window_of(r.raw.time_ms), Some(r.raw.seq));
    }
}

#[test]
fn cycles_metric_corrects_sampling_rate_wobble() {
    // Raw per-window counts wobble with the window length; per-cycle
    // rates do not (§3.3 "Cycles"). Jitter is set high enough (±30 ms on
    // a 1 s window, ~1.7% CV) that window-length wobble dominates the
    // workload's own phase variation (~1% CV) — with small jitter both
    // CVs are phase-dominated and their ordering is a coin flip on the
    // RNG stream.
    let mut cfg = TestbedConfig::with_seed(32);
    cfg.sampler.max_jitter_ms = 30;
    let mut bed = Testbed::new(cfg);
    for i in 0..4 {
        bed.machine_mut()
            .os_mut()
            .spawn(Workload::Vortex.make_behavior(i), 0);
    }
    let trace = bed.run_seconds(Workload::Vortex, 25).skip_warmup(3);

    let mut raw_counts = OnlineStats::new();
    let mut rates = OnlineStats::new();
    for r in &trace.records {
        raw_counts.push(r.raw.total(PerfEvent::FetchedUops).unwrap() as f64);
        rates.push(r.input.sum(|c| c.fetched_upc));
    }
    let raw_cv = raw_counts.population_std_dev() / raw_counts.mean();
    let rate_cv = rates.population_std_dev() / rates.mean();
    assert!(
        rate_cv < raw_cv,
        "per-cycle normalisation reduces variation: {rate_cv:.5} vs {raw_cv:.5}"
    );
}

#[test]
fn faster_sampling_still_aligns_and_sums() {
    // A 250 ms sampling period: 4x the windows, same totals.
    let capture_total = |period_ms: u64| {
        let mut cfg = TestbedConfig::with_seed(33);
        cfg.sampler = SamplerConfig {
            period_ms,
            max_jitter_ms: 0,
        };
        let mut bed = Testbed::new(cfg);
        bed.deploy(WorkloadSet::new(Workload::Mesa, 4, 100));
        let trace = bed.run_seconds(Workload::Mesa, 12 * 1000 / period_ms);
        trace
            .records
            .iter()
            .map(|r| r.raw.total(PerfEvent::Cycles).unwrap())
            .sum::<u64>()
    };
    let slow = capture_total(1000);
    let fast = capture_total(250);
    assert_eq!(slow, fast, "cycle totals are conserved across periods");
}

#[test]
fn measurement_noise_floor_matches_the_specified_sigma() {
    // On an idle machine, per-window disk power variation is pure
    // sensor noise; its sigma should track the configured 0.027 W RMS.
    let mut bed = Testbed::new(TestbedConfig::with_seed(34));
    let trace = bed.run_seconds(Workload::Idle, 60);
    let stats: OnlineStats = trace.measured(Subsystem::Disk).into_iter().collect();
    let sigma = stats.population_std_dev();
    assert!(
        (0.01..0.06).contains(&sigma),
        "disk idle noise sigma {sigma:.4} W"
    );
    // And it is unbiased: the mean sits at the 21.6 W ground truth.
    assert!((stats.mean() - 21.6).abs() < 0.1, "{}", stats.mean());
}

#[test]
fn different_seeds_decorrelate_noise_but_not_physics() {
    let run = |seed: u64| {
        let mut bed = Testbed::new(TestbedConfig::with_seed(seed));
        bed.deploy(WorkloadSet::new(Workload::Lucas, 8, 100));
        let t = bed.run_seconds(Workload::Lucas, 10).skip_warmup(2);
        let v = t.measured(Subsystem::Memory);
        v.iter().sum::<f64>() / v.len() as f64
    };
    let a = run(101);
    let b = run(202);
    assert_ne!(a, b, "noise differs");
    assert!(
        (a - b).abs() < 1.5,
        "but the physics agree: {a:.2} vs {b:.2} W"
    );
}
