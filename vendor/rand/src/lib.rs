//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the *subset* of the rand 0.8 API the workspace uses:
//! [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64, matching the
//! upstream 64-bit `SmallRng`), the [`Rng`]/[`SeedableRng`]/[`RngCore`]
//! traits, `gen::<u64|u32|f64|bool>()` and `gen_range` over integer and
//! float ranges. Streams are deterministic for a given seed, which is the
//! only property the simulator relies on.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-size byte array upstream; mirrored here).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed via SplitMix64 expansion
    /// (the upstream convention, so streams match rand 0.8 where it
    /// matters: same seed, same stream, forever).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u64 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (upstream layout).
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_one(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                if span == 0 {
                    // Full-width range: every u64 is valid.
                    return rng.next_u64() as $t;
                }
                // Unbiased rejection sampling.
                let zone = (u64::MAX / span) * span;
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return (self.start as u64).wrapping_add(v % span) as $t;
                    }
                }
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

macro_rules! signed_range {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                let zone = (u64::MAX / span) * span;
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return (self.start as i64).wrapping_add((v % span) as i64) as $t;
                    }
                }
            }
        }
    )*};
}

signed_range!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_one(self, rng: &mut dyn RngCore) -> f64 {
        let unit = f64::sample_standard(rng);
        self.start + (self.end - self.start) * unit
    }
}

/// User-facing sampling helpers, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Draws a value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Bernoulli trial.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG: xoshiro256++ (the algorithm
    /// behind the upstream 64-bit `SmallRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point; perturb it.
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            Self { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert!((0..8).any(|_| a.gen::<u64>() != b.gen::<u64>()));
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = r.gen_range(0u64..7);
            assert!(v < 7);
            let w = r.gen_range(-3i64..3);
            assert!((-3..3).contains(&w));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut hist = [0u32; 8];
        for _ in 0..8000 {
            hist[r.gen_range(0usize..8)] += 1;
        }
        for &h in &hist {
            assert!((800..1200).contains(&h), "bucket count {h}");
        }
    }
}
