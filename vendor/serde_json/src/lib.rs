//! Workspace-local stand-in for `serde_json`.
//!
//! Thin facade over the sibling `serde` stand-in's direct-to-JSON traits:
//! [`to_string`], [`to_string_pretty`] and [`from_str`] with the same
//! signatures the workspace uses. Float formatting is Rust's
//! shortest-roundtrip `Display`, so the `float_roundtrip` feature of real
//! serde_json (bit-exact coefficient reload) holds by construction.

#![forbid(unsafe_code)]

pub use serde::de::Error;
use serde::{Deserialize, Serialize};

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Never fails for the types in this workspace; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serializes `value` to 2-space-indented JSON.
///
/// # Errors
///
/// Never fails for the types in this workspace.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(prettify(&to_string(value)?))
}

/// Deserializes a `T` from JSON text.
///
/// # Errors
///
/// Returns the first syntax or shape mismatch, including trailing
/// garbage after the value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = serde::de::Parser::new(s);
    let value = T::deserialize_json(&mut p)?;
    p.expect_eof()?;
    Ok(value)
}

/// Re-indents compact JSON with 2-space indentation (string-aware).
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut chars = compact.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                if let Some(&close) = chars.peek() {
                    if (c == '{' && close == '}') || (c == '[' && close == ']') {
                        out.push(close);
                        chars.next();
                        continue;
                    }
                }
                indent += 1;
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        let x = 0.1f64 + 0.2;
        let json = to_string(&x).unwrap();
        assert_eq!(from_str::<f64>(&json).unwrap(), x, "bit-exact floats");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![(1u64, -2i64), (3, 4)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,-2],[3,4]]");
        assert_eq!(from_str::<Vec<(u64, i64)>>(&json).unwrap(), v);
        let empty: Vec<f64> = vec![];
        assert_eq!(
            from_str::<Vec<f64>>(&to_string(&empty).unwrap()).unwrap(),
            empty
        );
    }

    #[test]
    fn strings_escape_and_roundtrip() {
        let s = "a \"quoted\"\nline\\with\tescapes".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn options_roundtrip() {
        assert_eq!(to_string(&Option::<u64>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u64>>("7").unwrap(), Some(7));
    }

    #[test]
    fn pretty_is_reparseable() {
        let v = vec![vec![1.5f64, 2.0], vec![]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<f64>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(from_str::<u64>("42 junk").is_err());
    }
}
