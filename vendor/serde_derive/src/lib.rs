//! Workspace-local stand-in for `serde_derive`.
//!
//! crates.io is unreachable in this build environment, so this proc macro
//! implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against
//! the sibling `serde` stand-in's direct-to-JSON traits, using only the
//! compiler-provided `proc_macro` API (no `syn`/`quote`).
//!
//! Supported shapes — exactly what this workspace uses:
//!
//! * structs with named fields,
//! * tuple structs (newtype structs serialize transparently, wider tuples
//!   as arrays),
//! * enums with unit and tuple variants (externally tagged, matching
//!   serde's default representation).
//!
//! On named-field structs the two field attributes this workspace uses
//! are honoured: `#[serde(default = "path")]` (fall back to `path()`
//! when the key is absent) and `#[serde(skip_serializing_if = "path")]`
//! (omit the key when `path(&field)` is true). Generics and any other
//! `#[serde(...)]` attribute are not supported and panic at expansion
//! time so misuse is caught immediately.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named struct field with its recognised serde attributes.
struct Field {
    name: String,
    /// `#[serde(default = "path")]`: call `path()` when the key is
    /// missing instead of erroring.
    default: Option<String>,
    /// `#[serde(skip_serializing_if = "path")]`: omit the key when
    /// `path(&self.field)` returns true.
    skip_if: Option<String>,
}

/// Parsed shape of the deriving type.
enum Shape {
    /// Named-field struct: fields in declaration order.
    Struct(Vec<Field>),
    /// Tuple struct with N fields.
    TupleStruct(usize),
    /// Enum: `(variant name, tuple arity)`; arity 0 is a unit variant.
    Enum(Vec<(String, usize)>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

/// Derives the stand-in `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let p = parse(input);
    gen_serialize(&p)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the stand-in `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let p = parse(input);
    gen_deserialize(&p)
        .parse()
        .expect("generated Deserialize impl parses")
}

fn parse(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("derive stand-in does not support generic type `{name}`");
        }
    }

    let shape = match (kind.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Struct(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct(count_top_level_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Shape::TupleStruct(0),
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Enum(parse_variants(g.stream()))
        }
        (k, t) => panic!("unsupported item shape: {k} {t:?}"),
    };

    Parsed { name, shape }
}

/// Fields (names + recognised serde attributes) of a named-field
/// struct body.
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Walk attributes (doc comments included), harvesting
        // `#[serde(...)]` and skipping everything else.
        let (mut default, mut skip_if) = (None, None);
        while matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                parse_serde_attr(g.stream(), &mut default, &mut skip_if);
            }
            i += 2;
        }
        // Skip visibility.
        if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
        match &tokens[i] {
            TokenTree::Ident(id) => fields.push(Field {
                name: id.to_string(),
                default,
                skip_if,
            }),
            other => panic!("expected field name, found {other:?}"),
        }
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        // Consume the type: everything until a comma at angle-depth 0.
        let mut angle: i32 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Parses one attribute body (`serde(...)`, `doc = "..."`, ...) and
/// records the recognised serde keys. Non-serde attributes are ignored;
/// unrecognised serde keys panic, matching this stand-in's
/// fail-at-expansion policy.
fn parse_serde_attr(attr: TokenStream, default: &mut Option<String>, skip_if: &mut Option<String>) {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let mut k = 0;
            while k < inner.len() {
                let key = match &inner[k] {
                    TokenTree::Ident(id) => id.to_string(),
                    other => panic!("expected serde attribute key, found {other:?}"),
                };
                let value = match (inner.get(k + 1), inner.get(k + 2)) {
                    (Some(TokenTree::Punct(p)), Some(TokenTree::Literal(lit)))
                        if p.as_char() == '=' =>
                    {
                        lit.to_string().trim_matches('"').to_string()
                    }
                    other => panic!("expected `= \"path\"` after `{key}`, found {other:?}"),
                };
                match key.as_str() {
                    "default" => *default = Some(value),
                    "skip_serializing_if" => *skip_if = Some(value),
                    other => panic!("unsupported serde attribute `{other}`"),
                }
                k += 3;
                if matches!(inner.get(k), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    k += 1;
                }
            }
        }
        _ => {}
    }
}

/// Number of fields in a tuple-struct/tuple-variant body.
fn count_top_level_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle: i32 = 0;
    for (k, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            // Each top-level comma separates fields; a trailing comma does not.
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 && k + 1 < tokens.len() => {
                count += 1;
            }
            _ => {}
        }
    }
    count
}

/// `(name, arity)` for each enum variant.
fn parse_variants(body: TokenStream) -> Vec<(String, usize)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i += 2;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other:?}"),
        };
        i += 1;
        let mut arity = 0;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    arity = count_top_level_fields(g.stream());
                    i += 1;
                }
                Delimiter::Brace => panic!("struct-like enum variant `{name}` is not supported"),
                _ => {}
            }
        }
        variants.push((name, arity));
        // Skip an optional discriminant and the separating comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    variants
}

fn gen_serialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.shape {
        Shape::Struct(fields) if fields.iter().all(|f| f.skip_if.is_none()) => {
            let mut s = String::from("out.push('{');\n");
            for (k, f) in fields.iter().enumerate() {
                let f = &f.name;
                if k > 0 {
                    s.push_str("out.push(',');\n");
                }
                s.push_str(&format!(
                    "out.push_str(\"\\\"{f}\\\":\");\n\
                     ::serde::Serialize::serialize_json(&self.{f}, out);\n"
                ));
            }
            s.push_str("out.push('}');");
            s
        }
        Shape::Struct(fields) => {
            // Some fields are conditional, so comma placement must be
            // decided at runtime with a first-emitted flag.
            let mut s = String::from("out.push('{');\nlet mut first = true;\n");
            for f in fields {
                let n = &f.name;
                let emit = format!(
                    "if !first {{ out.push(','); }}\n\
                     first = false;\n\
                     out.push_str(\"\\\"{n}\\\":\");\n\
                     ::serde::Serialize::serialize_json(&self.{n}, out);\n"
                );
                match &f.skip_if {
                    Some(pred) => s.push_str(&format!("if !{pred}(&self.{n}) {{\n{emit}}}\n")),
                    None => s.push_str(&emit),
                }
            }
            s.push_str("let _ = first;\nout.push('}');");
            s
        }
        Shape::TupleStruct(0) => "out.push_str(\"null\");".to_string(),
        Shape::TupleStruct(1) => "::serde::Serialize::serialize_json(&self.0, out);".to_string(),
        Shape::TupleStruct(n) => {
            let mut s = String::from("out.push('[');\n");
            for k in 0..*n {
                if k > 0 {
                    s.push_str("out.push(',');\n");
                }
                s.push_str(&format!(
                    "::serde::Serialize::serialize_json(&self.{k}, out);\n"
                ));
            }
            s.push_str("out.push(']');");
            s
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (v, arity) in variants {
                match arity {
                    0 => arms.push_str(&format!("{name}::{v} => out.push_str(\"\\\"{v}\\\"\"),\n")),
                    1 => arms.push_str(&format!(
                        "{name}::{v}(a0) => {{\n\
                         out.push_str(\"{{\\\"{v}\\\":\");\n\
                         ::serde::Serialize::serialize_json(a0, out);\n\
                         out.push('}}');\n\
                         }}\n"
                    )),
                    n => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("a{k}")).collect();
                        let mut inner = format!(
                            "{name}::{v}({}) => {{\n\
                             out.push_str(\"{{\\\"{v}\\\":[\");\n",
                            binds.join(", ")
                        );
                        for (k, b) in binds.iter().enumerate() {
                            if k > 0 {
                                inner.push_str("out.push(',');\n");
                            }
                            inner.push_str(&format!(
                                "::serde::Serialize::serialize_json({b}, out);\n"
                            ));
                        }
                        inner.push_str("out.push_str(\"]}\");\n}\n");
                        arms.push_str(&inner);
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_json(&self, out: &mut ::std::string::String) {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}

fn gen_deserialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.shape {
        Shape::Struct(fields) => {
            let mut s = String::new();
            s.push_str("p.expect_byte(b'{')?;\n");
            for f in fields {
                let f = &f.name;
                s.push_str(&format!("let mut f_{f} = ::std::option::Option::None;\n"));
            }
            s.push_str("while let Some(key) = p.next_key()? {\n");
            s.push_str("match key.as_str() {\n");
            for f in fields {
                let f = &f.name;
                s.push_str(&format!(
                    "\"{f}\" => f_{f} = ::std::option::Option::Some(\
                     ::serde::Deserialize::deserialize_json(p)?),\n"
                ));
            }
            s.push_str("_ => p.skip_value()?,\n}\n}\n");
            s.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
            for f in fields {
                let n = &f.name;
                match &f.default {
                    Some(path) => s.push_str(&format!("{n}: f_{n}.unwrap_or_else({path}),\n")),
                    None => s.push_str(&format!(
                        "{n}: f_{n}.ok_or_else(|| \
                         ::serde::de::Error::missing_field(\"{n}\"))?,\n"
                    )),
                }
            }
            s.push_str("})\n");
            s
        }
        Shape::TupleStruct(0) => format!("p.expect_null()?;\n::std::result::Result::Ok({name})"),
        Shape::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(\
             ::serde::Deserialize::deserialize_json(p)?))"
        ),
        Shape::TupleStruct(n) => {
            let mut s = String::from("p.expect_byte(b'[')?;\n");
            for k in 0..*n {
                if k > 0 {
                    s.push_str("p.expect_byte(b',')?;\n");
                }
                s.push_str(&format!(
                    "let a{k} = ::serde::Deserialize::deserialize_json(p)?;\n"
                ));
            }
            s.push_str("p.expect_byte(b']')?;\n");
            let binds: Vec<String> = (0..*n).map(|k| format!("a{k}")).collect();
            s.push_str(&format!(
                "::std::result::Result::Ok({name}({}))",
                binds.join(", ")
            ));
            s
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for (v, arity) in variants {
                if *arity == 0 {
                    unit_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"
                    ));
                } else if *arity == 1 {
                    data_arms.push_str(&format!(
                        "\"{v}\" => {name}::{v}(\
                         ::serde::Deserialize::deserialize_json(p)?),\n"
                    ));
                } else {
                    let mut inner = String::from("{\np.expect_byte(b'[')?;\n");
                    for k in 0..*arity {
                        if k > 0 {
                            inner.push_str("p.expect_byte(b',')?;\n");
                        }
                        inner.push_str(&format!(
                            "let a{k} = \
                             ::serde::Deserialize::deserialize_json(p)?;\n"
                        ));
                    }
                    inner.push_str("p.expect_byte(b']')?;\n");
                    let binds: Vec<String> = (0..*arity).map(|k| format!("a{k}")).collect();
                    inner.push_str(&format!("{name}::{v}({})\n}}", binds.join(", ")));
                    data_arms.push_str(&format!("\"{v}\" => {inner},\n"));
                }
            }
            format!(
                "if p.peek_is_string() {{\n\
                 let tag = p.parse_string()?;\n\
                 match tag.as_str() {{\n\
                 {unit_arms}\
                 other => ::std::result::Result::Err(\
                 ::serde::de::Error::unknown_variant(other)),\n\
                 }}\n\
                 }} else {{\n\
                 p.expect_byte(b'{{')?;\n\
                 let tag = p.parse_string()?;\n\
                 p.expect_byte(b':')?;\n\
                 let value = match tag.as_str() {{\n\
                 {data_arms}\
                 other => return ::std::result::Result::Err(\
                 ::serde::de::Error::unknown_variant(other)),\n\
                 }};\n\
                 p.expect_byte(b'}}')?;\n\
                 ::std::result::Result::Ok(value)\n\
                 }}"
            )
        }
    };
    // allow(unreachable_code): a unit-only enum generates a data-variant
    // match whose every arm diverges, making the trailing Ok unreachable.
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         #[allow(unreachable_code)]\n\
         fn deserialize_json(p: &mut ::serde::de::Parser<'_>) \
         -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
