//! Workspace-local stand-in for `criterion`.
//!
//! crates.io is unreachable in this build environment, so this crate
//! implements the slice of the criterion API the workspace's benches
//! use: [`Criterion::bench_function`], [`Criterion::benchmark_group`]
//! with [`Throughput::Elements`] and `sample_size`, [`Bencher::iter`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: per benchmark, a short warm-up sizes the batch so
//! one sample takes roughly `target_sample_ms`; `sample_size` samples
//! are then timed and the median per-iteration time (plus throughput,
//! when declared) is printed. No plotting, no statistics files — good
//! enough to compare hot paths before and after a change.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Declared per-sample work, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per benchmark iteration.
    Elements(u64),
    /// Bytes processed per benchmark iteration.
    Bytes(u64),
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the batch size chosen by the harness, recording the
    /// total elapsed wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Prevents the optimizer from discarding `value` (upstream re-export).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
    target_sample_ms: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            target_sample_ms: 40,
        }
    }
}

impl Criterion {
    /// Benchmarks `f` under `id` with default settings.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, self.sample_size, self.target_sample_ms, None, f);
        self
    }

    /// Opens a named group whose benchmarks share settings.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            target_sample_ms: self.target_sample_ms,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Group of benchmarks sharing `sample_size`/`throughput` settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    target_sample_ms: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration work so results include a rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(
            &full,
            self.sample_size,
            self.target_sample_ms,
            self.throughput,
            f,
        );
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    target_sample_ms: u64,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Warm-up: find a batch size where one sample lasts ~target_sample_ms.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed.as_millis() as u64 >= target_sample_ms || iters >= 1 << 24 {
            break;
        }
        // Grow geometrically toward the target, at least doubling.
        let scale = if b.elapsed.as_micros() == 0 {
            16
        } else {
            ((target_sample_ms as u128 * 1000) / b.elapsed.as_micros()).max(2)
        };
        iters = iters.saturating_mul(scale.min(64) as u64);
    }

    let mut per_iter_ns: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => {
            format!(" ({:.3} Melem/s)", n as f64 / median * 1000.0)
        }
        Throughput::Bytes(n) => {
            format!(" ({:.1} MiB/s)", n as f64 / median * 1e9 / (1 << 20) as f64)
        }
    });
    println!(
        "{id:<48} {:>14}/iter{}  [{} samples x {iters} iters]",
        format_ns(median),
        rate.unwrap_or_default(),
        sample_size,
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group: a function per target, run in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; none apply here.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 3,
            target_sample_ms: 1,
        };
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_settings_apply() {
        let mut c = Criterion {
            sample_size: 3,
            target_sample_ms: 1,
        };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.sample_size(2);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
