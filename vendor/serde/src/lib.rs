//! Workspace-local stand-in for `serde`.
//!
//! crates.io is unreachable in this build environment, so this crate
//! provides a *direct-to-JSON* serialization framework with the same
//! surface the workspace uses: `Serialize`/`Deserialize` traits, derive
//! macros (from the sibling `serde_derive` stand-in) and impls for the
//! primitives, strings, tuples, arrays, `Vec` and `Option`.
//!
//! Unlike real serde there is no intermediate data model: `Serialize`
//! writes JSON text and `Deserialize` reads it. The JSON dialect matches
//! `serde_json`'s defaults (externally tagged enums, newtype structs
//! transparent, non-finite floats as `null`) so archived traces keep the
//! same shape they would have upstream. Float formatting uses Rust's
//! shortest-roundtrip `Display`, preserving the `float_roundtrip`
//! guarantee calibrated coefficients rely on.

#![forbid(unsafe_code)]

// `use serde::{Serialize, Deserialize}` must bring in both the traits
// (type namespace) and the derive macros (macro namespace); the same name
// can live in both.
pub use serde_derive::{Deserialize, Serialize};

/// Serialization to JSON text.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Deserialization from JSON text.
pub trait Deserialize: Sized {
    /// Reads one JSON value from the parser.
    ///
    /// # Errors
    ///
    /// Returns a [`de::Error`] describing the first syntax or shape
    /// mismatch.
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error>;
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                use std::fmt::Write as _;
                let _ = write!(out, "{self}");
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
                let tok = p.number_token()?;
                tok.parse::<$t>().map_err(|_| {
                    de::Error::new(format!(
                        "invalid {} literal `{tok}`", stringify!($t)
                    ))
                })
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                use std::fmt::Write as _;
                if self.is_finite() {
                    // Rust's Display for floats is shortest-roundtrip.
                    let _ = write!(out, "{self}");
                } else {
                    // serde_json serializes non-finite floats as null.
                    out.push_str("null");
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
                if p.peek_is_null() {
                    p.expect_null()?;
                    return Ok(<$t>::NAN);
                }
                let tok = p.number_token()?;
                tok.parse::<$t>().map_err(|_| {
                    de::Error::new(format!("invalid float literal `{tok}`"))
                })
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        p.parse_bool()
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        de::write_json_string(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        de::write_json_string(self, out);
    }
}

impl Deserialize for String {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        p.parse_string()
    }
}

impl Deserialize for &'static str {
    /// Leaks the parsed string to obtain `'static` (upstream serde cannot
    /// deserialize `&'static str` at all). Only static workload
    /// descriptors carry such fields and they are deserialized rarely
    /// (tests), so the leak is bounded.
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        Ok(Box::leak(p.parse_string()?.into_boxed_str()))
    }
}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        let mut buf = [0u8; 4];
        de::write_json_string(self.encode_utf8(&mut buf), out);
    }
}

impl Deserialize for char {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        let s = p.parse_string()?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(de::Error::new("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        if p.peek_is_null() {
            p.expect_null()?;
            Ok(None)
        } else {
            Ok(Some(T::deserialize_json(p)?))
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        p.expect_byte(b'[')?;
        let mut out = Vec::new();
        if p.peek_close_bracket() {
            p.expect_byte(b']')?;
            return Ok(out);
        }
        loop {
            out.push(T::deserialize_json(p)?);
            if p.try_byte(b',') {
                continue;
            }
            p.expect_byte(b']')?;
            return Ok(out);
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        let items = Vec::<T>::deserialize_json(p)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| de::Error::new(format!("expected array of {N} elements, got {len}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        Ok(Box::new(T::deserialize_json(p)?))
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
                p.expect_byte(b'[')?;
                let mut first = true;
                let value = ($(
                    {
                        if !first { p.expect_byte(b',')?; }
                        first = false;
                        $t::deserialize_json(p)?
                    },
                )+);
                let _ = first;
                p.expect_byte(b']')?;
                Ok(value)
            }
        }
    )+};
}

tuple_impls!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E)
);

/// JSON lexing/parsing support used by `Deserialize` impls and derives.
pub mod de {
    use std::fmt;

    /// A deserialization error: position and message.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error {
        msg: String,
    }

    impl Error {
        /// Creates an error with a message.
        pub fn new(msg: impl Into<String>) -> Self {
            Self { msg: msg.into() }
        }

        /// Error for a missing struct field.
        pub fn missing_field(name: &str) -> Self {
            Self::new(format!("missing field `{name}`"))
        }

        /// Error for an unrecognized enum variant tag.
        pub fn unknown_variant(name: &str) -> Self {
            Self::new(format!("unknown variant `{name}`"))
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    impl std::error::Error for Error {}

    /// Escapes `s` as a JSON string (with quotes) onto `out`.
    pub fn write_json_string(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    use std::fmt::Write as _;
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// A cursor over JSON text.
    #[derive(Debug)]
    pub struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        /// Creates a parser over `input`.
        pub fn new(input: &'a str) -> Self {
            Self {
                bytes: input.as_bytes(),
                pos: 0,
            }
        }

        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&mut self) -> Option<u8> {
            self.skip_ws();
            self.bytes.get(self.pos).copied()
        }

        fn err(&self, msg: impl Into<String>) -> Error {
            Error::new(format!("{} at byte {}", msg.into(), self.pos))
        }

        /// Consumes `b` (after whitespace) or errors.
        ///
        /// # Errors
        ///
        /// If the next non-whitespace byte is not `b`.
        pub fn expect_byte(&mut self, b: u8) -> Result<(), Error> {
            match self.peek() {
                Some(got) if got == b => {
                    self.pos += 1;
                    Ok(())
                }
                got => Err(self.err(format!(
                    "expected `{}`, found {:?}",
                    b as char,
                    got.map(|g| g as char)
                ))),
            }
        }

        /// Consumes `b` if it is next; reports whether it did.
        pub fn try_byte(&mut self, b: u8) -> bool {
            if self.peek() == Some(b) {
                self.pos += 1;
                true
            } else {
                false
            }
        }

        /// Whether the next value is the literal `null`.
        pub fn peek_is_null(&mut self) -> bool {
            self.skip_ws();
            self.bytes[self.pos..].starts_with(b"null")
        }

        /// Whether the next token is a string.
        pub fn peek_is_string(&mut self) -> bool {
            self.peek() == Some(b'"')
        }

        /// Whether the next token closes an array.
        pub fn peek_close_bracket(&mut self) -> bool {
            self.peek() == Some(b']')
        }

        /// Consumes the literal `null`.
        ///
        /// # Errors
        ///
        /// If the input does not continue with `null`.
        pub fn expect_null(&mut self) -> Result<(), Error> {
            if self.peek_is_null() {
                self.pos += 4;
                Ok(())
            } else {
                Err(self.err("expected null"))
            }
        }

        /// Parses `true` or `false`.
        ///
        /// # Errors
        ///
        /// If neither literal is next.
        pub fn parse_bool(&mut self) -> Result<bool, Error> {
            self.skip_ws();
            if self.bytes[self.pos..].starts_with(b"true") {
                self.pos += 4;
                Ok(true)
            } else if self.bytes[self.pos..].starts_with(b"false") {
                self.pos += 5;
                Ok(false)
            } else {
                Err(self.err("expected boolean"))
            }
        }

        /// Lexes one number token and returns its text.
        ///
        /// # Errors
        ///
        /// If the next token is not a number.
        pub fn number_token(&mut self) -> Result<&'a str, Error> {
            self.skip_ws();
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b.is_ascii_digit()
                    || b == b'-'
                    || b == b'+'
                    || b == b'.'
                    || b == b'e'
                    || b == b'E'
                {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            if self.pos == start {
                return Err(self.err("expected number"));
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| self.err("invalid utf-8 in number"))
        }

        /// Parses a JSON string (with escape handling).
        ///
        /// # Errors
        ///
        /// On a missing opening quote, an invalid escape, or an unclosed
        /// string.
        pub fn parse_string(&mut self) -> Result<String, Error> {
            self.expect_byte(b'"')?;
            let mut out = String::new();
            loop {
                let Some(&b) = self.bytes.get(self.pos) else {
                    return Err(self.err("unterminated string"));
                };
                self.pos += 1;
                match b {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let Some(&esc) = self.bytes.get(self.pos) else {
                            return Err(self.err("unterminated escape"));
                        };
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            b'r' => out.push('\r'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| self.err("truncated \\u escape"))?;
                                self.pos += 4;
                                let code = std::str::from_utf8(hex)
                                    .ok()
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .ok_or_else(|| self.err("invalid \\u escape"))?;
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            }
                            other => {
                                return Err(
                                    self.err(format!("invalid escape `\\{}`", other as char))
                                )
                            }
                        }
                    }
                    _ => {
                        // Copy the full UTF-8 sequence starting at b.
                        let start = self.pos - 1;
                        let len = utf8_len(b);
                        let end = start + len;
                        let chunk = self
                            .bytes
                            .get(start..end)
                            .ok_or_else(|| self.err("truncated utf-8 sequence"))?;
                        let s =
                            std::str::from_utf8(chunk).map_err(|_| self.err("invalid utf-8"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }

        /// Iterates object entries: returns the next key, or `None` at the
        /// closing brace. Call once per entry, consuming the value (or
        /// [`skip_value`](Self::skip_value)) in between.
        ///
        /// # Errors
        ///
        /// On malformed object syntax.
        pub fn next_key(&mut self) -> Result<Option<String>, Error> {
            if self.try_byte(b'}') {
                return Ok(None);
            }
            self.try_byte(b',');
            if self.try_byte(b'}') {
                return Ok(None);
            }
            let key = self.parse_string()?;
            self.expect_byte(b':')?;
            Ok(Some(key))
        }

        /// Skips one complete JSON value.
        ///
        /// # Errors
        ///
        /// On malformed input.
        pub fn skip_value(&mut self) -> Result<(), Error> {
            match self.peek() {
                Some(b'"') => {
                    self.parse_string()?;
                    Ok(())
                }
                Some(b'{') => {
                    self.pos += 1;
                    while let Some(_key) = self.next_key()? {
                        self.skip_value()?;
                    }
                    Ok(())
                }
                Some(b'[') => {
                    self.pos += 1;
                    if self.try_byte(b']') {
                        return Ok(());
                    }
                    loop {
                        self.skip_value()?;
                        if self.try_byte(b',') {
                            continue;
                        }
                        self.expect_byte(b']')?;
                        return Ok(());
                    }
                }
                Some(b't') | Some(b'f') => {
                    self.parse_bool()?;
                    Ok(())
                }
                Some(b'n') => self.expect_null(),
                Some(_) => {
                    self.number_token()?;
                    Ok(())
                }
                None => Err(self.err("unexpected end of input")),
            }
        }

        /// Verifies only whitespace remains.
        ///
        /// # Errors
        ///
        /// If trailing non-whitespace input exists.
        pub fn expect_eof(&mut self) -> Result<(), Error> {
            match self.peek() {
                None => Ok(()),
                Some(b) => Err(self.err(format!("trailing input `{}`", b as char))),
            }
        }
    }

    /// Byte length of the UTF-8 sequence starting with lead byte `b`.
    fn utf8_len(b: u8) -> usize {
        if b < 0x80 {
            1
        } else if b < 0xe0 {
            2
        } else if b < 0xf0 {
            3
        } else {
            4
        }
    }
}
