//! Workspace-local stand-in for `proptest`.
//!
//! crates.io is unreachable in this build environment, so this crate
//! implements the subset of the proptest API the workspace's property
//! tests use: the [`proptest!`] macro, [`prop_assert!`]/
//! [`prop_assert_eq!`], numeric range strategies, tuple strategies,
//! [`collection::vec`], [`any`] and [`Strategy::prop_map`].
//!
//! Semantics: each test runs `PROPTEST_CASES` (default 64) random cases
//! drawn from a deterministic per-test RNG (seeded from the test name),
//! so failures are reproducible run to run. There is **no shrinking**;
//! the failing inputs are printed instead.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::Range;

/// Deterministic RNG handed to strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates an RNG from a 64-bit seed via SplitMix64.
    pub fn seed(mut state: u64) -> Self {
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let zone = (u64::MAX / n) * n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Constant strategy (always yields a clone of its value).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Debug + Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($t:ident . $n:tt),+)),+) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);

/// Types with a canonical "any value" strategy (mirrors `Arbitrary`).
pub trait Arbitrary: Sized + Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, broadly ranged values; property tests here never need
        // NaN/inf from `any`.
        (rng.unit_f64() - 0.5) * 2e12
    }
}

/// Strategy for any value of `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Length specification: exact or ranged.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty length range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S` and a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Number of cases per property (override with `PROPTEST_CASES`).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Runs `f` for [`cases`] deterministic cases; panics on the first
/// failure with the case's diagnostic message.
pub fn run_cases(name: &str, mut f: impl FnMut(&mut TestRng) -> Result<(), String>) {
    // FNV-1a over the test name: per-test deterministic seeds.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    for case in 0..cases() {
        let mut rng = TestRng::seed(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if let Err(msg) = f(&mut rng) {
            panic!(
                "proptest `{name}` failed at case {case}/{}:\n{msg}",
                cases()
            );
        }
    }
}

/// Common imports (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just, Strategy,
        TestRng,
    };
}

/// Defines property tests: each `fn` runs its body for many sampled
/// inputs. Failures report the inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __proptest_rng);)+
                    let __proptest_inputs = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                        $(&$arg),+
                    );
                    let __proptest_result: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    __proptest_result.map_err(|e| {
                        format!("{e}\ninputs:\n{__proptest_inputs}")
                    })
                });
            }
        )+
    };
}

/// Fails the enclosing property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the enclosing property case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {left:?}\n right: {right:?}",
                stringify!($a), stringify!($b)
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "{}\n  left: {left:?}\n right: {right:?}", format!($($fmt)+)
            ));
        }
    }};
}

/// Fails the enclosing property case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n  both: {left:?}",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u64..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn exact_len_and_tuples(v in prop::collection::vec((0u64..3, 0.0f64..1.0), 4)) {
            prop_assert_eq!(v.len(), 4);
        }

        #[test]
        fn map_transforms(x in (0usize..4).prop_map(|i| i * 10)) {
            prop_assert!(x % 10 == 0 && x < 40);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::seed(9);
        let mut b = TestRng::seed(9);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
