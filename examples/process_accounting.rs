//! Per-process power billing in a shared SMP box.
//!
//! The paper argues that "the ability to attribute power consumption to
//! a single physical processor within an SMP environment is critical for
//! shared computing environments … billing of compute time in these
//! environments will take account of power consumed by each process.
//! This is particularly challenging in virtual machine environments in
//! which multiple customers could be simultaneously running applications
//! on a single physical processor. For this reason, process-level power
//! accounting is essential" (§4.2.1).
//!
//! Two tenants share the machine — a compute-heavy one (vortex) and a
//! memory-thrashing one (mcf), including SMT co-residency on the same
//! physical CPUs. Every second, the counter-based Equation-1 estimate is
//! split per CPU between the tenants by the OS scheduler's retired-uop
//! accounting; the idle floor accrues to "(system)".
//!
//! ```text
//! cargo run --release --example process_accounting
//! ```

use tdp_simsys::os::ProcessId;
use tdp_workloads::Workload;
use trickledown::{
    CalibrationSuite, Calibrator, ProcessEnergyLedger, SystemSample, Testbed, TestbedConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    eprintln!("calibrating...");
    let suite = CalibrationSuite::capture(11, 4);
    let model = Calibrator::new().calibrate(&suite)?;
    let mut ledger = ProcessEnergyLedger::new(model.cpu);

    let mut bed = Testbed::new(TestbedConfig::with_seed(123));
    // Tenant A: three vortex instances; tenant B: three mcf instances.
    // Six threads on four CPUs forces SMT co-residency — the billing
    // case the paper highlights.
    let mut tenant_a = Vec::new();
    let mut tenant_b = Vec::new();
    for i in 0..3 {
        tenant_a.push(
            bed.machine_mut()
                .os_mut()
                .spawn(Workload::Vortex.make_behavior(i), 0),
        );
    }
    for i in 0..3 {
        tenant_b.push(
            bed.machine_mut()
                .os_mut()
                .spawn(Workload::Mcf.make_behavior(i), 0),
        );
    }

    const SECONDS: u64 = 30;
    for _ in 0..SECONDS {
        let trace = bed.run_seconds(Workload::Vortex, 1);
        let record = trace.records.last().expect("one window per second");
        let sched = bed.machine_mut().take_sched_delta();
        let sample: &SystemSample = &record.input;
        ledger.account(sample, &sched);
    }

    println!("\nper-process bill over {SECONDS} s (counters + scheduler only):");
    let machine = bed.machine_mut();
    print!(
        "{}",
        ledger.render(|pid| { machine.os().name_of_pid(pid).unwrap_or("?").to_owned() })
    );

    let bill = |pids: &[ProcessId]| -> f64 { pids.iter().map(|&p| ledger.energy_j(p)).sum() };
    let a = bill(&tenant_a);
    let b = bill(&tenant_b);
    println!(
        "\ntenant A (vortex): {a:.0} J    tenant B (mcf): {b:.0} J    \
         ratio {:.2}",
        a / b
    );
    println!(
        "note: mcf is billed less per the fetch-based model even though its \
         stalled window-search power is real — the §4.3 model limitation \
         becomes a billing-fairness question."
    );
    println!("\n/proc/interrupts at teardown:");
    println!("{}", machine.proc_interrupts());
    Ok(())
}
