//! The paper's opening claim, demonstrated: "Due to the thermal inertia
//! in microprocessor packaging, detection of temperature changes may
//! occur significantly later than the power events which caused them.
//! Rather than relying on relatively slow temperature sensors … it has
//! been demonstrated that performance counters can be used as a proxy
//! for power measurement" (§1).
//!
//! Two watchdogs race to flag an impending CPU thermal emergency after
//! a power step:
//!
//! * the **sensor watchdog** waits for the (laggy, quantized, 2 s-polled)
//!   thermal diode to cross the alarm threshold;
//! * the **counter watchdog** projects the steady-state temperature from
//!   the counter-based power estimate (`T∞ = ambient + R·P̂`) and alarms
//!   as soon as the *projection* crosses the threshold — seconds after
//!   the power event, long before the package heats up.
//!
//! ```text
//! cargo run --release --example thermal_watchdog
//! ```

use tdp_counters::Subsystem;
use tdp_powermeter::{ThermalModel, ThermalSensor, ThermalSpec};
use tdp_workloads::Workload;
use trickledown::{CalibrationSuite, Calibrator, Testbed, TestbedConfig};

const ALARM_C: f64 = 95.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    eprintln!("calibrating power models...");
    let suite = CalibrationSuite::capture(3, 4);
    let model = Calibrator::new().calibrate(&suite)?;

    let mut bed = Testbed::new(TestbedConfig::with_seed(31));
    let spec = ThermalSpec::default();
    let r_cpu = spec.params[Subsystem::Cpu.index()].r_c_per_w;
    let mut thermal = ThermalModel::new(spec);
    // Warm the package to idle steady state before the step.
    eprintln!("warming to idle steady state...");
    for _ in 0..240 {
        let t = bed.run_seconds(Workload::Idle, 1);
        let w = t.records.last().expect("window").measured.watts;
        thermal.advance(&w, 1.0);
    }
    let mut sensor = ThermalSensor::new(Subsystem::Cpu, thermal.temps().get(Subsystem::Cpu));

    println!("CPU alarm threshold: {ALARM_C:.0} °C  (R = {r_cpu} °C/W, ambient 25 °C)");
    println!(
        "{:>4} {:>9} {:>9} {:>9} {:>10}  events",
        "sec", "est P", "T true", "T sensor", "T∞ proj"
    );

    let mut sensor_alarm_at: Option<u64> = None;
    let mut counter_alarm_at: Option<u64> = None;
    for second in 1..=90u64 {
        if second == 10 {
            // The thermal emergency's cause: a full vortex fleet lands.
            for i in 0..8 {
                bed.machine_mut()
                    .os_mut()
                    .spawn(Workload::Vortex.make_behavior(i), 0);
            }
        }
        let trace = bed.run_seconds(Workload::Vortex, 1);
        let record = trace.records.last().expect("window");

        // Physics: true temperature follows measured power.
        let true_temps = thermal.advance(&record.measured.watts, 1.0);
        let t_true = true_temps.get(Subsystem::Cpu);
        let t_sensor = sensor.advance(t_true, 1.0);

        // The counter watchdog: estimated power → projected steady state.
        let est_cpu_w: f64 = record
            .input
            .per_cpu
            .iter()
            .map(|c| model.cpu.predict_single(c))
            .sum();
        let t_projected = 25.0 + r_cpu * est_cpu_w;

        let mut events = String::new();
        if second == 10 {
            events.push_str("workload lands; ");
        }
        if t_projected >= ALARM_C && counter_alarm_at.is_none() {
            counter_alarm_at = Some(second);
            events.push_str("COUNTER WATCHDOG ALARMS; ");
        }
        if t_sensor >= ALARM_C && sensor_alarm_at.is_none() {
            sensor_alarm_at = Some(second);
            events.push_str("sensor watchdog alarms; ");
        }
        if second % 5 == 0 || !events.is_empty() {
            println!(
                "{second:>4} {est_cpu_w:>7.1} W {t_true:>7.1}°C {t_sensor:>7.1}°C {t_projected:>8.1}°C  {events}"
            );
        }
    }

    match (counter_alarm_at, sensor_alarm_at) {
        (Some(c), Some(s)) => println!(
            "\nlead time: the counter watchdog fired {} s before the sensor \
             ({c} s vs {s} s after start).",
            s - c
        ),
        (Some(c), None) => println!(
            "\nthe counter watchdog fired at {c} s; the sensor never crossed \
             {ALARM_C:.0} °C within the run — exactly the preemption window \
             the paper is after."
        ),
        _ => println!("\nno alarm fired; raise the workload or lower ALARM_C."),
    }
    Ok(())
}
