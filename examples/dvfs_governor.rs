//! A DVFS governor driven by counter-based power estimates — the
//! dynamic-adaptation use case of the paper's §2.3 (Kotla et al.'s
//! frequency scheduling, Rajamani & Lefurgy's energy policies), closed
//! over the trickle-down estimator instead of power sensors.
//!
//! Two things are demonstrated:
//!
//! 1. **Per-P-state calibration.** Equation 1 is fitted at one operating
//!    point; under DVFS, voltage scaling changes the watts-per-event
//!    coefficients, so the governor calibrates one CPU model per
//!    frequency step and switches models with the clock. (A single
//!    nominal-frequency model overestimates scaled-down power badly —
//!    the run prints that error too.)
//! 2. **Sensor-less capping.** The governor steps frequency down when
//!    the estimated CPU power exceeds the cap and back up when headroom
//!    returns, never consulting the measured watts it is being judged
//!    against.
//!
//! ```text
//! cargo run --release --example dvfs_governor
//! ```

use tdp_counters::Subsystem;
use tdp_workloads::{Workload, WorkloadSet};
use trickledown::{CpuPowerModel, SubsystemPowerModel as _, Testbed, TestbedConfig};

const CPU_CAP_W: f64 = 120.0;
const P_STATES: [f64; 4] = [1.0, 0.875, 0.75, 0.625];

/// Calibrates one Equation-1 model per P-state by running the gcc
/// training workload at each operating point.
fn calibrate_per_state() -> Result<Vec<CpuPowerModel>, Box<dyn std::error::Error>> {
    let mut models = Vec::new();
    for (i, &scale) in P_STATES.iter().enumerate() {
        let mut bed = Testbed::new(TestbedConfig::with_seed(50 + i as u64));
        bed.machine_mut().set_frequency_scale(scale);
        bed.deploy(WorkloadSet::new(Workload::Gcc, 8, 3_000).with_delay(2_000));
        let trace = bed.run_seconds(Workload::Gcc, 40);
        let model = CpuPowerModel::fit(&trace.inputs(), &trace.measured(Subsystem::Cpu))?;
        eprintln!(
            "P-state {scale:>5.3}: halt {:5.2} W, active {:5.2} W, {:4.2} W per uop/cycle",
            model.halt_w, model.active_w, model.upc_w
        );
        models.push(model);
    }
    Ok(models)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    eprintln!("calibrating one CPU model per P-state...");
    let models = calibrate_per_state()?;
    let nominal = models[0];

    let mut bed = Testbed::new(TestbedConfig::with_seed(99));
    bed.deploy(WorkloadSet::new(Workload::Wupwise, 8, 500));
    let mut state = 0usize;

    println!("\nCPU power cap: {CPU_CAP_W:.0} W  (wupwise x8; governor sees only counters)");
    println!(
        "{:>4} {:>8} {:>11} {:>11} {:>11}  action",
        "sec", "P-state", "est (used)", "est (naive)", "measured"
    );

    let mut over_samples = 0u32;
    for second in 1..=45u64 {
        let ran_at = state;
        let trace = bed.run_seconds(Workload::Wupwise, 1);
        let record = trace.records.last().expect("one window");
        let est = models[ran_at].predict(&record.input);
        let naive = nominal.predict(&record.input);
        let measured = record.measured.watts.get(Subsystem::Cpu);
        if measured > CPU_CAP_W {
            over_samples += 1;
        }

        // Step down when over the cap. Step up only if the *target*
        // state's model forecasts staying under it — per-cycle inputs
        // barely change across P-states, so the higher state's model
        // applied to this window's rates predicts post-transition power
        // (this forecast is what prevents cap/uncapped limit cycles).
        let action = if est > CPU_CAP_W && state + 1 < P_STATES.len() {
            state += 1;
            bed.machine_mut().set_frequency_scale(P_STATES[state]);
            "step down"
        } else if state > 0 && models[state - 1].predict(&record.input) < CPU_CAP_W * 0.97 {
            state -= 1;
            bed.machine_mut().set_frequency_scale(P_STATES[state]);
            "step up"
        } else {
            ""
        };
        if second % 3 == 0 || !action.is_empty() {
            println!(
                "{second:>4} {:>8.3} {:>9.1} W {:>9.1} W {:>9.1} W  {action}",
                P_STATES[ran_at], est, naive, measured
            );
        }
    }

    println!(
        "\nwindows over the cap while governed: {over_samples} \
         (transients during step-down are expected)"
    );
    println!(
        "note the naive nominal-frequency model: at reduced P-states it \
         overestimates, because Equation 1's coefficients embed the voltage \
         of the operating point they were fitted at."
    );
    Ok(())
}
