//! Power capping without power sensors: a cluster-admission governor
//! driven entirely by counter-based power estimates.
//!
//! The paper motivates counter-based estimation with exactly this use
//! case: "In data and computing centers, this can be a valuable tool for
//! keeping the center within temperature and power limits" (§1), and
//! cites node power-down policies (Rajamani & Lefurgy) that need per-box
//! power numbers. This example runs a closed loop: a scheduler keeps
//! admitting SPECjbb warehouses onto the simulated server while the
//! *estimated* total power stays under a budget, and stops when the next
//! admission would bust it — no sense resistor consulted.
//!
//! ```text
//! cargo run --release --example power_capping
//! ```

use tdp_counters::SamplerConfig;
use tdp_workloads::Workload;
use trickledown::{CalibrationSuite, Calibrator, SystemPowerEstimator, Testbed, TestbedConfig};

const POWER_BUDGET_W: f64 = 230.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("calibrating models (no cap is trustworthy without them)...");
    let suite = CalibrationSuite::capture(7, 4);
    let model = Calibrator::new().calibrate(&suite)?;
    let mut estimator = SystemPowerEstimator::new(model);

    let mut cfg = TestbedConfig::with_seed(99);
    cfg.sampler = SamplerConfig::default();
    let mut bed = Testbed::new(cfg);

    println!("power budget: {POWER_BUDGET_W:.0} W\n");
    println!(
        "{:>4} {:>11} {:>10} {:>10}  decision",
        "sec", "warehouses", "estimated", "measured"
    );

    let mut admitted = 0usize;
    let mut capped = false;
    for second in 1..=40u64 {
        // One second of simulated time, then a counter sampling.
        let trace = bed.run_seconds(Workload::SpecJbb, 1);
        let record = trace.records.last().expect("one window per second");
        let est = estimator.push(&record.input);
        let measured = record.measured.watts.total();

        // Governor: admit another warehouse if the estimate leaves
        // headroom for roughly one more (~12 W per warehouse observed
        // online from the running average).
        let headroom = POWER_BUDGET_W - est.total();
        let per_instance = if admitted > 0 {
            ((est.total() - 140.0) / admitted as f64).max(5.0)
        } else {
            12.0
        };
        // Require headroom for 1.6 instances before admitting: SPECjbb
        // warehouses ramp up over several seconds, so a tight margin
        // overshoots the cap before the estimate catches up.
        let decision = if headroom > 1.6 * per_instance && admitted < 12 {
            admitted += 1;
            bed.machine_mut()
                .os_mut()
                .spawn(Workload::SpecJbb.make_behavior(admitted), 0);
            "admit"
        } else if headroom < 0.0 {
            capped = true;
            "OVER BUDGET — hold"
        } else {
            capped = true;
            "hold"
        };

        println!(
            "{second:>4} {admitted:>11} {:>8.1} W {:>8.1} W  {decision}",
            est.total(),
            measured
        );
    }

    assert!(capped, "the governor should eventually hit the cap");
    let recent: Vec<f64> = estimator.history().map(|e| e.total()).collect();
    let steady = recent.iter().rev().take(5).sum::<f64>() / 5.0;
    println!(
        "\nsteady state: {admitted} warehouses at ~{steady:.0} W against a \
         {POWER_BUDGET_W:.0} W budget, governed with zero power sensors."
    );
    Ok(())
}
