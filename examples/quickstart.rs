//! Quickstart: calibrate the trickle-down models and estimate the power
//! of a workload the models never saw.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tdp_counters::Subsystem;
use tdp_workloads::{Workload, WorkloadSet};
use trickledown::testbed::capture;
use trickledown::{CalibrationSuite, Calibrator, SystemPowerEstimator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Capture the paper's training recipe on the simulated server:
    //    gcc (CPU), mcf (memory), DiskLoad (disk + I/O). A short ramp
    //    keeps the example quick; use 20-30 s for production quality.
    println!("calibrating (gcc / mcf / DiskLoad training traces)...");
    let suite = CalibrationSuite::capture(/* seed */ 42, /* ramp s */ 4);
    let model = Calibrator::new().calibrate(&suite)?;
    println!(
        "fitted CPU model:    {:5.2} W halted, {:5.2} W active, {:4.2} W per uop/cycle",
        model.cpu.halt_w, model.cpu.active_w, model.cpu.upc_w
    );
    println!(
        "fitted memory model: {:5.2} W background\n",
        model.memory.background_w
    );

    // 2. Capture a validation workload the models never trained on.
    let set = WorkloadSet::new(Workload::SpecJbb, 8, 500);
    let trace = capture(set, 30, 43);

    // 3. Estimate power online from counters alone and compare against
    //    the sense-resistor measurements. The estimator's push path is
    //    allocation-free, and per-CPU attribution reuses one caller-
    //    owned buffer across the whole run (the buffer-reuse contract:
    //    `*_into` methods reset and refill, the caller keeps capacity).
    let mut estimator = SystemPowerEstimator::new(model);
    let mut per_cpu_w: Vec<f64> = Vec::new();
    println!(
        "{:>4} {:>10} {:>10} {:>7}   (specjbb, 8 warehouses)",
        "sec", "measured", "estimated", "error"
    );
    let mut worst: f64 = 0.0;
    let mut busiest_cpu_w: f64 = 0.0;
    for record in &trace.records {
        let est = estimator.push(&record.input);
        estimator.attribute_cpus_into(&record.input, &mut per_cpu_w);
        busiest_cpu_w = busiest_cpu_w.max(per_cpu_w.iter().cloned().fold(0.0, f64::max));
        let measured = record.measured.watts.total();
        let err = (est.total() - measured).abs() / measured * 100.0;
        worst = worst.max(err);
        if record.input.time_ms % 5000 < 1000 {
            println!(
                "{:>4} {:>8.1} W {:>8.1} W {:>6.2}%",
                record.input.time_ms / 1000,
                measured,
                est.total(),
                err
            );
        }
    }
    println!("\nworst per-second total-power error: {worst:.2}%");
    println!("busiest single CPU (attributed): {busiest_cpu_w:.1} W");

    // 4. The estimator keeps history for policies to consume.
    let cpu_avg = estimator
        .moving_average(Subsystem::Cpu, 10)
        .expect("history is non-empty");
    println!("CPU subsystem, last-10s moving average: {cpu_avg:.1} W");
    Ok(())
}
