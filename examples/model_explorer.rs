//! Reproduce the paper's event-selection process: fit every candidate
//! event/form combination for a subsystem and rank them by validation
//! error.
//!
//! "The final selection of which event type(s) to use is determined by
//! the average error rate" (§3.3). Run this for memory to watch bus
//! transactions beat L3 misses; run it for I/O to watch interrupts beat
//! DMA and uncacheable accesses — the paper's §4.2.2/§4.2.4 findings.
//!
//! ```text
//! cargo run --release --example model_explorer -- [memory|io|disk]
//! ```

use tdp_counters::Subsystem;
use tdp_modeling::ModelSelector;
use tdp_workloads::{Workload, WorkloadSet};
use trickledown::testbed::{capture, Trace};
use trickledown::SystemSample;

/// Candidate inputs visible at the CPU, summed over CPUs per window.
fn candidates(sample: &SystemSample) -> Vec<f64> {
    vec![
        sample.sum(|c| c.l3_load_misses) * 1e3,
        sample.sum(|c| c.bus_tx_per_mcycle),
        sample.sum(|c| c.dma_per_cycle) * 1e6,
        sample.sum(|c| c.uncacheable_per_cycle) * 1e9,
        sample.sum(|c| c.device_interrupts_per_cycle) * 1e9,
        sample.sum(|c| c.tlb_per_cycle) * 1e6,
    ]
}

const CANDIDATE_NAMES: &[&str] = &[
    "l3_load_misses",
    "bus_transactions",
    "dma_accesses",
    "uncacheable",
    "interrupts",
    "tlb_misses",
];

fn rows(trace: &Trace, subsystem: Subsystem) -> (Vec<Vec<f64>>, Vec<f64>) {
    let xs = trace.inputs().into_iter().map(candidates).collect();
    (xs, trace.measured(subsystem))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let target = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "memory".to_owned());
    let (subsystem, train_w, valid_w) = match target.as_str() {
        "memory" => (Subsystem::Memory, Workload::Mcf, Workload::Lucas),
        "io" => (Subsystem::Io, Workload::DiskLoad, Workload::Dbt2),
        "disk" => (Subsystem::Disk, Workload::DiskLoad, Workload::Dbt2),
        other => return Err(format!("unknown subsystem {other}").into()),
    };

    eprintln!("capturing training trace ({train_w}) and validation trace ({valid_w})...");
    let train = capture(
        WorkloadSet::new(train_w, train_w.default_instances().max(1), 4_000).with_delay(3_000),
        60,
        21,
    );
    let valid = capture(
        WorkloadSet::new(valid_w, valid_w.default_instances().max(1), 2_000).with_delay(3_000),
        40,
        22,
    );

    let (train_xs, train_ys) = rows(&train, subsystem);
    let (valid_xs, valid_ys) = rows(&valid, subsystem);

    let selector = ModelSelector::new(CANDIDATE_NAMES.iter().map(|s| s.to_string()).collect())
        .max_subset_size(2);
    let ranked = selector.search(&train_xs, &train_ys, &valid_xs, &valid_ys);

    println!("{subsystem} power model candidates, trained on {train_w}, validated on {valid_w}:");
    println!(
        "{:<40} {:>10} {:>12} {:>12}",
        "inputs", "form", "train err", "valid err"
    );
    for outcome in ranked.iter().take(12) {
        println!(
            "{:<40} {:>10} {:>11.2}% {:>11.2}%",
            outcome.input_names.join(" + "),
            outcome.form.to_string(),
            outcome.training_error_pct,
            outcome.validation_error_pct
        );
    }
    if let Some(best) = ranked.first() {
        println!(
            "\nwinner: {} ({}) — the paper picked {} for this subsystem",
            best.input_names.join(" + "),
            best.form,
            match subsystem {
                Subsystem::Memory => "bus transactions (Eq 3)",
                Subsystem::Io => "interrupts (Eq 5)",
                Subsystem::Disk => "interrupts + DMA (Eq 4)",
                _ => "—",
            }
        );
    }
    Ok(())
}
