//! Emit a measured-vs-modeled power trace as CSV on stdout — the raw
//! material of the paper's Figures 2, 3, 5, 6 and 7.
//!
//! ```text
//! cargo run --release --example live_trace -- [workload] [seconds]
//! cargo run --release --example live_trace -- mcf 120 > mcf.csv
//! ```
//!
//! Columns: time, then measured and modeled watts for each subsystem.

use tdp_counters::Subsystem;
use tdp_workloads::{Workload, WorkloadSet};
use trickledown::testbed::capture;
use trickledown::{CalibrationSuite, Calibrator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "gcc".to_owned());
    let seconds: u64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(60);
    let workload: Workload = name.parse()?;

    eprintln!("calibrating...");
    let suite = CalibrationSuite::capture(5, 4);
    let model = Calibrator::new().calibrate(&suite)?;

    eprintln!("capturing {seconds} s of {workload}...");
    let set = WorkloadSet::new(workload, workload.default_instances().max(1), 2_000);
    let trace = capture(set, seconds, 17);

    let mut header = vec!["seconds".to_owned()];
    for s in Subsystem::ALL {
        header.push(format!("{s}_measured_w"));
        header.push(format!("{s}_modeled_w"));
    }
    header.push("total_measured_w".to_owned());
    header.push("total_modeled_w".to_owned());
    println!("{}", header.join(","));

    // One row buffer reused across the trace — the same buffer-reuse
    // pattern the tick hot path uses (`clear()` keeps the capacity).
    let mut row: Vec<String> = Vec::with_capacity(header.len());
    for record in &trace.records {
        let modeled = model.predict(&record.input);
        row.clear();
        row.push(format!("{}", record.input.time_ms as f64 / 1000.0));
        for &s in Subsystem::ALL {
            row.push(format!("{:.3}", record.measured.watts.get(s)));
            row.push(format!("{:.3}", modeled.get(s)));
        }
        row.push(format!("{:.3}", record.measured.watts.total()));
        row.push(format!("{:.3}", modeled.total()));
        println!("{}", row.join(","));
    }
    Ok(())
}
