//! Workload generators for the trickledown evaluation.
//!
//! The paper validates its models on eleven workloads plus idle
//! (§3.2.2): eight SPEC CPU 2000 benchmarks run as homogeneous
//! multi-instance sets, two commercial server workloads (dbt-2 and
//! SPECjbb) and a synthetic disk stressor. This crate reproduces that
//! set as [`tdp_simsys::ThreadBehavior`] implementations, plus the
//! paper's deployment discipline: "In the case of the 8-thread
//! workloads, we stagger the start of each thread by a fixed time,
//! usually 30 s–60 s" (§3.2.1) so training traces sweep the whole
//! utilization range.
//!
//! # Example
//!
//! ```
//! use tdp_simsys::{Machine, MachineConfig};
//! use tdp_workloads::{Workload, WorkloadSet};
//!
//! let mut machine = Machine::new(MachineConfig::default());
//! WorkloadSet::standard(Workload::Gcc).deploy(&mut machine);
//! for _ in 0..100 {
//!     machine.tick();
//! }
//! assert!(machine.os().runnable_count() >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dbt2;
mod diskload;
mod speccpu;
mod specjbb;
mod webserver;

pub use dbt2::Dbt2Behavior;
pub use diskload::DiskLoadBehavior;
pub use speccpu::{SpecCpuBehavior, SpecParams};
pub use specjbb::SpecJbbBehavior;
pub use webserver::WebServerBehavior;

use serde::{Deserialize, Serialize};
use std::fmt;
use tdp_simsys::{Machine, ThreadBehavior};

/// Workload class, used to group the error tables the way the paper does
/// (Table 3: integer; Table 4: floating-point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// The idle system.
    Idle,
    /// SPEC CPU 2000 integer (and the commercial/synthetic workloads the
    /// paper folds into its "integer average" table).
    Integer,
    /// SPEC CPU 2000 floating-point.
    FloatingPoint,
}

/// One of the paper's twelve evaluation workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// No threads at all; the machine idles.
    Idle,
    /// SPEC CPU 2000 `gcc`.
    Gcc,
    /// SPEC CPU 2000 `mcf`.
    Mcf,
    /// SPEC CPU 2000 `vortex`.
    Vortex,
    /// SPEC CPU 2000 `art`.
    Art,
    /// SPEC CPU 2000 `lucas`.
    Lucas,
    /// SPEC CPU 2000 `mesa`.
    Mesa,
    /// SPEC CPU 2000 `mgrid`.
    Mgrid,
    /// SPEC CPU 2000 `wupwise`.
    Wupwise,
    /// dbt-2 (TPC-C approximation on PostgreSQL).
    Dbt2,
    /// SPECjbb 2005 server-side Java.
    SpecJbb,
    /// The synthetic disk/I-O stressor.
    DiskLoad,
}

impl Workload {
    /// All twelve workloads in the paper's Table 1 row order.
    pub const ALL: &'static [Workload] = &[
        Workload::Idle,
        Workload::Gcc,
        Workload::Mcf,
        Workload::Vortex,
        Workload::Art,
        Workload::Lucas,
        Workload::Mesa,
        Workload::Mgrid,
        Workload::Wupwise,
        Workload::Dbt2,
        Workload::SpecJbb,
        Workload::DiskLoad,
    ];

    /// Stable lowercase name (Table 1 row labels).
    pub fn name(self) -> &'static str {
        match self {
            Workload::Idle => "idle",
            Workload::Gcc => "gcc",
            Workload::Mcf => "mcf",
            Workload::Vortex => "vortex",
            Workload::Art => "art",
            Workload::Lucas => "lucas",
            Workload::Mesa => "mesa",
            Workload::Mgrid => "mgrid",
            Workload::Wupwise => "wupwise",
            Workload::Dbt2 => "dbt-2",
            Workload::SpecJbb => "specjbb",
            Workload::DiskLoad => "diskload",
        }
    }

    /// The paper's error-table grouping (Tables 3 and 4).
    pub fn class(self) -> WorkloadClass {
        match self {
            Workload::Idle => WorkloadClass::Idle,
            Workload::Art
            | Workload::Lucas
            | Workload::Mesa
            | Workload::Mgrid
            | Workload::Wupwise => WorkloadClass::FloatingPoint,
            _ => WorkloadClass::Integer,
        }
    }

    /// Default instance count: the paper saturates the 8-context SMP
    /// with eight single-threaded instances for SPEC workloads, runs
    /// 16 database workers, 8 warehouses, 4 disk stressors.
    pub fn default_instances(self) -> usize {
        match self {
            Workload::Idle => 0,
            Workload::Dbt2 => 16,
            Workload::SpecJbb => 8,
            Workload::DiskLoad => 4,
            _ => 8,
        }
    }

    /// Default stagger between instance starts, ms (paper: 30–60 s; we
    /// default to 30 s for SPEC ramps and a few seconds for server
    /// workloads that are meant to be in steady state).
    pub fn default_stagger_ms(self) -> u64 {
        match self {
            Workload::Idle => 0,
            Workload::Dbt2 | Workload::SpecJbb => 500,
            Workload::DiskLoad => 2_000,
            _ => 30_000,
        }
    }

    /// Creates instance number `instance` of this workload's behaviour.
    ///
    /// # Panics
    ///
    /// Panics for [`Workload::Idle`], which has no threads.
    pub fn make_behavior(self, instance: usize) -> Box<dyn ThreadBehavior> {
        match self {
            Workload::Idle => panic!("idle has no threads to create"),
            Workload::Gcc => Box::new(SpecCpuBehavior::new(SpecParams::GCC, instance)),
            Workload::Mcf => Box::new(SpecCpuBehavior::new(SpecParams::MCF, instance)),
            Workload::Vortex => Box::new(SpecCpuBehavior::new(SpecParams::VORTEX, instance)),
            Workload::Art => Box::new(SpecCpuBehavior::new(SpecParams::ART, instance)),
            Workload::Lucas => Box::new(SpecCpuBehavior::new(SpecParams::LUCAS, instance)),
            Workload::Mesa => Box::new(SpecCpuBehavior::new(SpecParams::MESA, instance)),
            Workload::Mgrid => Box::new(SpecCpuBehavior::new(SpecParams::MGRID, instance)),
            Workload::Wupwise => Box::new(SpecCpuBehavior::new(SpecParams::WUPWISE, instance)),
            Workload::Dbt2 => Box::new(Dbt2Behavior::new(instance)),
            Workload::SpecJbb => Box::new(SpecJbbBehavior::new(instance)),
            Workload::DiskLoad => Box::new(DiskLoadBehavior::new(instance)),
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown workload name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseWorkloadError(String);

impl fmt::Display for ParseWorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown workload \"{}\"; expected one of: ", self.0)?;
        for (i, w) in Workload::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(w.name())?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseWorkloadError {}

impl std::str::FromStr for Workload {
    type Err = ParseWorkloadError;

    /// Parses a Table-1 row label (e.g. `"mcf"`, `"dbt-2"`).
    ///
    /// ```
    /// use tdp_workloads::Workload;
    /// assert_eq!("specjbb".parse::<Workload>(), Ok(Workload::SpecJbb));
    /// assert!("doom3".parse::<Workload>().is_err());
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Workload::ALL
            .iter()
            .copied()
            .find(|w| w.name() == s)
            .ok_or_else(|| ParseWorkloadError(s.to_owned()))
    }
}

/// A deployable set of workload instances with staggered starts.
///
/// # Example
///
/// ```
/// use tdp_workloads::{Workload, WorkloadSet};
///
/// // The Figure-3 ramp: mesa at 1..8 instances, 30 s apart.
/// let set = WorkloadSet::new(Workload::Mesa, 8, 30_000);
/// assert_eq!(set.start_times().len(), 8);
/// assert_eq!(set.start_times()[7], 7 * 30_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadSet {
    /// The workload to run.
    pub kind: Workload,
    /// Number of instances.
    pub instances: usize,
    /// Milliseconds between instance starts.
    pub stagger_ms: u64,
    /// Idle lead-in before the first instance starts, ms. Training
    /// traces use this so the fitted models see the zero-utilization
    /// operating point (anchoring their DC terms).
    pub delay_ms: u64,
}

impl WorkloadSet {
    /// Creates a set with no initial delay.
    pub fn new(kind: Workload, instances: usize, stagger_ms: u64) -> Self {
        Self {
            kind,
            instances,
            stagger_ms,
            delay_ms: 0,
        }
    }

    /// Adds an idle lead-in before the first instance.
    pub fn with_delay(mut self, delay_ms: u64) -> Self {
        self.delay_ms = delay_ms;
        self
    }

    /// The paper's default deployment for `kind` (instance count and
    /// stagger per [`Workload::default_instances`] /
    /// [`Workload::default_stagger_ms`]).
    pub fn standard(kind: Workload) -> Self {
        Self::new(kind, kind.default_instances(), kind.default_stagger_ms())
    }

    /// Start time of each instance.
    pub fn start_times(&self) -> Vec<u64> {
        (0..self.instances)
            .map(|i| self.delay_ms + i as u64 * self.stagger_ms)
            .collect()
    }

    /// Time at which all instances have started (0 for idle).
    pub fn fully_ramped_ms(&self) -> u64 {
        if self.instances == 0 {
            0
        } else {
            self.delay_ms + (self.instances as u64 - 1) * self.stagger_ms
        }
    }

    /// Spawns all instances into `machine`'s OS.
    pub fn deploy(&self, machine: &mut Machine) {
        if self.kind == Workload::Idle {
            return;
        }
        for (i, start) in self.start_times().into_iter().enumerate() {
            machine.os_mut().spawn(self.kind.make_behavior(i), start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_simsys::MachineConfig;

    #[test]
    fn twelve_workloads_with_unique_names() {
        assert_eq!(Workload::ALL.len(), 12);
        let mut names = std::collections::HashSet::new();
        for w in Workload::ALL {
            assert!(names.insert(w.name()));
        }
    }

    #[test]
    fn class_partition_matches_tables_3_and_4() {
        let fp: Vec<&str> = Workload::ALL
            .iter()
            .filter(|w| w.class() == WorkloadClass::FloatingPoint)
            .map(|w| w.name())
            .collect();
        assert_eq!(fp, vec!["art", "lucas", "mesa", "mgrid", "wupwise"]);
        let int_count = Workload::ALL
            .iter()
            .filter(|w| w.class() == WorkloadClass::Integer)
            .count();
        assert_eq!(int_count, 6, "gcc/mcf/vortex/dbt-2/specjbb/diskload");
    }

    #[test]
    fn idle_deploys_nothing() {
        let mut m = Machine::new(MachineConfig::default());
        WorkloadSet::standard(Workload::Idle).deploy(&mut m);
        m.tick();
        assert_eq!(m.os().runnable_count(), 0);
    }

    #[test]
    fn standard_sets_spawn_expected_instance_counts() {
        for &w in Workload::ALL {
            if w == Workload::Idle {
                continue;
            }
            let mut m = Machine::new(MachineConfig::default());
            // Small stagger keeps the test fast; `standard` only scales
            // the same numbers up.
            let set = WorkloadSet::new(w, 2, 50);
            set.deploy(&mut m);
            // Run until all started; sleepy workloads (dbt-2, specjbb)
            // may have every thread blocked at any given instant, so
            // check the peak.
            let mut peak_runnable = 0;
            for _ in 0..=set.fully_ramped_ms() + 200 {
                m.tick();
                peak_runnable = peak_runnable.max(m.os().runnable_count());
            }
            assert!(peak_runnable >= 1, "{w}: something should have run");
        }
    }

    #[test]
    #[should_panic(expected = "idle has no threads")]
    fn idle_make_behavior_panics() {
        let _ = Workload::Idle.make_behavior(0);
    }

    #[test]
    fn every_behavior_reports_its_workload_name() {
        for &w in Workload::ALL {
            if w == Workload::Idle {
                continue;
            }
            let b = w.make_behavior(0);
            // SPEC behaviours use the benchmark name; servers use theirs.
            assert!(!b.name().is_empty());
        }
    }
}
