//! A web-server workload — an *extension* beyond the paper's evaluation
//! set.
//!
//! The paper's dynamic-adaptation motivation is largely web servers
//! (Rajamani & Lefurgy's request-distribution energy policies, Bohrer's
//! "Case for Power Management in Web Servers", §2.3/§2.5), yet its own
//! evaluation could not exercise the network ("dbt-2 … does not require
//! network clients"). With the NIC device in `tdp-simsys`, this
//! behaviour completes the Figure-1 topology: requests arrive and
//! responses leave as coalesced-interrupt DMA traffic, static content
//! mostly hits the page cache, and the occasional miss reads the disk.

use tdp_simsys::{IoDemand, ReuseProfile, ThreadBehavior, TickContext, TickDemand};

/// One web-server worker: accept → serve burst → keep-alive lull.
#[derive(Debug, Clone)]
pub struct WebServerBehavior {
    reuse: ReuseProfile,
    /// Mean requests per second this worker sustains when busy.
    requests_per_s: f64,
    /// Mean response size, bytes.
    response_bytes: u64,
    serving_ticks_left: u32,
}

impl WebServerBehavior {
    /// Creates worker `instance` with the default request mix
    /// (~90 req/s per worker, ~48 KiB mean responses).
    pub fn new(instance: usize) -> Self {
        Self::with_load(instance, 90.0, 48 * 1024)
    }

    /// Creates a worker with an explicit request rate and mean response
    /// size (for load sweeps).
    pub fn with_load(_instance: usize, requests_per_s: f64, response_bytes: u64) -> Self {
        Self {
            // Protocol parsing and handler code: cache-friendly.
            reuse: ReuseProfile::new(&[
                (100.0, 0.80),
                (3_000.0, 0.15),
                (14_000.0, 0.045),
                (f64::INFINITY, 0.0012),
            ]),
            requests_per_s: requests_per_s.max(1.0),
            response_bytes: response_bytes.max(512),
            serving_ticks_left: 0,
        }
    }
}

impl ThreadBehavior for WebServerBehavior {
    fn name(&self) -> &str {
        "webserver"
    }

    fn demand(&mut self, ctx: &mut TickContext<'_>) -> TickDemand {
        if self.serving_ticks_left == 0 {
            self.serving_ticks_left = 1 + ctx.rng.below(2) as u32;
        }
        self.serving_ticks_left -= 1;
        let done_serving = self.serving_ticks_left == 0;

        // Each serving burst handles a handful of requests.
        let requests = ctx.rng.poisson(self.requests_per_s / 100.0).max(1);
        let net = requests * self.response_bytes;

        let io = if done_serving {
            IoDemand {
                net_bytes: net,
                // Static content: rare page-cache misses hit the disk.
                read_bytes: self.response_bytes,
                read_hit_fraction: 0.985,
                blocking_reads: true,
                // Keep-alive lull until the next request batch.
                sleep_ms: 4 + ctx.rng.below(10),
                ..IoDemand::default()
            }
        } else {
            IoDemand {
                net_bytes: net,
                ..IoDemand::default()
            }
        };

        TickDemand {
            target_upc: 1.05 + ctx.rng.normal(0.0, 0.08),
            wrongpath_fraction: 0.11,
            mispredicts_per_kuop: 5.0,
            loads_per_uop: 0.32,
            stores_per_uop: 0.14,
            reuse: self.reuse,
            streaming_fraction: 0.30,
            tlb_misses_per_kuop: 0.25,
            uncacheable_per_kuop: 0.0,
            memory_sensitivity: 0.35,
            pointer_chasing: 0.50,
            io,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_simsys::SimRng;

    fn demand_once(b: &mut WebServerBehavior, t: u64, seed: u64) -> TickDemand {
        let mut rng = SimRng::seed(seed);
        let mut ctx = TickContext {
            now_ms: t,
            smt_share: 1.0,
            mem_throttle: 1.0,
            rng: &mut rng,
        };
        b.demand(&mut ctx)
    }

    #[test]
    fn every_tick_moves_network_bytes() {
        let mut b = WebServerBehavior::new(0);
        for t in 0..50 {
            let d = demand_once(&mut b, t, 1);
            assert!(d.io.net_bytes > 0, "responses flow every serving tick");
        }
    }

    #[test]
    fn bursts_end_with_keepalive_lull() {
        let mut b = WebServerBehavior::new(0);
        let mut lulls = 0;
        let mut disk_reads = 0;
        for t in 0..200 {
            let d = demand_once(&mut b, t, 2);
            if d.io.sleep_ms > 0 {
                lulls += 1;
                assert!(d.io.read_bytes > 0);
                assert!(d.io.read_hit_fraction > 0.9, "mostly cached content");
                disk_reads += 1;
            }
        }
        assert!(lulls > 50, "lulls pace the serving: {lulls}");
        assert_eq!(lulls, disk_reads);
    }

    #[test]
    fn load_parameter_scales_traffic() {
        let mut light = WebServerBehavior::with_load(0, 20.0, 16 * 1024);
        let mut heavy = WebServerBehavior::with_load(0, 400.0, 128 * 1024);
        let mut light_bytes = 0;
        let mut heavy_bytes = 0;
        for t in 0..100 {
            light_bytes += demand_once(&mut light, t, 3).io.net_bytes;
            heavy_bytes += demand_once(&mut heavy, t, 3).io.net_bytes;
        }
        assert!(heavy_bytes > 10 * light_bytes);
    }
}
