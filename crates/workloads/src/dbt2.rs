//! dbt-2: the TPC-C-approximating database workload.
//!
//! The paper runs dbt-2 against PostgreSQL with real disk access and
//! notes that "the limitation of sufficient disk resources is evident in
//! the low microprocessor utilization" (§4.1): CPU power barely rises
//! above idle because transaction threads spend most of their time
//! blocked on synchronous reads or thinking. Memory and I/O are only
//! marginally above idle; the working set fits the buffer pool.

use tdp_simsys::{IoDemand, ReuseProfile, ThreadBehavior, TickContext, TickDemand};

/// One database worker thread: think → compute burst → synchronous I/O,
/// repeat.
#[derive(Debug, Clone)]
pub struct Dbt2Behavior {
    reuse: ReuseProfile,
    burst_ticks_left: u32,
    transactions: u64,
}

impl Dbt2Behavior {
    /// Creates a worker; `_instance` is accepted for interface symmetry
    /// (workers are statistically identical, their RNG streams differ
    /// via the OS-assigned per-process RNG).
    pub fn new(_instance: usize) -> Self {
        Self {
            // B-tree walks: good L1/L2 locality, a buffer-pool-sized tail.
            reuse: ReuseProfile::new(&[
                (100.0, 0.78),
                (3_000.0, 0.16),
                (14_000.0, 0.059),
                (f64::INFINITY, 0.0011),
            ]),
            burst_ticks_left: 0,
            transactions: 0,
        }
    }

    /// Transactions completed so far.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }
}

impl ThreadBehavior for Dbt2Behavior {
    fn name(&self) -> &str {
        "dbt-2"
    }

    fn demand(&mut self, ctx: &mut TickContext<'_>) -> TickDemand {
        if self.burst_ticks_left == 0 {
            // Start a new transaction's compute burst.
            self.burst_ticks_left = 1 + ctx.rng.below(3) as u32;
        }
        self.burst_ticks_left -= 1;
        let last_tick = self.burst_ticks_left == 0;

        let io = if last_tick {
            self.transactions += 1;
            IoDemand {
                // Row fetches: mostly buffer-pool hits, misses block.
                read_bytes: 64 * 1024 + ctx.rng.below(64 * 1024),
                read_hit_fraction: 0.88,
                blocking_reads: true,
                // WAL append.
                write_bytes: 8 * 1024 + ctx.rng.below(8 * 1024),
                sync: false,
                // Client think time if the read hit the cache.
                sleep_ms: 40 + ctx.rng.below(60),
                net_bytes: 0,
            }
        } else {
            IoDemand::default()
        };

        TickDemand {
            target_upc: 0.95 + ctx.rng.normal(0.0, 0.08),
            wrongpath_fraction: 0.12,
            mispredicts_per_kuop: 5.5,
            loads_per_uop: 0.34,
            stores_per_uop: 0.15,
            reuse: self.reuse,
            streaming_fraction: 0.25,
            tlb_misses_per_kuop: 0.30,
            uncacheable_per_kuop: 0.0,
            memory_sensitivity: 0.35,
            pointer_chasing: 0.60,
            io,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_simsys::SimRng;

    #[test]
    fn bursts_end_with_blocking_io_and_think_time() {
        let mut b = Dbt2Behavior::new(0);
        let mut rng = SimRng::seed(1);
        let mut saw_io = false;
        for t in 0..100 {
            let mut ctx = TickContext {
                now_ms: t,
                smt_share: 1.0,
                mem_throttle: 1.0,
                rng: &mut rng,
            };
            let d = b.demand(&mut ctx);
            if d.io.read_bytes > 0 {
                saw_io = true;
                assert!(d.io.blocking_reads);
                assert!(d.io.sleep_ms >= 40);
                assert!(d.io.write_bytes > 0, "WAL write accompanies commit");
            }
        }
        assert!(saw_io);
        assert!(b.transactions() > 5);
    }

    #[test]
    fn compute_phase_is_moderate_ipc() {
        let mut b = Dbt2Behavior::new(0);
        let mut rng = SimRng::seed(2);
        let mut ctx = TickContext {
            now_ms: 0,
            smt_share: 1.0,
            mem_throttle: 1.0,
            rng: &mut rng,
        };
        let d = b.demand(&mut ctx);
        assert!(d.target_upc > 0.6 && d.target_upc < 1.4);
    }
}
