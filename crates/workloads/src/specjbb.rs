//! SPECjbb: server-side Java warehouse workload.
//!
//! The paper uses SPECjbb because it "is able to more fully utilize the
//! processor and memory subsystems without a large number of hard disks"
//! (§3.2.2): sustained 61% of max CPU and 84% of max memory power, no
//! disk traffic, and the largest CPU power variance of any workload
//! (Table 2: 26.2 W σ) thanks to garbage-collection phases.

use tdp_simsys::{IoDemand, ReuseProfile, ThreadBehavior, TickContext, TickDemand};

/// One warehouse thread: transaction processing punctuated by stop-ish
/// GC phases and short allocation stalls.
#[derive(Debug, Clone)]
pub struct SpecJbbBehavior {
    txn_reuse: ReuseProfile,
    gc_reuse: ReuseProfile,
    gc_period_ms: u64,
    gc_duration_ms: u64,
    phase_offset_ms: u64,
    run_ticks: u32,
}

impl SpecJbbBehavior {
    /// Creates warehouse thread number `instance`.
    pub fn new(instance: usize) -> Self {
        Self {
            txn_reuse: ReuseProfile::new(&[
                (100.0, 0.80),
                (3_000.0, 0.14),
                (14_000.0, 0.058),
                (f64::INFINITY, 0.0017),
            ]),
            // GC traverses the whole heap: streaming-heavy.
            gc_reuse: ReuseProfile::new(&[
                (100.0, 0.55),
                (3_000.0, 0.15),
                (14_000.0, 0.28),
                (f64::INFINITY, 0.020),
            ]),
            gc_period_ms: 4_200,
            gc_duration_ms: 350,
            phase_offset_ms: instance as u64 * 1_370,
            run_ticks: 0,
        }
    }

    fn in_gc(&self, now_ms: u64) -> bool {
        (now_ms + self.phase_offset_ms) % self.gc_period_ms < self.gc_duration_ms
    }
}

impl ThreadBehavior for SpecJbbBehavior {
    fn name(&self) -> &str {
        "specjbb"
    }

    fn demand(&mut self, ctx: &mut TickContext<'_>) -> TickDemand {
        if self.in_gc(ctx.now_ms) {
            // Garbage collection: heap sweep, memory-bound.
            return TickDemand {
                target_upc: 0.75 + ctx.rng.normal(0.0, 0.05),
                wrongpath_fraction: 0.06,
                mispredicts_per_kuop: 3.0,
                loads_per_uop: 0.42,
                stores_per_uop: 0.16,
                reuse: self.gc_reuse,
                streaming_fraction: 0.80,
                tlb_misses_per_kuop: 0.50,
                uncacheable_per_kuop: 0.0,
                memory_sensitivity: 0.80,
                pointer_chasing: 0.30,
                io: Default::default(),
            };
        }

        // Transaction processing with occasional short waits (lock
        // contention, allocation pauses) that let cores nap.
        self.run_ticks += 1;
        let io = if self.run_ticks.is_multiple_of(4) {
            IoDemand {
                sleep_ms: 8 + ctx.rng.below(9),
                ..IoDemand::default()
            }
        } else {
            IoDemand::default()
        };
        TickDemand {
            target_upc: 1.35 + ctx.rng.normal(0.0, 0.10),
            wrongpath_fraction: 0.10,
            mispredicts_per_kuop: 4.5,
            loads_per_uop: 0.33,
            stores_per_uop: 0.16,
            reuse: self.txn_reuse,
            streaming_fraction: 0.35,
            tlb_misses_per_kuop: 0.35,
            uncacheable_per_kuop: 0.0,
            memory_sensitivity: 0.40,
            pointer_chasing: 0.50,
            io,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_simsys::SimRng;

    fn demand_at(b: &mut SpecJbbBehavior, now_ms: u64) -> TickDemand {
        let mut rng = SimRng::seed(3);
        let mut ctx = TickContext {
            now_ms,
            smt_share: 1.0,
            mem_throttle: 1.0,
            rng: &mut rng,
        };
        b.demand(&mut ctx)
    }

    #[test]
    fn gc_phases_are_memory_heavy() {
        let mut b = SpecJbbBehavior::new(0);
        let gc = demand_at(&mut b, 100); // inside the first GC window
        let txn = demand_at(&mut b, 2_000);
        assert!(gc.streaming_fraction > txn.streaming_fraction);
        assert!(gc.target_upc < txn.target_upc);
        let gc_tail = gc.reuse.buckets().last().unwrap().1;
        let txn_tail = txn.reuse.buckets().last().unwrap().1;
        assert!(gc_tail > 5.0 * txn_tail);
    }

    #[test]
    fn warehouses_gc_at_different_times() {
        let a = SpecJbbBehavior::new(0);
        let b = SpecJbbBehavior::new(1);
        let overlap = (0..4_200).filter(|&t| a.in_gc(t) && b.in_gc(t)).count();
        assert_eq!(overlap, 0, "offsets decorrelate GC windows");
    }

    #[test]
    fn no_disk_traffic_ever() {
        let mut b = SpecJbbBehavior::new(2);
        for t in 0..2_000 {
            let d = demand_at(&mut b, t);
            assert_eq!(d.io.read_bytes, 0);
            assert_eq!(d.io.write_bytes, 0);
            assert!(!d.io.sync);
        }
    }

    #[test]
    fn allocation_pauses_happen() {
        let mut b = SpecJbbBehavior::new(0);
        let mut pauses = 0;
        for t in 1_000..2_000 {
            if demand_at(&mut b, t).io.sleep_ms > 0 {
                pauses += 1;
            }
        }
        assert!(pauses > 100, "≈1 pause per 4 run ticks: {pauses}");
    }
}
