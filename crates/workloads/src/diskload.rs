//! DiskLoad: the paper's synthetic disk/I/O stressor.
//!
//! "Each instance of this workload creates a very large file (1 GB).
//! Then the contents of the file are overwritten. After about 100K pages
//! have been modified, the sync() operating system call is made to force
//! the modified pages to disk." (§3.2.2)
//!
//! The workload produces the highest sustained memory, I/O and disk
//! power of the evaluation set: the overwrite phase streams stores
//! through the page cache (memory), and the flush phase streams DMA
//! through the I/O chips to the disks.

use tdp_simsys::{IoDemand, ReuseProfile, ThreadBehavior, TickContext, TickDemand};

/// One DiskLoad instance: dirty ~100K unique pages, keep overwriting
/// them (re-dirtying costs memory bandwidth but no new flush work),
/// then `sync()` and repeat.
///
/// The overwrite phase is long relative to the flush so that, across
/// four staggered instances, memory stays near saturation (Table 1's
/// 42.5 W) while the disks run at moderate duty (the paper measures
/// only +0.6 W of disk power and +2.3 W of I/O power over idle).
#[derive(Debug, Clone)]
pub struct DiskLoadBehavior {
    reuse: ReuseProfile,
    pages_dirtied: u64,
    ticks_in_phase: u64,
    pages_per_sync: u64,
    overwrite_ticks: u64,
    write_bytes_per_tick: u64,
    syncs: u64,
}

impl DiskLoadBehavior {
    /// Creates instance `instance` (instances differ only in RNG
    /// stream). Defaults: 100 pages dirtied per tick (≈400 MB/s
    /// memory-speed overwrite), 100 000 unique pages per cycle, ~26 s of
    /// overwriting before each `sync()`.
    pub fn new(_instance: usize) -> Self {
        Self {
            // Overwriting fresh pages: almost pure streaming stores.
            reuse: ReuseProfile::new(&[
                (100.0, 0.62),
                (3_000.0, 0.25),
                (14_000.0, 0.103),
                (f64::INFINITY, 0.0095),
            ]),
            pages_dirtied: 0,
            ticks_in_phase: 0,
            pages_per_sync: 100_000,
            overwrite_ticks: 26_000,
            write_bytes_per_tick: 100 * 4096,
            syncs: 0,
        }
    }

    /// Completed sync() cycles.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }
}

impl ThreadBehavior for DiskLoadBehavior {
    fn name(&self) -> &str {
        "diskload"
    }

    fn demand(&mut self, ctx: &mut TickContext<'_>) -> TickDemand {
        self.ticks_in_phase += 1;
        // Only the first pass over the file creates new dirty pages;
        // subsequent overwrites re-dirty the same pages.
        let fresh_pages = (self.pages_per_sync - self.pages_dirtied.min(self.pages_per_sync))
            .min(self.write_bytes_per_tick / 4096);
        self.pages_dirtied += fresh_pages;

        let sync = self.ticks_in_phase >= self.overwrite_ticks;
        if sync {
            self.ticks_in_phase = 0;
            self.pages_dirtied = 0;
            self.syncs += 1;
        }

        TickDemand {
            // memcpy-style overwrite loop: store-heavy, streaming.
            target_upc: 0.95 + ctx.rng.normal(0.0, 0.05),
            wrongpath_fraction: 0.03,
            mispredicts_per_kuop: 0.8,
            loads_per_uop: 0.18,
            stores_per_uop: 0.34,
            reuse: self.reuse,
            streaming_fraction: 0.92,
            tlb_misses_per_kuop: 0.60,
            uncacheable_per_kuop: 0.0,
            memory_sensitivity: 0.75,
            pointer_chasing: 0.05,
            io: IoDemand {
                write_bytes: fresh_pages * 4096,
                sync,
                ..IoDemand::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_simsys::SimRng;

    #[test]
    fn sync_fires_after_the_overwrite_phase() {
        let mut b = DiskLoadBehavior::new(0);
        let mut rng = SimRng::seed(4);
        let mut sync_ticks = Vec::new();
        let mut dirty_bytes = 0u64;
        for t in 0..60_000u64 {
            let mut ctx = TickContext {
                now_ms: t,
                smt_share: 1.0,
                mem_throttle: 1.0,
                rng: &mut rng,
            };
            let d = b.demand(&mut ctx);
            if sync_ticks.is_empty() {
                dirty_bytes += d.io.write_bytes;
            }
            if d.io.sync {
                sync_ticks.push(t);
            }
        }
        assert_eq!(sync_ticks.len(), 2, "{sync_ticks:?}");
        assert_eq!(sync_ticks[1] - sync_ticks[0], 26_000);
        assert_eq!(b.syncs(), 2);
        // Only the unique pages were dirtied, despite 26 s of writing.
        assert_eq!(dirty_bytes, 100_000 * 4096);
    }

    #[test]
    fn redirty_phase_keeps_stores_flowing_without_new_dirty_pages() {
        let mut b = DiskLoadBehavior::new(0);
        let mut rng = SimRng::seed(5);
        // Burn through the unique-page budget (1000 ticks).
        let mut d = None;
        for t in 0..2_000u64 {
            let mut ctx = TickContext {
                now_ms: t,
                smt_share: 1.0,
                mem_throttle: 1.0,
                rng: &mut rng,
            };
            d = Some(b.demand(&mut ctx));
        }
        let d = d.unwrap();
        assert_eq!(d.io.write_bytes, 0, "no fresh dirty pages");
        assert!(d.stores_per_uop > 0.3, "but the store stream continues");
    }

    #[test]
    fn overwrite_phase_is_store_streaming() {
        let mut b = DiskLoadBehavior::new(0);
        let mut rng = SimRng::seed(5);
        let mut ctx = TickContext {
            now_ms: 0,
            smt_share: 1.0,
            mem_throttle: 1.0,
            rng: &mut rng,
        };
        let d = b.demand(&mut ctx);
        assert!(d.stores_per_uop > d.loads_per_uop);
        assert!(d.streaming_fraction > 0.9);
        assert_eq!(d.io.write_bytes, 409_600);
    }
}
