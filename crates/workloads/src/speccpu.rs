//! SPEC CPU 2000 lookalike behaviours.
//!
//! Each benchmark is characterised along the axes that matter to the
//! trickle-down models: fetch throughput, phase structure, reuse-distance
//! profile (→ cache misses), streaming fraction (→ prefetchability) and
//! memory-boundedness (→ bus-saturation response and window-search
//! power). The parameters are tuned so the simulated Table 1 matches the
//! paper's power characterisation in shape: `mcf` is the pathological
//! memory case, `lucas`/`mgrid`/`wupwise` are bandwidth-heavy FP,
//! `vortex`/`gcc` are cache-friendly integer codes.

use serde::{Deserialize, Serialize};
use tdp_simsys::{ReuseProfile, ThreadBehavior, TickContext, TickDemand};

/// Reuse-distance landmarks (in cache lines) for the four-bucket profile
/// every SPEC lookalike uses: register/L1-resident, L2-resident,
/// L3-resident and memory-resident (streaming) accesses.
const DIST_L1: f64 = 100.0;
const DIST_L2: f64 = 3_000.0;
const DIST_L3: f64 = 14_000.0;

/// Static description of one SPEC CPU 2000 lookalike.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpecParams {
    /// Benchmark name.
    pub name: &'static str,
    /// Mean fetched uops/cycle when unconstrained.
    pub base_upc: f64,
    /// Relative amplitude of the phase oscillation.
    pub upc_amplitude: f64,
    /// Phase period, ms.
    pub phase_period_ms: f64,
    /// Wrong-path fetch fraction.
    pub wrongpath_fraction: f64,
    /// Branch mispredictions per kilo-uop.
    pub mispredicts_per_kuop: f64,
    /// Loads per uop.
    pub loads_per_uop: f64,
    /// Stores per uop.
    pub stores_per_uop: f64,
    /// Reuse weights: (L1-resident, L2-resident, L3-resident,
    /// memory/streaming). Normalised by `ReuseProfile`.
    pub reuse_weights: (f64, f64, f64, f64),
    /// Fraction of L3 misses that are sequential streams.
    pub streaming_fraction: f64,
    /// TLB misses per kilo-uop.
    pub tlb_misses_per_kuop: f64,
    /// Throughput sensitivity to bus saturation (0 = compute-bound,
    /// 1 = memory-bound).
    pub memory_sensitivity: f64,
    /// Stall character: 1.0 = dependent pointer chasing (window churn,
    /// hidden power *cost*), 0.0 = streaming waits (unit gating, hidden
    /// power *saving*).
    pub pointer_chasing: f64,
}

impl SpecParams {
    /// The eight benchmarks the paper evaluates (§3.2.2), in its order:
    /// gcc, mcf, vortex (integer); art, lucas, mesa, mgrid, wupwise (FP).
    pub const ALL: &'static [SpecParams] = &[
        Self::GCC,
        Self::MCF,
        Self::VORTEX,
        Self::ART,
        Self::LUCAS,
        Self::MESA,
        Self::MGRID,
        Self::WUPWISE,
    ];

    /// gcc: compile-unit phases make it the most variable integer code
    /// (Table 2: 8.4 W CPU σ) with moderate memory traffic.
    pub const GCC: SpecParams = SpecParams {
        name: "gcc",
        base_upc: 1.00,
        upc_amplitude: 0.45,
        phase_period_ms: 9_000.0,
        wrongpath_fraction: 0.14,
        mispredicts_per_kuop: 6.0,
        loads_per_uop: 0.30,
        stores_per_uop: 0.14,
        reuse_weights: (0.80, 0.145, 0.053, 0.0018),
        streaming_fraction: 0.30,
        tlb_misses_per_kuop: 0.12,
        memory_sensitivity: 0.35,
        pointer_chasing: 0.35,
    };

    /// mcf: CPI > 10, pointer-chasing over a working set far beyond L3;
    /// the cache-miss memory model's failure case (§4.2.2) and the CPU
    /// model's worst case (§4.3).
    pub const MCF: SpecParams = SpecParams {
        name: "mcf",
        base_upc: 0.30,
        upc_amplitude: 0.12,
        phase_period_ms: 16_000.0,
        wrongpath_fraction: 0.10,
        mispredicts_per_kuop: 9.0,
        loads_per_uop: 0.45,
        stores_per_uop: 0.10,
        reuse_weights: (0.56, 0.26, 0.158, 0.022),
        streaming_fraction: 0.85,
        tlb_misses_per_kuop: 0.80,
        memory_sensitivity: 1.00,
        pointer_chasing: 1.00,
    };

    /// vortex: object-database integer code, high IPC, cache-resident.
    pub const VORTEX: SpecParams = SpecParams {
        name: "vortex",
        base_upc: 1.80,
        upc_amplitude: 0.06,
        phase_period_ms: 12_000.0,
        wrongpath_fraction: 0.09,
        mispredicts_per_kuop: 4.0,
        loads_per_uop: 0.32,
        stores_per_uop: 0.16,
        reuse_weights: (0.82, 0.13, 0.049, 0.0012),
        streaming_fraction: 0.20,
        tlb_misses_per_kuop: 0.08,
        memory_sensitivity: 0.25,
        pointer_chasing: 0.40,
    };

    /// art: neural-net FP code; saturating-ish streaming traffic.
    pub const ART: SpecParams = SpecParams {
        name: "art",
        base_upc: 0.62,
        upc_amplitude: 0.04,
        phase_period_ms: 7_000.0,
        wrongpath_fraction: 0.05,
        mispredicts_per_kuop: 1.5,
        loads_per_uop: 0.36,
        stores_per_uop: 0.10,
        reuse_weights: (0.72, 0.18, 0.096, 0.0040),
        streaming_fraction: 0.75,
        tlb_misses_per_kuop: 0.25,
        memory_sensitivity: 0.80,
        pointer_chasing: 0.10,
    };

    /// lucas: Lucas–Lehmer FFTs; the heaviest sustained memory load in
    /// Table 1 (46.4 W).
    pub const LUCAS: SpecParams = SpecParams {
        name: "lucas",
        base_upc: 0.55,
        upc_amplitude: 0.10,
        phase_period_ms: 11_000.0,
        wrongpath_fraction: 0.04,
        mispredicts_per_kuop: 1.0,
        loads_per_uop: 0.38,
        stores_per_uop: 0.16,
        reuse_weights: (0.62, 0.22, 0.152, 0.0060),
        streaming_fraction: 0.90,
        tlb_misses_per_kuop: 0.30,
        memory_sensitivity: 0.90,
        pointer_chasing: 0.00,
    };

    /// mesa: 3-D rendering FP code; moderate, well-behaved memory
    /// traffic — the paper's training workload for the cache-miss memory
    /// model (Figure 3).
    pub const MESA: SpecParams = SpecParams {
        name: "mesa",
        base_upc: 0.80,
        upc_amplitude: 0.18,
        phase_period_ms: 8_000.0,
        wrongpath_fraction: 0.07,
        mispredicts_per_kuop: 2.5,
        loads_per_uop: 0.30,
        stores_per_uop: 0.13,
        reuse_weights: (0.81, 0.13, 0.058, 0.0014),
        streaming_fraction: 0.45,
        tlb_misses_per_kuop: 0.15,
        memory_sensitivity: 0.40,
        pointer_chasing: 0.20,
    };

    /// mgrid: multigrid solver; bandwidth-heavy FP (45.1 W memory).
    pub const MGRID: SpecParams = SpecParams {
        name: "mgrid",
        base_upc: 0.70,
        upc_amplitude: 0.08,
        phase_period_ms: 10_000.0,
        wrongpath_fraction: 0.03,
        mispredicts_per_kuop: 0.8,
        loads_per_uop: 0.40,
        stores_per_uop: 0.14,
        reuse_weights: (0.64, 0.21, 0.145, 0.0052),
        streaming_fraction: 0.85,
        tlb_misses_per_kuop: 0.22,
        memory_sensitivity: 0.85,
        pointer_chasing: 0.05,
    };

    /// wupwise: quantum chromodynamics FP; high CPU *and* high memory
    /// power (167 W / 45.2 W).
    pub const WUPWISE: SpecParams = SpecParams {
        name: "wupwise",
        base_upc: 1.15,
        upc_amplitude: 0.14,
        phase_period_ms: 9_500.0,
        wrongpath_fraction: 0.05,
        mispredicts_per_kuop: 1.8,
        loads_per_uop: 0.34,
        stores_per_uop: 0.14,
        reuse_weights: (0.70, 0.18, 0.116, 0.0040),
        streaming_fraction: 0.70,
        tlb_misses_per_kuop: 0.20,
        memory_sensitivity: 0.60,
        pointer_chasing: 0.15,
    };

    /// Looks up a benchmark by name.
    pub fn by_name(name: &str) -> Option<&'static SpecParams> {
        Self::ALL.iter().find(|p| p.name == name)
    }
}

/// A running instance of a SPEC lookalike.
#[derive(Debug, Clone)]
pub struct SpecCpuBehavior {
    params: SpecParams,
    reuse: ReuseProfile,
    phase_offset_ms: f64,
    /// Remaining scheduled ticks before the benchmark exits
    /// (`None` = run forever, the trace-capture default).
    remaining_ticks: Option<u64>,
}

impl SpecCpuBehavior {
    /// Creates instance number `instance` of the benchmark; instances
    /// are phase-shifted against each other as independent runs would
    /// be.
    pub fn new(params: SpecParams, instance: usize) -> Self {
        let (w1, w2, w3, wm) = params.reuse_weights;
        let reuse = ReuseProfile::new(&[
            (DIST_L1, w1),
            (DIST_L2, w2),
            (DIST_L3, w3),
            (f64::INFINITY, wm),
        ]);
        Self {
            params,
            reuse,
            phase_offset_ms: instance as f64 * params.phase_period_ms / 3.1,
            remaining_ticks: None,
        }
    }

    /// Limits the run to `ms` scheduled milliseconds, after which the
    /// benchmark exits (real SPEC runs finish; trace captures usually
    /// want the default endless loop instead).
    pub fn with_duration_ms(mut self, ms: u64) -> Self {
        self.remaining_ticks = Some(ms);
        self
    }

    /// The parameters of this instance.
    pub fn params(&self) -> &SpecParams {
        &self.params
    }
}

impl ThreadBehavior for SpecCpuBehavior {
    fn name(&self) -> &str {
        self.params.name
    }

    fn finished(&self) -> bool {
        self.remaining_ticks == Some(0)
    }

    fn demand(&mut self, ctx: &mut TickContext<'_>) -> TickDemand {
        if let Some(t) = &mut self.remaining_ticks {
            *t = t.saturating_sub(1);
        }
        let p = &self.params;
        let t = ctx.now_ms as f64 + self.phase_offset_ms;
        let phase = (std::f64::consts::TAU * t / p.phase_period_ms).sin();
        let wobble = 1.0 + p.upc_amplitude * phase;
        let noise = ctx.rng.normal(0.0, 0.02);
        let upc = (p.base_upc * wobble + noise).max(0.02);
        TickDemand {
            target_upc: upc,
            wrongpath_fraction: p.wrongpath_fraction,
            mispredicts_per_kuop: p.mispredicts_per_kuop,
            loads_per_uop: p.loads_per_uop,
            stores_per_uop: p.stores_per_uop,
            reuse: self.reuse,
            streaming_fraction: p.streaming_fraction,
            tlb_misses_per_kuop: p.tlb_misses_per_kuop,
            uncacheable_per_kuop: 0.0,
            memory_sensitivity: p.memory_sensitivity,
            pointer_chasing: p.pointer_chasing,
            io: Default::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_simsys::SimRng;

    fn demand_at(b: &mut SpecCpuBehavior, now_ms: u64, seed: u64) -> TickDemand {
        let mut rng = SimRng::seed(seed);
        let mut ctx = TickContext {
            now_ms,
            smt_share: 1.0,
            mem_throttle: 1.0,
            rng: &mut rng,
        };
        b.demand(&mut ctx)
    }

    #[test]
    fn all_params_are_sane() {
        for p in SpecParams::ALL {
            assert!(p.base_upc > 0.0 && p.base_upc <= 3.0, "{}", p.name);
            assert!((0.0..=1.0).contains(&p.streaming_fraction));
            assert!((0.0..=1.0).contains(&p.memory_sensitivity));
            let (a, b, c, d) = p.reuse_weights;
            assert!(a > 0.0 && b > 0.0 && c > 0.0 && d > 0.0);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(SpecParams::by_name("mcf").unwrap().name, "mcf");
        assert!(SpecParams::by_name("doom3").is_none());
    }

    #[test]
    fn mcf_is_the_memory_pathology() {
        let mcf = SpecParams::MCF;
        for p in SpecParams::ALL {
            if p.name != "mcf" {
                assert!(mcf.base_upc <= p.base_upc, "mcf has the lowest IPC");
            }
        }
        assert_eq!(mcf.memory_sensitivity, 1.0);
        for p in SpecParams::ALL {
            if p.name != "mcf" {
                assert!(
                    mcf.reuse_weights.3 > 3.0 * p.reuse_weights.3,
                    "mcf's memory-resident tail dwarfs {}'s",
                    p.name
                );
            }
        }
    }

    #[test]
    fn phases_oscillate_throughput() {
        let mut b = SpecCpuBehavior::new(SpecParams::GCC, 0);
        let period = SpecParams::GCC.phase_period_ms as u64;
        let quarter = demand_at(&mut b, period / 4, 1).target_upc;
        let three_q = demand_at(&mut b, 3 * period / 4, 1).target_upc;
        assert!(
            quarter > three_q + 0.5,
            "peak vs trough: {quarter} vs {three_q}"
        );
    }

    #[test]
    fn instances_are_phase_shifted() {
        let mut a = SpecCpuBehavior::new(SpecParams::GCC, 0);
        let mut b = SpecCpuBehavior::new(SpecParams::GCC, 1);
        // Same time, same rng seed — difference comes from phase offset.
        let da = demand_at(&mut a, 2_000, 7).target_upc;
        let db = demand_at(&mut b, 2_000, 7).target_upc;
        assert!((da - db).abs() > 0.05);
    }

    #[test]
    fn duration_limited_instance_finishes() {
        let mut b = SpecCpuBehavior::new(SpecParams::VORTEX, 0).with_duration_ms(3);
        assert!(!b.finished());
        for t in 0..3 {
            let _ = demand_at(&mut b, t, 1);
        }
        assert!(b.finished());
    }

    #[test]
    fn spec_workloads_do_no_file_io() {
        for p in SpecParams::ALL {
            let mut b = SpecCpuBehavior::new(*p, 0);
            let d = demand_at(&mut b, 500, 3);
            assert_eq!(d.io.read_bytes, 0);
            assert_eq!(d.io.write_bytes, 0);
            assert!(!d.io.sync);
        }
    }
}
