//! Behaviour-space characterization tests: each workload's demand must
//! sit on the axes the paper uses it for, *before* any machine dynamics
//! get involved. These are the workload-design contracts that Table 1's
//! shape depends on.

use tdp_simsys::{SimRng, ThreadBehavior, TickContext, TickDemand};
use tdp_workloads::{
    Dbt2Behavior, DiskLoadBehavior, SpecCpuBehavior, SpecJbbBehavior, SpecParams,
    WebServerBehavior, Workload,
};

/// Runs a behaviour for `ticks` and collects its demands.
fn demands(mut b: Box<dyn ThreadBehavior>, ticks: u64, seed: u64) -> Vec<TickDemand> {
    let mut rng = SimRng::seed(seed);
    (0..ticks)
        .map(|t| {
            let mut ctx = TickContext {
                now_ms: t,
                smt_share: 1.0,
                mem_throttle: 1.0,
                rng: &mut rng,
            };
            b.demand(&mut ctx)
        })
        .collect()
}

fn mean_upc(ds: &[TickDemand]) -> f64 {
    ds.iter().map(|d| d.target_upc).sum::<f64>() / ds.len() as f64
}

fn mem_tail(d: &TickDemand) -> f64 {
    d.reuse
        .buckets()
        .iter()
        .filter(|(dist, _)| !dist.is_finite())
        .map(|&(_, w)| w)
        .sum()
}

#[test]
fn spec_throughput_ordering_matches_the_paper() {
    // Table 1 CPU ordering depends on fetch throughput:
    // vortex > wupwise > gcc > … > mcf (lowest, CPI > 10).
    // Long enough to average over the phase oscillations (gcc's period
    // is 9 s with ±45% amplitude).
    let upc_of =
        |p: SpecParams| mean_upc(&demands(Box::new(SpecCpuBehavior::new(p, 0)), 60_000, 1));
    let vortex = upc_of(SpecParams::VORTEX);
    let wupwise = upc_of(SpecParams::WUPWISE);
    let gcc = upc_of(SpecParams::GCC);
    let mcf = upc_of(SpecParams::MCF);
    assert!(vortex > wupwise && wupwise > gcc && gcc > mcf);
    assert!(mcf < 0.4, "mcf's CPI>10 character: upc {mcf}");
}

#[test]
fn memory_tail_ordering_matches_the_paper() {
    // Table 1 memory ordering depends on the memory-resident access
    // fraction: mcf ≫ lucas/mgrid > wupwise > art > gcc > vortex.
    let tail_of = |p: SpecParams| {
        let d = &demands(Box::new(SpecCpuBehavior::new(p, 0)), 10, 2)[0];
        mem_tail(d)
    };
    let mcf = tail_of(SpecParams::MCF);
    let lucas = tail_of(SpecParams::LUCAS);
    let gcc = tail_of(SpecParams::GCC);
    let vortex = tail_of(SpecParams::VORTEX);
    assert!(mcf > 2.0 * lucas);
    assert!(lucas > gcc);
    assert!(gcc > vortex);
}

#[test]
fn stall_character_separates_mcf_from_the_fp_streamers() {
    // mcf chases pointers (window churn); lucas/mgrid stream (quiet
    // stalls) — the mechanism behind Table 3/4's CPU error signs.
    let pc = |p: SpecParams| demands(Box::new(SpecCpuBehavior::new(p, 0)), 5, 3)[0].pointer_chasing;
    assert_eq!(pc(SpecParams::MCF), 1.0);
    assert!(pc(SpecParams::LUCAS) < 0.1);
    assert!(pc(SpecParams::MGRID) < 0.1);
}

#[test]
fn server_workloads_sleep_and_spec_workloads_do_not() {
    let sleeps = |b: Box<dyn ThreadBehavior>| {
        demands(b, 2_000, 4)
            .iter()
            .filter(|d| d.io.sleep_ms > 0)
            .count()
    };
    assert!(sleeps(Box::new(Dbt2Behavior::new(0))) > 100);
    assert!(sleeps(Box::new(SpecJbbBehavior::new(0))) > 100);
    assert!(sleeps(Box::new(WebServerBehavior::new(0))) > 100);
    assert_eq!(
        sleeps(Box::new(SpecCpuBehavior::new(SpecParams::LUCAS, 0))),
        0
    );
}

#[test]
fn only_the_disk_workloads_touch_files() {
    let io_bytes = |b: Box<dyn ThreadBehavior>| {
        demands(b, 3_000, 5)
            .iter()
            .map(|d| d.io.read_bytes + d.io.write_bytes)
            .sum::<u64>()
    };
    assert!(io_bytes(Box::new(DiskLoadBehavior::new(0))) > 100 << 20);
    assert!(io_bytes(Box::new(Dbt2Behavior::new(0))) > 1 << 20);
    assert_eq!(
        io_bytes(Box::new(SpecCpuBehavior::new(SpecParams::ART, 0))),
        0
    );
    assert_eq!(io_bytes(Box::new(SpecJbbBehavior::new(0))), 0);
}

#[test]
fn only_the_webserver_touches_the_network() {
    let net = |b: Box<dyn ThreadBehavior>| {
        demands(b, 500, 6)
            .iter()
            .map(|d| d.io.net_bytes)
            .sum::<u64>()
    };
    assert!(net(Box::new(WebServerBehavior::new(0))) > 1 << 20);
    for &w in Workload::ALL {
        if w == Workload::Idle {
            continue;
        }
        assert_eq!(
            net(w.make_behavior(0)),
            0,
            "{w} is a paper workload: no network"
        );
    }
}

#[test]
fn diskload_is_the_only_syncer() {
    let syncs =
        |b: Box<dyn ThreadBehavior>| demands(b, 30_000, 7).iter().filter(|d| d.io.sync).count();
    assert!(syncs(Box::new(DiskLoadBehavior::new(0))) >= 1);
    assert_eq!(syncs(Box::new(Dbt2Behavior::new(0))), 0);
    assert_eq!(syncs(Box::new(WebServerBehavior::new(0))), 0);
}

#[test]
fn all_demands_are_physically_sane() {
    // Every workload, every tick: rates in range, no NaNs.
    for &w in Workload::ALL {
        if w == Workload::Idle {
            continue;
        }
        for d in demands(w.make_behavior(0), 1_000, 8) {
            assert!(d.target_upc.is_finite() && d.target_upc >= 0.0);
            assert!(d.target_upc <= 3.5, "{w}: upc {}", d.target_upc);
            assert!((0.0..=1.0).contains(&d.streaming_fraction), "{w}");
            assert!((0.0..=1.0).contains(&d.memory_sensitivity), "{w}");
            assert!((0.0..=1.0).contains(&d.pointer_chasing), "{w}");
            assert!(d.loads_per_uop >= 0.0 && d.loads_per_uop < 1.0);
            assert!(d.stores_per_uop >= 0.0 && d.stores_per_uop < 1.0);
        }
    }
}
