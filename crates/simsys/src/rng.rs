//! Deterministic random-number generation for the simulator.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The simulator's random source: a seeded [`SmallRng`] plus the
/// distribution helpers the machine needs (`rand_distr` is outside the
/// approved dependency list, so normal and Poisson sampling are
/// implemented here).
///
/// Every stochastic component derives its own `SimRng` from the machine's
/// master seed via [`derive`](SimRng::derive), so adding a component never
/// perturbs the random streams of existing ones.
///
/// # Example
///
/// ```
/// use tdp_simsys::SimRng;
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.uniform(), b.uniform(), "same seed, same stream");
///
/// let mut c = a.derive("disk0");
/// let mut d = b.derive("disk0");
/// assert_eq!(c.uniform(), d.uniform(), "derived streams are stable too");
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

/// Number of ziggurat strips.
const ZIG_N: usize = 128;
/// Right edge of the base strip (x₁ for N = 128).
const ZIG_R: f64 = 3.442_619_855_899;
/// Common strip area for N = 128.
const ZIG_V: f64 = 9.912_563_035_262_17e-3;
/// `i64` draws map to x via `hz * wn[iz]`, so the tables are scaled by
/// 2⁶³.
const ZIG_M: f64 = 9_223_372_036_854_775_808.0;

struct ZigguratTables {
    /// Acceptance threshold on `|hz|` per strip.
    kn: [u64; ZIG_N],
    /// x-scale per strip (`x_i / 2⁶³`).
    wn: [f64; ZIG_N],
    /// Density at each strip edge, `exp(-x_i²/2)`.
    fx: [f64; ZIG_N],
}

/// Builds the tables once (they are a deterministic function of the
/// algorithm's constants, so laziness cannot perturb any seeded
/// stream).
fn ziggurat_tables() -> &'static ZigguratTables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<ZigguratTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let f = |x: f64| (-0.5 * x * x).exp();
        let mut kn = [0u64; ZIG_N];
        let mut wn = [0.0; ZIG_N];
        let mut fx = [0.0; ZIG_N];
        let mut dn = ZIG_R;
        let mut tn = ZIG_R;
        // Base strip: rectangle plus the tail, total area ZIG_V.
        let q = ZIG_V / f(ZIG_R);
        kn[0] = ((dn / q) * ZIG_M) as u64;
        kn[1] = 0;
        wn[0] = q / ZIG_M;
        wn[ZIG_N - 1] = dn / ZIG_M;
        fx[0] = 1.0;
        fx[ZIG_N - 1] = f(dn);
        for i in (1..=ZIG_N - 2).rev() {
            dn = (-2.0 * (ZIG_V / dn + f(dn)).ln()).sqrt();
            kn[i + 1] = ((dn / tn) * ZIG_M) as u64;
            tn = dn;
            fx[i] = f(dn);
            wn[i] = dn / ZIG_M;
        }
        ZigguratTables { kn, wn, fx }
    })
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        Self {
            inner: SmallRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Derives an independent child generator keyed by `label`. The child
    /// stream depends only on the parent's seed lineage and the label,
    /// not on how much the parent has been used.
    pub fn derive(&self, label: &str) -> SimRng {
        // FNV-1a over the label, mixed with a fresh clone of our state's
        // first output. Cloning (not advancing) keeps `derive` read-only.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut probe = self.inner.clone();
        SimRng::seed(h ^ probe.gen::<u64>())
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        self.inner.gen_range(0..n)
    }

    /// Standard normal via the Marsaglia–Tsang ziggurat (128 strips,
    /// 64-bit). ~98% of draws cost one integer draw, a table lookup and
    /// a multiply — no transcendentals. This is the simulator's hottest
    /// distribution: Poisson event jitter draws normals by the hundred
    /// per tick, so the ziggurat is what keeps `Machine::tick` fast.
    pub fn standard_normal(&mut self) -> f64 {
        let t = ziggurat_tables();
        loop {
            let hz = self.inner.gen::<u64>() as i64;
            let iz = (hz as u64 & 127) as usize;
            if hz.unsigned_abs() < t.kn[iz] {
                return hz as f64 * t.wn[iz];
            }
            if iz == 0 {
                // Tail beyond R: Marsaglia's exponential wedge.
                loop {
                    let x = -(1.0 - self.uniform()).ln() / ZIG_R;
                    let y = -(1.0 - self.uniform()).ln();
                    if y + y >= x * x {
                        let tail = ZIG_R + x;
                        return if hz < 0 { -tail } else { tail };
                    }
                }
            }
            // Wedge between the strip rectangle and the density curve.
            let x = hz as f64 * t.wn[iz];
            if t.fx[iz] + self.uniform() * (t.fx[iz - 1] - t.fx[iz]) < (-0.5 * x * x).exp() {
                return x;
            }
        }
    }

    /// Normal with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Poisson-distributed count with the given mean.
    ///
    /// Uses Knuth's method for small means and a normal approximation
    /// (clamped at zero) for large ones, which is ample for event-count
    /// jitter.
    pub fn poisson(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        if mean > 30.0 {
            return self.normal(mean, mean.sqrt()).round().max(0.0) as u64;
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.uniform();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_label_sensitive() {
        let root = SimRng::seed(7);
        let mut a = root.derive("a");
        let mut b = root.derive("b");
        // Streams for different labels diverge (overwhelmingly likely).
        let same = (0..8).all(|_| a.inner.gen::<u64>() == b.inner.gen::<u64>());
        assert!(!same);
    }

    #[test]
    fn derive_does_not_advance_parent() {
        let mut a = SimRng::seed(9);
        let mut b = SimRng::seed(9);
        let _ = a.derive("child");
        assert_eq!(a.uniform(), b.uniform());
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = SimRng::seed(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn normal_tail_probabilities_match() {
        // Distribution-shape check on the ziggurat: P(|z| > 2) ≈ 4.55%
        // and P(z > 3) ≈ 0.135% (the tail path past R = 3.44 is rare
        // but must not be truncated).
        let mut rng = SimRng::seed(5);
        let n = 200_000;
        let mut beyond2 = 0u32;
        let mut beyond3 = 0u32;
        let mut beyond4 = 0u32;
        for _ in 0..n {
            let z = rng.standard_normal();
            if z.abs() > 2.0 {
                beyond2 += 1;
            }
            if z > 3.0 {
                beyond3 += 1;
            }
            if z.abs() > 4.0 {
                beyond4 += 1;
            }
        }
        let p2 = f64::from(beyond2) / f64::from(n);
        let p3 = f64::from(beyond3) / f64::from(n);
        assert!((p2 - 0.0455).abs() < 0.004, "P(|z|>2) = {p2}");
        assert!((p3 - 0.00135).abs() < 0.0006, "P(z>3) = {p3}");
        assert!(beyond4 > 0, "tail beyond the base strip is reachable");
    }

    #[test]
    fn poisson_moments_small_and_large() {
        let mut rng = SimRng::seed(2);
        for mean in [0.5, 4.0, 100.0] {
            let n = 20_000;
            let total: u64 = (0..n).map(|_| rng.poisson(mean)).sum();
            let observed = total as f64 / n as f64;
            assert!(
                (observed - mean).abs() < mean.max(1.0) * 0.1,
                "mean {mean} observed {observed}"
            );
        }
        assert_eq!(rng.poisson(0.0), 0);
        assert_eq!(rng.poisson(-3.0), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(rng.chance(5.0), "clamped to 1");
    }
}
