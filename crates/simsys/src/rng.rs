//! Deterministic random-number generation for the simulator.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The simulator's random source: a seeded [`SmallRng`] plus the
/// distribution helpers the machine needs (`rand_distr` is outside the
/// approved dependency list, so normal and Poisson sampling are
/// implemented here).
///
/// Every stochastic component derives its own `SimRng` from the machine's
/// master seed via [`derive`](SimRng::derive), so adding a component never
/// perturbs the random streams of existing ones.
///
/// # Example
///
/// ```
/// use tdp_simsys::SimRng;
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.uniform(), b.uniform(), "same seed, same stream");
///
/// let mut c = a.derive("disk0");
/// let mut d = b.derive("disk0");
/// assert_eq!(c.uniform(), d.uniform(), "derived streams are stable too");
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    spare_normal: Option<f64>,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        Self {
            inner: SmallRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            spare_normal: None,
        }
    }

    /// Derives an independent child generator keyed by `label`. The child
    /// stream depends only on the parent's seed lineage and the label,
    /// not on how much the parent has been used.
    pub fn derive(&self, label: &str) -> SimRng {
        // FNV-1a over the label, mixed with a fresh clone of our state's
        // first output. Cloning (not advancing) keeps `derive` read-only.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut probe = self.inner.clone();
        SimRng::seed(h ^ probe.gen::<u64>())
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        self.inner.gen_range(0..n)
    }

    /// Standard normal via Box–Muller (with caching of the spare value).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid ln(0).
        let u1 = loop {
            let u = self.uniform();
            if u > 1e-300 {
                break u;
            }
        };
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Poisson-distributed count with the given mean.
    ///
    /// Uses Knuth's method for small means and a normal approximation
    /// (clamped at zero) for large ones, which is ample for event-count
    /// jitter.
    pub fn poisson(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        if mean > 30.0 {
            return self.normal(mean, mean.sqrt()).round().max(0.0) as u64;
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.uniform();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_label_sensitive() {
        let root = SimRng::seed(7);
        let mut a = root.derive("a");
        let mut b = root.derive("b");
        // Streams for different labels diverge (overwhelmingly likely).
        let same = (0..8).all(|_| a.inner.gen::<u64>() == b.inner.gen::<u64>());
        assert!(!same);
    }

    #[test]
    fn derive_does_not_advance_parent() {
        let mut a = SimRng::seed(9);
        let mut b = SimRng::seed(9);
        let _ = a.derive("child");
        assert_eq!(a.uniform(), b.uniform());
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = SimRng::seed(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn poisson_moments_small_and_large() {
        let mut rng = SimRng::seed(2);
        for mean in [0.5, 4.0, 100.0] {
            let n = 20_000;
            let total: u64 = (0..n).map(|_| rng.poisson(mean)).sum();
            let observed = total as f64 / n as f64;
            assert!(
                (observed - mean).abs() < mean.max(1.0) * 0.1,
                "mean {mean} observed {observed}"
            );
        }
        assert_eq!(rng.poisson(0.0), 0);
        assert_eq!(rng.poisson(-3.0), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(rng.chance(5.0), "clamped to 1");
    }
}
