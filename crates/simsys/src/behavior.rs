//! The interface between workloads and the machine.
//!
//! A workload is a set of threads; each thread is a [`ThreadBehavior`]
//! that, once per tick, states what it *would like* to do this
//! millisecond — a [`TickDemand`] — in terms of the behavioural axes the
//! paper's workloads span: micro-op throughput, cache reuse profile,
//! streaming-ness, TLB pressure, memory-mapped I/O and file I/O. The
//! machine then grinds that demand through SMT contention, cache
//! capacity, prefetching, bus saturation and the OS, producing the
//! events and device activity that actually happen.

use crate::rng::SimRng;

/// Maximum number of `(distance, weight)` buckets a [`ReuseProfile`]
/// can hold. Profiles are stored inline (no heap) so that behaviours
/// can build a fresh [`TickDemand`] every tick without allocating.
pub const MAX_REUSE_BUCKETS: usize = 8;

/// A distribution of reuse distances, in units of cache lines.
///
/// Each entry `(distance, weight)` says: `weight` of this thread's memory
/// accesses re-touch data whose LRU stack distance is `distance` lines.
/// A cache (or cache share) of capacity `C` lines hits the access iff
/// `distance <= C`. This is the classic stack-distance characterisation —
/// compact enough to specify workloads declaratively, faithful enough to
/// drive a multi-level hierarchy.
///
/// The buckets live inline ([`MAX_REUSE_BUCKETS`] at most), making the
/// profile `Copy`: demand construction in the tick hot path never
/// touches the heap.
///
/// # Example
///
/// ```
/// use tdp_simsys::ReuseProfile;
///
/// // 70% of accesses hit within 128 lines, 20% within 8K, 10% stream.
/// let p = ReuseProfile::new(&[(128.0, 0.7), (8192.0, 0.2), (f64::INFINITY, 0.1)]);
/// assert!((p.hit_fraction(256.0) - 0.7).abs() < 1e-12);
/// assert!((p.hit_fraction(10_000.0) - 0.9).abs() < 1e-12);
/// // Streaming accesses never hit, even in an unbounded cache:
/// assert!((p.hit_fraction(f64::INFINITY) - 0.9).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReuseProfile {
    buckets: [(f64, f64); MAX_REUSE_BUCKETS],
    len: u8,
}

impl ReuseProfile {
    /// Creates a profile from `(distance_lines, weight)` pairs; weights
    /// are normalised to sum to 1.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is empty or holds more than
    /// [`MAX_REUSE_BUCKETS`] entries, if any weight is negative, or if
    /// the weight sum is zero.
    pub fn new(buckets: &[(f64, f64)]) -> Self {
        assert!(!buckets.is_empty(), "reuse profile needs buckets");
        assert!(
            buckets.len() <= MAX_REUSE_BUCKETS,
            "reuse profile holds at most {MAX_REUSE_BUCKETS} buckets"
        );
        let total: f64 = buckets.iter().map(|&(_, w)| w).sum();
        assert!(
            total > 0.0 && buckets.iter().all(|&(_, w)| w >= 0.0),
            "weights must be non-negative and not all zero"
        );
        let mut inline = [(0.0, 0.0); MAX_REUSE_BUCKETS];
        for (slot, &(d, w)) in inline.iter_mut().zip(buckets) {
            *slot = (d, w / total);
        }
        inline[..buckets.len()].sort_unstable_by(|a, c| a.0.partial_cmp(&c.0).unwrap());
        Self {
            buckets: inline,
            len: buckets.len() as u8,
        }
    }

    /// A profile that always hits in the smallest cache (distance 1).
    pub fn cache_resident() -> Self {
        Self::new(&[(1.0, 1.0)])
    }

    /// A profile that never hits anywhere (pure streaming).
    pub fn streaming() -> Self {
        Self::new(&[(f64::INFINITY, 1.0)])
    }

    /// Fraction of accesses with reuse distance ≤ `capacity_lines`.
    /// Infinite distances (streaming accesses) never hit, even in an
    /// "infinite" cache.
    pub fn hit_fraction(&self, capacity_lines: f64) -> f64 {
        self.buckets()
            .iter()
            .filter(|&&(d, _)| d.is_finite() && d <= capacity_lines)
            .map(|&(_, w)| w)
            .sum()
    }

    /// The `(distance, weight)` buckets, sorted by distance.
    pub fn buckets(&self) -> &[(f64, f64)] {
        &self.buckets[..self.len as usize]
    }
}

/// File-I/O demand for one tick.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IoDemand {
    /// Bytes the thread reads from files this tick.
    pub read_bytes: u64,
    /// Bytes the thread writes (dirties in the page cache) this tick.
    pub write_bytes: u64,
    /// Probability a read is satisfied by the page cache (workload file
    /// locality; the OS clamps it by actual cache pressure).
    pub read_hit_fraction: f64,
    /// Issue `sync()` this tick: flush all dirty pages and block until
    /// the flush completes (the DiskLoad workload's signature move).
    pub sync: bool,
    /// Whether read misses block the thread until the disk completes
    /// (synchronous I/O, as in the database workload).
    pub blocking_reads: bool,
    /// Voluntarily sleep for this many milliseconds after this tick
    /// (think time). The context is released and the core may `HLT`.
    pub sleep_ms: u64,
    /// Network bytes sent/received this tick (DMA through the I/O
    /// chips; completions arrive as coalesced NIC interrupts).
    pub net_bytes: u64,
}

/// Everything a thread asks of the machine for one tick.
///
/// `Copy`: the whole demand lives on the stack, so producing one per
/// scheduled thread per tick costs no heap allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickDemand {
    /// Micro-ops per cycle the thread would fetch with no contention
    /// (0..=fetch width), *excluding* wrong-path work.
    pub target_upc: f64,
    /// Extra fetched (but never retired) uops as a fraction of useful
    /// ones — wrong-path work from branch mispredictions.
    pub wrongpath_fraction: f64,
    /// Branch mispredictions per 1000 retired uops.
    pub mispredicts_per_kuop: f64,
    /// Memory loads per retired uop.
    pub loads_per_uop: f64,
    /// Memory stores per retired uop.
    pub stores_per_uop: f64,
    /// Reuse-distance profile of those accesses.
    pub reuse: ReuseProfile,
    /// Fraction of last-level misses that belong to sequential streams
    /// (and are therefore prefetchable).
    pub streaming_fraction: f64,
    /// TLB misses per 1000 retired uops.
    pub tlb_misses_per_kuop: f64,
    /// Uncacheable (memory-mapped I/O) accesses per 1000 retired uops.
    pub uncacheable_per_kuop: f64,
    /// How strongly throughput collapses when the memory system
    /// saturates: 0 = compute-bound (ignores bus), 1 = fully
    /// memory-bound.
    pub memory_sensitivity: f64,
    /// Character of memory stalls: 1.0 = dependent pointer chasing that
    /// keeps the out-of-order window *churning* (burning power the
    /// fetch counters cannot see — the `mcf` effect); 0.0 = regular
    /// streaming stalls during which execution units sit *quiet* and
    /// fine-grained clock gating saves power (the `lucas` effect).
    pub pointer_chasing: f64,
    /// File I/O.
    pub io: IoDemand,
}

impl Default for TickDemand {
    fn default() -> Self {
        Self {
            target_upc: 1.0,
            wrongpath_fraction: 0.08,
            mispredicts_per_kuop: 4.0,
            loads_per_uop: 0.30,
            stores_per_uop: 0.12,
            reuse: ReuseProfile::cache_resident(),
            streaming_fraction: 0.1,
            tlb_misses_per_kuop: 0.05,
            uncacheable_per_kuop: 0.0,
            memory_sensitivity: 0.5,
            pointer_chasing: 0.3,
            io: IoDemand::default(),
        }
    }
}

/// Context handed to behaviours each tick.
#[derive(Debug)]
pub struct TickContext<'a> {
    /// Current simulated time, ms.
    pub now_ms: u64,
    /// This thread's share of its core when co-scheduled with another
    /// SMT context (1.0 when alone).
    pub smt_share: f64,
    /// Memory-system feedback: 1.0 = bus uncongested, → 0 as the bus
    /// saturates. Behaviours may ignore it (the machine applies it to
    /// throughput regardless via `memory_sensitivity`).
    pub mem_throttle: f64,
    /// Per-thread deterministic randomness.
    pub rng: &'a mut SimRng,
}

/// A thread's behaviour: the workload side of the machine interface.
///
/// Implementations live in `tdp-workloads`; the simulator only calls
/// [`demand`](ThreadBehavior::demand) once per tick while the thread is
/// scheduled, and [`finished`](ThreadBehavior::finished) to learn when
/// the thread exits.
pub trait ThreadBehavior: Send {
    /// Workload name (for traces and reports).
    fn name(&self) -> &str;

    /// Produces this tick's demand. Called only while the thread is
    /// runnable and scheduled on a context.
    fn demand(&mut self, ctx: &mut TickContext<'_>) -> TickDemand;

    /// Whether the thread has exited. Finished threads are descheduled
    /// permanently. Defaults to `false` (run forever).
    fn finished(&self) -> bool {
        false
    }
}

/// A trivial compute-only behaviour: fetches `upc` uops per cycle out of
/// registers/L1 forever. Useful for tests and examples.
pub fn spin_loop_behavior(upc: f64) -> impl ThreadBehavior {
    SpinLoop { upc }
}

#[derive(Debug)]
struct SpinLoop {
    upc: f64,
}

impl ThreadBehavior for SpinLoop {
    fn name(&self) -> &str {
        "spin-loop"
    }

    fn demand(&mut self, _ctx: &mut TickContext<'_>) -> TickDemand {
        TickDemand {
            target_upc: self.upc,
            loads_per_uop: 0.1,
            stores_per_uop: 0.02,
            memory_sensitivity: 0.0,
            ..TickDemand::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_profile_normalises_weights() {
        let p = ReuseProfile::new(&[(10.0, 2.0), (100.0, 6.0)]);
        assert!((p.hit_fraction(10.0) - 0.25).abs() < 1e-12);
        assert!((p.hit_fraction(100.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hit_fraction_is_monotone_in_capacity() {
        let p = ReuseProfile::new(&[(8.0, 0.5), (64.0, 0.3), (512.0, 0.2)]);
        let mut prev = 0.0;
        for cap in [1.0, 8.0, 63.0, 64.0, 1000.0] {
            let h = p.hit_fraction(cap);
            assert!(h >= prev);
            prev = h;
        }
    }

    #[test]
    fn streaming_profile_never_hits() {
        let p = ReuseProfile::streaming();
        assert_eq!(p.hit_fraction(1e18), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let _ = ReuseProfile::new(&[(1.0, -1.0), (2.0, 2.0)]);
    }

    #[test]
    fn spin_loop_ignores_memory_pressure() {
        let mut rng = SimRng::seed(0);
        let mut b = spin_loop_behavior(2.0);
        let mut ctx = TickContext {
            now_ms: 0,
            smt_share: 1.0,
            mem_throttle: 0.1,
            rng: &mut rng,
        };
        let d = b.demand(&mut ctx);
        assert_eq!(d.target_upc, 2.0);
        assert_eq!(d.memory_sensitivity, 0.0);
        assert!(!b.finished());
    }
}
