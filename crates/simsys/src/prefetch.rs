//! Hardware stream prefetcher.
//!
//! The prefetcher is the mechanism behind the paper's central memory-model
//! result: under sustained streaming (`mcf` at high thread counts) it
//! converts demand L3 misses into prefetch bus transactions, so the
//! *counted* cache-miss rate flattens or falls while memory traffic — and
//! memory power — keeps climbing (Figure 4). Models built on L3 misses
//! (Equation 2) then under-predict, while models built on total bus
//! transactions (Equation 3) stay valid.

use crate::config::PrefetchConfig;
use crate::rng::SimRng;

/// Per-tick prefetcher outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchOutcome {
    /// Demand misses the prefetcher covered (they become prefetch hits
    /// and are *not* counted as L3 misses).
    pub covered_misses: u64,
    /// Prefetch transactions issued on the bus (covered lines plus
    /// wasted/inaccurate fetches).
    pub prefetch_lines: u64,
}

/// A streaming prefetcher for one processor.
///
/// Coverage ramps up as streams persist: the unit tracks an exponential
/// moving average of streaming miss volume and approaches
/// `max_coverage` once the stream is established.
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    cfg: PrefetchConfig,
    stream_ema: f64,
    last_streaming: f64,
    trained_ticks: f64,
}

impl StreamPrefetcher {
    /// Creates a prefetcher.
    pub fn new(cfg: PrefetchConfig) -> Self {
        Self {
            cfg,
            stream_ema: 0.0,
            last_streaming: 0.0,
            trained_ticks: 0.0,
        }
    }

    /// Long-term training level in `[0, 1]`.
    pub fn training(&self) -> f64 {
        (self.trained_ticks / self.cfg.train_ticks.max(1.0)).min(1.0)
    }

    /// Current ramp level in `[0, 1]`: how established the stream is
    /// relative to its own current volume (weak streams additionally
    /// ramp against the configured floor).
    pub fn ramp(&self) -> f64 {
        let denom = self
            .last_streaming
            .max(self.cfg.ramp_misses_per_tick)
            .max(1.0);
        (self.stream_ema / denom).min(1.0)
    }

    /// Advances one tick.
    ///
    /// * `demand_misses` — L3 misses the thread(s) on this CPU would
    ///   take without prefetching;
    /// * `streaming_fraction` — the portion belonging to sequential
    ///   streams (from the workload's [`TickDemand`](crate::TickDemand)).
    pub fn tick(
        &mut self,
        demand_misses: u64,
        streaming_fraction: f64,
        rng: &mut SimRng,
    ) -> PrefetchOutcome {
        let streaming = demand_misses as f64 * streaming_fraction.clamp(0.0, 1.0);
        // EMA with ~10-tick time constant.
        self.stream_ema = 0.9 * self.stream_ema + 0.1 * streaming;
        self.last_streaming = streaming;
        // Long-term training accumulates while streams persist and
        // decays (4x slower) when they stop.
        if streaming > self.cfg.ramp_misses_per_tick * 0.25 {
            self.trained_ticks = (self.trained_ticks + 1.0).min(self.cfg.train_ticks);
        } else {
            self.trained_ticks = (self.trained_ticks - 0.25).max(0.0);
        }
        let coverage = self.cfg.max_coverage * self.ramp() * self.training();
        let covered = rng.poisson(streaming * coverage).min(demand_misses);
        let waste = rng.poisson(covered as f64 * self.cfg.waste_fraction);
        PrefetchOutcome {
            covered_misses: covered,
            prefetch_lines: covered + waste,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrefetchConfig;

    fn prefetcher() -> StreamPrefetcher {
        // Short training so unit tests converge quickly; the default
        // 40 s constant is exercised by the integration tests.
        StreamPrefetcher::new(PrefetchConfig {
            train_ticks: 50.0,
            ..PrefetchConfig::default()
        })
    }

    #[test]
    fn cold_prefetcher_covers_nothing_much() {
        let mut p = prefetcher();
        let mut rng = SimRng::seed(1);
        let out = p.tick(10_000, 1.0, &mut rng);
        // First tick: EMA just started ramping, coverage ≈ 7.5% × 0.5.
        assert!(out.covered_misses < 2_000, "{:?}", out);
    }

    #[test]
    fn sustained_stream_reaches_max_coverage() {
        let mut p = prefetcher();
        let mut rng = SimRng::seed(2);
        let mut last = PrefetchOutcome::default();
        for _ in 0..200 {
            last = p.tick(10_000, 1.0, &mut rng);
        }
        assert!((p.ramp() - 1.0).abs() < 1e-9);
        let coverage = last.covered_misses as f64 / 10_000.0;
        assert!(
            (coverage - 0.75).abs() < 0.05,
            "coverage {coverage} should approach max_coverage"
        );
        assert!(last.prefetch_lines > last.covered_misses, "waste exists");
    }

    #[test]
    fn non_streaming_misses_are_not_covered() {
        let mut p = prefetcher();
        let mut rng = SimRng::seed(3);
        for _ in 0..100 {
            let out = p.tick(10_000, 0.0, &mut rng);
            assert_eq!(out.covered_misses, 0);
            assert_eq!(out.prefetch_lines, 0);
        }
    }

    #[test]
    fn ramp_decays_when_stream_stops() {
        let mut p = prefetcher();
        let mut rng = SimRng::seed(4);
        for _ in 0..100 {
            p.tick(10_000, 1.0, &mut rng);
        }
        let ramped = p.ramp();
        for _ in 0..100 {
            p.tick(0, 1.0, &mut rng);
        }
        assert!(p.ramp() < ramped * 0.01, "ramp must decay");
    }

    #[test]
    fn covered_never_exceeds_demand() {
        let mut p = prefetcher();
        let mut rng = SimRng::seed(5);
        for _ in 0..50 {
            let out = p.tick(100, 1.0, &mut rng);
            assert!(out.covered_misses <= 100);
        }
    }
}
