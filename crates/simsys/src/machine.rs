//! The assembled machine.

use crate::bus::{BusActivity, FrontSideBus};
use crate::config::MachineConfig;
use crate::cpu::{CoreActivity, CpuCore, CpuTickResult};
use crate::disk::{DiskModeFractions, DiskTickResult, ScsiDisk};
use crate::dram::{DramActivity, DramModel};
use crate::intc::{InterruptController, InterruptDeltas};
use crate::iochip::{IoActivity, IoChip};
use crate::nic::NicDevice;
use crate::os::{IoSubmission, Os};
use crate::rng::SimRng;
use tdp_counters::{CounterBank, CpuId, InterruptSource, PerfEvent, SampleSet};

/// Everything the machine did during one tick, at device granularity.
///
/// This is the **ground-truth tap**: only the power meter
/// (`tdp-powermeter`) is supposed to consume it. Power *models* must work
/// from [`SampleSet`]s instead.
#[derive(Debug, Clone, PartialEq)]
pub struct TickActivity {
    /// Simulated time at the end of the tick, ms.
    pub time_ms: u64,
    /// CPU frequency scale in effect this tick (1.0 = nominal). Voltage
    /// follows frequency, so CPU dynamic power scales superlinearly —
    /// see `tdp_powermeter::CpuPowerSpec::dvfs_exponent`.
    pub freq_scale: f64,
    /// Per-CPU core activity.
    pub cores: Vec<CoreActivity>,
    /// Front-side bus activity.
    pub bus: BusActivity,
    /// DRAM state residency.
    pub dram: DramActivity,
    /// I/O chip activity.
    pub io: IoActivity,
    /// Per-disk mode residency.
    pub disks: Vec<DiskModeFractions>,
}

impl TickActivity {
    /// An empty activity suitable as the reusable buffer for
    /// [`Machine::tick_into`].
    pub fn empty() -> Self {
        Self {
            time_ms: 0,
            freq_scale: 1.0,
            cores: Vec::new(),
            bus: BusActivity::default(),
            dram: DramActivity::default(),
            io: IoActivity::default(),
            disks: Vec::new(),
        }
    }
}

/// Reusable per-tick working buffers. Every vector grows once to its
/// steady-state size and is cleared (not freed) between ticks, making
/// [`Machine::tick_into`] allocation-free after warm-up.
#[derive(Debug, Default)]
struct TickScratch {
    results: Vec<CpuTickResult>,
    extra_uncacheable: Vec<u64>,
    assignments: Vec<Vec<usize>>,
    demands: Vec<crate::behavior::TickDemand>,
    sub: IoSubmission,
    disk_tick: DiskTickResult,
    completed: Vec<crate::disk::CommandId>,
    irq: InterruptDeltas,
}

/// The simulated server.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    now_ms: u64,
    cores: Vec<CpuCore>,
    banks: Vec<CounterBank>,
    bus: FrontSideBus,
    dram: DramModel,
    iochip: IoChip,
    nic: NicDevice,
    disks: Vec<ScsiDisk>,
    intc: InterruptController,
    os: Os,
    sampler_rng: SimRng,
    sample_seq: u64,
    last_sample_ms: u64,
    dma_rr: usize,
    freq_scale: f64,
    scratch: TickScratch,
}

impl Machine {
    /// Builds a machine from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use
    /// [`try_new`](Machine::try_new) to handle that as an error.
    pub fn new(cfg: MachineConfig) -> Self {
        Self::try_new(cfg).expect("invalid machine configuration")
    }

    /// Builds a machine, returning a [`crate::config::ConfigError`] if
    /// the configuration is inconsistent.
    ///
    /// # Errors
    ///
    /// Any violation reported by [`MachineConfig::validate`].
    pub fn try_new(cfg: MachineConfig) -> Result<Self, crate::config::ConfigError> {
        cfg.validate()?;
        let root = SimRng::seed(cfg.seed);
        let cores = (0..cfg.cpu.num_cpus)
            .map(|i| {
                CpuCore::new(
                    cfg.cpu,
                    cfg.cache,
                    cfg.prefetch,
                    root.derive(&format!("core-{i}")),
                )
            })
            .collect();
        let mut banks: Vec<CounterBank> = (0..cfg.cpu.num_cpus)
            .map(|i| CounterBank::new(CpuId::new(i as u8)))
            .collect();
        for b in &mut banks {
            b.program_all_for_exploration();
        }
        let disks = (0..cfg.disk.num_disks)
            .map(|i| ScsiDisk::new(cfg.disk, root.derive(&format!("disk-{i}"))))
            .collect();
        let os = Os::new(
            cfg.os,
            cfg.disk.num_disks,
            cfg.io.config_accesses_per_command,
            cfg.disk.max_command_bytes,
            root.derive("os"),
        );
        Ok(Self {
            cores,
            banks,
            bus: FrontSideBus::new(cfg.bus),
            dram: DramModel::new(cfg.dram),
            iochip: IoChip::new(cfg.io, cfg.cache.line_bytes),
            nic: NicDevice::new(cfg.nic),
            disks,
            intc: InterruptController::new(cfg.cpu.num_cpus),
            os,
            sampler_rng: root.derive("sampler"),
            now_ms: 0,
            sample_seq: 0,
            last_sample_ms: 0,
            dma_rr: 0,
            freq_scale: 1.0,
            scratch: TickScratch::default(),
            cfg,
        })
    }

    /// The configuration the machine was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current simulated time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Mutable access to the OS (spawn threads, inspect state).
    pub fn os_mut(&mut self) -> &mut Os {
        &mut self.os
    }

    /// Sets the global DVFS operating point: core clocks run at
    /// `scale × nominal` (clamped to 0.25–1.0) from the next tick on.
    /// Memory, bus, I/O and disks keep their own clocks, as on real
    /// hardware.
    pub fn set_frequency_scale(&mut self, scale: f64) {
        self.freq_scale = scale.clamp(0.25, 1.0);
    }

    /// The current DVFS scale.
    pub fn frequency_scale(&self) -> f64 {
        self.freq_scale
    }

    /// Read-only OS access.
    pub fn os(&self) -> &Os {
        &self.os
    }

    /// Renders the cumulative `/proc/interrupts` table.
    pub fn proc_interrupts(&self) -> String {
        self.intc.accounting().render_proc_interrupts()
    }

    /// Takes the per-window scheduler accounting — read it at the same
    /// cadence as [`read_counters`](Machine::read_counters) to pair
    /// process activity with counter windows for per-process power
    /// attribution (§4.2.1).
    pub fn take_sched_delta(&mut self) -> crate::os::SchedDelta {
        self.os.take_sched_delta()
    }

    /// Deterministic sampling jitter in `[-max, max]` milliseconds, for
    /// feeding [`tdp_counters::SamplingDriver::set_next_jitter`].
    pub fn sample_jitter_ms(&mut self, max: i64) -> i64 {
        if max <= 0 {
            return 0;
        }
        self.sampler_rng.below(2 * max as u64 + 1) as i64 - max
    }

    /// Advances the machine by one millisecond and returns the tick's
    /// device activity.
    ///
    /// Allocates a fresh [`TickActivity`] per call; tight loops should
    /// hold a buffer and use [`tick_into`](Machine::tick_into) instead.
    pub fn tick(&mut self) -> TickActivity {
        let mut out = TickActivity::empty();
        self.tick_into(&mut out);
        out
    }

    /// Advances the machine by one millisecond, writing the tick's device
    /// activity into a caller-owned buffer.
    ///
    /// This is the allocation-free hot path: `out`'s vectors and every
    /// internal working buffer are reused across calls, so a steady-state
    /// tick performs no heap allocation. The result is identical to
    /// [`tick`](Machine::tick).
    pub fn tick_into(&mut self, out: &mut TickActivity) {
        self.now_ms += 1;
        let num_cpus = self.cfg.cpu.num_cpus;

        // 1. Periodic timer.
        let ticks_per_timer = (1000 / self.cfg.os.timer_hz).max(1);
        let timer_fired = self.now_ms.is_multiple_of(ticks_per_timer);
        if timer_fired {
            self.intc.deliver_timer_all();
        }
        let timer_count = u64::from(timer_fired);

        // 2. Schedule and execute CPUs.
        self.os.assignments_into(
            self.now_ms,
            num_cpus,
            self.cfg.cpu.smt_per_cpu,
            &mut self.scratch.assignments,
        );
        let throttle = self.bus.throttle();
        let cycles_this_tick = (self.cfg.cpu.cycles_per_tick() as f64 * self.freq_scale)
            .round()
            .max(1.0) as u64;
        self.scratch
            .results
            .resize_with(num_cpus, CpuTickResult::default);
        self.scratch.extra_uncacheable.clear();
        self.scratch.extra_uncacheable.resize(num_cpus, 0);
        let mut commands_started = 0u64;
        let mut config_accesses_total = 0u64;
        let mut net_bytes = 0u64;

        for cpu in 0..num_cpus {
            let procs: &[usize] = &self.scratch.assignments[cpu];
            let share = 1.0 / procs.len().max(1) as f64;
            self.scratch.demands.clear();
            for &p in procs {
                let d = self.os.demand_of(p, self.now_ms, share, throttle);
                self.scratch.demands.push(d);
            }
            self.cores[cpu].run_tick_into(
                &self.scratch.demands,
                throttle,
                timer_count,
                cycles_this_tick,
                &mut self.scratch.results[cpu],
            );

            // Scheduler accounting for per-process power attribution.
            for (&p, &retired) in procs
                .iter()
                .zip(&self.scratch.results[cpu].per_thread_retired)
            {
                self.os.record_execution(p, cpu, retired);
            }

            // 3. File I/O: page cache, command submission, blocking.
            for (&p, demand) in procs.iter().zip(&self.scratch.demands) {
                let io = &demand.io;
                net_bytes += io.net_bytes;
                if io.read_bytes == 0 && io.write_bytes == 0 && !io.sync && io.sleep_ms == 0 {
                    continue;
                }
                self.os
                    .submit_io_into(p, io, self.now_ms, &mut self.scratch.sub);
                commands_started += self.scratch.sub.commands.len() as u64;
                config_accesses_total += self.scratch.sub.config_accesses;
                self.scratch.extra_uncacheable[cpu] += self.scratch.sub.config_accesses;
                for &(disk, cmd) in &self.scratch.sub.commands {
                    self.disks[disk].submit(cmd);
                }
            }
        }

        // 4. Background write-back (kernel flusher, charged to CPU 0).
        self.os.background_writeback_into(&mut self.scratch.sub);
        let wb = &self.scratch.sub;
        if !wb.commands.is_empty() {
            commands_started += wb.commands.len() as u64;
            config_accesses_total += wb.config_accesses;
            self.scratch.extra_uncacheable[0] += wb.config_accesses;
            for &(disk, cmd) in &wb.commands {
                self.disks[disk].submit(cmd);
            }
        }

        // 5. Disks: advance, stream DMA, complete commands.
        let mut dma_read_bytes = 0u64;
        let mut dma_write_bytes = 0u64;
        out.disks.clear();
        self.scratch.completed.clear();
        for (idx, disk) in self.disks.iter_mut().enumerate() {
            let r = &mut self.scratch.disk_tick;
            disk.tick_into(r);
            dma_read_bytes += r.dma_read_bytes;
            dma_write_bytes += r.dma_write_bytes;
            out.disks.push(r.modes);
            for c in &r.completions {
                self.intc.deliver(InterruptSource::Disk(idx as u8));
                self.scratch.completed.push(c.id);
            }
        }
        self.os.on_completions(&self.scratch.completed);

        // 5b. Network: packets DMA through the same I/O path; completions
        // are coalesced interrupts.
        let nic_result = self.nic.tick(net_bytes);
        for _ in 0..nic_result.interrupts {
            self.intc.deliver(InterruptSource::Nic);
        }

        // 6. I/O chips turn device bytes into DMA bus transactions.
        let io_activity = self.iochip.tick(
            dma_read_bytes + dma_write_bytes + nic_result.dma_bytes,
            commands_started + nic_result.commands,
            config_accesses_total,
        );

        // 7. Bus arbitration and DRAM.
        let results = &self.scratch.results;
        let extra_uncacheable = &self.scratch.extra_uncacheable;
        let cpu_lines: u64 = results
            .iter()
            .zip(extra_uncacheable)
            .map(|(r, &x)| r.traffic.total_lines() + x)
            .sum();
        let bus_activity = self.bus.arbitrate(cpu_lines, io_activity.dma_lines);

        // Split DRAM accesses into reads and writes. Disk reads DMA
        // *into* memory (DRAM writes); disk writes DMA *out of* memory
        // (DRAM reads).
        // NIC traffic is roughly symmetric; treat it as memory-writes
        // (receive-dominated) alongside disk reads.
        let dma_bytes_total = (dma_read_bytes + dma_write_bytes + nic_result.dma_bytes).max(1);
        let dma_to_mem = io_activity.dma_lines as f64
            * (dma_read_bytes + nic_result.dma_bytes) as f64
            / dma_bytes_total as f64;
        let dma_from_mem = io_activity.dma_lines as f64 - dma_to_mem;
        let cpu_reads: u64 = results
            .iter()
            .map(|r| {
                r.traffic.demand_fill_lines + r.traffic.prefetch_lines + r.traffic.pagewalk_lines
            })
            .sum();
        let cpu_writes: u64 = results.iter().map(|r| r.traffic.writeback_lines).sum();
        let offered = bus_activity.offered_lines().max(1) as f64;
        let scale = (bus_activity.serviced_lines as f64 / offered).min(1.0);
        let dram_reads = ((cpu_reads as f64 + dma_from_mem) * scale).round() as u64;
        let dram_writes = ((cpu_writes as f64 + dma_to_mem) * scale).round() as u64;
        let dram_activity = self.dram.tick(dram_reads, dram_writes);

        // 8. Retire counter deltas into the banks.
        self.intc.take_tick_deltas_into(&mut self.scratch.irq);
        let irq = &self.scratch.irq;
        for cpu in 0..num_cpus {
            let bank = &mut self.banks[cpu];
            let r = &results[cpu];
            let c = &r.counters;
            bank.add(PerfEvent::Cycles, cycles_this_tick);
            bank.add(PerfEvent::HaltedCycles, r.activity.halted_cycles);
            bank.add(PerfEvent::FetchedUops, c.fetched_uops);
            bank.add(PerfEvent::RetiredUops, c.retired_uops);
            bank.add(PerfEvent::L2Misses, c.l2_misses);
            bank.add(PerfEvent::L3LoadMisses, c.l3_load_misses);
            bank.add(PerfEvent::L3TotalMisses, c.l3_total_misses);
            bank.add(PerfEvent::TlbMisses, c.tlb_misses);
            bank.add(PerfEvent::BranchMispredictions, c.mispredicts);
            let unc = c.uncacheable + extra_uncacheable[cpu];
            bank.add(PerfEvent::UncacheableAccesses, unc);
            let self_lines = r.traffic.total_lines() + extra_uncacheable[cpu];
            bank.add(PerfEvent::BusTransactionsSelf, self_lines);
            bank.add(PerfEvent::BusTransactionsAll, self_lines);
            bank.add(PerfEvent::PrefetchBusTransactions, r.traffic.prefetch_lines);
            let (total, disk, timer, nic) = irq.per_cpu[cpu];
            bank.add(PerfEvent::InterruptsTotal, total);
            bank.add(PerfEvent::DiskInterrupts, disk);
            bank.add(PerfEvent::TimerInterrupts, timer);
            bank.add(PerfEvent::NicInterrupts, nic);
        }
        // DMA transactions are global bus events; attribute them to banks
        // round-robin so system-wide sums stay exact (the P4 would show
        // the same count on every CPU — see PerfEvent::DmaOtherBusTransactions).
        let base = io_activity.dma_lines / num_cpus as u64;
        let remainder = (io_activity.dma_lines % num_cpus as u64) as usize;
        for k in 0..num_cpus {
            let extra = u64::from((self.dma_rr + k) % num_cpus < remainder);
            let share = base + extra;
            self.banks[k].add(PerfEvent::DmaOtherBusTransactions, share);
            self.banks[k].add(PerfEvent::BusTransactionsAll, share);
        }
        self.dma_rr = (self.dma_rr + 1) % num_cpus;

        out.time_ms = self.now_ms;
        out.freq_scale = self.freq_scale;
        out.cores.clear();
        out.cores
            .extend(self.scratch.results.iter().map(|r| r.activity));
        out.bus = bus_activity;
        out.dram = dram_activity;
        out.io = io_activity;
    }

    /// Reads and clears every CPU's counters plus the OS interrupt
    /// accounting, producing one synchronized [`SampleSet`].
    pub fn read_counters(&mut self) -> SampleSet {
        let mut out = SampleSet::empty();
        self.read_counters_into(&mut out);
        out
    }

    /// Like [`read_counters`](Machine::read_counters) but refilling a
    /// caller-owned set in place — the allocation-free sampling path for
    /// callers that do not archive the raw samples. Start from
    /// [`SampleSet::empty`].
    pub fn read_counters_into(&mut self, out: &mut SampleSet) {
        let seq = self.sample_seq;
        self.sample_seq += 1;
        out.per_cpu.resize_with(self.banks.len(), || {
            tdp_counters::CounterSample::new(CpuId::new(0), 0, Vec::new())
        });
        out.per_cpu.truncate(self.banks.len());
        for (b, s) in self.banks.iter_mut().zip(out.per_cpu.iter_mut()) {
            b.read_and_clear_into(seq, s);
        }
        self.intc
            .accounting_mut()
            .snapshot_delta_into(&mut out.interrupts);
        out.time_ms = self.now_ms;
        out.window_ms = self.now_ms - self.last_sample_ms;
        out.seq = seq;
        self.last_sample_ms = self.now_ms;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{
        spin_loop_behavior, IoDemand, ReuseProfile, ThreadBehavior, TickContext, TickDemand,
    };

    fn machine() -> Machine {
        Machine::new(MachineConfig::default())
    }

    fn run(machine: &mut Machine, ms: u64) {
        for _ in 0..ms {
            machine.tick();
        }
    }

    struct DiskHog;
    impl ThreadBehavior for DiskHog {
        fn name(&self) -> &str {
            "disk-hog"
        }
        fn demand(&mut self, ctx: &mut TickContext<'_>) -> TickDemand {
            TickDemand {
                target_upc: 0.5,
                io: IoDemand {
                    write_bytes: 400 * 4096,
                    sync: ctx.now_ms.is_multiple_of(500),
                    ..IoDemand::default()
                },
                ..TickDemand::default()
            }
        }
    }

    #[test]
    fn idle_machine_is_mostly_halted_with_timer_interrupts() {
        let mut m = machine();
        run(&mut m, 1000);
        let s = m.read_counters();
        let cycles = s.total(PerfEvent::Cycles).unwrap();
        let halted = s.total(PerfEvent::HaltedCycles).unwrap();
        assert_eq!(cycles, 4 * 2_000_000 * 1000);
        assert!(halted as f64 > 0.98 * cycles as f64);
        let timer = s.total(PerfEvent::TimerInterrupts).unwrap();
        assert_eq!(timer, 4 * 1000, "1 kHz per CPU");
        assert_eq!(s.total(PerfEvent::DiskInterrupts).unwrap(), 0);
    }

    #[test]
    fn machine_is_deterministic() {
        let trace = |seed: u64| {
            let cfg = MachineConfig {
                seed,
                ..MachineConfig::default()
            };
            let mut m = Machine::new(cfg);
            m.os_mut().spawn(Box::new(spin_loop_behavior(1.2)), 0);
            m.os_mut().spawn(Box::new(DiskHog), 100);
            let mut acc = Vec::new();
            for _ in 0..2 {
                run(&mut m, 1000);
                acc.push(m.read_counters());
            }
            acc
        };
        assert_eq!(trace(42), trace(42), "same seed ⇒ identical counters");
        assert_ne!(trace(42), trace(43), "different seed ⇒ different noise");
    }

    #[test]
    fn busy_thread_generates_uops_on_one_cpu() {
        let mut m = machine();
        m.os_mut().spawn(Box::new(spin_loop_behavior(2.0)), 0);
        run(&mut m, 1000);
        let s = m.read_counters();
        // Exactly one CPU should be mostly unhalted.
        let busy_cpus = s
            .per_cpu
            .iter()
            .filter(|c| {
                let halted = c.count(PerfEvent::HaltedCycles).unwrap();
                let cycles = c.count(PerfEvent::Cycles).unwrap();
                (halted as f64) < 0.5 * cycles as f64
            })
            .count();
        assert_eq!(busy_cpus, 1);
        let upc = s.total(PerfEvent::FetchedUops).unwrap() as f64 / 2_000_000_000.0;
        assert!(upc > 1.9 && upc < 2.3, "upc {upc}");
    }

    #[test]
    fn disk_workload_trickles_down_to_interrupts_dma_and_uncacheable() {
        let mut m = machine();
        m.os_mut().spawn(Box::new(DiskHog), 0);
        run(&mut m, 3000);
        let s = m.read_counters();
        assert!(s.total(PerfEvent::DiskInterrupts).unwrap() > 0);
        assert!(s.total(PerfEvent::DmaOtherBusTransactions).unwrap() > 0);
        assert!(s.total(PerfEvent::UncacheableAccesses).unwrap() > 0);
        assert!(s.interrupts.total_disk() > 0);
        // DMA shows up in the all-transactions metric too.
        let all = s.total(PerfEvent::BusTransactionsAll).unwrap();
        let own = s.total(PerfEvent::BusTransactionsSelf).unwrap();
        assert!(all > own);
    }

    #[test]
    fn memory_bound_threads_saturate_the_bus() {
        let mut m = machine();
        for _ in 0..8 {
            let hog = StreamHog;
            m.os_mut().spawn(Box::new(hog), 0);
        }
        let mut peak_util: f64 = 0.0;
        for _ in 0..2000 {
            let t = m.tick();
            peak_util = peak_util.max(t.bus.utilization);
        }
        assert!(
            peak_util > 0.9,
            "bus should approach saturation: {peak_util}"
        );
    }

    struct StreamHog;
    impl ThreadBehavior for StreamHog {
        fn name(&self) -> &str {
            "stream-hog"
        }
        fn demand(&mut self, _ctx: &mut TickContext<'_>) -> TickDemand {
            TickDemand {
                target_upc: 1.0,
                loads_per_uop: 0.4,
                stores_per_uop: 0.1,
                reuse: ReuseProfile::streaming(),
                streaming_fraction: 0.9,
                memory_sensitivity: 1.0,
                ..TickDemand::default()
            }
        }
    }

    #[test]
    fn sample_window_accounts_time() {
        let mut m = machine();
        run(&mut m, 1000);
        let s1 = m.read_counters();
        assert_eq!(s1.window_ms, 1000);
        assert_eq!(s1.seq, 0);
        run(&mut m, 997);
        let s2 = m.read_counters();
        assert_eq!(s2.window_ms, 997);
        assert_eq!(s2.seq, 1);
    }

    #[test]
    fn proc_interrupts_renders_after_activity() {
        let mut m = machine();
        m.os_mut().spawn(Box::new(DiskHog), 0);
        run(&mut m, 1500);
        let table = m.proc_interrupts();
        assert!(table.contains("timer"));
        assert!(table.contains("scsi"));
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = MachineConfig::default();
        cfg.cpu.num_cpus = 0;
        assert!(Machine::try_new(cfg).is_err());
    }

    #[test]
    fn dvfs_scales_cycles_and_throughput() {
        let run = |scale: f64| {
            let mut m = machine();
            m.os_mut().spawn(Box::new(spin_loop_behavior(2.0)), 0);
            m.set_frequency_scale(scale);
            assert_eq!(m.frequency_scale(), scale);
            run(&mut m, 1000);
            let s = m.read_counters();
            (
                s.total(PerfEvent::Cycles).unwrap(),
                s.total(PerfEvent::FetchedUops).unwrap(),
            )
        };
        let (cycles_full, uops_full) = run(1.0);
        let (cycles_half, uops_half) = run(0.5);
        assert_eq!(cycles_half * 2, cycles_full, "clock halves");
        let ratio = uops_half as f64 / uops_full as f64;
        assert!(
            (ratio - 0.5).abs() < 0.02,
            "throughput follows the clock: {ratio}"
        );
    }

    #[test]
    fn dvfs_scale_is_clamped() {
        let mut m = machine();
        m.set_frequency_scale(7.0);
        assert_eq!(m.frequency_scale(), 1.0);
        m.set_frequency_scale(0.0);
        assert_eq!(m.frequency_scale(), 0.25);
    }

    #[test]
    fn jitter_is_bounded() {
        let mut m = machine();
        for _ in 0..100 {
            let j = m.sample_jitter_ms(3);
            assert!((-3..=3).contains(&j));
        }
        assert_eq!(m.sample_jitter_ms(0), 0);
    }
}
