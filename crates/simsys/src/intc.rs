//! Interrupt controller: vectored delivery and per-CPU accounting.

use tdp_counters::{InterruptAccounting, InterruptSource};

/// Per-tick, per-CPU interrupt deltas (for PMU-side counter updates).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InterruptDeltas {
    /// `[cpu] -> (total, disk, timer, nic)` this tick.
    pub per_cpu: Vec<(u64, u64, u64, u64)>,
}

/// The platform interrupt controller.
///
/// Device interrupts are distributed round-robin over CPUs (the era's
/// default APIC behaviour); timer interrupts go to every CPU at
/// `timer_hz`. All deliveries are recorded in the OS-visible
/// [`InterruptAccounting`] — the `/proc/interrupts` the paper reads
/// interrupt sources from.
#[derive(Debug)]
pub struct InterruptController {
    accounting: InterruptAccounting,
    num_cpus: usize,
    rr_next: usize,
    tick_deltas: InterruptDeltas,
}

impl InterruptController {
    /// Creates a controller for `num_cpus` CPUs.
    pub fn new(num_cpus: usize) -> Self {
        Self {
            accounting: InterruptAccounting::new(num_cpus),
            num_cpus,
            rr_next: 0,
            tick_deltas: InterruptDeltas {
                per_cpu: vec![(0, 0, 0, 0); num_cpus],
            },
        }
    }

    /// Delivers a device interrupt; returns the CPU chosen.
    pub fn deliver(&mut self, source: InterruptSource) -> u8 {
        let cpu = (self.rr_next % self.num_cpus) as u8;
        self.rr_next = self.rr_next.wrapping_add(1);
        self.record(cpu, source);
        cpu
    }

    /// Delivers the periodic timer to every CPU (call once per timer
    /// period).
    pub fn deliver_timer_all(&mut self) {
        for cpu in 0..self.num_cpus as u8 {
            self.record(cpu, InterruptSource::Timer);
        }
    }

    fn record(&mut self, cpu: u8, source: InterruptSource) {
        self.accounting.record(cpu, source);
        let d = &mut self.tick_deltas.per_cpu[cpu as usize];
        d.0 += 1;
        match source {
            InterruptSource::Disk(_) => d.1 += 1,
            InterruptSource::Timer => d.2 += 1,
            InterruptSource::Nic => d.3 += 1,
            InterruptSource::Other => {}
        }
    }

    /// Takes this tick's per-CPU deltas (and resets them).
    pub fn take_tick_deltas(&mut self) -> InterruptDeltas {
        let mut out = InterruptDeltas::default();
        self.take_tick_deltas_into(&mut out);
        out
    }

    /// Like [`take_tick_deltas`](Self::take_tick_deltas) but copying into
    /// a caller-owned buffer — the allocation-free hot path. `out` is
    /// resized to the CPU count; the internal deltas are zeroed.
    pub fn take_tick_deltas_into(&mut self, out: &mut InterruptDeltas) {
        out.per_cpu.clear();
        out.per_cpu.extend_from_slice(&self.tick_deltas.per_cpu);
        for d in &mut self.tick_deltas.per_cpu {
            *d = (0, 0, 0, 0);
        }
    }

    /// The OS accounting (for `/proc/interrupts` snapshots).
    pub fn accounting_mut(&mut self) -> &mut InterruptAccounting {
        &mut self.accounting
    }

    /// Read-only accounting access.
    pub fn accounting(&self) -> &InterruptAccounting {
        &self.accounting
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_interrupts_round_robin() {
        let mut intc = InterruptController::new(4);
        let cpus: Vec<u8> = (0..8)
            .map(|_| intc.deliver(InterruptSource::Disk(0)))
            .collect();
        assert_eq!(cpus, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn timer_hits_every_cpu() {
        let mut intc = InterruptController::new(3);
        intc.deliver_timer_all();
        let d = intc.take_tick_deltas();
        for (total, disk, timer, nic) in d.per_cpu {
            assert_eq!((total, disk, timer, nic), (1, 0, 1, 0));
        }
    }

    #[test]
    fn tick_deltas_reset_after_take() {
        let mut intc = InterruptController::new(2);
        intc.deliver(InterruptSource::Nic);
        let first = intc.take_tick_deltas();
        assert_eq!(first.per_cpu[0].3, 1);
        let second = intc.take_tick_deltas();
        assert_eq!(second.per_cpu[0], (0, 0, 0, 0));
    }

    #[test]
    fn accounting_accumulates_across_ticks() {
        let mut intc = InterruptController::new(1);
        intc.deliver(InterruptSource::Disk(1));
        let _ = intc.take_tick_deltas();
        intc.deliver(InterruptSource::Disk(1));
        assert_eq!(intc.accounting().cumulative(0, InterruptSource::Disk(1)), 2);
    }
}
