//! Translation-lookaside-buffer model.
//!
//! TLB misses are "distinct from cache misses in that they typically
//! cause trickle-down events farther away from the microprocessor"
//! (§3.3): each miss triggers a hardware page walk whose table accesses
//! may themselves miss the caches and reach the bus.

use crate::rng::SimRng;

/// Bus transactions generated per page walk (page-table levels that miss
/// the caches, amortised).
pub const WALK_LINES_PER_MISS: f64 = 1.5;

/// Per-tick TLB outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbTraffic {
    /// Instruction + data TLB misses.
    pub misses: u64,
    /// Page-walk bus transactions.
    pub pagewalk_lines: u64,
}

/// Stateless TLB model: workloads declare their miss pressure directly
/// (misses per kilo-uop), the model adds jitter and derives walk traffic.
#[derive(Debug, Clone, Copy, Default)]
pub struct TlbModel;

impl TlbModel {
    /// Creates the model.
    pub fn new() -> Self {
        Self
    }

    /// Simulates one tick: `retired_uops` executed at
    /// `misses_per_kuop` TLB pressure.
    pub fn tick(&self, retired_uops: u64, misses_per_kuop: f64, rng: &mut SimRng) -> TlbTraffic {
        let expected = retired_uops as f64 * misses_per_kuop.max(0.0) / 1000.0;
        let misses = rng.poisson(expected);
        let pagewalk_lines = rng.poisson(misses as f64 * WALK_LINES_PER_MISS);
        TlbTraffic {
            misses,
            pagewalk_lines,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_pressure_zero_misses() {
        let mut rng = SimRng::seed(1);
        let t = TlbModel::new().tick(1_000_000, 0.0, &mut rng);
        assert_eq!(t.misses, 0);
        assert_eq!(t.pagewalk_lines, 0);
    }

    #[test]
    fn miss_rate_tracks_pressure() {
        let mut rng = SimRng::seed(2);
        let mut total = 0u64;
        for _ in 0..100 {
            total += TlbModel::new().tick(1_000_000, 0.5, &mut rng).misses;
        }
        let per_tick = total as f64 / 100.0;
        assert!((per_tick - 500.0).abs() < 50.0, "per_tick {per_tick}");
    }

    #[test]
    fn negative_pressure_clamped() {
        let mut rng = SimRng::seed(3);
        let t = TlbModel::new().tick(1_000_000, -5.0, &mut rng);
        assert_eq!(t.misses, 0);
    }

    #[test]
    fn walk_traffic_scales_with_misses() {
        let mut rng = SimRng::seed(4);
        let mut misses = 0u64;
        let mut walks = 0u64;
        for _ in 0..200 {
            let t = TlbModel::new().tick(2_000_000, 1.0, &mut rng);
            misses += t.misses;
            walks += t.pagewalk_lines;
        }
        let ratio = walks as f64 / misses as f64;
        assert!((ratio - WALK_LINES_PER_MISS).abs() < 0.1, "ratio {ratio}");
    }
}
