//! Network interface controller.
//!
//! The paper's Figure 1 includes the network path (CPU → chipset → I/O →
//! network), and its §2.3 motivation leans on web-server studies, but
//! the evaluation workloads exercise it only incidentally ("dbt-2 …
//! does not require network clients"). The NIC here completes the
//! trickle-down topology: packets DMA through the I/O chips into memory
//! and completions are **coalesced** into interrupts — so network power,
//! like disk power, is visible at the CPU through DMA accesses and
//! interrupt counts.

use crate::config::NicConfig;

/// Per-tick NIC outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NicTickResult {
    /// Payload bytes DMA-transferred this tick (both directions).
    pub dma_bytes: u64,
    /// Interrupts raised this tick (after coalescing).
    pub interrupts: u64,
    /// Descriptor "commands" started (for I/O chip overhead accounting).
    pub commands: u64,
}

/// The network interface: byte-stream in, coalesced interrupts out.
#[derive(Debug, Clone)]
pub struct NicDevice {
    cfg: NicConfig,
    pending_bytes: u64,
    idle_ticks: u64,
}

impl NicDevice {
    /// Creates a NIC.
    pub fn new(cfg: NicConfig) -> Self {
        Self {
            cfg,
            pending_bytes: 0,
            idle_ticks: 0,
        }
    }

    /// Advances one tick with `bytes` of new packet traffic.
    ///
    /// Interrupt coalescing: one interrupt per
    /// [`NicConfig::coalesce_bytes`] of traffic, plus a flush interrupt
    /// when a partial batch has been pending for
    /// [`NicConfig::coalesce_timeout_ticks`] (latency bound — real NICs
    /// cannot hold a packet forever).
    pub fn tick(&mut self, bytes: u64) -> NicTickResult {
        if bytes == 0 && self.pending_bytes == 0 {
            return NicTickResult::default();
        }
        self.pending_bytes += bytes;
        let mut interrupts = self.pending_bytes / self.cfg.coalesce_bytes;
        self.pending_bytes %= self.cfg.coalesce_bytes;

        if interrupts > 0 {
            self.idle_ticks = 0;
        } else if self.pending_bytes > 0 {
            self.idle_ticks += 1;
            if self.idle_ticks >= self.cfg.coalesce_timeout_ticks {
                interrupts += 1;
                self.pending_bytes = 0;
                self.idle_ticks = 0;
            }
        }

        NicTickResult {
            dma_bytes: bytes,
            interrupts,
            // One descriptor ring refill per interrupt batch, minimum
            // one when traffic flows.
            commands: interrupts.max(u64::from(bytes > 0)),
        }
    }

    /// Bytes waiting for the next coalescing boundary.
    pub fn pending_bytes(&self) -> u64 {
        self.pending_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nic() -> NicDevice {
        NicDevice::new(NicConfig::default())
    }

    #[test]
    fn idle_nic_is_silent() {
        let mut n = nic();
        for _ in 0..10 {
            assert_eq!(n.tick(0), NicTickResult::default());
        }
    }

    #[test]
    fn bulk_traffic_coalesces_to_one_interrupt_per_batch() {
        let mut n = nic();
        let batch = NicConfig::default().coalesce_bytes;
        let r = n.tick(batch * 3 + 10);
        assert_eq!(r.interrupts, 3);
        assert_eq!(n.pending_bytes(), 10);
        assert_eq!(r.dma_bytes, batch * 3 + 10);
    }

    #[test]
    fn partial_batch_flushes_after_timeout() {
        let mut n = nic();
        let r = n.tick(100);
        assert_eq!(r.interrupts, 0, "coalescing holds the partial batch");
        let timeout = NicConfig::default().coalesce_timeout_ticks;
        let mut flushed = 0;
        for _ in 0..timeout {
            flushed += n.tick(0).interrupts;
        }
        assert_eq!(flushed, 1, "latency bound forces the flush");
        assert_eq!(n.pending_bytes(), 0);
    }

    #[test]
    fn interrupt_rate_is_sublinear_in_packet_rate() {
        // 64 KiB in one tick: 1 interrupt. The same bytes trickled at
        // 1 KiB/tick: the 2-tick latency bound forces a flush every
        // other tick — ~32 interrupts, still far fewer than one per
        // packet (a 1 KiB tick is ~1 packet-burst).
        let mut burst = nic();
        let burst_ints = burst.tick(64 * 1024).interrupts;
        let mut trickle = nic();
        let mut trickle_ints = 0;
        for _ in 0..64 {
            trickle_ints += trickle.tick(1024).interrupts;
        }
        assert_eq!(burst_ints, 1);
        assert!(
            (16..=33).contains(&trickle_ints),
            "latency-bounded coalescing: {trickle_ints}"
        );
    }
}
