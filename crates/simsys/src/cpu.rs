//! Processor core model: fetch throughput, SMT contention, HLT clock
//! gating and speculative activity.

use crate::behavior::TickDemand;
use crate::cache::CacheHierarchy;
use crate::config::{CacheConfig, CpuConfig, PrefetchConfig};
use crate::prefetch::StreamPrefetcher;
use crate::rng::SimRng;
use crate::tlb::TlbModel;

/// What a core did during one tick, as the power ground truth sees it.
///
/// `stall_search_frac` is the piece the paper's fetch-based model cannot
/// see: a memory-bound thread like `mcf` fetches almost nothing while the
/// out-of-order engine "is continuously searching for (and not finding)
/// ready instructions in the instruction window", at "a high power cost
/// that is equivalent to executing an additional 1–2 instructions/cycle"
/// (§4.3). It drives ground-truth power but no counter.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoreActivity {
    /// Total cycles this tick (free-running clock).
    pub cycles: u64,
    /// Cycles spent clock-gated after `HLT`.
    pub halted_cycles: u64,
    /// Micro-ops fetched (useful + wrong-path).
    pub fetched_uops: u64,
    /// Effective fetched uops per *unhalted* cycle.
    pub upc: f64,
    /// Fraction of unhalted cycles spent in instruction-window search
    /// while stalled on memory (0–1). Burns power no counter reports.
    pub stall_search_frac: f64,
    /// Fraction of unhalted cycles spent in *quiet* memory stalls
    /// (streaming waits with execution units clock-gated). Saves power
    /// no counter reports.
    pub quiet_stall_frac: f64,
}

/// Line-granularity memory traffic a core pushes toward the bus in one
/// tick.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryTraffic {
    /// Demand fills (post-prefetch L3 misses, loads + RFOs).
    pub demand_fill_lines: u64,
    /// Prefetcher-issued lines.
    pub prefetch_lines: u64,
    /// Dirty write-backs.
    pub writeback_lines: u64,
    /// Page-walk reads.
    pub pagewalk_lines: u64,
    /// Uncacheable (MMIO) accesses.
    pub uncacheable_accesses: u64,
}

impl MemoryTraffic {
    /// Every bus transaction this core originates.
    pub fn total_lines(&self) -> u64 {
        self.demand_fill_lines
            + self.prefetch_lines
            + self.writeback_lines
            + self.pagewalk_lines
            + self.uncacheable_accesses
    }
}

/// Counter deltas a core produced in one tick (before OS-side events).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreCounterDeltas {
    /// Fetched micro-ops.
    pub fetched_uops: u64,
    /// Retired micro-ops.
    pub retired_uops: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Demand loads missing L3 *after* prefetch coverage — what the PMU
    /// counts.
    pub l3_load_misses: u64,
    /// All demand L3 misses after prefetch coverage.
    pub l3_total_misses: u64,
    /// TLB misses.
    pub tlb_misses: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// Uncacheable accesses.
    pub uncacheable: u64,
}

/// Result of one core-tick.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CpuTickResult {
    /// Power-relevant activity.
    pub activity: CoreActivity,
    /// Bus-bound traffic.
    pub traffic: MemoryTraffic,
    /// PMU deltas.
    pub counters: CoreCounterDeltas,
    /// Retired uops per scheduled thread, in the order the demands were
    /// passed — the scheduler accounting that per-process power billing
    /// (§4.2.1) is built on.
    pub per_thread_retired: Vec<u64>,
}

impl CpuTickResult {
    /// Clears every field for reuse, keeping the `per_thread_retired`
    /// buffer's allocation — the buffer-reuse contract of
    /// [`CpuCore::run_tick_into`].
    pub fn reset(&mut self) {
        self.activity = CoreActivity::default();
        self.traffic = MemoryTraffic::default();
        self.counters = CoreCounterDeltas::default();
        self.per_thread_retired.clear();
    }
}

/// One physical processor with two SMT contexts, private cache hierarchy
/// and stream prefetcher.
#[derive(Debug)]
pub struct CpuCore {
    cpu_cfg: CpuConfig,
    caches: CacheHierarchy,
    prefetcher: StreamPrefetcher,
    tlb: TlbModel,
    rng: SimRng,
    /// Per-thread UPC scratch reused across ticks.
    upcs: Vec<f64>,
}

impl CpuCore {
    /// Creates a core. `rng` should be derived per-core from the machine
    /// seed.
    pub fn new(
        cpu_cfg: CpuConfig,
        cache_cfg: CacheConfig,
        prefetch_cfg: PrefetchConfig,
        rng: SimRng,
    ) -> Self {
        Self {
            cpu_cfg,
            caches: CacheHierarchy::new(cache_cfg),
            prefetcher: StreamPrefetcher::new(prefetch_cfg),
            tlb: TlbModel::new(),
            rng,
            upcs: Vec::new(),
        }
    }

    /// Borrow of the per-core RNG (behaviours draw their jitter from it).
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Runs one tick with the demands of the threads scheduled on this
    /// core (0, 1 or 2 entries), under the bus throttle from last tick.
    ///
    /// `timer_interrupts` is how many timer interrupts hit this core this
    /// tick (they wake a halted core briefly).
    pub fn run_tick(
        &mut self,
        demands: &[TickDemand],
        mem_throttle: f64,
        timer_interrupts: u64,
    ) -> CpuTickResult {
        self.run_tick_at(
            demands,
            mem_throttle,
            timer_interrupts,
            self.cpu_cfg.cycles_per_tick(),
        )
    }

    /// Like [`run_tick`](Self::run_tick) but with an explicit cycle
    /// budget — the DVFS path: a frequency-scaled core simply has fewer
    /// cycles per millisecond.
    pub fn run_tick_at(
        &mut self,
        demands: &[TickDemand],
        mem_throttle: f64,
        timer_interrupts: u64,
        cycles: u64,
    ) -> CpuTickResult {
        let mut out = CpuTickResult::default();
        self.run_tick_into(demands, mem_throttle, timer_interrupts, cycles, &mut out);
        out
    }

    /// Like [`run_tick_at`](Self::run_tick_at) but writing into a
    /// caller-owned result — the allocation-free hot path. `out` is
    /// [`reset`](CpuTickResult::reset) first; its buffers are reused.
    pub fn run_tick_into(
        &mut self,
        demands: &[TickDemand],
        mem_throttle: f64,
        timer_interrupts: u64,
        cycles: u64,
        out: &mut CpuTickResult,
    ) {
        out.reset();
        let cycles = cycles.max(1);
        if demands.is_empty() {
            self.run_idle_tick_into(cycles, timer_interrupts, out);
            return;
        }

        let k = demands.len().min(self.cpu_cfg.smt_per_cpu);
        let width = self.cpu_cfg.fetch_width;
        // Per-thread fetch ceiling under SMT sharing: two contexts share
        // the front end but overlap stalls, so each gets more than half.
        let per_thread_cap = if k >= 2 {
            (width * self.cpu_cfg.smt_efficiency / k as f64).min(width)
        } else {
            width
        };

        let result = out;
        let mut total_upc = 0.0;
        let mut stall_weight = 0.0;
        let mut quiet_weight = 0.0;
        let throttle = mem_throttle.clamp(0.05, 1.0);

        // First pass: per-thread demanded throughput under SMT and bus
        // constraints; the fetch engine then scales everyone down if the
        // combined demand exceeds its width.
        let mut upcs = std::mem::take(&mut self.upcs);
        upcs.clear();
        upcs.extend(demands.iter().take(k).map(|demand| {
            let slowdown = 1.0 - demand.memory_sensitivity.clamp(0.0, 1.0) * (1.0 - throttle);
            (demand.target_upc * slowdown).clamp(0.0, per_thread_cap)
        }));
        let demanded: f64 = upcs.iter().sum();
        if demanded > width {
            let scale = width / demanded;
            for u in &mut upcs {
                *u *= scale;
            }
        }

        for (demand, &upc) in demands.iter().take(k).zip(&upcs) {
            let retired = self
                .rng
                .poisson(upc * cycles as f64)
                .min((width * cycles as f64) as u64);
            let fetched = retired
                + self
                    .rng
                    .poisson(retired as f64 * demand.wrongpath_fraction.max(0.0));

            let loads = self
                .rng
                .poisson(retired as f64 * demand.loads_per_uop.max(0.0));
            let stores = self
                .rng
                .poisson(retired as f64 * demand.stores_per_uop.max(0.0));
            let share = if k >= 2 { 0.5 } else { 1.0 };
            let cache = self
                .caches
                .simulate(loads, stores, &demand.reuse, share, &mut self.rng);
            let prefetch = self.prefetcher.tick(
                cache.l3_total_misses(),
                demand.streaming_fraction,
                &mut self.rng,
            );
            let tlb = self
                .tlb
                .tick(retired, demand.tlb_misses_per_kuop, &mut self.rng);
            let uncacheable = self
                .rng
                .poisson(retired as f64 * demand.uncacheable_per_kuop.max(0.0) / 1000.0);
            let mispredicts = self
                .rng
                .poisson(retired as f64 * demand.mispredicts_per_kuop.max(0.0) / 1000.0);

            // Prefetch-covered misses disappear from the miss counters
            // but their lines still travel the bus.
            let visible_l3 = cache.l3_total_misses() - prefetch.covered_misses;
            let visible_l3_loads = ((cache.l3_load_misses as f64
                / cache.l3_total_misses().max(1) as f64)
                * visible_l3 as f64)
                .round() as u64;

            result.per_thread_retired.push(retired);
            result.counters.fetched_uops += fetched;
            result.counters.retired_uops += retired;
            result.counters.l2_misses += cache.l2_misses;
            result.counters.l3_load_misses += visible_l3_loads;
            result.counters.l3_total_misses += visible_l3;
            result.counters.tlb_misses += tlb.misses;
            result.counters.mispredicts += mispredicts;
            result.counters.uncacheable += uncacheable;

            result.traffic.demand_fill_lines += visible_l3;
            result.traffic.prefetch_lines += prefetch.prefetch_lines + prefetch.covered_misses;
            result.traffic.writeback_lines += cache.writeback_lines;
            result.traffic.pagewalk_lines += tlb.pagewalk_lines;
            result.traffic.uncacheable_accesses += uncacheable;

            result.activity.fetched_uops += fetched;
            total_upc += upc;
            // Memory-stall intensity: memory-bound and starved. Pointer
            // chasing keeps the scheduler churning; streaming stalls
            // let units gate off.
            let starvation = (1.0 - upc / 1.5).clamp(0.0, 1.0);
            let stall = demand.memory_sensitivity.clamp(0.0, 1.0) * starvation;
            let chase = demand.pointer_chasing.clamp(0.0, 1.0);
            stall_weight += stall * chase;
            quiet_weight += stall * (1.0 - chase);
        }

        result.activity.cycles = cycles;
        result.activity.halted_cycles = 0;
        result.activity.upc = total_upc;
        result.activity.stall_search_frac = (stall_weight / k as f64).min(1.0);
        result.activity.quiet_stall_frac = (quiet_weight / k as f64).min(1.0);
        self.upcs = upcs;
    }

    fn run_idle_tick_into(&mut self, cycles: u64, timer_interrupts: u64, out: &mut CpuTickResult) {
        // The OS idle loop executes HLT; only interrupt handling wakes
        // the clock. Each timer tick costs some active cycles.
        let overhead =
            (self.cpu_cfg.timer_overhead_cycles * timer_interrupts.max(1)).min(cycles / 2);
        let overhead = self
            .rng
            .poisson(overhead as f64)
            .clamp(overhead / 2, cycles / 2);
        let halted = cycles - overhead;
        let fetched = self.rng.poisson(overhead as f64 * 0.8);
        out.activity = CoreActivity {
            cycles,
            halted_cycles: halted,
            fetched_uops: fetched,
            upc: fetched as f64 / overhead.max(1) as f64,
            stall_search_frac: 0.0,
            quiet_stall_frac: 0.0,
        };
        out.counters = CoreCounterDeltas {
            fetched_uops: fetched,
            retired_uops: fetched,
            ..CoreCounterDeltas::default()
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::ReuseProfile;
    use crate::config::MachineConfig;

    fn core() -> CpuCore {
        let cfg = MachineConfig::default();
        CpuCore::new(cfg.cpu, cfg.cache, cfg.prefetch, SimRng::seed(99))
    }

    fn compute_demand(upc: f64) -> TickDemand {
        TickDemand {
            target_upc: upc,
            memory_sensitivity: 0.0,
            reuse: ReuseProfile::cache_resident(),
            ..TickDemand::default()
        }
    }

    #[test]
    fn idle_core_is_mostly_halted() {
        let mut c = core();
        let r = c.run_tick(&[], 1.0, 1);
        let halted_frac = r.activity.halted_cycles as f64 / r.activity.cycles as f64;
        assert!(halted_frac > 0.98, "halted_frac {halted_frac}");
        assert_eq!(r.traffic.total_lines(), 0);
    }

    #[test]
    fn busy_core_never_halts() {
        let mut c = core();
        let r = c.run_tick(&[compute_demand(1.5)], 1.0, 1);
        assert_eq!(r.activity.halted_cycles, 0);
        let upc = r.counters.retired_uops as f64 / r.activity.cycles as f64;
        assert!((upc - 1.5).abs() < 0.05, "upc {upc}");
    }

    #[test]
    fn fetch_exceeds_retire_by_wrongpath() {
        let mut c = core();
        let mut d = compute_demand(1.0);
        d.wrongpath_fraction = 0.25;
        let r = c.run_tick(&[d], 1.0, 1);
        let ratio = r.counters.fetched_uops as f64 / r.counters.retired_uops as f64;
        assert!((ratio - 1.25).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn smt_pair_beats_single_thread_but_not_double() {
        let mut c1 = core();
        let one = c1.run_tick(&[compute_demand(1.6)], 1.0, 1);
        let mut c2 = core();
        let two = c2.run_tick(&[compute_demand(1.6), compute_demand(1.6)], 1.0, 1);
        let u1 = one.counters.retired_uops as f64;
        let u2 = two.counters.retired_uops as f64;
        assert!(u2 > u1 * 1.5, "SMT should add throughput: {u1} vs {u2}");
        assert!(
            u2 < u1 * 1.95,
            "but under 2x (fetch-width cap): {u1} vs {u2}"
        );
    }

    #[test]
    fn combined_throughput_never_exceeds_fetch_width() {
        let mut c = core();
        let r = c.run_tick(&[compute_demand(3.0), compute_demand(3.0)], 1.0, 1);
        let upc = r.counters.retired_uops as f64 / r.activity.cycles as f64;
        assert!(upc <= 3.05, "total upc {upc} capped at fetch width");
    }

    #[test]
    fn bus_throttle_slows_memory_bound_threads_only() {
        let mut mem_demand = TickDemand {
            target_upc: 1.0,
            memory_sensitivity: 1.0,
            reuse: ReuseProfile::streaming(),
            ..TickDemand::default()
        };
        mem_demand.loads_per_uop = 0.5;

        let mut c = core();
        let free = c.run_tick(&[mem_demand], 1.0, 1);
        let mut c = core();
        let jammed = c.run_tick(&[mem_demand], 0.25, 1);
        assert!((jammed.counters.retired_uops as f64) < 0.4 * free.counters.retired_uops as f64);

        let mut c = core();
        let cpu_free = c.run_tick(&[compute_demand(2.0)], 1.0, 1);
        let mut c = core();
        let cpu_jammed = c.run_tick(&[compute_demand(2.0)], 0.25, 1);
        let ratio = cpu_jammed.counters.retired_uops as f64 / cpu_free.counters.retired_uops as f64;
        assert!((ratio - 1.0).abs() < 0.05, "compute-bound unaffected");
    }

    #[test]
    fn memory_bound_thread_has_search_activity() {
        let demand = TickDemand {
            target_upc: 0.3,
            memory_sensitivity: 1.0,
            pointer_chasing: 1.0,
            reuse: ReuseProfile::streaming(),
            ..TickDemand::default()
        };
        let mut c = core();
        let r = c.run_tick(&[demand], 1.0, 1);
        assert!(r.activity.stall_search_frac > 0.5);
        assert_eq!(r.activity.quiet_stall_frac, 0.0);
        let quiet_demand = TickDemand {
            target_upc: 0.3,
            memory_sensitivity: 1.0,
            pointer_chasing: 0.0,
            reuse: ReuseProfile::streaming(),
            ..TickDemand::default()
        };
        let mut c = core();
        let r = c.run_tick(&[quiet_demand], 1.0, 1);
        assert!(r.activity.quiet_stall_frac > 0.5);
        assert_eq!(r.activity.stall_search_frac, 0.0);
        let mut c = core();
        let r = c.run_tick(&[compute_demand(2.5)], 1.0, 1);
        assert!(r.activity.stall_search_frac < 0.01);
    }

    #[test]
    fn prefetch_covered_misses_hide_from_counters_not_bus() {
        let demand = TickDemand {
            target_upc: 0.5,
            loads_per_uop: 0.5,
            stores_per_uop: 0.0,
            memory_sensitivity: 0.0, // keep throughput fixed for the test
            streaming_fraction: 1.0,
            reuse: ReuseProfile::streaming(),
            ..TickDemand::default()
        };
        // Short prefetcher training so the effect fits in a unit test.
        let cfg = MachineConfig::default();
        let mut c = CpuCore::new(
            cfg.cpu,
            cfg.cache,
            crate::config::PrefetchConfig {
                train_ticks: 50.0,
                ..cfg.prefetch
            },
            SimRng::seed(99),
        );
        let mut early_misses = 0;
        let mut early_bus = 0;
        let mut late_misses = 0;
        let mut late_bus = 0;
        for i in 0..300 {
            let r = c.run_tick(std::slice::from_ref(&demand), 1.0, 1);
            let bus = r.traffic.demand_fill_lines + r.traffic.prefetch_lines;
            if i < 3 {
                early_misses += r.counters.l3_total_misses;
                early_bus += bus;
            } else if i >= 297 {
                late_misses += r.counters.l3_total_misses;
                late_bus += bus;
            }
        }
        assert!(
            late_misses < early_misses / 2,
            "visible misses collapse as prefetcher ramps: {early_misses} -> {late_misses}"
        );
        let early_ratio = early_bus as f64 / early_misses.max(1) as f64;
        let late_ratio = late_bus as f64 / late_misses.max(1) as f64;
        assert!(
            late_ratio > early_ratio * 2.0,
            "bus traffic per visible miss grows: {early_ratio} -> {late_ratio}"
        );
    }
}
