//! A deterministic full-system simulator of the paper's target server.
//!
//! Bircher & John's measurement platform is a 4-way Pentium 4 Xeon SMP
//! server with two SMT threads per processor, a shared front-side bus,
//! DDR DRAM behind a memory controller, two I/O chips driving PCI-X buses
//! and two SCSI disks, running Linux (§3.1.1). This crate is the
//! from-scratch substitute for that hardware: a time-stepped (1 ms tick)
//! simulation detailed enough that the paper's *trickle-down* phenomena
//! emerge from mechanism rather than curve-fitting:
//!
//! * cache misses become front-side-bus transactions become DRAM bank
//!   activations ([`cache`], [`bus`], [`dram`]);
//! * the hardware prefetcher ([`prefetch`]) converts demand misses into
//!   prefetch traffic at high utilization, breaking the L3-miss ↔ memory
//!   power proportionality exactly the way the paper's Figure 4 shows;
//! * disk requests are programmed through uncacheable configuration
//!   accesses, transfer through DMA visible on the processor bus, and
//!   complete with an interrupt ([`disk`], [`iochip`], [`intc`]); the
//!   [`nic`] moves packets down the same path with coalesced
//!   interrupts;
//! * the OS ([`os`]) schedules threads over SMT contexts, executes `HLT`
//!   when idle (engaging CPU clock gating), runs a page cache whose
//!   `sync()` produces the DiskLoad workload's burst behaviour, and
//!   maintains `/proc/interrupts`-style accounting.
//!
//! The machine *produces* two streams:
//!
//! 1. **performance-event counts** pushed into [`tdp_counters::CounterBank`]s
//!    — everything a power *model* is allowed to see;
//! 2. **device activity** ([`TickActivity`]) — DRAM state residency, disk
//!    mode residency, I/O switching — which only the ground-truth power
//!    meter (`tdp-powermeter`) may consume.
//!
//! That boundary enforces the paper's central discipline: models are
//! trained and evaluated against measured power but may only *read*
//! CPU-visible counters.
//!
//! Beyond the paper's fixed-frequency platform, the machine supports
//! DVFS operating points ([`Machine::set_frequency_scale`]) and
//! per-process scheduler accounting ([`Machine::take_sched_delta`]) for
//! the power-management extensions built on top.
//!
//! # Example
//!
//! ```
//! use tdp_simsys::{Machine, MachineConfig};
//! use tdp_simsys::behavior::spin_loop_behavior;
//!
//! let mut machine = Machine::new(MachineConfig::default());
//! machine.os_mut().spawn(Box::new(spin_loop_behavior(1.5)), 0);
//!
//! // Run one simulated second.
//! for _ in 0..1000 {
//!     machine.tick();
//! }
//! assert_eq!(machine.now_ms(), 1000);
//! // The spinning thread kept one CPU busy: it fetched uops.
//! let sample = machine.read_counters();
//! let uops = sample.total(tdp_counters::PerfEvent::FetchedUops).unwrap();
//! assert!(uops > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod bus;
pub mod cache;
pub mod config;
pub mod cpu;
pub mod disk;
pub mod dram;
pub mod intc;
pub mod iochip;
pub mod machine;
pub mod nic;
pub mod os;
pub mod prefetch;
pub mod rng;
pub mod tlb;

pub use behavior::{IoDemand, ReuseProfile, ThreadBehavior, TickContext, TickDemand};
pub use config::{
    BusConfig, CacheConfig, CpuConfig, DiskConfig, DramConfig, IoConfig, MachineConfig, NicConfig,
    OsConfig,
};
pub use machine::{Machine, TickActivity};
pub use rng::SimRng;
