//! The miniature operating system: scheduling, page cache, I/O
//! submission and interrupt-driven wake-ups.
//!
//! Responsibilities mirrored from the paper's Linux target:
//!
//! * **scheduler** — runnable threads are spread over the 8 hardware
//!   contexts (4 CPUs × 2 SMT); idle contexts cause the core to `HLT`
//!   (§3.3 "Halted Cycles");
//! * **page cache** — file writes dirty pages in memory; a background
//!   flusher trickles them to disk past a dirty threshold, and `sync()`
//!   flushes everything at once while the caller blocks — the behaviour
//!   the synthetic DiskLoad workload is built around (§3.2.2, §4.1);
//! * **I/O submission** — read misses and write-back become SCSI
//!   commands programmed through uncacheable MMIO accesses, giving the
//!   trickle-down chain its I/O-side events.

use crate::behavior::{IoDemand, ThreadBehavior, TickContext, TickDemand};
use crate::config::OsConfig;
use crate::disk::{CommandId, DiskCommand};
use crate::rng::SimRng;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a spawned process (thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub u64);

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ProcState {
    /// Waiting for its start time.
    NotStarted,
    /// Runnable.
    Ready,
    /// Waiting on outstanding disk commands.
    Blocked(Vec<CommandId>),
    /// Voluntarily sleeping until the given time (ms).
    Sleeping(u64),
    /// Exited.
    Done,
}

struct Process {
    id: ProcessId,
    behavior: Box<dyn ThreadBehavior>,
    start_ms: u64,
    state: ProcState,
    rng: SimRng,
}

impl fmt::Debug for Process {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Process")
            .field("id", &self.id)
            .field("name", &self.behavior.name())
            .field("start_ms", &self.start_ms)
            .field("state", &self.state)
            .finish()
    }
}

/// One sampling window's scheduler accounting: which process retired
/// how many uops on which CPU.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedDelta {
    /// `(pid, cpu index, retired uops)` triples, sorted.
    pub entries: Vec<(ProcessId, usize, u64)>,
}

impl SchedDelta {
    /// Total retired uops attributed to `cpu` this window.
    pub fn retired_on_cpu(&self, cpu: usize) -> u64 {
        self.entries
            .iter()
            .filter(|&&(_, c, _)| c == cpu)
            .map(|&(_, _, u)| u)
            .sum()
    }

    /// The distinct processes seen this window.
    pub fn pids(&self) -> Vec<ProcessId> {
        let mut pids: Vec<ProcessId> = self.entries.iter().map(|&(p, _, _)| p).collect();
        pids.sort_unstable();
        pids.dedup();
        pids
    }
}

/// Commands to submit to disks, plus the MMIO cost of submitting them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IoSubmission {
    /// `(disk index, command)` pairs.
    pub commands: Vec<(usize, DiskCommand)>,
    /// Uncacheable configuration accesses performed by the submitting
    /// CPU.
    pub config_accesses: u64,
}

impl IoSubmission {
    /// Clears the submission for reuse, keeping the command buffer's
    /// allocation.
    pub fn reset(&mut self) {
        self.commands.clear();
        self.config_accesses = 0;
    }
}

/// The operating system.
pub struct Os {
    cfg: OsConfig,
    num_disks: usize,
    config_accesses_per_command: u64,
    max_command_bytes: u64,
    processes: Vec<Process>,
    next_pid: u64,
    next_cmd: u64,
    rr_cursor: usize,
    next_disk: usize,
    dirty_pages: u64,
    /// Pacing counter for the background flusher.
    wb_pace: u64,
    /// Which processes wait on which command.
    waiters: HashMap<CommandId, ProcessId>,
    rng: SimRng,
    /// File "position" per process for sequential-ish layout.
    file_cursor: HashMap<ProcessId, f64>,
    /// Per-window scheduler accounting: (pid, cpu) → retired uops.
    sched_window: HashMap<(ProcessId, usize), u64>,
    /// Cumulative scheduled milliseconds per process.
    sched_runtime_ms: HashMap<ProcessId, u64>,
    /// Runnable-index scratch reused across scheduling ticks.
    runnable_scratch: Vec<usize>,
}

impl fmt::Debug for Os {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Os")
            .field("processes", &self.processes.len())
            .field("dirty_pages", &self.dirty_pages)
            .field("outstanding_waits", &self.waiters.len())
            .finish()
    }
}

impl Os {
    /// Creates the OS. `config_accesses_per_command` comes from the I/O
    /// chip configuration and `max_command_bytes` from the disk
    /// configuration (large transfers are split at that boundary).
    pub fn new(
        cfg: OsConfig,
        num_disks: usize,
        config_accesses_per_command: u64,
        max_command_bytes: u64,
        rng: SimRng,
    ) -> Self {
        Self {
            cfg,
            num_disks,
            config_accesses_per_command,
            max_command_bytes: max_command_bytes.max(4096),
            processes: Vec::new(),
            next_pid: 1,
            next_cmd: 1,
            rr_cursor: 0,
            next_disk: 0,
            dirty_pages: 0,
            wb_pace: 0,
            waiters: HashMap::new(),
            rng,
            file_cursor: HashMap::new(),
            sched_window: HashMap::new(),
            sched_runtime_ms: HashMap::new(),
            runnable_scratch: Vec::new(),
        }
    }

    /// Spawns a thread that becomes runnable at `start_ms`.
    pub fn spawn(&mut self, behavior: Box<dyn ThreadBehavior>, start_ms: u64) -> ProcessId {
        let id = ProcessId(self.next_pid);
        self.next_pid += 1;
        let rng = self.rng.derive(&format!("proc-{}", id.0));
        self.processes.push(Process {
            id,
            behavior,
            start_ms,
            state: ProcState::NotStarted,
            rng,
        });
        id
    }

    /// Number of currently runnable threads.
    pub fn runnable_count(&self) -> usize {
        self.processes
            .iter()
            .filter(|p| p.state == ProcState::Ready)
            .count()
    }

    /// Whether every spawned thread has exited.
    pub fn all_finished(&self) -> bool {
        self.processes
            .iter()
            .all(|p| matches!(p.state, ProcState::Done))
    }

    /// Dirty pages in the page cache.
    pub fn dirty_pages(&self) -> u64 {
        self.dirty_pages
    }

    /// Advances process start/finish state and assigns runnable threads
    /// to `num_cpus × smt` contexts, spreading across physical CPUs
    /// before doubling up on SMT (the Linux SMP scheduler's policy).
    ///
    /// Returns, per CPU, the indices of the processes to run this tick.
    pub fn assignments(
        &mut self,
        now_ms: u64,
        num_cpus: usize,
        smt_per_cpu: usize,
    ) -> Vec<Vec<usize>> {
        let mut per_cpu = Vec::new();
        self.assignments_into(now_ms, num_cpus, smt_per_cpu, &mut per_cpu);
        per_cpu
    }

    /// Like [`assignments`](Self::assignments) but filling a caller-owned
    /// buffer — the allocation-free hot path. The outer vector is resized
    /// to `num_cpus` and every inner vector is cleared and reused.
    pub fn assignments_into(
        &mut self,
        now_ms: u64,
        num_cpus: usize,
        smt_per_cpu: usize,
        per_cpu: &mut Vec<Vec<usize>>,
    ) {
        for p in &mut self.processes {
            match p.state {
                ProcState::NotStarted if now_ms >= p.start_ms => {
                    p.state = ProcState::Ready;
                }
                ProcState::Sleeping(until) if now_ms >= until => {
                    p.state = ProcState::Ready;
                }
                ProcState::Ready if p.behavior.finished() => {
                    p.state = ProcState::Done;
                }
                _ => {}
            }
        }

        self.runnable_scratch.clear();
        for (i, p) in self.processes.iter().enumerate() {
            if p.state == ProcState::Ready {
                self.runnable_scratch.push(i);
            }
        }
        let runnable = &self.runnable_scratch;

        per_cpu.resize_with(num_cpus, Vec::new);
        per_cpu.truncate(num_cpus);
        for v in per_cpu.iter_mut() {
            v.clear();
        }
        if runnable.is_empty() {
            return;
        }
        let capacity = num_cpus * smt_per_cpu;
        // Round-robin offset for fairness when oversubscribed.
        self.rr_cursor = self.rr_cursor.wrapping_add(1);
        let offset = if runnable.len() > capacity {
            self.rr_cursor % runnable.len()
        } else {
            0
        };
        for (slot, k) in (0..runnable.len().min(capacity)).enumerate() {
            let proc_idx = runnable[(offset + k) % runnable.len()];
            // Fill cpu0..cpuN first, then second SMT slots.
            per_cpu[slot % num_cpus].push(proc_idx);
        }
    }

    /// Calls the behaviour of process `proc_idx` for this tick.
    pub fn demand_of(
        &mut self,
        proc_idx: usize,
        now_ms: u64,
        smt_share: f64,
        mem_throttle: f64,
    ) -> TickDemand {
        let p = &mut self.processes[proc_idx];
        let mut ctx = TickContext {
            now_ms,
            smt_share,
            mem_throttle,
            rng: &mut p.rng,
        };
        p.behavior.demand(&mut ctx)
    }

    /// Name of the behaviour running as process `proc_idx`.
    pub fn name_of(&self, proc_idx: usize) -> &str {
        self.processes[proc_idx].behavior.name()
    }

    /// The pid of process `proc_idx`.
    pub fn pid_of(&self, proc_idx: usize) -> ProcessId {
        self.processes[proc_idx].id
    }

    /// The behaviour name for a pid, if the process exists.
    pub fn name_of_pid(&self, pid: ProcessId) -> Option<&str> {
        self.processes
            .iter()
            .find(|p| p.id == pid)
            .map(|p| p.behavior.name())
    }

    /// Records one tick of execution for scheduler accounting: process
    /// `proc_idx` retired `retired` uops on `cpu` this tick.
    pub fn record_execution(&mut self, proc_idx: usize, cpu: usize, retired: u64) {
        let pid = self.processes[proc_idx].id;
        *self.sched_window.entry((pid, cpu)).or_insert(0) += retired;
        *self.sched_runtime_ms.entry(pid).or_insert(0) += 1;
    }

    /// Takes the per-window scheduler accounting (and resets it) —
    /// sampled alongside the counters, it is the `/proc/<pid>/stat`
    /// equivalent that per-process power attribution needs.
    pub fn take_sched_delta(&mut self) -> SchedDelta {
        let mut entries: Vec<(ProcessId, usize, u64)> = self
            .sched_window
            .drain()
            .map(|((pid, cpu), uops)| (pid, cpu, uops))
            .collect();
        entries.sort_unstable();
        SchedDelta { entries }
    }

    /// Cumulative scheduled milliseconds for `pid`.
    pub fn runtime_ms(&self, pid: ProcessId) -> u64 {
        self.sched_runtime_ms.get(&pid).copied().unwrap_or(0)
    }

    /// Processes the file-I/O part of a thread's demand, turning it into
    /// disk commands and possibly blocking or sleeping the thread.
    pub fn submit_io(&mut self, proc_idx: usize, io: &IoDemand, now_ms: u64) -> IoSubmission {
        let mut sub = IoSubmission::default();
        self.submit_io_into(proc_idx, io, now_ms, &mut sub);
        sub
    }

    /// Like [`submit_io`](Self::submit_io) but filling a caller-owned
    /// submission — the allocation-free hot path. `sub` is
    /// [`reset`](IoSubmission::reset) first; its buffer is reused.
    pub fn submit_io_into(
        &mut self,
        proc_idx: usize,
        io: &IoDemand,
        now_ms: u64,
        sub: &mut IoSubmission,
    ) {
        sub.reset();
        let pid = self.processes[proc_idx].id;
        // Command ids are issued sequentially, so each transfer's ids form
        // a contiguous `(first, count)` range — blocking state is built
        // from ranges without an intermediate id list.
        let mut block_ranges: [(u64, u64); 2] = [(0, 0); 2];

        // Reads: the whole request either hits the page cache (no disk
        // traffic) or misses and fetches in full — `read_hit_fraction`
        // is a hit *probability*, not a byte fraction. (A fractional
        // interpretation would issue a sliver-sized command on every
        // read, wildly inflating the interrupt rate per byte moved.)
        if io.read_bytes > 0 {
            let hit = io.read_hit_fraction.clamp(0.0, 1.0);
            if !self.rng.chance(hit) {
                let range = self.enqueue_transfer(pid, io.read_bytes, false, sub);
                if io.blocking_reads {
                    block_ranges[0] = range;
                }
            }
        }

        // Writes dirty the page cache; no immediate disk traffic.
        if io.write_bytes > 0 {
            self.dirty_pages += io.write_bytes.div_ceil(self.cfg.page_bytes);
        }

        // sync(): flush everything, block until done.
        if io.sync && self.dirty_pages > 0 {
            let bytes = self.dirty_pages * self.cfg.page_bytes;
            self.dirty_pages = 0;
            block_ranges[1] = self.enqueue_transfer(pid, bytes, true, sub);
        }

        let blocked: u64 = block_ranges.iter().map(|&(_, n)| n).sum();
        if blocked > 0 {
            let mut block_on = Vec::with_capacity(blocked as usize);
            for &(first, count) in &block_ranges {
                for id in (first..first + count).map(CommandId) {
                    self.waiters.insert(id, pid);
                    block_on.push(id);
                }
            }
            self.processes[proc_idx].state = ProcState::Blocked(block_on);
        } else if io.sleep_ms > 0 {
            self.processes[proc_idx].state = ProcState::Sleeping(now_ms + io.sleep_ms);
        }
    }

    /// Background flusher: called once per tick; writes back dirty pages
    /// above the threshold, a bounded amount, paced to one submission
    /// every few milliseconds so it issues disk-sized commands instead
    /// of a storm of slivers.
    pub fn background_writeback(&mut self) -> IoSubmission {
        let mut sub = IoSubmission::default();
        self.background_writeback_into(&mut sub);
        sub
    }

    /// Like [`background_writeback`](Self::background_writeback) but
    /// filling a caller-owned submission — the allocation-free hot path.
    /// `sub` is [`reset`](IoSubmission::reset) first.
    pub fn background_writeback_into(&mut self, sub: &mut IoSubmission) {
        sub.reset();
        let threshold = (self.cfg.page_cache_pages as f64 * self.cfg.dirty_background_ratio) as u64;
        self.wb_pace = self.wb_pace.wrapping_add(1);
        if self.dirty_pages <= threshold || !self.wb_pace.is_multiple_of(8) {
            return;
        }
        let excess_bytes = (self.dirty_pages - threshold) * self.cfg.page_bytes;
        let bytes = excess_bytes.min(self.cfg.writeback_bytes_per_tick);
        let pages = bytes.div_ceil(self.cfg.page_bytes);
        self.dirty_pages -= pages.min(self.dirty_pages);
        // Flusher writes are nobody's problem: no blocking.
        let pid = ProcessId(0);
        let _ = self.enqueue_transfer(pid, bytes, true, sub);
    }

    /// Handles disk completions: wakes any thread whose last outstanding
    /// command finished.
    pub fn on_completions(&mut self, completed: &[CommandId]) {
        for id in completed {
            let Some(pid) = self.waiters.remove(id) else {
                continue;
            };
            if let Some(p) = self.processes.iter_mut().find(|p| p.id == pid) {
                if let ProcState::Blocked(waiting) = &mut p.state {
                    waiting.retain(|w| w != id);
                    if waiting.is_empty() {
                        p.state = ProcState::Ready;
                    }
                }
            }
        }
    }

    /// Splits `bytes` into disk commands appended to `sub`; returns the
    /// `(first id, count)` of the commands issued. Ids are contiguous
    /// because `next_cmd` is the only id source.
    fn enqueue_transfer(
        &mut self,
        pid: ProcessId,
        bytes: u64,
        write: bool,
        sub: &mut IoSubmission,
    ) -> (u64, u64) {
        let mut remaining = bytes;
        let first = self.next_cmd;
        let chunk = self.max_command_bytes;
        while remaining > 0 {
            let this = remaining.min(chunk);
            remaining -= this;
            let id = CommandId(self.next_cmd);
            self.next_cmd += 1;
            // Sequential-ish file layout: advance a per-process cursor
            // with small jitter so related commands land near each other.
            let cursor = self.file_cursor.entry(pid).or_insert_with(|| 0.3);
            *cursor = (*cursor + 0.002 + self.rng.uniform() * 0.004) % 1.0;
            let disk = self.next_disk % self.num_disks;
            self.next_disk = self.next_disk.wrapping_add(1);
            sub.commands.push((
                disk,
                DiskCommand {
                    id,
                    position: *cursor,
                    bytes: this,
                    write,
                },
            ));
        }
        let count = self.next_cmd - first;
        sub.config_accesses += count * self.config_accesses_per_command;
        (first, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::spin_loop_behavior;

    fn os() -> Os {
        Os::new(OsConfig::default(), 2, 4, 512 * 1024, SimRng::seed(5))
    }

    fn spawn_n(os: &mut Os, n: usize, start: u64) {
        for _ in 0..n {
            os.spawn(Box::new(spin_loop_behavior(1.0)), start);
        }
    }

    #[test]
    fn threads_spread_across_cpus_before_smt() {
        let mut o = os();
        spawn_n(&mut o, 4, 0);
        let a = o.assignments(0, 4, 2);
        assert_eq!(a.iter().map(Vec::len).collect::<Vec<_>>(), vec![1, 1, 1, 1]);

        let mut o = os();
        spawn_n(&mut o, 6, 0);
        let a = o.assignments(0, 4, 2);
        let lens: Vec<usize> = a.iter().map(Vec::len).collect();
        assert_eq!(lens, vec![2, 2, 1, 1]);
    }

    #[test]
    fn not_started_threads_do_not_run() {
        let mut o = os();
        spawn_n(&mut o, 2, 500);
        assert!(o.assignments(0, 4, 2).iter().all(Vec::is_empty));
        assert_eq!(o.runnable_count(), 0);
        let a = o.assignments(500, 4, 2);
        assert_eq!(a.iter().map(Vec::len).sum::<usize>(), 2);
    }

    #[test]
    fn oversubscription_caps_at_contexts() {
        let mut o = os();
        spawn_n(&mut o, 12, 0);
        let a = o.assignments(0, 4, 2);
        assert_eq!(a.iter().map(Vec::len).sum::<usize>(), 8);
    }

    #[test]
    fn writes_dirty_pages_then_sync_flushes_and_blocks() {
        let mut o = os();
        spawn_n(&mut o, 1, 0);
        let _ = o.assignments(0, 4, 2);
        let write = IoDemand {
            write_bytes: 1 << 20, // 256 pages
            ..IoDemand::default()
        };
        let sub = o.submit_io(0, &write, 0);
        assert!(sub.commands.is_empty(), "writes buffer in page cache");
        assert_eq!(o.dirty_pages(), 256);

        let sync = IoDemand {
            sync: true,
            ..IoDemand::default()
        };
        let sub = o.submit_io(0, &sync, 0);
        assert_eq!(o.dirty_pages(), 0);
        assert_eq!(sub.commands.len(), 2, "1 MiB in 512 KiB commands");
        assert!(sub.commands.iter().all(|(_, c)| c.write));
        assert_eq!(sub.config_accesses, 8);
        // Thread is now blocked.
        assert_eq!(o.runnable_count(), 0);

        // Completing both commands wakes it.
        let ids: Vec<CommandId> = sub.commands.iter().map(|(_, c)| c.id).collect();
        o.on_completions(&ids[..1]);
        assert_eq!(o.runnable_count(), 0, "still one outstanding");
        o.on_completions(&ids[1..]);
        assert_eq!(o.runnable_count(), 1);
    }

    #[test]
    fn blocking_reads_block_nonblocking_do_not() {
        let mut o = os();
        spawn_n(&mut o, 2, 0);
        let _ = o.assignments(0, 4, 2);
        let read = IoDemand {
            read_bytes: 64 * 1024,
            read_hit_fraction: 0.0,
            blocking_reads: true,
            ..IoDemand::default()
        };
        let sub = o.submit_io(0, &read, 0);
        assert_eq!(sub.commands.len(), 1);
        assert_eq!(o.runnable_count(), 1, "reader blocked");

        let nonblocking = IoDemand {
            read_bytes: 64 * 1024,
            read_hit_fraction: 0.0,
            blocking_reads: false,
            ..IoDemand::default()
        };
        let _ = o.submit_io(1, &nonblocking, 0);
        assert_eq!(o.runnable_count(), 1, "second thread still runnable");
    }

    #[test]
    fn cache_hits_produce_no_commands() {
        let mut o = os();
        spawn_n(&mut o, 1, 0);
        let _ = o.assignments(0, 4, 2);
        let read = IoDemand {
            read_bytes: 1 << 20,
            read_hit_fraction: 1.0,
            blocking_reads: true,
            ..IoDemand::default()
        };
        let sub = o.submit_io(0, &read, 0);
        assert!(sub.commands.is_empty());
        assert_eq!(o.runnable_count(), 1);
    }

    #[test]
    fn background_writeback_kicks_in_above_threshold() {
        let cfg = OsConfig {
            page_cache_pages: 1000,
            dirty_background_ratio: 0.4,
            ..OsConfig::default()
        };
        let mut o = Os::new(cfg, 2, 4, 512 * 1024, SimRng::seed(6));
        spawn_n(&mut o, 1, 0);
        let _ = o.assignments(0, 4, 2);
        // 300 dirty pages: below 400-page threshold → no writeback.
        let _ = o.submit_io(
            0,
            &IoDemand {
                write_bytes: 300 * 4096,
                ..IoDemand::default()
            },
            0,
        );
        assert!(o.background_writeback().commands.is_empty());
        // 300 more: above threshold → bounded writeback.
        let _ = o.submit_io(
            0,
            &IoDemand {
                write_bytes: 300 * 4096,
                ..IoDemand::default()
            },
            0,
        );
        // Paced: fires within the first 8 calls.
        let mut fired = false;
        for _ in 0..8 {
            if !o.background_writeback().commands.is_empty() {
                fired = true;
                break;
            }
        }
        assert!(fired, "flusher fires within its pacing interval");
        assert!(o.dirty_pages() < 600);
    }

    #[test]
    fn sched_accounting_sums_and_resets() {
        let mut o = os();
        spawn_n(&mut o, 2, 0);
        let _ = o.assignments(0, 4, 2);
        o.record_execution(0, 0, 1_000);
        o.record_execution(0, 0, 500);
        o.record_execution(1, 2, 2_000);
        let d = o.take_sched_delta();
        assert_eq!(d.retired_on_cpu(0), 1_500);
        assert_eq!(d.retired_on_cpu(2), 2_000);
        assert_eq!(d.pids().len(), 2);
        assert_eq!(o.runtime_ms(o.pid_of(0)), 2, "two ticks recorded");
        assert!(o.take_sched_delta().entries.is_empty(), "window resets");
        assert_eq!(o.runtime_ms(o.pid_of(0)), 2, "cumulative survives");
    }

    #[test]
    fn pid_name_lookup() {
        let mut o = os();
        spawn_n(&mut o, 1, 0);
        let pid = o.pid_of(0);
        assert_eq!(o.name_of_pid(pid), Some("spin-loop"));
        assert_eq!(o.name_of_pid(super::ProcessId(999)), None);
    }

    #[test]
    fn commands_alternate_disks() {
        let mut o = os();
        spawn_n(&mut o, 1, 0);
        let _ = o.assignments(0, 4, 2);
        let _ = o.submit_io(
            0,
            &IoDemand {
                write_bytes: 4 << 20,
                ..IoDemand::default()
            },
            0,
        );
        let sub = o.submit_io(
            0,
            &IoDemand {
                sync: true,
                ..IoDemand::default()
            },
            0,
        );
        let disks: Vec<usize> = sub.commands.iter().map(|&(d, _)| d).collect();
        assert!(disks.contains(&0) && disks.contains(&1));
    }
}
