//! Front-side bus: the shared path every trickle-down event crosses.

use crate::config::BusConfig;

/// Per-tick bus activity.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BusActivity {
    /// Line transactions originated by processors this tick.
    pub cpu_lines: u64,
    /// Line transactions originated by DMA agents this tick.
    pub dma_lines: u64,
    /// Offered load over capacity (may exceed 1.0 when oversubscribed).
    pub utilization: f64,
    /// Lines actually serviced toward DRAM this tick.
    pub serviced_lines: u64,
}

impl BusActivity {
    /// Total offered lines.
    pub fn offered_lines(&self) -> u64 {
        self.cpu_lines + self.dma_lines
    }
}

/// The shared front-side bus with utilization-feedback throttling.
///
/// When offered load exceeds capacity the bus cannot clear it; the
/// simulator models the resulting back-pressure as a *throttle factor*
/// applied to memory-bound thread throughput on the next tick. This is
/// why "most workloads saturate (no increased subsystem utilization)
/// with eight threads" (§3.2.1) in the reproduction just as on the real
/// machine.
#[derive(Debug, Clone)]
pub struct FrontSideBus {
    cfg: BusConfig,
    throttle: f64,
}

impl FrontSideBus {
    /// Creates an uncongested bus.
    pub fn new(cfg: BusConfig) -> Self {
        Self { cfg, throttle: 1.0 }
    }

    /// Current throttle factor in `(0, 1]` — multiply memory-bound
    /// demand by this.
    pub fn throttle(&self) -> f64 {
        self.throttle
    }

    /// Arbitrates one tick of offered traffic and updates the throttle.
    pub fn arbitrate(&mut self, cpu_lines: u64, dma_lines: u64) -> BusActivity {
        let offered = (cpu_lines + dma_lines) as f64;
        let utilization = offered / self.cfg.capacity_lines_per_ms;
        let serviced = offered.min(self.cfg.capacity_lines_per_ms * 1.02);
        // Target throttle: capacity share if oversubscribed, else 1.
        let target = if utilization > 1.0 {
            1.0 / utilization
        } else {
            1.0
        };
        let s = self.cfg.throttle_smoothing.clamp(0.01, 1.0);
        self.throttle = (1.0 - s) * self.throttle + s * target;
        self.throttle = self.throttle.clamp(0.05, 1.0);
        BusActivity {
            cpu_lines,
            dma_lines,
            utilization,
            serviced_lines: serviced.round() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> FrontSideBus {
        FrontSideBus::new(BusConfig::default())
    }

    #[test]
    fn undersubscribed_bus_keeps_full_throttle() {
        let mut b = bus();
        for _ in 0..20 {
            let act = b.arbitrate(10_000, 1_000);
            assert!(act.utilization < 0.3);
            assert_eq!(act.serviced_lines, act.offered_lines());
        }
        assert!((b.throttle() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn oversubscription_converges_to_capacity_share() {
        let mut b = bus();
        for _ in 0..100 {
            b.arbitrate(60_000, 20_000); // 2x capacity
        }
        assert!((b.throttle() - 0.5).abs() < 0.02, "{}", b.throttle());
    }

    #[test]
    fn throttle_recovers_after_congestion() {
        let mut b = bus();
        for _ in 0..50 {
            b.arbitrate(160_000, 0);
        }
        assert!(b.throttle() < 0.3);
        for _ in 0..50 {
            b.arbitrate(1_000, 0);
        }
        assert!(b.throttle() > 0.95);
    }

    #[test]
    fn serviced_lines_capped_near_capacity() {
        let mut b = bus();
        let act = b.arbitrate(100_000, 100_000);
        assert!(act.serviced_lines as f64 <= 40_000.0 * 1.02 + 1.0);
        assert!(act.utilization > 4.9);
    }
}
