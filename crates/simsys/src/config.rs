//! Machine configuration.
//!
//! Defaults model the paper's target server: a 4-way Pentium 4 Xeon SMP
//! with two SMT contexts per processor, a shared front-side bus, DDR
//! memory, two I/O bridge chips and two always-spinning SCSI disks
//! (§3.1.1). All structs are plain data with public fields — they are
//! passive configuration records, validated once by
//! [`MachineConfig::validate`].

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Simulation tick length in milliseconds. One tick is the machine's
/// smallest unit of time accounting; counter sampling happens every
/// thousand ticks.
pub const TICK_MS: u64 = 1;

/// CPU complex configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Number of physical processors (paper: 4).
    pub num_cpus: usize,
    /// Hardware threads per processor (paper: 2, Hyper-Threading).
    pub smt_per_cpu: usize,
    /// Core clock in Hz. 2.0 GHz reproduces the paper's "~1.5 billion
    /// instructions per processor per second" at realistic IPC.
    pub freq_hz: f64,
    /// Maximum micro-ops fetched per cycle per core (paper: 3).
    pub fetch_width: f64,
    /// Total-throughput multiplier when both SMT contexts are busy
    /// (shared fetch/execute resources make 2 threads < 2× one thread).
    pub smt_efficiency: f64,
    /// Cycles of OS/interrupt overhead executed per timer interrupt even
    /// on an otherwise idle CPU.
    pub timer_overhead_cycles: u64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self {
            num_cpus: 4,
            smt_per_cpu: 2,
            freq_hz: 2.0e9,
            fetch_width: 3.0,
            smt_efficiency: 1.25,
            timer_overhead_cycles: 12_000,
        }
    }
}

impl CpuConfig {
    /// Core cycles elapsing in one tick.
    pub fn cycles_per_tick(&self) -> u64 {
        (self.freq_hz * TICK_MS as f64 / 1000.0).round() as u64
    }

    /// Total hardware thread contexts in the machine.
    pub fn total_contexts(&self) -> usize {
        self.num_cpus * self.smt_per_cpu
    }
}

/// Cache hierarchy configuration (per processor, sizes in bytes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// L1 data capacity.
    pub l1_bytes: u64,
    /// L2 capacity.
    pub l2_bytes: u64,
    /// L3 (last-level) capacity.
    pub l3_bytes: u64,
    /// Fraction of evicted L3 lines that are dirty and generate a
    /// write-back bus transaction (write-back, write-allocate policy).
    pub dirty_eviction_fraction: f64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            line_bytes: 64,
            l1_bytes: 16 * 1024,
            l2_bytes: 512 * 1024,
            l3_bytes: 2 * 1024 * 1024,
            dirty_eviction_fraction: 0.35,
        }
    }
}

impl CacheConfig {
    /// L1 capacity in lines.
    pub fn l1_lines(&self) -> f64 {
        (self.l1_bytes / self.line_bytes) as f64
    }
    /// L2 capacity in lines.
    pub fn l2_lines(&self) -> f64 {
        (self.l2_bytes / self.line_bytes) as f64
    }
    /// L3 capacity in lines.
    pub fn l3_lines(&self) -> f64 {
        (self.l3_bytes / self.line_bytes) as f64
    }
}

/// Hardware prefetcher configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefetchConfig {
    /// Maximum fraction of streaming demand misses the prefetcher can
    /// cover once fully ramped.
    pub max_coverage: f64,
    /// Extra useless lines fetched per covered line (inaccuracy).
    pub waste_fraction: f64,
    /// Exponential ramp constant: streams must persist ~this many misses
    /// per tick before coverage saturates.
    pub ramp_misses_per_tick: f64,
    /// Long-term training: ticks of sustained streaming before the unit
    /// reaches full aggressiveness. This is why the cache-miss memory
    /// model holds early in an instance ramp and fails late (Figure 4):
    /// as training matures, covered misses vanish from the miss
    /// counters while their lines keep crossing the bus.
    pub train_ticks: f64,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        Self {
            max_coverage: 0.75,
            waste_fraction: 0.18,
            ramp_misses_per_tick: 2_000.0,
            train_ticks: 40_000.0,
        }
    }
}

/// Front-side bus configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BusConfig {
    /// Sustainable line-sized transactions per millisecond, all agents
    /// combined (40 000 lines/ms × 64 B ≈ 2.56 GB/s).
    pub capacity_lines_per_ms: f64,
    /// Smoothing factor (0–1) for the utilization feedback that throttles
    /// core memory demand; higher reacts faster.
    pub throttle_smoothing: f64,
}

impl Default for BusConfig {
    fn default() -> Self {
        Self {
            capacity_lines_per_ms: 40_000.0,
            throttle_smoothing: 0.5,
        }
    }
}

/// DRAM subsystem configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Independent channels that can service lines in parallel.
    pub channels: f64,
    /// Channel-busy nanoseconds per line-sized access (activation +
    /// burst, amortised).
    pub service_ns_per_line: f64,
    /// Precharge residency as a fraction of active residency.
    pub precharge_ratio: f64,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self {
            channels: 2.0,
            service_ns_per_line: 45.0,
            precharge_ratio: 0.5,
        }
    }
}

/// I/O chip (PCI-X bridge) configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoConfig {
    /// Number of I/O bridge chips (paper: two, driving six PCI-X buses).
    pub num_chips: usize,
    /// Uncacheable configuration accesses per disk command submission
    /// (memory-mapped I/O doorbells and descriptors).
    pub config_accesses_per_command: u64,
    /// Extra DMA bus transactions of per-command overhead (descriptor
    /// fetches, completion writes) beyond the payload lines.
    pub overhead_lines_per_command: u64,
    /// Effectiveness of write combining: payload bus lines are
    /// `bytes/line_bytes × (1 + wc_inefficiency)` — small, unaligned
    /// transfers push the inefficiency up, severing the one-to-one
    /// mapping between I/O bytes and DMA transactions (§4.2.4).
    pub wc_inefficiency: f64,
}

impl Default for IoConfig {
    fn default() -> Self {
        Self {
            num_chips: 2,
            config_accesses_per_command: 4,
            overhead_lines_per_command: 3,
            wc_inefficiency: 0.05,
        }
    }
}

/// Network interface configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NicConfig {
    /// Bytes per coalesced interrupt batch.
    pub coalesce_bytes: u64,
    /// Ticks a partial batch may wait before a flush interrupt.
    pub coalesce_timeout_ticks: u64,
}

impl Default for NicConfig {
    fn default() -> Self {
        Self {
            coalesce_bytes: 64 * 1024,
            coalesce_timeout_ticks: 2,
        }
    }
}

/// SCSI disk configuration (per disk).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskConfig {
    /// Number of disks (paper: 2).
    pub num_disks: usize,
    /// Sustained media transfer rate in bytes per millisecond
    /// (60 000 B/ms = ~57 MiB/s).
    pub transfer_bytes_per_ms: f64,
    /// Minimum seek time in milliseconds (track-to-track).
    pub min_seek_ms: f64,
    /// Additional seek milliseconds per unit of (abstract 0–1) distance.
    pub seek_ms_per_distance: f64,
    /// Platter revolution time in ms (10 000 rpm → 6 ms).
    pub revolution_ms: f64,
    /// Largest transfer carried by a single command; bigger requests are
    /// split (and each command completes with one interrupt).
    pub max_command_bytes: u64,
}

impl Default for DiskConfig {
    fn default() -> Self {
        Self {
            num_disks: 2,
            transfer_bytes_per_ms: 60_000.0,
            min_seek_ms: 0.5,
            seek_ms_per_distance: 7.0,
            revolution_ms: 6.0,
            max_command_bytes: 512 * 1024,
        }
    }
}

/// Operating-system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OsConfig {
    /// Timer interrupt rate per CPU in Hz (Linux HZ=1000 era).
    pub timer_hz: u64,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Page-cache capacity in pages (262 144 × 4 KiB = 1 GiB).
    pub page_cache_pages: u64,
    /// Dirty-page fraction above which background write-back starts.
    pub dirty_background_ratio: f64,
    /// Maximum bytes of write-back submitted per tick by the background
    /// flusher.
    pub writeback_bytes_per_tick: u64,
}

impl Default for OsConfig {
    fn default() -> Self {
        Self {
            timer_hz: 1000,
            page_bytes: 4096,
            page_cache_pages: 262_144,
            dirty_background_ratio: 0.40,
            writeback_bytes_per_tick: 512 * 1024,
        }
    }
}

/// Complete machine configuration.
///
/// # Example
///
/// ```
/// use tdp_simsys::MachineConfig;
///
/// let mut cfg = MachineConfig::default();
/// cfg.cpu.num_cpus = 2;
/// cfg.seed = 7;
/// cfg.validate().expect("still consistent");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Master RNG seed; every stochastic component derives from it.
    pub seed: u64,
    /// CPU complex.
    pub cpu: CpuConfig,
    /// Cache hierarchy.
    pub cache: CacheConfig,
    /// Hardware prefetcher.
    pub prefetch: PrefetchConfig,
    /// Front-side bus.
    pub bus: BusConfig,
    /// DRAM.
    pub dram: DramConfig,
    /// I/O chips.
    pub io: IoConfig,
    /// Network interface.
    pub nic: NicConfig,
    /// Disks.
    pub disk: DiskConfig,
    /// Operating system.
    pub os: OsConfig,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            seed: 0x5eed_1007,
            cpu: CpuConfig::default(),
            cache: CacheConfig::default(),
            prefetch: PrefetchConfig::default(),
            bus: BusConfig::default(),
            dram: DramConfig::default(),
            io: IoConfig::default(),
            nic: NicConfig::default(),
            disk: DiskConfig::default(),
            os: OsConfig::default(),
        }
    }
}

/// Error returned by [`MachineConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid machine configuration: {}", self.0)
    }
}

impl Error for ConfigError {}

impl MachineConfig {
    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let fail = |msg: &str| Err(ConfigError(msg.to_owned()));
        if self.cpu.num_cpus == 0 || self.cpu.num_cpus > 64 {
            return fail("num_cpus must be 1..=64");
        }
        if self.cpu.smt_per_cpu == 0 || self.cpu.smt_per_cpu > 4 {
            return fail("smt_per_cpu must be 1..=4");
        }
        if !(self.cpu.freq_hz.is_finite() && self.cpu.freq_hz > 1e6) {
            return fail("freq_hz must exceed 1 MHz");
        }
        if self.cpu.fetch_width <= 0.0 {
            return fail("fetch_width must be positive");
        }
        if self.cache.line_bytes == 0 || !self.cache.line_bytes.is_power_of_two() {
            return fail("line_bytes must be a power of two");
        }
        if self.cache.l1_bytes >= self.cache.l2_bytes || self.cache.l2_bytes >= self.cache.l3_bytes
        {
            return fail("cache levels must grow: l1 < l2 < l3");
        }
        if !(0.0..=1.0).contains(&self.cache.dirty_eviction_fraction) {
            return fail("dirty_eviction_fraction must be in [0,1]");
        }
        if !(0.0..=1.0).contains(&self.prefetch.max_coverage) {
            return fail("prefetch max_coverage must be in [0,1]");
        }
        if self.bus.capacity_lines_per_ms <= 0.0 {
            return fail("bus capacity must be positive");
        }
        if self.dram.channels <= 0.0 || self.dram.service_ns_per_line <= 0.0 {
            return fail("dram channels and service time must be positive");
        }
        if self.nic.coalesce_bytes == 0 {
            return fail("nic coalesce_bytes must be positive");
        }
        if self.disk.num_disks == 0 || self.disk.num_disks > 4 {
            return fail("num_disks must be 1..=4");
        }
        if self.disk.transfer_bytes_per_ms <= 0.0 {
            return fail("disk transfer rate must be positive");
        }
        if self.disk.max_command_bytes == 0 {
            return fail("max_command_bytes must be positive");
        }
        if self.os.timer_hz == 0 || self.os.timer_hz > 1000 {
            return fail("timer_hz must be 1..=1000 (one per tick at most)");
        }
        if self.os.page_bytes == 0 || self.os.page_cache_pages == 0 {
            return fail("page cache must be non-empty");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        MachineConfig::default().validate().unwrap();
    }

    #[test]
    fn default_matches_paper_platform() {
        let c = MachineConfig::default();
        assert_eq!(c.cpu.num_cpus, 4);
        assert_eq!(c.cpu.smt_per_cpu, 2);
        assert_eq!(c.cpu.total_contexts(), 8);
        assert_eq!(c.disk.num_disks, 2);
        assert_eq!(c.io.num_chips, 2);
        assert_eq!(c.cpu.cycles_per_tick(), 2_000_000);
    }

    #[test]
    fn validation_catches_inverted_caches() {
        let mut c = MachineConfig::default();
        c.cache.l2_bytes = c.cache.l3_bytes * 2;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_zero_cpus_and_bad_timer() {
        let mut c = MachineConfig::default();
        c.cpu.num_cpus = 0;
        assert!(c.validate().is_err());
        let mut c = MachineConfig::default();
        c.os.timer_hz = 2000;
        assert!(c.validate().is_err());
    }

    #[test]
    fn config_error_display_names_problem() {
        let mut c = MachineConfig::default();
        c.cache.line_bytes = 48;
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("power of two"));
    }

    #[test]
    fn cache_line_counts() {
        let c = CacheConfig::default();
        assert_eq!(c.l1_lines(), 256.0);
        assert_eq!(c.l3_lines(), 32_768.0);
    }
}
