//! SCSI disk model with seek / rotational-wait / transfer phases.
//!
//! The paper's disks have no power management: platters always spin, so
//! idle power is ~80% of peak (Zedlewski et al. [9]) and the entire
//! dynamic range lives in head movement and media transfer. Each command
//! transfers via DMA while in the transfer phase and raises exactly one
//! completion interrupt — the event the Equation-4 disk model feeds on.

use crate::config::DiskConfig;
use crate::rng::SimRng;

/// Identifier for an outstanding disk command, used by the OS to unblock
/// waiting threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CommandId(pub u64);

/// A queued disk command.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskCommand {
    /// Command id (machine-unique).
    pub id: CommandId,
    /// Abstract position of the data on the platter, `0.0..1.0`.
    pub position: f64,
    /// Payload bytes.
    pub bytes: u64,
    /// Write (true) or read (false).
    pub write: bool,
}

/// Mode residency of one disk over one tick; fractions sum to 1.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DiskModeFractions {
    /// Head in motion.
    pub seek: f64,
    /// Waiting for rotation.
    pub rotate_wait: f64,
    /// Reading from media.
    pub read: f64,
    /// Writing to media.
    pub write: f64,
    /// Spinning idle (never standby — no power management).
    pub idle: f64,
}

/// A completed command, reported to the machine for interrupt delivery
/// and OS wake-ups.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskCompletion {
    /// The finished command.
    pub id: CommandId,
    /// Whether it was a write.
    pub write: bool,
    /// Payload bytes moved.
    pub bytes: u64,
}

/// Per-tick disk outcome.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiskTickResult {
    /// Mode residency this tick.
    pub modes: DiskModeFractions,
    /// Bytes DMA-transferred this tick (read: disk→memory, write:
    /// memory→disk).
    pub dma_read_bytes: u64,
    /// Bytes DMA-transferred for writes.
    pub dma_write_bytes: u64,
    /// Commands that completed this tick.
    pub completions: Vec<DiskCompletion>,
}

impl DiskTickResult {
    /// Clears the result for reuse, keeping the completion buffer's
    /// allocation.
    pub fn reset(&mut self) {
        self.modes = DiskModeFractions::default();
        self.dma_read_bytes = 0;
        self.dma_write_bytes = 0;
        self.completions.clear();
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Seek { remaining_ms: f64 },
    Rotate { remaining_ms: f64 },
    Transfer { remaining_bytes: f64 },
}

#[derive(Debug, Clone)]
struct ActiveCommand {
    cmd: DiskCommand,
    phase: Phase,
}

/// One simulated SCSI disk.
#[derive(Debug, Clone)]
pub struct ScsiDisk {
    cfg: DiskConfig,
    queue: Vec<DiskCommand>,
    active: Option<ActiveCommand>,
    head_position: f64,
    rng: SimRng,
}

impl ScsiDisk {
    /// Creates a disk with its head parked at position 0.
    pub fn new(cfg: DiskConfig, rng: SimRng) -> Self {
        Self {
            cfg,
            queue: Vec::new(),
            active: None,
            head_position: 0.0,
            rng,
        }
    }

    /// Enqueues a command.
    pub fn submit(&mut self, cmd: DiskCommand) {
        self.queue.push(cmd);
    }

    /// Outstanding commands (queued + active).
    pub fn outstanding(&self) -> usize {
        self.queue.len() + usize::from(self.active.is_some())
    }

    /// Advances the disk one millisecond.
    pub fn tick(&mut self) -> DiskTickResult {
        let mut result = DiskTickResult::default();
        self.tick_into(&mut result);
        result
    }

    /// Like [`tick`](Self::tick) but writing into a caller-owned result —
    /// the allocation-free hot path. `result` is
    /// [`reset`](DiskTickResult::reset) first; its buffers are reused.
    pub fn tick_into(&mut self, result: &mut DiskTickResult) {
        result.reset();
        let mut budget_ms = 1.0f64;

        while budget_ms > 1e-9 {
            if self.active.is_none() {
                let Some(next) = self.pick_nearest() else {
                    result.modes.idle += budget_ms;
                    break;
                };
                let distance = (next.position - self.head_position).abs();
                let seek_ms = self.cfg.min_seek_ms + distance * self.cfg.seek_ms_per_distance;
                self.head_position = next.position;
                self.active = Some(ActiveCommand {
                    cmd: next,
                    phase: Phase::Seek {
                        remaining_ms: seek_ms,
                    },
                });
            }

            let active = self.active.as_mut().expect("just ensured");
            match active.phase {
                Phase::Seek { remaining_ms } => {
                    let spent = remaining_ms.min(budget_ms);
                    result.modes.seek += spent;
                    budget_ms -= spent;
                    let left = remaining_ms - spent;
                    if left <= 1e-9 {
                        let rot = self.rng.uniform() * self.cfg.revolution_ms;
                        active.phase = Phase::Rotate { remaining_ms: rot };
                    } else {
                        active.phase = Phase::Seek { remaining_ms: left };
                    }
                }
                Phase::Rotate { remaining_ms } => {
                    let spent = remaining_ms.min(budget_ms);
                    result.modes.rotate_wait += spent;
                    budget_ms -= spent;
                    let left = remaining_ms - spent;
                    if left <= 1e-9 {
                        active.phase = Phase::Transfer {
                            remaining_bytes: active.cmd.bytes as f64,
                        };
                    } else {
                        active.phase = Phase::Rotate { remaining_ms: left };
                    }
                }
                Phase::Transfer { remaining_bytes } => {
                    let can_move = self.cfg.transfer_bytes_per_ms * budget_ms;
                    let moved = remaining_bytes.min(can_move);
                    let spent = moved / self.cfg.transfer_bytes_per_ms;
                    budget_ms -= spent;
                    if active.cmd.write {
                        result.modes.write += spent;
                        result.dma_write_bytes += moved.round() as u64;
                    } else {
                        result.modes.read += spent;
                        result.dma_read_bytes += moved.round() as u64;
                    }
                    let left = remaining_bytes - moved;
                    if left <= 0.5 {
                        result.completions.push(DiskCompletion {
                            id: active.cmd.id,
                            write: active.cmd.write,
                            bytes: active.cmd.bytes,
                        });
                        self.active = None;
                    } else {
                        active.phase = Phase::Transfer {
                            remaining_bytes: left,
                        };
                    }
                }
            }
        }

        // Normalise residency to exactly one tick.
        let m = &mut result.modes;
        let sum = m.seek + m.rotate_wait + m.read + m.write + m.idle;
        if sum > 0.0 {
            m.seek /= sum;
            m.rotate_wait /= sum;
            m.read /= sum;
            m.write /= sum;
            m.idle /= sum;
        } else {
            m.idle = 1.0;
        }
    }

    /// Elevator-lite scheduling: service the queued command nearest the
    /// head.
    fn pick_nearest(&mut self) -> Option<DiskCommand> {
        if self.queue.is_empty() {
            return None;
        }
        let head = self.head_position;
        let (idx, _) = self
            .queue
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let da = (a.position - head).abs();
                let db = (b.position - head).abs();
                da.partial_cmp(&db).expect("positions are finite")
            })
            .expect("non-empty");
        Some(self.queue.swap_remove(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> ScsiDisk {
        ScsiDisk::new(DiskConfig::default(), SimRng::seed(11))
    }

    fn cmd(id: u64, pos: f64, bytes: u64, write: bool) -> DiskCommand {
        DiskCommand {
            id: CommandId(id),
            position: pos,
            bytes,
            write,
        }
    }

    #[test]
    fn idle_disk_spins_idle() {
        let mut d = disk();
        let r = d.tick();
        assert_eq!(r.modes.idle, 1.0);
        assert!(r.completions.is_empty());
        assert_eq!(r.dma_read_bytes + r.dma_write_bytes, 0);
    }

    #[test]
    fn command_progresses_through_phases_and_completes() {
        let mut d = disk();
        d.submit(cmd(1, 0.5, 120_000, false));
        let mut seek = 0.0;
        let mut rot = 0.0;
        let mut read = 0.0;
        let mut done = Vec::new();
        let mut bytes = 0;
        for _ in 0..30 {
            let r = d.tick();
            seek += r.modes.seek;
            rot += r.modes.rotate_wait;
            read += r.modes.read;
            bytes += r.dma_read_bytes;
            done.extend(r.completions);
            if !done.is_empty() {
                break;
            }
        }
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, CommandId(1));
        assert!(!done[0].write);
        assert!(seek > 0.0, "seek happened");
        assert!(rot >= 0.0);
        assert!(read > 0.0, "transfer happened");
        assert_eq!(bytes, 120_000, "all payload DMA'd");
        assert_eq!(d.outstanding(), 0);
    }

    #[test]
    fn mode_fractions_sum_to_one_every_tick() {
        let mut d = disk();
        for i in 0..20 {
            d.submit(cmd(i, (i as f64 * 0.37) % 1.0, 64_000, i % 2 == 0));
        }
        for _ in 0..100 {
            let r = d.tick();
            let m = r.modes;
            let sum = m.seek + m.rotate_wait + m.read + m.write + m.idle;
            assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        }
    }

    #[test]
    fn nearest_command_first() {
        let mut d = disk();
        d.submit(cmd(1, 0.9, 1_000, false));
        d.submit(cmd(2, 0.05, 1_000, false));
        let mut order = Vec::new();
        for _ in 0..200 {
            let r = d.tick();
            order.extend(r.completions.iter().map(|c| c.id));
            if order.len() == 2 {
                break;
            }
        }
        assert_eq!(order, vec![CommandId(2), CommandId(1)], "head starts at 0");
    }

    #[test]
    fn writes_accumulate_write_mode_and_write_dma() {
        let mut d = disk();
        d.submit(cmd(1, 0.0, 300_000, true));
        let mut wrote = 0.0;
        let mut bytes = 0;
        for _ in 0..30 {
            let r = d.tick();
            wrote += r.modes.write;
            bytes += r.dma_write_bytes;
        }
        assert!(wrote > 0.0);
        assert_eq!(bytes, 300_000);
    }

    #[test]
    fn saturating_queue_keeps_disk_busy() {
        let mut d = disk();
        for i in 0..500 {
            d.submit(cmd(i, (i as f64 * 0.13) % 1.0, 256_000, i % 2 == 0));
        }
        let mut idle = 0.0;
        for _ in 0..200 {
            idle += d.tick().modes.idle;
        }
        assert!(idle < 1.0, "disk nearly never idle, got {idle}");
    }
}
