//! I/O bridge chips: the DMA path between devices and memory.
//!
//! The bridges convert device byte streams into line-sized bus
//! transactions. Write combining and per-command overhead make the
//! byte↔transaction mapping non-linear — the reason the paper found "DMA
//! accesses to main memory seemed to be the logical best choice" for the
//! I/O power model and yet interrupts won (§4.2.4).

use crate::config::IoConfig;

/// Per-tick I/O chip activity, consumed by the ground-truth power meter
/// and fed to the bus as DMA traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoActivity {
    /// Payload bytes switched through the chips this tick.
    pub bytes_switched: u64,
    /// Line-sized DMA bus transactions generated (payload + overhead,
    /// after write combining).
    pub dma_lines: u64,
    /// Uncacheable configuration accesses performed by CPUs against the
    /// chips this tick.
    pub config_accesses: u64,
    /// Device commands that started DMA this tick (descriptor overhead).
    pub commands: u64,
}

/// The pair of I/O bridge chips (modelled as one aggregate).
#[derive(Debug, Clone)]
pub struct IoChip {
    cfg: IoConfig,
    line_bytes: u64,
    carry_bytes: u64,
}

impl IoChip {
    /// Creates the bridge aggregate. `line_bytes` is the bus line size.
    pub fn new(cfg: IoConfig, line_bytes: u64) -> Self {
        Self {
            cfg,
            line_bytes,
            carry_bytes: 0,
        }
    }

    /// Converts one tick of device traffic into bus transactions.
    ///
    /// * `dma_bytes` — payload bytes devices moved this tick;
    /// * `commands_started` — device commands whose DMA began this tick
    ///   (each costs descriptor-fetch/completion-write overhead lines);
    /// * `config_accesses` — MMIO accesses CPUs made to program the
    ///   chips.
    pub fn tick(
        &mut self,
        dma_bytes: u64,
        commands_started: u64,
        config_accesses: u64,
    ) -> IoActivity {
        // Write combining: whole lines go out; the remainder carries to
        // the next tick instead of wasting a transaction.
        let total = self.carry_bytes + dma_bytes;
        let payload_lines = total / self.line_bytes;
        self.carry_bytes = total % self.line_bytes;
        let inefficiency = (payload_lines as f64 * self.cfg.wc_inefficiency).round() as u64;
        let overhead = commands_started * self.cfg.overhead_lines_per_command;
        IoActivity {
            bytes_switched: dma_bytes,
            dma_lines: payload_lines + inefficiency + overhead,
            config_accesses,
            commands: commands_started,
        }
    }

    /// Configuration accesses the OS performs to submit one command.
    pub fn config_accesses_per_command(&self) -> u64 {
        self.cfg.config_accesses_per_command
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> IoChip {
        IoChip::new(IoConfig::default(), 64)
    }

    #[test]
    fn idle_chip_produces_nothing() {
        let mut c = chip();
        let a = c.tick(0, 0, 0);
        assert_eq!(a, IoActivity::default());
    }

    #[test]
    fn bulk_transfer_is_roughly_one_line_per_64_bytes() {
        let mut c = chip();
        let a = c.tick(64 * 1000, 1, 4);
        // 1000 payload + 5% inefficiency + 3 overhead
        assert_eq!(a.dma_lines, 1000 + 50 + 3);
        assert_eq!(a.config_accesses, 4);
    }

    #[test]
    fn sub_line_bytes_carry_to_next_tick() {
        let mut c = chip();
        let a1 = c.tick(32, 0, 0);
        assert_eq!(a1.dma_lines, 0, "half a line buffered");
        let a2 = c.tick(32, 0, 0);
        assert_eq!(a2.dma_lines, 1, "combined into one transaction");
    }

    #[test]
    fn command_overhead_breaks_byte_proportionality() {
        let mut big = chip();
        let one_big = big.tick(64 * 100, 1, 0);
        let mut small = chip();
        let mut many_small_lines = 0;
        for _ in 0..100 {
            many_small_lines += small.tick(64, 1, 0).dma_lines;
        }
        assert!(
            many_small_lines > one_big.dma_lines * 2,
            "same bytes, far more transactions: {many_small_lines} vs {}",
            one_big.dma_lines
        );
    }
}
