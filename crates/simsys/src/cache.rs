//! Stack-distance cache hierarchy model.
//!
//! Each thread characterises its accesses with a [`ReuseProfile`]; this
//! module turns per-tick access counts into per-level miss counts for a
//! three-level write-back, write-allocate hierarchy. SMT co-scheduling
//! shrinks the capacity each thread sees.

use crate::behavior::ReuseProfile;
use crate::config::CacheConfig;
use crate::rng::SimRng;

/// Per-tick cache outcome for one thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheTraffic {
    /// Accesses that missed L1.
    pub l1_misses: u64,
    /// Accesses that missed L2.
    pub l2_misses: u64,
    /// *Loads* that missed L3 (the paper's Equation-2 event).
    pub l3_load_misses: u64,
    /// Stores (read-for-ownership fills) that missed L3.
    pub l3_store_misses: u64,
    /// Dirty evictions leaving L3 toward memory.
    pub writeback_lines: u64,
}

impl CacheTraffic {
    /// All L3 misses, loads plus RFOs.
    pub fn l3_total_misses(&self) -> u64 {
        self.l3_load_misses + self.l3_store_misses
    }

    /// Line-sized memory reads demanded by this traffic (fills for all
    /// L3 misses — write-allocate brings store-missed lines in too).
    pub fn demand_fill_lines(&self) -> u64 {
        self.l3_total_misses()
    }
}

/// The three-level hierarchy of one processor.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    cfg: CacheConfig,
}

impl CacheHierarchy {
    /// Creates a hierarchy with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        Self { cfg }
    }

    /// The geometry in use.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Simulates one tick of accesses for one thread.
    ///
    /// * `loads`/`stores` — access counts this tick;
    /// * `reuse` — the thread's reuse-distance profile;
    /// * `capacity_share` — fraction of each level the thread effectively
    ///   owns (1.0 alone, ~0.5 when SMT co-scheduled);
    /// * `rng` — supplies Poisson jitter around the expected counts.
    pub fn simulate(
        &self,
        loads: u64,
        stores: u64,
        reuse: &ReuseProfile,
        capacity_share: f64,
        rng: &mut SimRng,
    ) -> CacheTraffic {
        let accesses = (loads + stores) as f64;
        if accesses == 0.0 {
            return CacheTraffic::default();
        }
        let share = capacity_share.clamp(0.05, 1.0);
        let h1 = reuse.hit_fraction(self.cfg.l1_lines() * share);
        let h2 = reuse.hit_fraction(self.cfg.l2_lines() * share);
        let h3 = reuse.hit_fraction(self.cfg.l3_lines() * share);
        // Hit fractions are cumulative; misses at each level:
        let m1 = accesses * (1.0 - h1);
        let m2 = accesses * (1.0 - h2.max(h1));
        let m3 = accesses * (1.0 - h3.max(h2).max(h1));

        let l1_misses = rng.poisson(m1);
        let l2_misses = rng.poisson(m2).min(l1_misses);
        let l3_misses = rng.poisson(m3).min(l2_misses);

        let load_fraction = loads as f64 / accesses;
        let l3_load_misses = (l3_misses as f64 * load_fraction).round() as u64;
        let l3_store_misses = l3_misses - l3_load_misses;
        let writeback_lines = rng.poisson(l3_misses as f64 * self.cfg.dirty_eviction_fraction);

        CacheTraffic {
            l1_misses,
            l2_misses,
            l3_load_misses,
            l3_store_misses,
            writeback_lines,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(CacheConfig::default())
    }

    #[test]
    fn resident_workload_never_misses_l3() {
        let mut rng = SimRng::seed(1);
        let t = hierarchy().simulate(
            100_000,
            10_000,
            &ReuseProfile::cache_resident(),
            1.0,
            &mut rng,
        );
        assert_eq!(t.l3_total_misses(), 0);
        assert_eq!(t.writeback_lines, 0);
    }

    #[test]
    fn streaming_workload_misses_everywhere() {
        let mut rng = SimRng::seed(2);
        let t = hierarchy().simulate(100_000, 0, &ReuseProfile::streaming(), 1.0, &mut rng);
        // All levels miss ~100%, modulo Poisson noise.
        assert!(t.l1_misses > 95_000);
        assert!(t.l3_load_misses as f64 > 0.95 * t.l1_misses as f64 - 2_000.0);
        assert_eq!(t.l3_store_misses, 0, "no stores issued");
    }

    #[test]
    fn miss_counts_are_monotone_down_the_hierarchy() {
        let mut rng = SimRng::seed(3);
        let profile = ReuseProfile::new(&[
            (64.0, 0.5),
            (4_096.0, 0.3),
            (100_000.0, 0.15),
            (f64::INFINITY, 0.05),
        ]);
        for _ in 0..50 {
            let t = hierarchy().simulate(50_000, 20_000, &profile, 1.0, &mut rng);
            assert!(t.l1_misses >= t.l2_misses);
            assert!(t.l2_misses >= t.l3_total_misses());
        }
    }

    #[test]
    fn smaller_share_raises_misses() {
        let mut rng_a = SimRng::seed(4);
        let mut rng_b = SimRng::seed(4);
        // Working set sized to fit L3 alone but not at half share.
        let profile = ReuseProfile::new(&[(20_000.0, 1.0)]);
        let alone = hierarchy().simulate(100_000, 0, &profile, 1.0, &mut rng_a);
        let shared = hierarchy().simulate(100_000, 0, &profile, 0.5, &mut rng_b);
        assert_eq!(alone.l3_load_misses, 0);
        assert!(shared.l3_load_misses > 90_000);
    }

    #[test]
    fn zero_accesses_zero_traffic() {
        let mut rng = SimRng::seed(5);
        let t = hierarchy().simulate(0, 0, &ReuseProfile::streaming(), 1.0, &mut rng);
        assert_eq!(t, CacheTraffic::default());
    }

    #[test]
    fn load_store_split_respects_ratio() {
        let mut rng = SimRng::seed(6);
        let t = hierarchy().simulate(75_000, 25_000, &ReuseProfile::streaming(), 1.0, &mut rng);
        let total = t.l3_total_misses() as f64;
        let load_frac = t.l3_load_misses as f64 / total;
        assert!((load_frac - 0.75).abs() < 0.02, "load_frac {load_frac}");
    }
}
