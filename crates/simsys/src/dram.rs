//! DRAM bank-state model.
//!
//! Ground-truth memory power in the paper's framework follows Janzen's
//! DDR power methodology [8]: what matters is how much time the devices
//! spend **active** (servicing reads/writes), in **precharge**, and
//! **idle**, plus the read/write mix. None of that is visible to the
//! CPU's counters — which is precisely why the paper must *infer* it from
//! bus transactions. This module produces those state residencies from
//! serviced line counts.

use crate::config::DramConfig;

/// Per-tick DRAM activity, consumed by the ground-truth power meter.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DramActivity {
    /// Line-sized read accesses serviced this tick.
    pub reads: u64,
    /// Line-sized write accesses serviced this tick.
    pub writes: u64,
    /// Fraction of the tick the devices were in the active state.
    pub frac_active: f64,
    /// Fraction in precharge.
    pub frac_precharge: f64,
    /// Fraction idle (powered, clock-enabled, no access).
    pub frac_idle: f64,
}

/// The DRAM array + controller model.
#[derive(Debug, Clone)]
pub struct DramModel {
    cfg: DramConfig,
}

impl DramModel {
    /// Creates the model.
    pub fn new(cfg: DramConfig) -> Self {
        Self { cfg }
    }

    /// Converts one tick of serviced traffic into state residency.
    ///
    /// `reads` and `writes` are line accesses actually delivered by the
    /// bus this tick (1 ms).
    pub fn tick(&self, reads: u64, writes: u64) -> DramActivity {
        const NS_PER_TICK: f64 = 1_000_000.0;
        let lines = (reads + writes) as f64;
        let busy_ns = lines * self.cfg.service_ns_per_line / self.cfg.channels;
        let frac_active = (busy_ns / NS_PER_TICK).min(0.95);
        let frac_precharge = (frac_active * self.cfg.precharge_ratio).min(1.0 - frac_active);
        let frac_idle = (1.0 - frac_active - frac_precharge).max(0.0);
        DramActivity {
            reads,
            writes,
            frac_active,
            frac_precharge,
            frac_idle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> DramModel {
        DramModel::new(DramConfig::default())
    }

    #[test]
    fn idle_dram_is_fully_idle() {
        let a = dram().tick(0, 0);
        assert_eq!(a.frac_active, 0.0);
        assert_eq!(a.frac_precharge, 0.0);
        assert_eq!(a.frac_idle, 1.0);
    }

    #[test]
    fn residency_fractions_always_sum_to_one() {
        for lines in [0u64, 100, 10_000, 40_000, 1_000_000] {
            let a = dram().tick(lines / 2, lines / 2);
            let sum = a.frac_active + a.frac_precharge + a.frac_idle;
            assert!((sum - 1.0).abs() < 1e-12, "lines {lines}: sum {sum}");
            assert!(a.frac_active <= 0.95);
        }
    }

    #[test]
    fn activity_is_monotone_in_traffic() {
        let mut prev = 0.0;
        for lines in [0u64, 5_000, 10_000, 20_000, 40_000] {
            let a = dram().tick(lines, 0);
            assert!(a.frac_active >= prev);
            prev = a.frac_active;
        }
    }

    #[test]
    fn default_geometry_saturates_near_bus_capacity() {
        // 40 000 lines/ms at 45 ns / 2 channels → 0.9 active fraction.
        let a = dram().tick(20_000, 20_000);
        assert!((a.frac_active - 0.9).abs() < 1e-9, "{}", a.frac_active);
    }
}
