//! Machine-level scenario tests across configuration variants.

use tdp_counters::PerfEvent;
use tdp_simsys::behavior::{spin_loop_behavior, IoDemand};
use tdp_simsys::{Machine, MachineConfig, ReuseProfile, ThreadBehavior, TickContext, TickDemand};

struct FileWriter;
impl ThreadBehavior for FileWriter {
    fn name(&self) -> &str {
        "file-writer"
    }
    fn demand(&mut self, ctx: &mut TickContext<'_>) -> TickDemand {
        TickDemand {
            target_upc: 0.8,
            io: IoDemand {
                write_bytes: 256 * 1024,
                sync: ctx.now_ms.is_multiple_of(400),
                ..IoDemand::default()
            },
            ..TickDemand::default()
        }
    }
}

struct Streamer;
impl ThreadBehavior for Streamer {
    fn name(&self) -> &str {
        "streamer"
    }
    fn demand(&mut self, _ctx: &mut TickContext<'_>) -> TickDemand {
        TickDemand {
            target_upc: 0.9,
            loads_per_uop: 0.4,
            reuse: ReuseProfile::streaming(),
            streaming_fraction: 0.9,
            memory_sensitivity: 0.9,
            ..TickDemand::default()
        }
    }
}

fn run(machine: &mut Machine, ms: u64) {
    for _ in 0..ms {
        machine.tick();
    }
}

#[test]
fn uniprocessor_configuration_works() {
    let mut cfg = MachineConfig::default();
    cfg.cpu.num_cpus = 1;
    cfg.cpu.smt_per_cpu = 1;
    let mut m = Machine::new(cfg);
    m.os_mut().spawn(Box::new(spin_loop_behavior(2.0)), 0);
    m.os_mut().spawn(Box::new(spin_loop_behavior(2.0)), 0);
    run(&mut m, 2000);
    let s = m.read_counters();
    assert_eq!(s.num_cpus(), 1);
    // Two runnable threads on one context: round-robin shares the CPU.
    let upc = s.total(PerfEvent::FetchedUops).unwrap() as f64
        / s.total(PerfEvent::Cycles).unwrap() as f64;
    assert!(upc > 1.8 && upc < 2.4, "single context saturated: {upc}");
}

#[test]
fn single_disk_machine_still_completes_io() {
    let mut cfg = MachineConfig::default();
    cfg.disk.num_disks = 1;
    let mut m = Machine::new(cfg);
    m.os_mut().spawn(Box::new(FileWriter), 0);
    run(&mut m, 3000);
    let s = m.read_counters();
    assert!(s.total(PerfEvent::DiskInterrupts).unwrap() > 0);
    assert!(s.interrupts.total_disk() > 0);
}

#[test]
fn slower_timer_reduces_timer_interrupts_proportionally() {
    let count_timers = |hz: u64| {
        let mut cfg = MachineConfig::default();
        cfg.os.timer_hz = hz;
        let mut m = Machine::new(cfg);
        run(&mut m, 4000);
        m.read_counters().total(PerfEvent::TimerInterrupts).unwrap()
    };
    let fast = count_timers(1000);
    let slow = count_timers(250);
    assert_eq!(fast, 4 * slow, "{fast} vs {slow}");
}

#[test]
fn smaller_l3_raises_visible_misses() {
    let misses_with_l3 = |l3_bytes: u64| {
        let mut cfg = MachineConfig::default();
        cfg.cache.l3_bytes = l3_bytes;
        // Disable prefetching so cache geometry is the only variable.
        cfg.prefetch.max_coverage = 0.0;
        let mut m = Machine::new(cfg);
        // Working set between the two L3 sizes.
        struct MidSet;
        impl ThreadBehavior for MidSet {
            fn name(&self) -> &str {
                "mid-set"
            }
            fn demand(&mut self, _: &mut TickContext<'_>) -> TickDemand {
                TickDemand {
                    target_upc: 1.0,
                    loads_per_uop: 0.4,
                    reuse: ReuseProfile::new(&[(20_000.0, 1.0)]),
                    memory_sensitivity: 0.0,
                    ..TickDemand::default()
                }
            }
        }
        m.os_mut().spawn(Box::new(MidSet), 0);
        run(&mut m, 1500);
        m.read_counters().total(PerfEvent::L3LoadMisses).unwrap()
    };
    let big = misses_with_l3(4 * 1024 * 1024); // 65536 lines: hits
    let small = misses_with_l3(1024 * 1024); // 16384 lines: misses
    assert!(
        small > big.max(1) * 100,
        "capacity misses appear: {big} vs {small}"
    );
}

#[test]
fn mixed_compute_and_disk_tenants_do_not_interfere_logically() {
    let mut m = Machine::new(MachineConfig::default());
    m.os_mut().spawn(Box::new(spin_loop_behavior(2.5)), 0);
    m.os_mut().spawn(Box::new(FileWriter), 0);
    m.os_mut().spawn(Box::new(Streamer), 0);
    run(&mut m, 3000);
    let s = m.read_counters();
    // All three signatures visible simultaneously:
    let upc = s.total(PerfEvent::FetchedUops).unwrap() as f64
        / s.total(PerfEvent::Cycles).unwrap() as f64;
    // Three tenants over four CPUs, with the streamer throttled by
    // the bus: system-wide upc lands around 0.75.
    assert!(upc > 0.6, "compute visible: {upc}");
    assert!(
        s.total(PerfEvent::DiskInterrupts).unwrap() > 0,
        "disk visible"
    );
    assert!(
        s.total(PerfEvent::PrefetchBusTransactions).unwrap() > 0
            || s.total(PerfEvent::L3LoadMisses).unwrap() > 1_000_000,
        "memory stream visible"
    );
}

#[test]
fn bus_transactions_account_every_source() {
    // BusTransactionsSelf decomposes into the per-source counters the
    // paper's §3.3 enumerates (fills, write-backs, prefetches, walks,
    // uncacheable).
    let mut m = Machine::new(MachineConfig::default());
    m.os_mut().spawn(Box::new(Streamer), 0);
    run(&mut m, 1000);
    let s = m.read_counters();
    let own = s.total(PerfEvent::BusTransactionsSelf).unwrap();
    let prefetch = s.total(PerfEvent::PrefetchBusTransactions).unwrap();
    let unc = s.total(PerfEvent::UncacheableAccesses).unwrap();
    assert!(own > prefetch + unc, "self includes more than its parts");
    let all = s.total(PerfEvent::BusTransactionsAll).unwrap();
    let dma = s.total(PerfEvent::DmaOtherBusTransactions).unwrap();
    assert_eq!(all, own + dma);
}
