//! Property-based tests for the simulator's invariants.

use proptest::prelude::*;
use tdp_simsys::behavior::ReuseProfile;
use tdp_simsys::cache::CacheHierarchy;
use tdp_simsys::disk::{CommandId, DiskCommand, ScsiDisk};
use tdp_simsys::dram::DramModel;
use tdp_simsys::{MachineConfig, SimRng};

proptest! {
    /// Reuse-profile hit fractions are monotone in capacity and bounded
    /// by [0, 1].
    #[test]
    fn hit_fraction_is_monotone_and_bounded(
        dists in prop::collection::vec(1.0f64..1e6, 1..6),
        caps in prop::collection::vec(0.0f64..2e6, 1..10),
    ) {
        let buckets: Vec<(f64, f64)> =
            dists.iter().map(|&d| (d, 1.0)).collect();
        let p = ReuseProfile::new(&buckets);
        let mut sorted = caps.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = -1.0;
        for c in sorted {
            let h = p.hit_fraction(c);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&h));
            prop_assert!(h >= prev - 1e-12);
            prev = h;
        }
    }

    /// Cache miss counts never exceed access counts and are monotone
    /// down the hierarchy, for arbitrary access mixes.
    #[test]
    fn cache_misses_respect_hierarchy(
        loads in 0u64..200_000,
        stores in 0u64..100_000,
        seed in 0u64..50,
        share in 0.05f64..1.0,
    ) {
        let h = CacheHierarchy::new(MachineConfig::default().cache);
        let profile = ReuseProfile::new(&[
            (50.0, 0.5),
            (5_000.0, 0.3),
            (20_000.0, 0.1),
            (f64::INFINITY, 0.1),
        ]);
        let mut rng = SimRng::seed(seed);
        let t = h.simulate(loads, stores, &profile, share, &mut rng);
        prop_assert!(t.l2_misses <= t.l1_misses);
        prop_assert!(t.l3_total_misses() <= t.l2_misses);
        prop_assert!(t.l3_load_misses <= t.l3_total_misses());
    }

    /// Disk mode fractions always form a probability distribution, and
    /// DMA bytes exactly equal submitted payload once everything
    /// completes.
    #[test]
    fn disk_conserves_bytes_and_time(
        commands in prop::collection::vec(
            (0.0f64..1.0, 1u64..600_000, any::<bool>()),
            1..12,
        ),
        seed in 0u64..50,
    ) {
        let mut disk =
            ScsiDisk::new(MachineConfig::default().disk, SimRng::seed(seed));
        let mut submitted_read = 0u64;
        let mut submitted_write = 0u64;
        for (i, &(pos, bytes, write)) in commands.iter().enumerate() {
            disk.submit(DiskCommand {
                id: CommandId(i as u64),
                position: pos,
                bytes,
                write,
            });
            if write {
                submitted_write += bytes;
            } else {
                submitted_read += bytes;
            }
        }
        let mut dma_read = 0u64;
        let mut dma_write = 0u64;
        let mut completions = 0usize;
        for _ in 0..200_000 {
            let r = disk.tick();
            let m = r.modes;
            let sum = m.seek + m.rotate_wait + m.read + m.write + m.idle;
            prop_assert!((sum - 1.0).abs() < 1e-9, "mode sum {sum}");
            dma_read += r.dma_read_bytes;
            dma_write += r.dma_write_bytes;
            completions += r.completions.len();
            if completions == commands.len() {
                break;
            }
        }
        prop_assert_eq!(completions, commands.len(), "all complete");
        prop_assert_eq!(dma_read, submitted_read);
        prop_assert_eq!(dma_write, submitted_write);
    }

    /// DRAM residency fractions always sum to one and respond
    /// monotonically to traffic.
    #[test]
    fn dram_residency_is_a_distribution(
        reads in 0u64..100_000,
        writes in 0u64..100_000,
    ) {
        let dram = DramModel::new(MachineConfig::default().dram);
        let a = dram.tick(reads, writes);
        let sum = a.frac_active + a.frac_precharge + a.frac_idle;
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(a.frac_active >= 0.0 && a.frac_active <= 0.95);
        let b = dram.tick(reads + 1_000, writes + 1_000);
        prop_assert!(b.frac_active >= a.frac_active);
    }

    /// RNG determinism: the same seed and label always produce the same
    /// stream, independent of unrelated draws.
    #[test]
    fn derived_rng_streams_are_stable(seed in any::<u64>(), burn in 0usize..32) {
        let mut parent_a = SimRng::seed(seed);
        let parent_b = SimRng::seed(seed);
        // Burn some draws on one parent only.
        for _ in 0..burn {
            let _ = parent_a.uniform();
        }
        // Derivation is defined on the *initial* state, so derive from
        // fresh copies.
        let mut a = SimRng::seed(seed).derive("x");
        let mut b = parent_b.derive("x");
        for _ in 0..8 {
            prop_assert_eq!(a.below(1_000_000), b.below(1_000_000));
        }
    }
}
