//! Property-based tests for the measurement chain and thermal model.

use proptest::prelude::*;
use tdp_counters::Subsystem;
use tdp_powermeter::{AdcConfig, DaqChannel, SubsystemPower, ThermalModel, ThermalSpec};
use tdp_simsys::SimRng;

proptest! {
    /// Averaged channel readings are unbiased to within one LSB across
    /// the representable power range.
    #[test]
    fn channel_mean_is_unbiased(true_w in 1.0f64..500.0, seed in 0u64..20) {
        let ch = DaqChannel::new(AdcConfig {
            full_scale_v: 0.5, // 1200 W full scale
            ..AdcConfig::default()
        });
        let mut rng = SimRng::seed(seed);
        let n = 3000;
        let mean: f64 =
            (0..n).map(|_| ch.measure(true_w, &mut rng)).sum::<f64>() / n as f64;
        let lsb = ch.full_scale_watts() / 4096.0;
        prop_assert!(
            (mean - true_w).abs() < lsb,
            "mean {mean} vs {true_w} (lsb {lsb})"
        );
    }

    /// Measurements never go negative or exceed full scale, whatever the
    /// input.
    #[test]
    fn channel_output_is_clamped(true_w in -50.0f64..5_000.0, seed in 0u64..20) {
        let ch = DaqChannel::new(AdcConfig::default());
        let mut rng = SimRng::seed(seed);
        for _ in 0..50 {
            let w = ch.measure(true_w, &mut rng);
            prop_assert!(w >= 0.0);
            prop_assert!(w <= ch.full_scale_watts() + 1e-9);
        }
    }

    /// Thermal steady state is exactly `ambient + R·P` and independent of
    /// the integration path taken to reach it.
    #[test]
    fn thermal_steady_state_is_path_independent(
        watts in 0.0f64..300.0,
        detour in 0.0f64..300.0,
    ) {
        let spec = ThermalSpec::default();
        let r = spec.params[Subsystem::Cpu.index()].r_c_per_w;
        let mut p = SubsystemPower::default();

        // Path A: straight to the target power.
        let mut direct = ThermalModel::new(spec);
        p.set(Subsystem::Cpu, watts);
        for _ in 0..2_000 {
            direct.advance(&p, 1.0);
        }

        // Path B: detour through another power level first.
        let mut wandering = ThermalModel::new(spec);
        let mut q = SubsystemPower::default();
        q.set(Subsystem::Cpu, detour);
        for _ in 0..300 {
            wandering.advance(&q, 1.0);
        }
        for _ in 0..2_000 {
            wandering.advance(&p, 1.0);
        }

        let expected = 25.0 + r * watts;
        prop_assert!((direct.temps().get(Subsystem::Cpu) - expected).abs() < 0.01);
        prop_assert!(
            (wandering.temps().get(Subsystem::Cpu) - expected).abs() < 0.01
        );
    }

    /// Temperatures are monotone in power at steady state.
    #[test]
    fn hotter_power_means_hotter_steady_state(
        low in 0.0f64..200.0,
        extra in 1.0f64..100.0,
    ) {
        let settle = |w: f64| {
            let mut m = ThermalModel::new(ThermalSpec::default());
            let mut p = SubsystemPower::default();
            p.set(Subsystem::Memory, w);
            for _ in 0..1_000 {
                m.advance(&p, 1.0);
            }
            m.temps().get(Subsystem::Memory)
        };
        prop_assert!(settle(low + extra) > settle(low));
    }

    /// SubsystemPower addition and scaling behave like a vector space.
    #[test]
    fn power_algebra(
        a in prop::collection::vec(0.0f64..100.0, 5),
        b in prop::collection::vec(0.0f64..100.0, 5),
        k in 0.0f64..10.0,
    ) {
        let pa = SubsystemPower::from_array([a[0], a[1], a[2], a[3], a[4]]);
        let pb = SubsystemPower::from_array([b[0], b[1], b[2], b[3], b[4]]);
        let sum = pa + pb;
        prop_assert!((sum.total() - (pa.total() + pb.total())).abs() < 1e-9);
        let scaled = sum.scaled(k);
        prop_assert!((scaled.total() - sum.total() * k).abs() < 1e-6);
        for &s in Subsystem::ALL {
            prop_assert!((sum.get(s) - (pa.get(s) + pb.get(s))).abs() < 1e-12);
        }
    }
}
