//! Instantaneous ground-truth power from device activity.

use crate::sample::SubsystemPower;
use crate::spec::PowerSpec;
use tdp_counters::Subsystem;
use tdp_simsys::TickActivity;

/// Converts one tick of device activity into instantaneous subsystem
/// watts — the "physics" the sense resistors measure.
///
/// This is a pure function of device-local state: CPU activity factors,
/// DRAM state residency and read/write mix, bus utilization, I/O bytes
/// switched, disk mode residency. No performance counter is consulted.
///
/// # Example
///
/// ```
/// use tdp_powermeter::{GroundTruth, PowerSpec};
/// use tdp_simsys::{Machine, MachineConfig};
/// use tdp_counters::Subsystem;
///
/// let truth = GroundTruth::new(PowerSpec::default());
/// let mut machine = Machine::new(MachineConfig::default());
/// let activity = machine.tick();
/// let w = truth.instantaneous(&activity);
/// assert!(w.get(Subsystem::Cpu) > 30.0, "4 idle CPUs ≈ 38 W");
/// ```
#[derive(Debug, Clone)]
pub struct GroundTruth {
    spec: PowerSpec,
}

impl GroundTruth {
    /// Creates the converter.
    pub fn new(spec: PowerSpec) -> Self {
        Self { spec }
    }

    /// The specification in use.
    pub fn spec(&self) -> &PowerSpec {
        &self.spec
    }

    /// Instantaneous watts for each subsystem during `activity`'s tick.
    pub fn instantaneous(&self, activity: &TickActivity) -> SubsystemPower {
        let mut p = SubsystemPower::default();
        p.set(Subsystem::Cpu, self.cpu_watts(activity));
        p.set(Subsystem::Memory, self.memory_watts(activity));
        p.set(Subsystem::Chipset, self.chipset_watts(activity));
        p.set(Subsystem::Io, self.io_watts(activity));
        p.set(Subsystem::Disk, self.disk_watts(activity));
        p
    }

    fn cpu_watts(&self, activity: &TickActivity) -> f64 {
        let s = &self.spec.cpu;
        // DVFS: voltage tracks frequency, so un-halted power scales
        // superlinearly while halted (clock-tree-only) power scales
        // linearly with the operating point.
        let scale = activity.freq_scale.clamp(0.1, 1.0);
        let active_dvfs = scale.powf(s.dvfs_exponent);
        activity
            .cores
            .iter()
            .map(|core| {
                let cycles = core.cycles.max(1) as f64;
                let halted_frac = core.halted_cycles as f64 / cycles;
                let active_frac = 1.0 - halted_frac;
                let active_w = (s.active_base_w
                    + s.per_upc_w * core.upc
                    + s.window_search_w * core.stall_search_frac
                    - s.stall_gate_w * core.quiet_stall_frac)
                    .max(s.halt_w);
                halted_frac * s.halt_w * scale + active_frac * active_w * active_dvfs
            })
            .sum()
    }

    fn memory_watts(&self, activity: &TickActivity) -> f64 {
        let s = &self.spec.dram;
        let d = &activity.dram;
        s.background_w
            + s.active_w * d.frac_active
            + s.precharge_w * d.frac_precharge
            + s.read_w_per_kline * d.reads as f64 / 1000.0
            + s.write_w_per_kline * d.writes as f64 / 1000.0
    }

    fn chipset_watts(&self, activity: &TickActivity) -> f64 {
        let s = &self.spec.chipset;
        s.base_w + s.bus_coupling_w * activity.bus.utilization.min(1.2)
    }

    fn io_watts(&self, activity: &TickActivity) -> f64 {
        let s = &self.spec.io;
        // Commands per tick × mJ per command = mW; ticks are 1 ms, so
        // commands/tick × mJ happens to equal watts directly.
        s.static_w
            + s.dynamic_w_per_kbyte * activity.io.bytes_switched as f64 / 1000.0
            + s.config_w_per_kaccess * activity.io.config_accesses as f64 / 1000.0
            + s.per_command_mj * activity.io.commands as f64
    }

    fn disk_watts(&self, activity: &TickActivity) -> f64 {
        let s = &self.spec.disk;
        activity
            .disks
            .iter()
            .map(|m| {
                s.rotate_w
                    + s.seek_extra_w * m.seek
                    + s.read_extra_w * m.read
                    + s.write_extra_w * m.write
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_simsys::behavior::spin_loop_behavior;
    use tdp_simsys::{Machine, MachineConfig};

    fn idle_activity() -> TickActivity {
        Machine::new(MachineConfig::default()).tick()
    }

    #[test]
    fn idle_totals_match_paper_scale() {
        let truth = GroundTruth::new(PowerSpec::default());
        let w = truth.instantaneous(&idle_activity());
        let cpu = w.get(Subsystem::Cpu);
        assert!((35.0..42.0).contains(&cpu), "cpu idle {cpu}");
        let mem = w.get(Subsystem::Memory);
        assert!((27.5..30.0).contains(&mem), "memory idle {mem}");
        let disk = w.get(Subsystem::Disk);
        assert!((21.0..22.5).contains(&disk), "disk idle {disk}");
        let io = w.get(Subsystem::Io);
        assert!((32.0..34.0).contains(&io), "io idle {io}");
        let chipset = w.get(Subsystem::Chipset);
        assert!((19.0..21.0).contains(&chipset), "chipset idle {chipset}");
        let total = w.total();
        assert!((135.0..150.0).contains(&total), "total idle {total}");
    }

    #[test]
    fn busy_cpu_raises_only_cpu_power_materially() {
        let truth = GroundTruth::new(PowerSpec::default());
        let mut m = Machine::new(MachineConfig::default());
        for _ in 0..8 {
            m.os_mut().spawn(Box::new(spin_loop_behavior(2.5)), 0);
        }
        let mut last = None;
        for _ in 0..200 {
            last = Some(m.tick());
        }
        let w = truth.instantaneous(&last.unwrap());
        let idle = truth.instantaneous(&idle_activity());
        assert!(
            w.get(Subsystem::Cpu) > idle.get(Subsystem::Cpu) + 100.0,
            "8 spinning threads: {} vs idle {}",
            w.get(Subsystem::Cpu),
            idle.get(Subsystem::Cpu)
        );
        // Register-resident spin loops barely touch memory.
        assert!((w.get(Subsystem::Memory) - idle.get(Subsystem::Memory)).abs() < 3.0);
    }

    #[test]
    fn cpu_power_spans_equation1_range() {
        let truth = GroundTruth::new(PowerSpec::default());
        let mut a = idle_activity();
        // Force one fully-halted and one flat-out core.
        a.cores = vec![
            tdp_simsys::cpu::CoreActivity {
                cycles: 1000,
                halted_cycles: 1000,
                fetched_uops: 0,
                upc: 0.0,
                stall_search_frac: 0.0,
                quiet_stall_frac: 0.0,
            },
            tdp_simsys::cpu::CoreActivity {
                cycles: 1000,
                halted_cycles: 0,
                fetched_uops: 3000,
                upc: 3.0,
                stall_search_frac: 0.0,
                quiet_stall_frac: 0.0,
            },
        ];
        let w = truth.instantaneous(&a);
        let expected = 9.25 + (35.7 + 3.0 * 4.31);
        assert!((w.get(Subsystem::Cpu) - expected).abs() < 1e-9);
    }

    #[test]
    fn window_search_power_is_invisible_to_upc() {
        // Two cores with identical fetch throughput; the stalled one
        // burns more — the mcf effect.
        let truth = GroundTruth::new(PowerSpec::default());
        let mk = |stall: f64| tdp_simsys::cpu::CoreActivity {
            cycles: 1000,
            halted_cycles: 0,
            fetched_uops: 300,
            upc: 0.3,
            stall_search_frac: stall,
            quiet_stall_frac: 0.0,
        };
        let mut a = idle_activity();
        a.cores = vec![mk(0.0)];
        let calm = truth.instantaneous(&a).get(Subsystem::Cpu);
        a.cores = vec![mk(0.9)];
        let thrashing = truth.instantaneous(&a).get(Subsystem::Cpu);
        assert!(thrashing > calm + 5.0);
    }

    #[test]
    fn dvfs_cuts_active_power_superlinearly() {
        let truth = GroundTruth::new(PowerSpec::default());
        let busy = tdp_simsys::cpu::CoreActivity {
            cycles: 1000,
            halted_cycles: 0,
            fetched_uops: 2000,
            upc: 2.0,
            stall_search_frac: 0.0,
            quiet_stall_frac: 0.0,
        };
        let mut a = idle_activity();
        a.cores = vec![busy];
        a.freq_scale = 1.0;
        let full = truth.instantaneous(&a).get(Subsystem::Cpu);
        a.freq_scale = 0.5;
        let half = truth.instantaneous(&a).get(Subsystem::Cpu);
        // Superlinear: below half power, above the cubic floor.
        assert!(half < 0.5 * full, "{half} vs {full}");
        assert!(half > 0.1 * full);
        // Non-CPU subsystems are on their own clock domains.
        a.freq_scale = 1.0;
        let mem_full = truth.instantaneous(&a).get(Subsystem::Memory);
        a.freq_scale = 0.5;
        let mem_half = truth.instantaneous(&a).get(Subsystem::Memory);
        assert_eq!(mem_full, mem_half);
    }

    #[test]
    fn quiet_stalls_gate_power_below_active_baseline() {
        let truth = GroundTruth::new(PowerSpec::default());
        let mk = |quiet: f64| tdp_simsys::cpu::CoreActivity {
            cycles: 1000,
            halted_cycles: 0,
            fetched_uops: 800,
            upc: 0.8,
            stall_search_frac: 0.0,
            quiet_stall_frac: quiet,
        };
        let mut a = idle_activity();
        a.cores = vec![mk(0.0)];
        let busy = truth.instantaneous(&a).get(Subsystem::Cpu);
        a.cores = vec![mk(0.8)];
        let gated = truth.instantaneous(&a).get(Subsystem::Cpu);
        assert!(gated < busy - 4.0, "streaming stalls save power");
        assert!(gated >= 9.25, "never below the halt floor");
    }
}
