//! Power sample records.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};
use tdp_counters::Subsystem;

/// Watts for each of the five subsystems.
///
/// # Example
///
/// ```
/// use tdp_counters::Subsystem;
/// use tdp_powermeter::SubsystemPower;
///
/// let mut p = SubsystemPower::default();
/// p.set(Subsystem::Cpu, 38.4);
/// p.set(Subsystem::Chipset, 19.9);
/// assert_eq!(p.get(Subsystem::Cpu), 38.4);
/// assert!((p.total() - 58.3).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SubsystemPower {
    watts: [f64; 5],
}

impl SubsystemPower {
    /// Creates from an array ordered as [`Subsystem::ALL`].
    pub fn from_array(watts: [f64; 5]) -> Self {
        Self { watts }
    }

    /// Watts for one subsystem.
    pub fn get(&self, s: Subsystem) -> f64 {
        self.watts[s.index()]
    }

    /// Sets watts for one subsystem.
    pub fn set(&mut self, s: Subsystem, w: f64) {
        self.watts[s.index()] = w;
    }

    /// Total watts over all five subsystems.
    pub fn total(&self) -> f64 {
        self.watts.iter().sum()
    }

    /// The raw array, ordered as [`Subsystem::ALL`].
    pub fn as_array(&self) -> [f64; 5] {
        self.watts
    }

    /// Element-wise scale.
    pub fn scaled(&self, k: f64) -> Self {
        let mut out = *self;
        for w in &mut out.watts {
            *w *= k;
        }
        out
    }
}

impl Add for SubsystemPower {
    type Output = SubsystemPower;

    fn add(mut self, rhs: SubsystemPower) -> SubsystemPower {
        self += rhs;
        self
    }
}

impl AddAssign for SubsystemPower {
    fn add_assign(&mut self, rhs: SubsystemPower) {
        for (a, b) in self.watts.iter_mut().zip(rhs.watts) {
            *a += b;
        }
    }
}

/// One averaged measurement window, as the acquisition workstation
/// reports it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// Simulated time at the end of the window, ms.
    pub time_ms: u64,
    /// Window length, ms.
    pub window_ms: u64,
    /// Average measured power over the window.
    pub watts: SubsystemPower,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_scale_are_elementwise() {
        let a = SubsystemPower::from_array([1.0, 2.0, 3.0, 4.0, 5.0]);
        let b = SubsystemPower::from_array([10.0, 20.0, 30.0, 40.0, 50.0]);
        let sum = a + b;
        assert_eq!(sum.as_array(), [11.0, 22.0, 33.0, 44.0, 55.0]);
        assert_eq!(sum.scaled(0.5).total(), sum.total() / 2.0);
    }

    #[test]
    fn get_set_roundtrip_all_subsystems() {
        let mut p = SubsystemPower::default();
        for (i, &s) in Subsystem::ALL.iter().enumerate() {
            p.set(s, i as f64);
        }
        assert_eq!(p.as_array(), [0.0, 1.0, 2.0, 3.0, 4.0]);
    }
}
