//! The data-acquisition chain: sense resistors, ADC, averaging.

use crate::sample::{PowerSample, SubsystemPower};
use crate::spec::PowerSpec;
use crate::truth::GroundTruth;
use serde::{Deserialize, Serialize};
use tdp_counters::Subsystem;
use tdp_simsys::{SimRng, TickActivity};

/// ADC and sense-resistor parameters for one measurement channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdcConfig {
    /// Supply rail voltage of the measured domain (V).
    pub rail_v: f64,
    /// Sense resistance (Ω).
    pub sense_ohms: f64,
    /// ADC full-scale input (V) across the sense resistor.
    pub full_scale_v: f64,
    /// ADC resolution in bits.
    pub bits: u32,
    /// RMS amplifier/environment noise on the sensed voltage (V).
    pub noise_v_rms: f64,
    /// Samples taken per millisecond (paper: 10 000/s = 10 per tick).
    pub samples_per_ms: u32,
}

impl Default for AdcConfig {
    fn default() -> Self {
        Self {
            rail_v: 12.0,
            sense_ohms: 0.005,
            full_scale_v: 0.25,
            bits: 12,
            noise_v_rms: 120e-6,
            samples_per_ms: 10,
        }
    }
}

/// One subsystem's measurement channel.
#[derive(Debug, Clone)]
pub struct DaqChannel {
    cfg: AdcConfig,
    /// Extra RMS watts of error from deriving this channel across
    /// multiple power domains (the chipset problem, §4.2.5).
    derivation_noise_w: f64,
    /// Low-frequency (per-window) RMS watts: supply drift, temperature,
    /// EMI — the noise floor visible in the paper's Table 2 idle row.
    lf_noise_w: f64,
}

impl DaqChannel {
    /// Creates a channel.
    pub fn new(cfg: AdcConfig) -> Self {
        Self {
            cfg,
            derivation_noise_w: 0.0,
            lf_noise_w: 0.0,
        }
    }

    /// Adds cross-domain derivation noise (used for the chipset channel).
    pub fn with_derivation_noise(mut self, watts_rms: f64) -> Self {
        self.derivation_noise_w = watts_rms.max(0.0);
        self
    }

    /// Sets the low-frequency noise floor (RMS watts per averaging
    /// window).
    pub fn with_lf_noise(mut self, watts_rms: f64) -> Self {
        self.lf_noise_w = watts_rms.max(0.0);
        self
    }

    /// The low-frequency noise floor.
    pub fn lf_noise_w(&self) -> f64 {
        self.lf_noise_w
    }

    /// Measures `true_watts` once: watts → current → sensed voltage →
    /// noise → quantization → reported watts.
    pub fn measure(&self, true_watts: f64, rng: &mut SimRng) -> f64 {
        let c = &self.cfg;
        let current = true_watts / c.rail_v;
        let v = current * c.sense_ohms + rng.normal(0.0, c.noise_v_rms);
        let levels = (1u64 << c.bits) as f64;
        let step = c.full_scale_v / levels;
        let quantized = (v / step).round() * step;
        let clamped = quantized.clamp(0.0, c.full_scale_v);
        let watts = clamped / c.sense_ohms * c.rail_v;
        watts + rng.normal(0.0, self.derivation_noise_w)
    }

    /// Accumulates `n` back-to-back measurements of `true_watts` in
    /// closed form, returning their sum.
    ///
    /// The sum of `n` independent samples from [`measure`](Self::measure)
    /// is normal with mean `n·E[m]` and variance `n·Var[m]`: the ADC
    /// noise (`noise_v_rms`, ≈2 LSB at default settings) dithers the
    /// quantizer, making it unbiased with an extra `step²/12` of
    /// variance, and the derivation noise adds independently. One
    /// normal draw therefore reproduces the per-tick sum's distribution
    /// exactly — this is what lets [`PowerMeter::observe`] run in O(1)
    /// per channel instead of looping over the 10 kHz samples.
    ///
    /// Assumes the signal sits inside the ADC range (no clipping); the
    /// mean is clamped to full scale like the per-sample path.
    pub fn accumulate(&self, true_watts: f64, n: u32, rng: &mut SimRng) -> f64 {
        let c = &self.cfg;
        let current = true_watts / c.rail_v;
        let v = (current * c.sense_ohms).clamp(0.0, c.full_scale_v);
        let levels = (1u64 << c.bits) as f64;
        let step = c.full_scale_v / levels;
        let w_per_v = c.rail_v / c.sense_ohms;
        let mean_w = v * w_per_v;
        let var_v = c.noise_v_rms * c.noise_v_rms + step * step / 12.0;
        let var_w = var_v * w_per_v * w_per_v + self.derivation_noise_w * self.derivation_noise_w;
        let n = f64::from(n);
        n * mean_w + (n * var_w).sqrt() * rng.standard_normal()
    }

    /// Largest power this channel can represent before clipping.
    pub fn full_scale_watts(&self) -> f64 {
        self.cfg.full_scale_v / self.cfg.sense_ohms * self.cfg.rail_v
    }

    /// Samples taken per tick.
    pub fn samples_per_ms(&self) -> u32 {
        self.cfg.samples_per_ms
    }
}

/// The complete power-measurement apparatus: ground truth plus five DAQ
/// channels and per-window averaging.
///
/// Call [`observe`](PowerMeter::observe) once per machine tick and
/// [`cut_window`](PowerMeter::cut_window) at each sync pulse; the
/// returned [`PowerSample`] is the average of every 10 kHz sample taken
/// since the previous cut, exactly like the paper's offline alignment.
#[derive(Debug, Clone)]
pub struct PowerMeter {
    truth: GroundTruth,
    channels: [DaqChannel; 5],
    rng: SimRng,
    acc: SubsystemPower,
    acc_samples: u64,
    window_start_ms: u64,
    now_ms: u64,
}

impl PowerMeter {
    /// Creates the apparatus with default channels and the given
    /// measurement seed.
    pub fn new(spec: PowerSpec, seed: u64) -> Self {
        let base = DaqChannel::new(AdcConfig::default());
        // The CPU domain peaks near 200 W; give it headroom.
        let cpu_cfg = AdcConfig {
            full_scale_v: 0.5,
            ..AdcConfig::default()
        };
        // Per-window noise floors match the paper's Table 2 idle row:
        // CPU 0.34, chipset 0.09, memory 0.033, I/O 0.127, disk 0.027 W.
        let channels = [
            DaqChannel::new(cpu_cfg).with_lf_noise(0.34),
            base.clone().with_derivation_noise(0.20).with_lf_noise(0.09),
            base.clone().with_lf_noise(0.033),
            base.clone().with_lf_noise(0.127),
            base.with_lf_noise(0.027),
        ];
        Self {
            truth: GroundTruth::new(spec),
            channels,
            // Decorrelate measurement noise from machine-behaviour
            // randomness even when they share a seed.
            rng: SimRng::seed(seed ^ 0x00DA_90AC_0000_7777),
            acc: SubsystemPower::default(),
            acc_samples: 0,
            window_start_ms: 0,
            now_ms: 0,
        }
    }

    /// The ground truth in use.
    pub fn ground_truth(&self) -> &GroundTruth {
        &self.truth
    }

    /// Records one machine tick: accumulates this tick's
    /// `samples_per_ms` noisy, quantized measurements of each channel.
    ///
    /// Uses [`DaqChannel::accumulate`] — the statistically exact closed
    /// form for the sum of the tick's ADC samples — so the per-tick
    /// cost is one normal draw per channel rather than a loop over the
    /// 10 kHz sample stream. This keeps the capture hot path fast while
    /// the window averages from [`cut_window`](Self::cut_window) retain
    /// the per-sample model's mean and variance.
    pub fn observe(&mut self, activity: &TickActivity) {
        self.now_ms = activity.time_ms;
        let truth = self.truth.instantaneous(activity);
        let n = self.channels[0].samples_per_ms();
        for &s in Subsystem::ALL {
            let sum = self.channels[s.index()].accumulate(truth.get(s), n, &mut self.rng);
            self.acc.set(s, self.acc.get(s) + sum);
        }
        self.acc_samples += u64::from(n);
    }

    /// Closes the current window: returns the average of all samples
    /// accumulated since the last cut and starts a new window.
    ///
    /// Returns an all-zero sample if no ticks were observed (an empty
    /// window).
    pub fn cut_window(&mut self) -> PowerSample {
        let mut avg = if self.acc_samples > 0 {
            self.acc.scaled(1.0 / self.acc_samples as f64)
        } else {
            SubsystemPower::default()
        };
        if self.acc_samples > 0 {
            for &s in Subsystem::ALL {
                let lf = self.channels[s.index()].lf_noise_w();
                if lf > 0.0 {
                    avg.set(s, avg.get(s) + self.rng.normal(0.0, lf));
                }
            }
        }
        let sample = PowerSample {
            time_ms: self.now_ms,
            window_ms: self.now_ms - self.window_start_ms,
            watts: avg,
        };
        self.acc = SubsystemPower::default();
        self.acc_samples = 0;
        self.window_start_ms = self.now_ms;
        sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_simsys::{Machine, MachineConfig};

    #[test]
    fn channel_is_accurate_to_quantization() {
        let ch = DaqChannel::new(AdcConfig::default());
        let mut rng = SimRng::seed(1);
        // Average many measurements to wash out noise; bias must be
        // within one LSB (≈0.73 W at default settings).
        let true_w = 33.3;
        let n = 5000;
        let avg: f64 = (0..n).map(|_| ch.measure(true_w, &mut rng)).sum::<f64>() / n as f64;
        let lsb = ch.full_scale_watts() / (1u64 << 12) as f64;
        assert!((avg - true_w).abs() < lsb, "avg {avg} vs {true_w}");
    }

    #[test]
    fn accumulate_matches_per_sample_statistics() {
        // The closed-form sum must agree with the per-sample path in
        // both moments, including derivation noise.
        let ch = DaqChannel::new(AdcConfig::default()).with_derivation_noise(0.2);
        let mut rng_a = SimRng::seed(11);
        let mut rng_b = SimRng::seed(12);
        let true_w = 41.7;
        let n = 10u32;
        let windows = 4000;
        let stats = |xs: &[f64]| {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            let v = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64;
            (m, v)
        };
        let looped: Vec<f64> = (0..windows)
            .map(|_| (0..n).map(|_| ch.measure(true_w, &mut rng_a)).sum::<f64>())
            .collect();
        let closed: Vec<f64> = (0..windows)
            .map(|_| ch.accumulate(true_w, n, &mut rng_b))
            .collect();
        let (m_loop, v_loop) = stats(&looped);
        let (m_fast, v_fast) = stats(&closed);
        assert!(
            (m_loop - m_fast).abs() < 0.5,
            "means diverge: {m_loop} vs {m_fast}"
        );
        assert!(
            (v_loop.sqrt() - v_fast.sqrt()).abs() < 0.3 * v_loop.sqrt(),
            "std devs diverge: {} vs {}",
            v_loop.sqrt(),
            v_fast.sqrt()
        );
    }

    #[test]
    fn channel_clips_at_full_scale() {
        let ch = DaqChannel::new(AdcConfig::default());
        let mut rng = SimRng::seed(2);
        let w = ch.measure(10_000.0, &mut rng);
        assert!(w <= ch.full_scale_watts() + 1e-9);
    }

    #[test]
    fn meter_windows_average_idle_power() {
        let mut machine = Machine::new(MachineConfig::default());
        let mut meter = PowerMeter::new(PowerSpec::default(), 3);
        for _ in 0..1000 {
            let a = machine.tick();
            meter.observe(&a);
        }
        let s = meter.cut_window();
        assert_eq!(s.window_ms, 1000);
        assert!((s.watts.total() - 141.0).abs() < 8.0, "{}", s.watts.total());
        // Next window starts empty.
        let empty = meter.cut_window();
        assert_eq!(empty.watts.total(), 0.0);
        assert_eq!(empty.window_ms, 0);
    }

    #[test]
    fn noise_floor_is_small_but_nonzero() {
        let mut machine = Machine::new(MachineConfig::default());
        let mut meter = PowerMeter::new(PowerSpec::default(), 4);
        let mut samples = Vec::new();
        for _ in 0..10 {
            for _ in 0..200 {
                let a = machine.tick();
                meter.observe(&a);
            }
            samples.push(meter.cut_window().watts.get(Subsystem::Disk));
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        let std = var.sqrt();
        assert!(std > 0.0, "measurement noise exists");
        assert!(std < 0.3, "but is small: {std}");
    }
}
