//! Thermal dynamics: from subsystem power to component temperature.
//!
//! The paper's opening argument is thermal: "Due to the thermal inertia
//! in microprocessor packaging, detection of temperature changes may
//! occur significantly later than the power events which caused them"
//! (§1), so counter-based power estimation gives power-management
//! policies a *timelier* signal than temperature sensors. This module
//! supplies the physics that claim is made against: a first-order
//! RC thermal model per subsystem (junction-to-ambient resistance plus
//! a thermal time constant), and a sensor model with the slow response
//! and coarse quantization of 2006-era on-board thermal diodes.

use crate::sample::SubsystemPower;
use serde::{Deserialize, Serialize};
use tdp_counters::Subsystem;

/// First-order thermal parameters for one subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalParams {
    /// Junction-to-ambient thermal resistance, °C per watt.
    pub r_c_per_w: f64,
    /// Thermal time constant, seconds (package + heatsink inertia).
    pub tau_s: f64,
}

/// Thermal specification for the machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalSpec {
    /// Ambient (inlet air) temperature, °C.
    pub ambient_c: f64,
    /// Per-subsystem parameters, ordered as [`Subsystem::ALL`].
    pub params: [ThermalParams; 5],
}

impl Default for ThermalSpec {
    fn default() -> Self {
        // Steady-state idle temperatures come out around: CPU ~47°C,
        // chipset ~45°C, memory ~42°C, I/O ~46°C, disk ~41°C — the
        // right neighbourhood for a 2006 server at 25°C inlet.
        Self {
            ambient_c: 25.0,
            params: [
                // CPU: big heatsink, short-ish constant per processor.
                ThermalParams {
                    r_c_per_w: 0.55,
                    tau_s: 18.0,
                },
                // Chipset: small passive sink.
                ThermalParams {
                    r_c_per_w: 1.0,
                    tau_s: 30.0,
                },
                // Memory: DIMMs in airflow.
                ThermalParams {
                    r_c_per_w: 0.5,
                    tau_s: 25.0,
                },
                // I/O bridges.
                ThermalParams {
                    r_c_per_w: 0.65,
                    tau_s: 35.0,
                },
                // Disks: big thermal mass.
                ThermalParams {
                    r_c_per_w: 0.75,
                    tau_s: 90.0,
                },
            ],
        }
    }
}

/// Per-subsystem temperatures, °C.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SubsystemTemps {
    temps: [f64; 5],
}

impl SubsystemTemps {
    /// All subsystems at `ambient_c`.
    pub fn uniform(ambient_c: f64) -> Self {
        Self {
            temps: [ambient_c; 5],
        }
    }

    /// Temperature of one subsystem.
    pub fn get(&self, s: Subsystem) -> f64 {
        self.temps[s.index()]
    }

    /// Sets one subsystem's temperature.
    pub fn set(&mut self, s: Subsystem, t: f64) {
        self.temps[s.index()] = t;
    }

    /// The hottest subsystem and its temperature.
    pub fn hottest(&self) -> (Subsystem, f64) {
        Subsystem::ALL
            .iter()
            .map(|&s| (s, self.get(s)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite temps"))
            .expect("five subsystems")
    }
}

/// Integrates subsystem power into temperatures:
/// `dT/dt = (ambient + R·P − T) / τ`.
///
/// Drive it with either *measured* power (the physical truth) or
/// *estimated* power (the paper's proposal); both converge to
/// `ambient + R·P` at steady state.
///
/// # Example
///
/// ```
/// use tdp_counters::Subsystem;
/// use tdp_powermeter::{SubsystemPower, ThermalModel, ThermalSpec};
///
/// let mut model = ThermalModel::new(ThermalSpec::default());
/// let mut p = SubsystemPower::default();
/// p.set(Subsystem::Cpu, 160.0);
/// for _ in 0..600 {
///     model.advance(&p, 1.0); // 10 minutes at 160 W
/// }
/// let t = model.temps().get(Subsystem::Cpu);
/// let expected = 25.0 + 0.55 * 160.0;
/// assert!((t - expected).abs() < 0.5, "steady state {t} vs {expected}");
/// ```
#[derive(Debug, Clone)]
pub struct ThermalModel {
    spec: ThermalSpec,
    temps: SubsystemTemps,
}

impl ThermalModel {
    /// Creates a model with every subsystem at ambient.
    pub fn new(spec: ThermalSpec) -> Self {
        Self {
            temps: SubsystemTemps::uniform(spec.ambient_c),
            spec,
        }
    }

    /// The specification.
    pub fn spec(&self) -> &ThermalSpec {
        &self.spec
    }

    /// Current temperatures.
    pub fn temps(&self) -> SubsystemTemps {
        self.temps
    }

    /// Advances the thermal state by `dt_s` seconds under `power`.
    pub fn advance(&mut self, power: &SubsystemPower, dt_s: f64) -> SubsystemTemps {
        for &s in Subsystem::ALL {
            let p = &self.spec.params[s.index()];
            let target = self.spec.ambient_c + p.r_c_per_w * power.get(s);
            let t = self.temps.get(s);
            // Exact first-order step (stable for any dt).
            let alpha = 1.0 - (-dt_s / p.tau_s).exp();
            self.temps.set(s, t + (target - t) * alpha);
        }
        self.temps
    }
}

/// A slow, quantized thermal-diode sensor attached to one subsystem —
/// what a 2006 management controller actually reads.
///
/// The sensor's own lag (`sensor_tau_s`) plus its polling period and
/// 1 °C quantization are why "temperature sensors are less able to
/// allow preemptive reaction to impending thermal emergencies" (§2.3).
#[derive(Debug, Clone)]
pub struct ThermalSensor {
    subsystem: Subsystem,
    sensor_tau_s: f64,
    poll_period_s: f64,
    reading_c: f64,
    filtered_c: f64,
    since_poll_s: f64,
}

impl ThermalSensor {
    /// Creates a sensor with the era's defaults: 10 s sensor lag, 2 s
    /// polling, 1 °C steps.
    pub fn new(subsystem: Subsystem, initial_c: f64) -> Self {
        Self {
            subsystem,
            sensor_tau_s: 10.0,
            poll_period_s: 2.0,
            reading_c: initial_c.round(),
            filtered_c: initial_c,
            since_poll_s: 0.0,
        }
    }

    /// The monitored subsystem.
    pub fn subsystem(&self) -> Subsystem {
        self.subsystem
    }

    /// Advances the sensor by `dt_s` seconds with the true junction
    /// temperature `true_c`; returns the latest (held) reading.
    pub fn advance(&mut self, true_c: f64, dt_s: f64) -> f64 {
        let alpha = 1.0 - (-dt_s / self.sensor_tau_s).exp();
        self.filtered_c += (true_c - self.filtered_c) * alpha;
        self.since_poll_s += dt_s;
        if self.since_poll_s >= self.poll_period_s {
            self.since_poll_s = 0.0;
            self.reading_c = self.filtered_c.round();
        }
        self.reading_c
    }

    /// The latest reading without advancing.
    pub fn reading_c(&self) -> f64 {
        self.reading_c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn power_with(s: Subsystem, w: f64) -> SubsystemPower {
        let mut p = SubsystemPower::default();
        p.set(s, w);
        p
    }

    #[test]
    fn steady_state_matches_r_times_p() {
        let mut m = ThermalModel::new(ThermalSpec::default());
        let p = power_with(Subsystem::Memory, 40.0);
        for _ in 0..1000 {
            m.advance(&p, 1.0);
        }
        let expected = 25.0 + 0.5 * 40.0;
        assert!((m.temps().get(Subsystem::Memory) - expected).abs() < 0.01);
    }

    #[test]
    fn time_constant_governs_the_approach() {
        let mut m = ThermalModel::new(ThermalSpec::default());
        let p = power_with(Subsystem::Cpu, 100.0);
        // After one τ (18 s) the gap closes to ~63%.
        for _ in 0..18 {
            m.advance(&p, 1.0);
        }
        let target = 25.0 + 0.55 * 100.0;
        let progress = (m.temps().get(Subsystem::Cpu) - 25.0) / (target - 25.0);
        assert!((progress - 0.632).abs() < 0.02, "progress {progress}");
    }

    #[test]
    fn step_size_does_not_change_the_trajectory() {
        // The exact exponential step is invariant to dt subdivision.
        let p = power_with(Subsystem::Disk, 22.0);
        let mut coarse = ThermalModel::new(ThermalSpec::default());
        let mut fine = ThermalModel::new(ThermalSpec::default());
        for _ in 0..30 {
            coarse.advance(&p, 1.0);
        }
        for _ in 0..30_000 {
            fine.advance(&p, 0.001);
        }
        let a = coarse.temps().get(Subsystem::Disk);
        let b = fine.temps().get(Subsystem::Disk);
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn hottest_finds_the_right_subsystem() {
        let mut m = ThermalModel::new(ThermalSpec::default());
        let p = power_with(Subsystem::Io, 50.0);
        for _ in 0..300 {
            m.advance(&p, 1.0);
        }
        let (s, t) = m.temps().hottest();
        assert_eq!(s, Subsystem::Io);
        assert!(t > 50.0);
    }

    #[test]
    fn sensor_lags_and_quantizes() {
        let mut sensor = ThermalSensor::new(Subsystem::Cpu, 40.0);
        // Step the true temperature to 70°C.
        let mut readings = Vec::new();
        for _ in 0..30 {
            readings.push(sensor.advance(70.0, 1.0));
        }
        // Early readings stay near 40 (lag + hold), late approach 70.
        assert!(readings[1] < 50.0, "lag: {:?}", &readings[..4]);
        assert!(*readings.last().unwrap() > 65.0);
        // Quantization: every reading is a whole degree.
        for r in readings {
            assert_eq!(r, r.round());
        }
    }

    #[test]
    fn sensor_holds_between_polls() {
        let mut sensor = ThermalSensor::new(Subsystem::Cpu, 40.0);
        let r1 = sensor.advance(80.0, 0.5);
        let r2 = sensor.advance(80.0, 0.5);
        assert_eq!(r1, r2, "no new reading until the 2 s poll");
    }
}
