//! Ground-truth power measurement for the simulated server.
//!
//! The paper instruments five power domains with series sense resistors;
//! a separate data-acquisition workstation samples the voltage drops at
//! 10 kHz and averages them into the 1 Hz windows delimited by the
//! target's sync pulses (§3.1.2). This crate is that apparatus:
//!
//! * [`PowerSpec`] + [`GroundTruth`] convert per-tick device activity
//!   ([`tdp_simsys::TickActivity`]) into instantaneous subsystem watts
//!   using the *local-event* power models of §2.2.1 — Janzen-style DRAM
//!   state power, Zedlewski-style disk mode power, CMOS static+dynamic
//!   power for chipset and I/O, and activity-factor CPU power;
//! * [`PowerMeter`] wraps the truth in the acquisition chain — sense
//!   resistor, amplifier noise, 12-bit ADC quantization, 10 kHz sampling
//!   and per-window averaging — so "measured" power carries realistic
//!   artifacts.
//!
//! Nothing in this crate reads performance counters, and nothing in the
//! model library reads this crate's internals: the only interface between
//! them is (counter sample, measured watts) pairs, exactly as on the real
//! bench.
//!
//! # Example
//!
//! ```
//! use tdp_powermeter::{PowerMeter, PowerSpec};
//! use tdp_simsys::{Machine, MachineConfig};
//!
//! let mut machine = Machine::new(MachineConfig::default());
//! let mut meter = PowerMeter::new(PowerSpec::default(), 7);
//!
//! for _ in 0..1000 {
//!     let activity = machine.tick();
//!     meter.observe(&activity);
//! }
//! let sample = meter.cut_window();
//! // An idle 4-way server burns ~141 W total in the paper's Table 1.
//! assert!(sample.watts.total() > 120.0 && sample.watts.total() < 160.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod daq;
mod sample;
mod spec;
mod thermal;
mod truth;

pub use daq::{AdcConfig, DaqChannel, PowerMeter};
pub use sample::{PowerSample, SubsystemPower};
pub use spec::{
    ChipsetPowerSpec, CpuPowerSpec, DiskPowerSpec, DramPowerSpec, IoPowerSpec, PowerSpec,
};
pub use thermal::{SubsystemTemps, ThermalModel, ThermalParams, ThermalSensor, ThermalSpec};
pub use truth::GroundTruth;
