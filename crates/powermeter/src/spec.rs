//! Component power specifications.
//!
//! Defaults are tuned so the simulated server reproduces the scale of the
//! paper's Table 1: ~141 W idle, ~305 W peak, with the CPU subsystem
//! spanning 38–175 W, memory 28–46 W, I/O ~33–35 W, disk ~21.6–22.2 W and
//! chipset ~19.9 W.

use serde::{Deserialize, Serialize};

/// CPU power, per processor — an activity-factor model in the spirit of
/// Isci & Martonosi [2].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuPowerSpec {
    /// Watts while clock-gated (`HLT`).
    pub halt_w: f64,
    /// Watts of un-gated baseline (clock tree, leakage, idle structures).
    pub active_base_w: f64,
    /// Watts per fetched uop/cycle of throughput.
    pub per_upc_w: f64,
    /// Watts at full instruction-window search intensity — speculative
    /// scheduling work that fetch-based counters cannot see (the `mcf`
    /// effect, §4.3: "equivalent to executing an additional 1–2
    /// instructions/cycle" ≈ 1.5 × `per_upc_w`).
    pub window_search_w: f64,
    /// Watts *saved* at full quiet-stall intensity: streaming memory
    /// waits let fine-grained clock gating shut execution units down,
    /// dropping real power below the active baseline (why the paper
    /// measures `lucas` at 135 W — under four always-active CPUs' worth
    /// of baseline).
    pub stall_gate_w: f64,
    /// DVFS scaling exponent: at frequency scale `s`, un-halted power
    /// scales by `s^dvfs_exponent` (voltage tracks frequency, so power
    /// goes roughly with f·V² ≈ f^2.5–3). Halted power scales linearly
    /// (only the clock tree keeps toggling).
    pub dvfs_exponent: f64,
}

impl Default for CpuPowerSpec {
    fn default() -> Self {
        Self {
            halt_w: 9.25,
            active_base_w: 35.7,
            per_upc_w: 4.31,
            window_search_w: 6.5,
            stall_gate_w: 6.8,
            dvfs_exponent: 2.6,
        }
    }
}

/// DRAM + memory-controller power, following Janzen's state-based DDR
/// methodology [8].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramPowerSpec {
    /// Background watts (controller + DRAM idle/clock-enabled).
    pub background_w: f64,
    /// Additional watts at 100% active-state residency.
    pub active_w: f64,
    /// Additional watts at 100% precharge residency.
    pub precharge_w: f64,
    /// Watts per 1000 read accesses per millisecond.
    pub read_w_per_kline: f64,
    /// Watts per 1000 write accesses per millisecond (writes burn more —
    /// the asymmetry the paper's bus-transaction model ignores, §4.3).
    pub write_w_per_kline: f64,
}

impl Default for DramPowerSpec {
    fn default() -> Self {
        Self {
            background_w: 28.0,
            active_w: 12.0,
            precharge_w: 6.0,
            read_w_per_kline: 0.045,
            write_w_per_kline: 0.160,
        }
    }
}

/// Chipset (processor-interface) power.
///
/// Nearly constant — but *derived from multiple power domains* on the
/// real bench, so it carries a workload-correlated systematic component
/// plus sensor noise that a constant model cannot capture (§4.2.5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipsetPowerSpec {
    /// Base watts.
    pub base_w: f64,
    /// Watts added at 100% front-side-bus utilization (systematic,
    /// workload-dependent part).
    pub bus_coupling_w: f64,
}

impl Default for ChipsetPowerSpec {
    fn default() -> Self {
        Self {
            base_w: 19.6,
            bus_coupling_w: 2.4,
        }
    }
}

/// I/O subsystem power: two bridge chips and six PCI-X buses, mostly
/// static CMOS power plus switching proportional to bytes moved.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoPowerSpec {
    /// Static watts (both chips, all bus clocks — large, per §4.2.4).
    pub static_w: f64,
    /// Watts per 1000 bytes switched per millisecond (~1 MB/s).
    pub dynamic_w_per_kbyte: f64,
    /// Watts per 1000 configuration accesses per millisecond.
    pub config_w_per_kaccess: f64,
    /// Millijoules burned per device command (descriptor fetch, bus
    /// arbitration bursts, completion handling). Scales with command —
    /// and therefore interrupt — count rather than bytes, which is why
    /// interrupts predict I/O power better than byte-proportional
    /// metrics (§4.2.4).
    pub per_command_mj: f64,
}

impl Default for IoPowerSpec {
    fn default() -> Self {
        Self {
            static_w: 32.9,
            dynamic_w_per_kbyte: 0.034,
            config_w_per_kaccess: 0.8,
            per_command_mj: 20.0,
        }
    }
}

/// Disk power per disk, after Zedlewski et al. [9]: rotation dominates
/// (~80% of peak) because the paper's SCSI disks never stop spinning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskPowerSpec {
    /// Watts while spinning idle (platter rotation + electronics).
    pub rotate_w: f64,
    /// Additional watts while the head is seeking.
    pub seek_extra_w: f64,
    /// Additional watts while reading.
    pub read_extra_w: f64,
    /// Additional watts while writing (peak per [9]).
    pub write_extra_w: f64,
}

impl Default for DiskPowerSpec {
    fn default() -> Self {
        Self {
            rotate_w: 10.8,
            seek_extra_w: 1.4,
            read_extra_w: 1.0,
            write_extra_w: 1.5,
        }
    }
}

/// The full machine's power specification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerSpec {
    /// Per-processor CPU spec.
    pub cpu: CpuPowerSpec,
    /// Memory subsystem spec.
    pub dram: DramPowerSpec,
    /// Chipset spec.
    pub chipset: ChipsetPowerSpec,
    /// I/O subsystem spec.
    pub io: IoPowerSpec,
    /// Per-disk spec.
    pub disk: DiskPowerSpec,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_idle_scale_matches_table1() {
        let s = PowerSpec::default();
        // Four ~99%-halted CPUs.
        let cpu_idle = 4.0 * (0.99 * s.cpu.halt_w + 0.01 * s.cpu.active_base_w);
        assert!((cpu_idle - 38.4).abs() < 2.0, "cpu idle {cpu_idle}");
        assert!((s.dram.background_w - 28.0).abs() < 1.0);
        assert!((2.0 * s.disk.rotate_w - 21.6).abs() < 0.5);
        assert!((s.io.static_w - 32.9).abs() < 1.0);
        let idle_total = cpu_idle
            + s.dram.background_w
            + s.chipset.base_w
            + s.io.static_w
            + 2.0 * s.disk.rotate_w;
        assert!(
            (idle_total - 141.0).abs() < 4.0,
            "idle total {idle_total} vs paper's 141 W"
        );
    }

    #[test]
    fn default_peak_cpu_matches_equation1_range() {
        let s = PowerSpec::default();
        // Eq 1 peak: 9.25 + (35.7-9.25) + 4.31*3 = 48.6 per CPU.
        let peak = s.cpu.active_base_w + 3.0 * s.cpu.per_upc_w;
        assert!((peak - 48.6).abs() < 0.1, "peak {peak}");
    }

    #[test]
    fn disk_dynamic_range_is_under_20_percent() {
        let s = DiskPowerSpec::default();
        let peak = s.rotate_w + s.write_extra_w;
        assert!(peak / s.rotate_w < 1.25, "rotation dominates, per [9]");
    }
}
