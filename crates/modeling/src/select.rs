//! Model-selection search over candidate inputs and forms.
//!
//! The paper's final choice of "which event type(s) to use is determined
//! by the average error rate and a qualitative comparison of the measured
//! and modeled power traces" (§3.3). [`ModelSelector`] mechanises the
//! quantitative half: it fits every combination of a candidate-input
//! subset and a model form on a training trace, evaluates Equation 6
//! error on a validation trace, and ranks the outcomes.

use crate::features::FeatureMap;
use crate::metrics::error_summary_with_offset;
use crate::model::RegressionModel;
use crate::ols::fit_least_squares_ridge;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A model form that can be instantiated for any number of inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CandidateForm {
    /// Intercept + linear terms.
    Linear,
    /// Intercept + linear + quadratic terms for every input.
    Quadratic,
    /// Intercept only (a constant model — the chipset baseline).
    Constant,
}

impl CandidateForm {
    /// All forms the paper considers (§3.3.1).
    pub const ALL: &'static [CandidateForm] = &[
        CandidateForm::Constant,
        CandidateForm::Linear,
        CandidateForm::Quadratic,
    ];

    /// Builds the feature map for `n_inputs` inputs under this form.
    pub fn feature_map(self, n_inputs: usize) -> FeatureMap {
        match self {
            CandidateForm::Linear => FeatureMap::linear(n_inputs),
            CandidateForm::Quadratic => FeatureMap::quadratic_all(n_inputs),
            CandidateForm::Constant => FeatureMap::constant(n_inputs),
        }
    }
}

impl fmt::Display for CandidateForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CandidateForm::Linear => "linear",
            CandidateForm::Quadratic => "quadratic",
            CandidateForm::Constant => "constant",
        })
    }
}

/// One evaluated candidate: which inputs, which form, what error.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelectionOutcome {
    /// Indices (into the candidate input list) used by this model.
    pub input_indices: Vec<usize>,
    /// Human-readable names of those inputs.
    pub input_names: Vec<String>,
    /// The form fitted.
    pub form: CandidateForm,
    /// Validation average error (Equation 6), percent.
    pub validation_error_pct: f64,
    /// Training average error, percent.
    pub training_error_pct: f64,
    /// The fitted model.
    pub model: RegressionModel,
}

/// Exhaustive model-selection search.
///
/// # Example
///
/// ```
/// use tdp_modeling::ModelSelector;
///
/// // Target depends quadratically on input 0; input 1 is noise.
/// let xs: Vec<Vec<f64>> = (0..60)
///     .map(|i| vec![i as f64 * 0.1, ((i * 7919) % 13) as f64])
///     .collect();
/// let ys: Vec<f64> = xs.iter().map(|x| 5.0 + x[0] * x[0]).collect();
///
/// let selector = ModelSelector::new(vec!["signal".into(), "noise".into()]);
/// let ranked = selector.search(&xs, &ys, &xs, &ys);
/// let best = &ranked[0];
/// assert!(best.input_indices.contains(&0), "signal input selected");
/// assert!(best.validation_error_pct < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct ModelSelector {
    input_names: Vec<String>,
    max_subset_size: usize,
    ridge_lambda: f64,
    dc_offset: f64,
}

impl ModelSelector {
    /// Creates a selector over named candidate inputs. Subsets up to two
    /// inputs are searched by default (the paper's models use at most
    /// two).
    pub fn new(input_names: Vec<String>) -> Self {
        Self {
            input_names,
            max_subset_size: 2,
            ridge_lambda: 1e-9,
            dc_offset: 0.0,
        }
    }

    /// Sets the maximum subset size searched.
    pub fn max_subset_size(mut self, n: usize) -> Self {
        self.max_subset_size = n.max(1);
        self
    }

    /// Sets the ridge damping used during candidate fits.
    pub fn ridge_lambda(mut self, lambda: f64) -> Self {
        self.ridge_lambda = lambda.max(0.0);
        self
    }

    /// Sets a DC offset subtracted before computing relative errors (the
    /// disk-model convention).
    pub fn dc_offset(mut self, offset: f64) -> Self {
        self.dc_offset = offset;
        self
    }

    /// Fits and ranks every candidate. `train_*` fits coefficients;
    /// `valid_*` scores them. Rows of the input matrices are full
    /// candidate vectors; the selector projects out subsets itself.
    ///
    /// Candidate subsets are fitted on a pooled parallel map (one work
    /// item per subset); results are flattened in subset order and the
    /// final ranking uses a *stable* sort on validation error, so the
    /// outcome is deterministic and identical to a serial sweep.
    ///
    /// Returns outcomes sorted by ascending validation error. Candidates
    /// whose fit fails (singular, too few samples) are silently dropped.
    pub fn search(
        &self,
        train_xs: &[Vec<f64>],
        train_ys: &[f64],
        valid_xs: &[Vec<f64>],
        valid_ys: &[f64],
    ) -> Vec<SelectionOutcome> {
        let n = self.input_names.len();

        let per_subset = tdp_parallel::par_map(subsets_up_to(n, self.max_subset_size), |subset| {
            self.fit_subset(&subset, train_xs, train_ys, valid_xs, valid_ys)
        });
        let mut outcomes: Vec<SelectionOutcome> = per_subset.into_iter().flatten().collect();

        outcomes.sort_by(|a, b| {
            a.validation_error_pct
                .partial_cmp(&b.validation_error_pct)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        outcomes
    }

    /// Fits every form of one candidate subset (one parallel work item).
    fn fit_subset(
        &self,
        subset: &[usize],
        train_xs: &[Vec<f64>],
        train_ys: &[f64],
        valid_xs: &[Vec<f64>],
        valid_ys: &[f64],
    ) -> Vec<SelectionOutcome> {
        let project = |rows: &[Vec<f64>]| -> Vec<Vec<f64>> {
            rows.iter()
                .map(|r| subset.iter().map(|&i| r[i]).collect())
                .collect()
        };
        let tx = project(train_xs);
        let vx = project(valid_xs);

        let mut outcomes = Vec::new();
        for &form in CandidateForm::ALL {
            if form == CandidateForm::Constant && !subset.is_empty() {
                continue; // constant model is input-independent
            }
            if form != CandidateForm::Constant && subset.is_empty() {
                continue;
            }
            let map = form.feature_map(subset.len());
            let Ok(model) = fit_least_squares_ridge(&map, &tx, train_ys, self.ridge_lambda) else {
                continue;
            };
            let score = |xs: &[Vec<f64>], ys: &[f64]| {
                let modeled: Vec<f64> = xs.iter().map(|x| model.predict(x)).collect();
                error_summary_with_offset(&modeled, ys, self.dc_offset).average_error_pct
            };
            outcomes.push(SelectionOutcome {
                input_indices: subset.to_vec(),
                input_names: subset
                    .iter()
                    .map(|&i| self.input_names[i].clone())
                    .collect(),
                form,
                validation_error_pct: score(&vx, valid_ys),
                training_error_pct: score(&tx, train_ys),
                model,
            });
        }
        outcomes
    }
}

/// Enumerates subsets of `{0..n}` with size 0..=k, in size-then-lex order.
fn subsets_up_to(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = vec![vec![]];
    let mut current: Vec<Vec<usize>> = vec![vec![]];
    for _ in 0..k {
        let mut next = Vec::new();
        for s in &current {
            let start = s.last().map_or(0, |&l| l + 1);
            for i in start..n {
                let mut t = s.clone();
                t.push(i);
                next.push(t);
            }
        }
        out.extend(next.iter().cloned());
        current = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_enumeration_counts() {
        // C(4,1) + C(4,2) + empty = 4 + 6 + 1
        assert_eq!(subsets_up_to(4, 2).len(), 11);
        assert_eq!(subsets_up_to(3, 3).len(), 8, "full power set");
        assert_eq!(subsets_up_to(0, 2), vec![Vec::<usize>::new()]);
    }

    #[test]
    fn constant_form_included_once() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys = vec![5.0; 10];
        let sel = ModelSelector::new(vec!["a".into()]);
        let ranked = sel.search(&xs, &ys, &xs, &ys);
        let constants = ranked
            .iter()
            .filter(|o| o.form == CandidateForm::Constant)
            .count();
        assert_eq!(constants, 1);
        // constant target → constant model wins (ties broken by sort
        // stability don't matter; its error must be ~0)
        let c = ranked
            .iter()
            .find(|o| o.form == CandidateForm::Constant)
            .unwrap();
        // ridge damping biases the intercept by O(lambda/n); allow for it
        assert!(c.validation_error_pct < 1e-6);
    }

    #[test]
    fn selector_prefers_true_input_over_noise() {
        let xs: Vec<Vec<f64>> = (0..80)
            .map(|i| {
                let sig = (i as f64 * 0.13).sin().abs();
                let noise = ((i * 2654435761u64 as usize) % 97) as f64 / 97.0;
                vec![sig, noise]
            })
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 10.0 + 3.0 * x[0]).collect();
        let sel = ModelSelector::new(vec!["sig".into(), "noise".into()]);
        let best = &sel.search(&xs, &ys, &xs, &ys)[0];
        assert_eq!(best.input_indices, vec![0]);
        assert!(best.validation_error_pct < 1e-6);
    }

    #[test]
    fn validation_on_held_out_data_penalises_overfit() {
        // Train region x∈[0,1], validate x∈[2,3]: quadratic fitted to a
        // linear target extrapolates worse than the linear form.
        let train_xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 30.0]).collect();
        let train_ys: Vec<f64> = train_xs
            .iter()
            .enumerate()
            .map(|(i, x)| 1.0 + x[0] + if i % 2 == 0 { 0.01 } else { -0.01 })
            .collect();
        let valid_xs: Vec<Vec<f64>> = (0..30).map(|i| vec![2.0 + i as f64 / 30.0]).collect();
        let valid_ys: Vec<f64> = valid_xs.iter().map(|x| 1.0 + x[0]).collect();

        let sel = ModelSelector::new(vec!["x".into()]);
        let ranked = sel.search(&train_xs, &train_ys, &valid_xs, &valid_ys);
        let lin = ranked
            .iter()
            .find(|o| o.form == CandidateForm::Linear)
            .unwrap();
        assert!(lin.validation_error_pct < 2.0);
    }

    #[test]
    fn form_display_names() {
        assert_eq!(CandidateForm::Linear.to_string(), "linear");
        assert_eq!(CandidateForm::Quadratic.to_string(), "quadratic");
        assert_eq!(CandidateForm::Constant.to_string(), "constant");
    }
}
