//! Goodness-of-fit metrics.
//!
//! The headline metric is the paper's **Equation 6 average error**:
//!
//! ```text
//!                    Σ |modeledᵢ − measuredᵢ| / measuredᵢ
//! AverageError  =   ─────────────────────────────────────  × 100 %
//!                                NumSamples
//! ```
//!
//! computed per sample (one second of execution) and averaged over a
//! workload. The disk model's error is reported after subtracting the
//! idle DC offset (§4.2.3: "This error is calculated by first subtracting
//! the 21.6 W of idle (DC) disk power consumption"), which
//! [`average_error_with_offset`] implements.

use crate::stats::OnlineStats;
use serde::{Deserialize, Serialize};

/// Summary of prediction error over a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorSummary {
    /// Equation 6 average |relative error|, in percent.
    pub average_error_pct: f64,
    /// Standard deviation of the per-sample |relative error|, in percent
    /// (the ± figures of Tables 3 and 4).
    pub error_std_dev_pct: f64,
    /// Largest single-sample |relative error|, in percent.
    pub max_error_pct: f64,
    /// Mean absolute error in the target's units (watts).
    pub mean_abs_error: f64,
    /// Coefficient of determination R² (1.0 = perfect; can be negative
    /// for models worse than predicting the mean).
    pub r_squared: f64,
    /// Number of samples summarised.
    pub samples: usize,
}

/// Computes [`ErrorSummary`] for paired modeled/measured series.
///
/// # Panics
///
/// Panics if the series lengths differ or are empty.
///
/// # Example
///
/// ```
/// use tdp_modeling::metrics::error_summary;
///
/// let measured = [100.0, 200.0];
/// let modeled = [90.0, 220.0]; // 10% and 10% error
/// let s = error_summary(&modeled, &measured);
/// assert!((s.average_error_pct - 10.0).abs() < 1e-12);
/// ```
pub fn error_summary(modeled: &[f64], measured: &[f64]) -> ErrorSummary {
    error_summary_with_offset(modeled, measured, 0.0)
}

/// Equation 6 average error as a bare percentage.
pub fn average_error(modeled: &[f64], measured: &[f64]) -> f64 {
    error_summary(modeled, measured).average_error_pct
}

/// Equation 6 average error after subtracting a DC offset from both
/// series (the paper's disk-model convention).
pub fn average_error_with_offset(modeled: &[f64], measured: &[f64], dc_offset: f64) -> f64 {
    error_summary_with_offset(modeled, measured, dc_offset).average_error_pct
}

/// Like [`error_summary_with_offset`] but also skips, for the
/// relative-error statistics, samples whose offset-adjusted measured
/// value lies inside `deadband` watts — relative error against a value
/// indistinguishable from sensor noise is meaningless. Absolute-error
/// statistics still include every sample.
pub fn error_summary_with_offset_deadband(
    modeled: &[f64],
    measured: &[f64],
    dc_offset: f64,
    deadband: f64,
) -> ErrorSummary {
    summarise(modeled, measured, dc_offset, deadband.max(1e-9))
}

/// Equation 6 average error with DC offset and a noise deadband.
pub fn average_error_with_offset_deadband(
    modeled: &[f64],
    measured: &[f64],
    dc_offset: f64,
    deadband: f64,
) -> f64 {
    error_summary_with_offset_deadband(modeled, measured, dc_offset, deadband).average_error_pct
}

/// Full summary with DC-offset subtraction.
///
/// Samples where the offset-adjusted measured value is ~zero are skipped
/// for the relative-error statistics (relative error is undefined there)
/// but still contribute to `mean_abs_error` and `r_squared`.
///
/// # Panics
///
/// Panics if the series lengths differ or are empty.
pub fn error_summary_with_offset(
    modeled: &[f64],
    measured: &[f64],
    dc_offset: f64,
) -> ErrorSummary {
    summarise(modeled, measured, dc_offset, 1e-9)
}

fn summarise(modeled: &[f64], measured: &[f64], dc_offset: f64, deadband: f64) -> ErrorSummary {
    assert_eq!(
        modeled.len(),
        measured.len(),
        "modeled and measured series must pair up"
    );
    assert!(!modeled.is_empty(), "cannot summarise an empty trace");

    let mut rel = OnlineStats::new();
    let mut abs = OnlineStats::new();
    let mut measured_stats = OnlineStats::new();
    let mut ss_res = 0.0;

    for (&m, &t) in modeled.iter().zip(measured) {
        let m = m - dc_offset;
        let t = t - dc_offset;
        let err = m - t;
        abs.push(err.abs());
        measured_stats.push(t);
        ss_res += err * err;
        if t.abs() > deadband {
            rel.push((err / t).abs() * 100.0);
        }
    }

    let n = measured.len() as f64;
    let ss_tot = measured_stats.population_variance() * n;
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else if ss_res == 0.0 {
        1.0
    } else {
        0.0
    };

    ErrorSummary {
        average_error_pct: rel.mean(),
        error_std_dev_pct: rel.population_std_dev(),
        max_error_pct: if rel.count() == 0 { 0.0 } else { rel.max() },
        mean_abs_error: abs.mean(),
        r_squared,
        samples: measured.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_model_is_zero_error_unit_r2() {
        let y = [10.0, 20.0, 30.0];
        let s = error_summary(&y, &y);
        assert_eq!(s.average_error_pct, 0.0);
        assert_eq!(s.r_squared, 1.0);
        assert_eq!(s.mean_abs_error, 0.0);
        assert_eq!(s.samples, 3);
    }

    #[test]
    fn equation6_matches_hand_computation() {
        // errors: |95-100|/100 = 5%, |210-200|/200 = 5%, |288-300|/300 = 4%
        let measured = [100.0, 200.0, 300.0];
        let modeled = [95.0, 210.0, 288.0];
        let s = error_summary(&modeled, &measured);
        assert!((s.average_error_pct - 14.0 / 3.0).abs() < 1e-12);
        assert!((s.max_error_pct - 5.0).abs() < 1e-12);
    }

    #[test]
    fn dc_offset_amplifies_relative_error() {
        // Disk-style: big DC, tiny variation. 0.1 W error on 21.7 W looks
        // tiny (≈0.46%) but on the 0.1 W dynamic part it's 100%.
        let measured = [21.7];
        let modeled = [21.8];
        let without = average_error(&modeled, &measured);
        let with = average_error_with_offset(&modeled, &measured, 21.6);
        assert!(without < 1.0);
        assert!((with - 100.0).abs() < 1e-9);
    }

    #[test]
    fn zero_measured_samples_skipped_for_relative_error() {
        let measured = [0.0, 10.0];
        let modeled = [1.0, 11.0];
        let s = error_summary(&modeled, &measured);
        assert!((s.average_error_pct - 10.0).abs() < 1e-12);
        assert_eq!(s.mean_abs_error, 1.0, "abs error still counts both");
    }

    #[test]
    fn constant_target_r2_defined() {
        let measured = [5.0, 5.0, 5.0];
        assert_eq!(error_summary(&measured, &measured).r_squared, 1.0);
        let s = error_summary(&[6.0, 6.0, 6.0], &measured);
        assert_eq!(s.r_squared, 0.0);
    }

    #[test]
    fn r2_negative_for_terrible_model() {
        let measured = [1.0, 2.0, 3.0];
        let modeled = [30.0, -10.0, 50.0];
        assert!(error_summary(&modeled, &measured).r_squared < 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_trace_panics() {
        let _ = error_summary(&[], &[]);
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn mismatched_lengths_panic() {
        let _ = error_summary(&[1.0], &[1.0, 2.0]);
    }
}
