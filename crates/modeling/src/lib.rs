//! Regression substrate for the trickledown power models.
//!
//! The paper's methodology (§3.3.1) dictates the shape of this crate:
//! models must be cheap enough for runtime power estimation, so the only
//! forms considered are **linear** and **single- or multiple-input
//! quadratic** regressions. Fitting happens offline against measured
//! traces; prediction is a handful of multiply-adds.
//!
//! Everything here is implemented from scratch on `std`:
//!
//! * [`Matrix`] — small dense row-major matrices with the operations OLS
//!   needs (transpose-products, Gaussian elimination with partial
//!   pivoting);
//! * [`FeatureMap`] — declarative polynomial feature expansion
//!   (intercept, linear, quadratic and cross terms);
//! * [`fit_least_squares`] — ordinary least squares via the normal
//!   equations, with optional ridge damping for near-collinear inputs;
//! * [`RegressionModel`] — a fitted, serialisable model;
//! * [`metrics`] — goodness-of-fit measures, most importantly the paper's
//!   Equation 6 **average error** with optional DC-offset subtraction (the
//!   disk-model convention of §4.2.3);
//! * [`ModelSelector`] — exhaustive search over candidate input subsets
//!   and forms, reproducing how the paper picked "which event type(s) to
//!   use … determined by the average error rate" (§3.3).
//!
//! # Example: fitting a noisy quadratic
//!
//! ```
//! use tdp_modeling::{fit_least_squares, FeatureMap};
//!
//! // y = 3 + 2x + 0.5x²
//! let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 * 0.1]).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x[0] + 0.5 * x[0] * x[0]).collect();
//!
//! let map = FeatureMap::quadratic_single(1, 0);
//! let model = fit_least_squares(&map, &xs, &ys)?;
//! let c = model.coefficients();
//! assert!((c[0] - 3.0).abs() < 1e-6);
//! assert!((c[1] - 2.0).abs() < 1e-6);
//! assert!((c[2] - 0.5).abs() < 1e-6);
//! # Ok::<(), tdp_modeling::FitError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod features;
mod matrix;
pub mod metrics;
mod model;
mod ols;
mod rls;
mod select;
mod stats;

pub use features::{FeatureMap, FeatureTerm};
pub use matrix::Matrix;
pub use metrics::ErrorSummary;
pub use model::RegressionModel;
pub use ols::{fit_least_squares, fit_least_squares_ridge, FitError};
pub use rls::{fit_rls, RecursiveLeastSquares};
pub use select::{CandidateForm, ModelSelector, SelectionOutcome};
pub use stats::OnlineStats;
