//! Small dense row-major matrices.
//!
//! Only the operations ordinary least squares needs are provided; this is
//! deliberately not a general linear-algebra library. Matrices in this
//! workspace are tiny (the largest is `n_samples × n_features` with a
//! handful of features), so simple `O(n³)` algorithms are the right tool.
//! The row-sweep inner loops ([`matmul`](Matrix::matmul),
//! [`gram`](Matrix::gram), [`transpose_vec_mul`](Matrix::transpose_vec_mul))
//! accumulate through the workspace-wide [`tdp_simd::axpy`] kernel —
//! elementwise, so both dispatch flavours produce bit-identical results.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};
use tdp_simd::Dispatch;

/// A dense row-major matrix of `f64`.
///
/// # Example
///
/// ```
/// use tdp_modeling::Matrix;
///
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(a[(0, 1)], 2.0);
/// assert_eq!(a.transpose()[(1, 0)], 2.0);
/// let b = a.matmul(&Matrix::identity(2));
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a single-column matrix from a slice.
    pub fn column(values: &[f64]) -> Self {
        Self {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimensions must agree: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let d = Dispatch::active();
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let out_row = out.row_mut(i);
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                tdp_simd::axpy(d, out_row, a, rhs.row(k));
            }
        }
        out
    }

    /// Computes `selfᵀ · self` (the Gram matrix) without materialising the
    /// transpose.
    pub fn gram(&self) -> Matrix {
        let d = Dispatch::active();
        let mut out = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let v = row[i];
                if v == 0.0 {
                    continue;
                }
                tdp_simd::axpy(d, &mut out.row_mut(i)[i..], v, &row[i..]);
            }
        }
        // mirror the upper triangle
        for i in 0..self.cols {
            for j in 0..i {
                out[(i, j)] = out[(j, i)];
            }
        }
        out
    }

    /// Computes `selfᵀ · y` where `y` has one value per row of `self`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != self.rows()`.
    pub fn transpose_vec_mul(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "vector length must match row count");
        let d = Dispatch::active();
        let mut out = vec![0.0; self.cols];
        for (r, &w) in y.iter().enumerate() {
            tdp_simd::axpy(d, &mut out, w, self.row(r));
        }
        out
    }

    /// Solves `self · x = b` by Gaussian elimination with partial
    /// pivoting. Returns `None` if the matrix is singular (pivot below
    /// `1e-12` of the largest row scale).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not square or `b.len()` mismatches.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length must match");
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();

        // scale factors for pivoting robustness
        let mut scale = vec![0.0f64; n];
        for (i, s) in scale.iter_mut().enumerate() {
            *s = a[i * n..(i + 1) * n]
                .iter()
                .fold(0.0f64, |m, &v| m.max(v.abs()));
            if *s == 0.0 {
                return None;
            }
        }

        for col in 0..n {
            // find pivot
            let mut pivot_row = col;
            let mut best = 0.0;
            for (r, s) in scale.iter().enumerate().take(n).skip(col) {
                let candidate = (a[r * n + col] / s).abs();
                if candidate > best {
                    best = candidate;
                    pivot_row = r;
                }
            }
            if a[pivot_row * n + col].abs() < 1e-12 * scale[pivot_row] {
                return None;
            }
            if pivot_row != col {
                for c in 0..n {
                    a.swap(col * n + c, pivot_row * n + c);
                }
                x.swap(col, pivot_row);
                scale.swap(col, pivot_row);
            }
            let pivot = a[col * n + col];
            for r in col + 1..n {
                let factor = a[r * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    a[r * n + c] -= factor * a[col * n + c];
                }
                x[r] -= factor * x[col];
            }
        }

        // back-substitution
        for col in (0..n).rev() {
            let mut sum = x[col];
            for c in col + 1..n {
                sum -= a[col * n + c] * x[c];
            }
            x[col] = sum / a[col * n + col];
        }
        Some(x)
    }

    /// The inverse, via one [`solve`](Matrix::solve) per identity
    /// column. Returns `None` if the matrix is singular. Matrices here
    /// are tiny (one row/column per model coefficient), so the `O(n⁴)`
    /// cost is irrelevant next to clarity.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverse(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "inverse requires a square matrix");
        let n = self.rows;
        let mut inv = Matrix::zeros(n, n);
        let mut unit = vec![0.0f64; n];
        for col in 0..n {
            unit[col] = 1.0;
            let x = self.solve(&unit)?;
            for (row, &v) in x.iter().enumerate() {
                inv[(row, col)] = v;
            }
            unit[col] = 0.0;
        }
        Some(inv)
    }

    /// Adds `lambda` to every diagonal element (absolute ridge damping),
    /// in place.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&mut self, lambda: f64) {
        assert_eq!(self.rows, self.cols);
        for i in 0..self.rows {
            self[(i, i)] += lambda;
        }
    }

    /// Multiplies every diagonal element by `factor` (relative ridge
    /// damping), in place.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn scale_diagonal(&mut self, factor: f64) {
        assert_eq!(self.rows, self.cols);
        for i in 0..self.rows {
            self[(i, i)] *= factor;
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>12.6}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{x} vs {y} (tol {tol})");
        }
    }

    #[test]
    fn solve_known_3x3() {
        // x + 2y + 3z = 14; 2x + 5y + 2z = 18; 3x + y + 5z = 20 → (1,2,3)
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![2.0, 5.0, 2.0],
            vec![3.0, 1.0, 5.0],
        ]);
        let x = a.solve(&[14.0, 18.0, 20.0]).unwrap();
        assert_close(&x, &[1.0, 2.0, 3.0], 1e-9);
    }

    #[test]
    fn solve_requires_pivoting() {
        // leading zero pivot forces a row swap
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = a.solve(&[5.0, 7.0]).unwrap();
        assert_close(&x, &[7.0, 5.0], 1e-12);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(a.solve(&[1.0, 2.0]).is_none());
        let zero = Matrix::zeros(2, 2);
        assert!(zero.solve(&[0.0, 0.0]).is_none());
    }

    #[test]
    fn gram_matches_explicit_transpose_product() {
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0, -1.0],
            vec![0.5, -3.0, 2.0],
            vec![4.0, 0.0, 1.0],
            vec![-1.0, 1.5, 0.25],
        ]);
        let explicit = a.transpose().matmul(&a);
        let gram = a.gram();
        for i in 0..3 {
            for j in 0..3 {
                assert!((explicit[(i, j)] - gram[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn transpose_vec_mul_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let y = [1.0, -1.0, 2.0];
        let v = a.transpose_vec_mul(&y);
        let m = a.transpose().matmul(&Matrix::column(&y));
        assert_close(&v, &[m[(0, 0)], m[(1, 0)]], 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[
            vec![4.0, 7.0, 2.0],
            vec![3.0, 6.0, 1.0],
            vec![2.0, 5.0, 3.0],
        ]);
        let inv = a.inverse().unwrap();
        let id = a.matmul(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (id[(i, j)] - want).abs() < 1e-9,
                    "({i},{j}) = {}",
                    id[(i, j)]
                );
            }
        }
        let singular = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(singular.inverse().is_none());
    }

    #[test]
    fn identity_solve_is_identity() {
        let i = Matrix::identity(4);
        let b = [1.0, 2.0, 3.0, 4.0];
        assert_close(&i.solve(&b).unwrap(), &b, 1e-15);
    }

    #[test]
    fn add_diagonal_only_touches_diagonal() {
        let mut m = Matrix::zeros(2, 2);
        m.add_diagonal(0.5);
        assert_eq!(m[(0, 0)], 0.5);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn display_contains_all_entries() {
        let m = Matrix::from_rows(&[vec![1.5, 2.5]]);
        let s = m.to_string();
        assert!(s.contains("1.5") && s.contains("2.5"));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
