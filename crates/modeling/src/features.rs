//! Polynomial feature maps.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One term of a polynomial feature expansion over an input vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureTerm {
    /// The constant 1 (intercept).
    Intercept,
    /// `x[i]`.
    Linear(usize),
    /// `x[i]²`.
    Quadratic(usize),
    /// `x[i] · x[j]`.
    Cross(usize, usize),
}

impl FeatureTerm {
    /// Evaluates the term against an input vector.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds for `x`.
    #[inline]
    pub fn eval(&self, x: &[f64]) -> f64 {
        match *self {
            FeatureTerm::Intercept => 1.0,
            FeatureTerm::Linear(i) => x[i],
            FeatureTerm::Quadratic(i) => x[i] * x[i],
            FeatureTerm::Cross(i, j) => x[i] * x[j],
        }
    }

    /// The largest input index referenced, or `None` for the intercept.
    pub fn max_index(&self) -> Option<usize> {
        match *self {
            FeatureTerm::Intercept => None,
            FeatureTerm::Linear(i) | FeatureTerm::Quadratic(i) => Some(i),
            FeatureTerm::Cross(i, j) => Some(i.max(j)),
        }
    }
}

impl fmt::Display for FeatureTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FeatureTerm::Intercept => write!(f, "1"),
            FeatureTerm::Linear(i) => write!(f, "x{i}"),
            FeatureTerm::Quadratic(i) => write!(f, "x{i}^2"),
            FeatureTerm::Cross(i, j) => write!(f, "x{i}*x{j}"),
        }
    }
}

/// A declarative polynomial feature expansion: maps an input vector of
/// dimension [`input_dim`](FeatureMap::input_dim) to a feature vector with
/// one entry per [`FeatureTerm`].
///
/// The paper's model forms (§3.3.1) are all expressible here: linear
/// models and single- or multiple-input quadratics, always with an
/// intercept (the idle/DC power term every subsystem exhibits).
///
/// # Example
///
/// ```
/// use tdp_modeling::FeatureMap;
///
/// // Two inputs, each with linear + quadratic terms (the disk model's form).
/// let map = FeatureMap::quadratic_all(2);
/// let f = map.expand(&[2.0, 3.0]);
/// assert_eq!(f, vec![1.0, 2.0, 4.0, 3.0, 9.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureMap {
    input_dim: usize,
    terms: Vec<FeatureTerm>,
}

impl FeatureMap {
    /// Creates a map from explicit terms.
    ///
    /// # Panics
    ///
    /// Panics if a term references an index `>= input_dim`, or if `terms`
    /// is empty.
    pub fn new(input_dim: usize, terms: Vec<FeatureTerm>) -> Self {
        assert!(!terms.is_empty(), "a feature map needs at least one term");
        for t in &terms {
            if let Some(i) = t.max_index() {
                assert!(
                    i < input_dim,
                    "term {t} references input {i} but input_dim is {input_dim}"
                );
            }
        }
        Self { input_dim, terms }
    }

    /// Intercept plus a linear term for every input.
    pub fn linear(input_dim: usize) -> Self {
        let mut terms = vec![FeatureTerm::Intercept];
        terms.extend((0..input_dim).map(FeatureTerm::Linear));
        Self::new(input_dim, terms)
    }

    /// Intercept plus linear and quadratic terms for input `i` only;
    /// other inputs are ignored. This is the paper's single-input
    /// quadratic (memory Equations 2 and 3, I/O Equation 5).
    pub fn quadratic_single(input_dim: usize, i: usize) -> Self {
        Self::new(
            input_dim,
            vec![
                FeatureTerm::Intercept,
                FeatureTerm::Linear(i),
                FeatureTerm::Quadratic(i),
            ],
        )
    }

    /// Intercept plus linear and quadratic terms for every input (the
    /// disk model's two-input quadratic, Equation 4).
    pub fn quadratic_all(input_dim: usize) -> Self {
        let mut terms = vec![FeatureTerm::Intercept];
        for i in 0..input_dim {
            terms.push(FeatureTerm::Linear(i));
            terms.push(FeatureTerm::Quadratic(i));
        }
        Self::new(input_dim, terms)
    }

    /// Intercept only — the chipset's constant model.
    pub fn constant(input_dim: usize) -> Self {
        Self::new(input_dim, vec![FeatureTerm::Intercept])
    }

    /// Dimension of accepted input vectors.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// The terms in order.
    pub fn terms(&self) -> &[FeatureTerm] {
        &self.terms
    }

    /// Number of features produced (== number of model coefficients).
    pub fn output_dim(&self) -> usize {
        self.terms.len()
    }

    /// Expands an input vector into its feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != input_dim`.
    pub fn expand(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.input_dim,
            "input has {} entries, expected {}",
            x.len(),
            self.input_dim
        );
        self.terms.iter().map(|t| t.eval(x)).collect()
    }
}

impl fmt::Display for FeatureMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let joined: Vec<String> = self.terms.iter().map(|t| t.to_string()).collect();
        write!(f, "[{}]", joined.join(" + "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_map_shape() {
        let m = FeatureMap::linear(3);
        assert_eq!(m.output_dim(), 4);
        assert_eq!(m.expand(&[1.0, 2.0, 3.0]), vec![1.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn quadratic_single_ignores_other_inputs() {
        let m = FeatureMap::quadratic_single(3, 1);
        assert_eq!(m.expand(&[99.0, 2.0, -7.0]), vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn constant_map_is_intercept_only() {
        let m = FeatureMap::constant(5);
        assert_eq!(m.expand(&[1.0; 5]), vec![1.0]);
    }

    #[test]
    fn cross_term_evaluates_product() {
        let m = FeatureMap::new(2, vec![FeatureTerm::Intercept, FeatureTerm::Cross(0, 1)]);
        assert_eq!(m.expand(&[3.0, 4.0]), vec![1.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "references input")]
    fn out_of_range_term_rejected() {
        let _ = FeatureMap::new(1, vec![FeatureTerm::Linear(1)]);
    }

    #[test]
    #[should_panic(expected = "expected 2")]
    fn expand_checks_input_dim() {
        let m = FeatureMap::linear(2);
        let _ = m.expand(&[1.0]);
    }

    #[test]
    fn display_is_readable() {
        let m = FeatureMap::quadratic_single(1, 0);
        assert_eq!(m.to_string(), "[1 + x0 + x0^2]");
    }
}
