//! Ordinary least squares via the normal equations.

use crate::features::FeatureMap;
use crate::matrix::Matrix;
use crate::model::RegressionModel;
use std::error::Error;
use std::fmt;

/// Error returned by the fitting functions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer samples than coefficients to estimate.
    NotEnoughSamples {
        /// Samples provided.
        samples: usize,
        /// Coefficients required by the feature map.
        coefficients: usize,
    },
    /// The normal-equation matrix is singular — inputs are collinear or
    /// constant. Consider [`fit_least_squares_ridge`].
    SingularSystem,
    /// `xs` and `ys` have different lengths.
    LengthMismatch {
        /// Number of input rows.
        xs: usize,
        /// Number of targets.
        ys: usize,
    },
    /// A sample contained a non-finite value.
    NonFiniteInput,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::NotEnoughSamples {
                samples,
                coefficients,
            } => write!(
                f,
                "need at least {coefficients} samples to fit {coefficients} coefficients, got {samples}"
            ),
            FitError::SingularSystem => {
                write!(f, "normal equations are singular (collinear or constant inputs)")
            }
            FitError::LengthMismatch { xs, ys } => {
                write!(f, "{xs} input rows but {ys} targets")
            }
            FitError::NonFiniteInput => write!(f, "inputs contain NaN or infinity"),
        }
    }
}

impl Error for FitError {}

/// Fits `y ≈ map(x) · β` by ordinary least squares.
///
/// Solves the normal equations `(FᵀF) β = Fᵀy` where `F` is the expanded
/// feature matrix. For the handful of features the paper's model forms use
/// this is numerically comfortable; near-collinear candidate sets during
/// model selection should use [`fit_least_squares_ridge`].
///
/// # Errors
///
/// See [`FitError`].
///
/// # Example
///
/// ```
/// use tdp_modeling::{fit_least_squares, FeatureMap};
///
/// let xs = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
/// let ys = vec![1.0, 3.0, 5.0, 7.0]; // y = 1 + 2x
/// let m = fit_least_squares(&FeatureMap::linear(1), &xs, &ys)?;
/// assert!((m.predict(&[10.0]) - 21.0).abs() < 1e-9);
/// # Ok::<(), tdp_modeling::FitError>(())
/// ```
pub fn fit_least_squares(
    map: &FeatureMap,
    xs: &[Vec<f64>],
    ys: &[f64],
) -> Result<RegressionModel, FitError> {
    fit_least_squares_ridge(map, xs, ys, 0.0)
}

/// Like [`fit_least_squares`] but applies *relative* ridge damping:
/// each Gram-matrix diagonal element is scaled by `(1 + lambda)`. This
/// keeps the damping proportionate to each feature's own magnitude, so
/// wildly different feature scales (interrupts/cycle ≈ 1e-8 next to an
/// intercept ≈ 1) are damped evenhandedly. Trades a little bias for
/// robustness when candidate inputs are nearly collinear.
///
/// A feature with *zero* variance and zero magnitude still yields a
/// singular system (relative damping cannot invent information), which
/// is the desired behaviour: a trace with no activity in an input
/// cannot calibrate that input's coefficient.
///
/// # Errors
///
/// See [`FitError`].
pub fn fit_least_squares_ridge(
    map: &FeatureMap,
    xs: &[Vec<f64>],
    ys: &[f64],
    lambda: f64,
) -> Result<RegressionModel, FitError> {
    if xs.len() != ys.len() {
        return Err(FitError::LengthMismatch {
            xs: xs.len(),
            ys: ys.len(),
        });
    }
    let k = map.output_dim();
    if xs.len() < k {
        return Err(FitError::NotEnoughSamples {
            samples: xs.len(),
            coefficients: k,
        });
    }

    let mut rows = Vec::with_capacity(xs.len());
    for x in xs {
        if x.iter().any(|v| !v.is_finite()) {
            return Err(FitError::NonFiniteInput);
        }
        rows.push(map.expand(x));
    }
    if ys.iter().any(|v| !v.is_finite()) {
        return Err(FitError::NonFiniteInput);
    }

    // Column equilibration: power-model features span many orders of
    // magnitude (an intercept of 1 next to interrupts/cycle ≈ 1e-8
    // squared ≈ 1e-16), which would make the normal equations
    // hopelessly ill-conditioned in f64. Scale each column to unit
    // max-abs, solve, then unscale the coefficients.
    let mut scales = vec![0.0f64; k];
    for row in &rows {
        for (s, &v) in scales.iter_mut().zip(row) {
            *s = s.max(v.abs());
        }
    }
    if scales.contains(&0.0) {
        // A feature that is identically zero carries no information.
        return Err(FitError::SingularSystem);
    }
    for row in &mut rows {
        for (v, &s) in row.iter_mut().zip(&scales) {
            *v /= s;
        }
    }

    let f = Matrix::from_rows(&rows);
    let mut gram = f.gram();
    if lambda > 0.0 {
        gram.scale_diagonal(1.0 + lambda);
    }
    let rhs = f.transpose_vec_mul(ys);
    let mut beta = gram.solve(&rhs).ok_or(FitError::SingularSystem)?;
    for (b, &s) in beta.iter_mut().zip(&scales) {
        *b /= s;
    }
    Ok(RegressionModel::new(map.clone(), beta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureTerm;

    #[test]
    fn exact_quadratic_recovery() {
        let map = FeatureMap::quadratic_single(1, 0);
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 7.0 - 0.3 * x[0] + 0.02 * x[0] * x[0])
            .collect();
        let m = fit_least_squares(&map, &xs, &ys).unwrap();
        let c = m.coefficients();
        assert!((c[0] - 7.0).abs() < 1e-8);
        assert!((c[1] + 0.3).abs() < 1e-8);
        assert!((c[2] - 0.02).abs() < 1e-8);
    }

    #[test]
    fn least_squares_minimises_noise() {
        // y = 2x with symmetric noise ±1 alternating: slope must stay 2.
        let map = FeatureMap::new(1, vec![FeatureTerm::Linear(0)]);
        let xs: Vec<Vec<f64>> = (1..=10).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x[0] + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let m = fit_least_squares(&map, &xs, &ys).unwrap();
        assert!((m.coefficients()[0] - 2.0).abs() < 0.02);
    }

    #[test]
    fn collinear_inputs_are_singular_without_ridge() {
        let map = FeatureMap::linear(2);
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(
            fit_least_squares(&map, &xs, &ys).unwrap_err(),
            FitError::SingularSystem
        );
        // ridge rescues it
        let m = fit_least_squares_ridge(&map, &xs, &ys, 1e-6).unwrap();
        for (x, &y) in xs.iter().zip(&ys) {
            assert!((m.predict(x) - y).abs() < 1e-3);
        }
    }

    #[test]
    fn too_few_samples_rejected() {
        let map = FeatureMap::quadratic_single(1, 0);
        let err = fit_least_squares(&map, &[vec![1.0]], &[1.0]).unwrap_err();
        assert!(matches!(err, FitError::NotEnoughSamples { .. }));
    }

    #[test]
    fn length_mismatch_rejected() {
        let map = FeatureMap::linear(1);
        let err = fit_least_squares(&map, &[vec![1.0], vec![2.0]], &[1.0]).unwrap_err();
        assert!(matches!(err, FitError::LengthMismatch { xs: 2, ys: 1 }));
    }

    #[test]
    fn nan_input_rejected() {
        let map = FeatureMap::linear(1);
        let err = fit_least_squares(&map, &[vec![f64::NAN], vec![1.0]], &[1.0, 2.0]).unwrap_err();
        assert_eq!(err, FitError::NonFiniteInput);
        let err =
            fit_least_squares(&map, &[vec![0.0], vec![1.0]], &[f64::INFINITY, 2.0]).unwrap_err();
        assert_eq!(err, FitError::NonFiniteInput);
    }

    #[test]
    fn fit_error_messages_are_nonempty() {
        for e in [
            FitError::SingularSystem,
            FitError::NonFiniteInput,
            FitError::NotEnoughSamples {
                samples: 1,
                coefficients: 3,
            },
            FitError::LengthMismatch { xs: 1, ys: 2 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
