//! Recursive least squares: streaming calibration without re-solving.
//!
//! The batch fitters in [`ols`](crate::fit_least_squares) rebuild and
//! re-solve the normal equations over the *full* sample history on
//! every calibration pass — fine offline, wasteful for an online
//! estimator that wants its model refreshed every sampling window.
//! [`RecursiveLeastSquares`] keeps the inverse Gram matrix `P = (FᵀF)⁻¹`
//! and folds each new observation in with a rank-one Sherman–Morrison
//! update: `O(k²)` per sample for `k` coefficients, independent of how
//! many samples came before.
//!
//! The update is algebraically exact (not an approximation): after any
//! number of observations the coefficients equal the ordinary
//! least-squares solution over the same data, up to floating-point
//! rounding. `fit_rls` is the drop-in batch wrapper and the
//! equivalence is pinned to 1e-9 against [`fit_least_squares`] by
//! property tests across seeds.
//!
//! Numerical care mirrors the batch path: features are column-scaled to
//! unit max-abs (power-model features span ~16 orders of magnitude —
//! an intercept of 1 next to squared interrupt rates near 1e-16), with
//! the scales frozen when the estimator first becomes invertible.
//!
//! The update's dot products and row sweeps run through the
//! [`tdp_simd`] dispatch kernels — the same ones the fleet estimator's
//! batched evaluation uses — so calibration shares one vectorized
//! arithmetic path with prediction. [`tdp_simd::dot`] reduces with a
//! fixed four-accumulator association, which perturbs coefficients by
//! at most a few ulp relative to a sequential sum; well inside the
//! 1e-9 OLS-equivalence tolerance the property tests pin.

use crate::features::FeatureMap;
use crate::matrix::Matrix;
use crate::model::RegressionModel;
use crate::ols::FitError;
use tdp_simd::Dispatch;

/// A streaming least-squares estimator over a fixed [`FeatureMap`].
///
/// Observations are buffered until the expanded features span the
/// coefficient space (at least `k` linearly independent rows); the
/// estimator then *primes* — solving that initial system exactly — and
/// every subsequent [`observe`](Self::observe) is a rank-one update.
///
/// # Example
///
/// ```
/// use tdp_modeling::{FeatureMap, RecursiveLeastSquares};
///
/// // y = 1 + 2x, learned one sample at a time.
/// let mut rls = RecursiveLeastSquares::new(FeatureMap::linear(1));
/// for i in 0..10 {
///     let x = i as f64;
///     rls.observe(&[x], 1.0 + 2.0 * x)?;
/// }
/// let model = rls.model()?;
/// assert!((model.predict(&[20.0]) - 41.0).abs() < 1e-9);
/// # Ok::<(), tdp_modeling::FitError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RecursiveLeastSquares {
    map: FeatureMap,
    /// Column scales frozen at priming; identity before.
    scales: Vec<f64>,
    /// Expanded (unscaled) rows buffered until priming succeeds.
    pending: Vec<Vec<f64>>,
    pending_ys: Vec<f64>,
    /// Inverse Gram matrix of the *scaled* features, once primed.
    p: Option<Matrix>,
    /// Coefficients in scaled-feature space.
    beta: Vec<f64>,
    observations: usize,
    /// Scratch for the Sherman–Morrison update (no per-sample allocs).
    phi: Vec<f64>,
    pv: Vec<f64>,
}

impl RecursiveLeastSquares {
    /// Creates an unprimed estimator for the given feature map.
    pub fn new(map: FeatureMap) -> Self {
        let k = map.output_dim();
        Self {
            map,
            scales: vec![1.0; k],
            pending: Vec::new(),
            pending_ys: Vec::new(),
            p: None,
            beta: vec![0.0; k],
            observations: 0,
            phi: vec![0.0; k],
            pv: vec![0.0; k],
        }
    }

    /// The feature map in use.
    pub fn map(&self) -> &FeatureMap {
        &self.map
    }

    /// Total observations folded in so far.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Whether enough independent observations have arrived for the
    /// coefficients to be defined.
    pub fn is_primed(&self) -> bool {
        self.p.is_some()
    }

    /// Folds in one observation.
    ///
    /// # Errors
    ///
    /// [`FitError::LengthMismatch`] if `x` has the wrong dimension,
    /// [`FitError::NonFiniteInput`] on NaN/infinite values, and
    /// [`FitError::SingularSystem`] if the running update degenerates
    /// numerically (it cannot for finite, scaled inputs, but the guard
    /// is kept rather than risking silent garbage).
    pub fn observe(&mut self, x: &[f64], y: f64) -> Result<(), FitError> {
        if x.len() != self.map.input_dim() {
            return Err(FitError::LengthMismatch {
                xs: x.len(),
                ys: self.map.input_dim(),
            });
        }
        if x.iter().any(|v| !v.is_finite()) || !y.is_finite() {
            return Err(FitError::NonFiniteInput);
        }

        if self.p.is_none() {
            self.pending.push(self.map.expand(x));
            self.pending_ys.push(y);
            self.observations += 1;
            if self.pending.len() >= self.map.output_dim() {
                self.try_prime()?;
            }
            return Ok(());
        }

        // Primed: rank-one Sherman–Morrison update in scaled space. The
        // dots and row sweeps run through the same dispatch kernels the
        // fleet estimator evaluates with, so calibration residuals and
        // batched predictions share one arithmetic path.
        let d = Dispatch::active();
        let k = self.map.output_dim();
        let expanded = self.map.expand(x);
        for (dst, (&v, &s)) in self.phi.iter_mut().zip(expanded.iter().zip(&self.scales)) {
            *dst = v / s;
        }
        let p = self.p.as_mut().expect("primed");
        // pv = P · φ  (P is symmetric).
        for i in 0..k {
            self.pv[i] = tdp_simd::dot(d, p.row(i), &self.phi);
        }
        let denom = 1.0 + tdp_simd::dot(d, &self.phi, &self.pv);
        if !denom.is_finite() || denom <= 0.0 {
            return Err(FitError::SingularSystem);
        }
        let residual = y - tdp_simd::dot(d, &self.phi, &self.beta);
        tdp_simd::axpy(d, &mut self.beta, residual / denom, &self.pv);
        // P ← P − (pv pvᵀ)/denom: upper triangle by row sweep, then a
        // mirror pass so rounding drift cannot skew the triangles apart.
        for i in 0..k {
            let scale = -self.pv[i] / denom;
            tdp_simd::axpy(d, &mut p.row_mut(i)[i..], scale, &self.pv[i..]);
        }
        for i in 0..k {
            for j in 0..i {
                p[(i, j)] = p[(j, i)];
            }
        }
        self.observations += 1;
        Ok(())
    }

    /// Folds in a whole window of observations (the per-window shape
    /// fleet calibration uses).
    ///
    /// # Errors
    ///
    /// [`FitError::LengthMismatch`] if `xs` and `ys` disagree, plus
    /// anything [`observe`](Self::observe) returns.
    pub fn observe_window(&mut self, xs: &[Vec<f64>], ys: &[f64]) -> Result<(), FitError> {
        if xs.len() != ys.len() {
            return Err(FitError::LengthMismatch {
                xs: xs.len(),
                ys: ys.len(),
            });
        }
        for (x, &y) in xs.iter().zip(ys) {
            self.observe(x, y)?;
        }
        Ok(())
    }

    /// The current coefficients (in original feature units), or `None`
    /// before priming.
    pub fn coefficients(&self) -> Option<Vec<f64>> {
        self.p.as_ref()?;
        Some(
            self.beta
                .iter()
                .zip(&self.scales)
                .map(|(&b, &s)| b / s)
                .collect(),
        )
    }

    /// The fitted model.
    ///
    /// # Errors
    ///
    /// [`FitError::NotEnoughSamples`] before `k` observations have
    /// arrived; [`FitError::SingularSystem`] if observations exist but
    /// never spanned the coefficient space (e.g. a constant input).
    pub fn model(&self) -> Result<RegressionModel, FitError> {
        match self.coefficients() {
            Some(beta) => Ok(RegressionModel::new(self.map.clone(), beta)),
            None if self.observations < self.map.output_dim() => Err(FitError::NotEnoughSamples {
                samples: self.observations,
                coefficients: self.map.output_dim(),
            }),
            None => Err(FitError::SingularSystem),
        }
    }

    /// Attempts to solve the buffered initial system exactly. On a
    /// singular system the buffer is kept and priming is retried as
    /// further observations arrive. Quietly returns `Ok` in that case —
    /// singularity only becomes an *error* when a model is requested.
    fn try_prime(&mut self) -> Result<(), FitError> {
        let k = self.map.output_dim();
        // Column equilibration from everything seen so far.
        let mut scales = vec![0.0f64; k];
        for row in &self.pending {
            for (s, &v) in scales.iter_mut().zip(row) {
                *s = s.max(v.abs());
            }
        }
        if scales.contains(&0.0) {
            return Ok(()); // a dead column cannot prime yet
        }
        let rows: Vec<Vec<f64>> = self
            .pending
            .iter()
            .map(|row| row.iter().zip(&scales).map(|(&v, &s)| v / s).collect())
            .collect();
        let f = Matrix::from_rows(&rows);
        let gram = f.gram();
        let Some(p) = gram.inverse() else {
            return Ok(()); // still rank-deficient; keep buffering
        };
        let rhs = f.transpose_vec_mul(&self.pending_ys);
        self.beta = gram.solve(&rhs).ok_or(FitError::SingularSystem)?;
        self.p = Some(p);
        self.scales = scales;
        self.pending.clear();
        self.pending.shrink_to_fit();
        self.pending_ys.clear();
        self.pending_ys.shrink_to_fit();
        Ok(())
    }
}

/// Fits `y ≈ map(x) · β` by recursive least squares over the whole
/// batch: build the estimator, stream every sample through it, return
/// the model. Produces the ordinary least-squares solution (within
/// floating-point rounding; property tests pin 1e-9 agreement with
/// [`fit_least_squares`](crate::fit_least_squares)) while touching each
/// sample exactly once — the path fleet calibration uses to update
/// models per window instead of re-solving over the full history.
///
/// # Errors
///
/// See [`FitError`].
///
/// # Example
///
/// ```
/// use tdp_modeling::{fit_rls, FeatureMap};
///
/// let xs = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
/// let ys = vec![1.0, 3.0, 5.0, 7.0]; // y = 1 + 2x
/// let m = fit_rls(&FeatureMap::linear(1), &xs, &ys)?;
/// assert!((m.predict(&[10.0]) - 21.0).abs() < 1e-9);
/// # Ok::<(), tdp_modeling::FitError>(())
/// ```
pub fn fit_rls(map: &FeatureMap, xs: &[Vec<f64>], ys: &[f64]) -> Result<RegressionModel, FitError> {
    if xs.len() != ys.len() {
        return Err(FitError::LengthMismatch {
            xs: xs.len(),
            ys: ys.len(),
        });
    }
    if xs.len() < map.output_dim() {
        return Err(FitError::NotEnoughSamples {
            samples: xs.len(),
            coefficients: map.output_dim(),
        });
    }
    let mut rls = RecursiveLeastSquares::new(map.clone());
    for (x, &y) in xs.iter().zip(ys) {
        rls.observe(x, y)?;
    }
    rls.model()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ols::fit_least_squares;

    #[test]
    fn streaming_matches_batch_ols_on_a_quadratic() {
        let map = FeatureMap::quadratic_single(1, 0);
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 * 0.25]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 7.0 - 0.3 * x[0] + 0.02 * x[0] * x[0])
            .collect();
        let batch = fit_least_squares(&map, &xs, &ys).unwrap();
        let streamed = fit_rls(&map, &xs, &ys).unwrap();
        for (a, b) in batch.coefficients().iter().zip(streamed.coefficients()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn wildly_scaled_features_still_agree_with_ols() {
        // Interrupt-rate-like columns: 1e-8 next to an intercept of 1.
        let map = FeatureMap::quadratic_single(1, 0);
        let xs: Vec<Vec<f64>> = (0..60).map(|i| vec![(i % 13) as f64 * 3e-9]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 32.7 + 1.08e8 * x[0] - 9.4e14 * x[0] * x[0])
            .collect();
        let batch = fit_least_squares(&map, &xs, &ys).unwrap();
        let streamed = fit_rls(&map, &xs, &ys).unwrap();
        for (a, b) in batch.coefficients().iter().zip(streamed.coefficients()) {
            let tol = 1e-9 * a.abs().max(1.0);
            assert!((a - b).abs() < tol, "{a} vs {b}");
        }
    }

    #[test]
    fn incremental_windows_match_one_shot_fit() {
        let map = FeatureMap::linear(2);
        let xs: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 7) as f64, ((i * 5) % 11) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 4.0 + 1.5 * x[0] - 0.5 * x[1]).collect();
        let mut rls = RecursiveLeastSquares::new(map.clone());
        for window in xs.chunks(6).zip(ys.chunks(6)) {
            rls.observe_window(window.0, window.1).unwrap();
        }
        assert_eq!(rls.observations(), 30);
        let streamed = rls.model().unwrap();
        let batch = fit_least_squares(&map, &xs, &ys).unwrap();
        for (a, b) in batch.coefficients().iter().zip(streamed.coefficients()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn unprimed_model_reports_not_enough_samples() {
        let rls = RecursiveLeastSquares::new(FeatureMap::linear(1));
        assert!(matches!(
            rls.model().unwrap_err(),
            FitError::NotEnoughSamples {
                samples: 0,
                coefficients: 2
            }
        ));
        assert!(!rls.is_primed());
        assert_eq!(rls.coefficients(), None);
    }

    #[test]
    fn constant_input_stays_singular_until_variation_arrives() {
        let mut rls = RecursiveLeastSquares::new(FeatureMap::linear(1));
        for _ in 0..5 {
            rls.observe(&[2.0], 9.0).unwrap();
        }
        // Intercept and x are collinear on constant input.
        assert!(matches!(rls.model().unwrap_err(), FitError::SingularSystem));
        // Variation arrives late; the buffered samples still count.
        rls.observe(&[5.0], 15.0).unwrap();
        let m = rls.model().unwrap();
        assert!((m.predict(&[0.0]) - 5.0).abs() < 1e-9, "intercept");
        assert!((m.predict(&[1.0]) - 7.0).abs() < 1e-9, "slope");
    }

    #[test]
    fn bad_inputs_are_rejected() {
        let mut rls = RecursiveLeastSquares::new(FeatureMap::linear(2));
        assert!(matches!(
            rls.observe(&[1.0], 0.0).unwrap_err(),
            FitError::LengthMismatch { xs: 1, ys: 2 }
        ));
        assert_eq!(
            rls.observe(&[f64::NAN, 0.0], 0.0).unwrap_err(),
            FitError::NonFiniteInput
        );
        assert_eq!(
            rls.observe(&[0.0, 1.0], f64::INFINITY).unwrap_err(),
            FitError::NonFiniteInput
        );
        assert!(matches!(
            rls.observe_window(&[vec![0.0, 1.0]], &[1.0, 2.0])
                .unwrap_err(),
            FitError::LengthMismatch { xs: 1, ys: 2 }
        ));
        assert_eq!(rls.observations(), 0, "rejected inputs are not counted");
    }

    #[test]
    fn fit_rls_validates_like_the_batch_fitters() {
        let map = FeatureMap::linear(1);
        assert!(matches!(
            fit_rls(&map, &[vec![1.0]], &[1.0, 2.0]).unwrap_err(),
            FitError::LengthMismatch { .. }
        ));
        assert!(matches!(
            fit_rls(&map, &[vec![1.0]], &[1.0]).unwrap_err(),
            FitError::NotEnoughSamples { .. }
        ));
    }
}
