//! Streaming summary statistics.

use serde::{Deserialize, Serialize};

/// Numerically stable streaming mean/variance (Welford's algorithm).
///
/// Used wherever the workspace needs running statistics over long traces
/// without storing them — e.g. per-subsystem power standard deviations
/// (the paper's Table 2) and error aggregation.
///
/// # Example
///
/// ```
/// use tdp_modeling::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by *n*; 0.0 when empty).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample variance (divides by *n − 1*; 0.0 for fewer than two
    /// observations).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_defined() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn single_observation_has_zero_variance() {
        let s: OnlineStats = [5.0].into_iter().collect();
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let seq: OnlineStats = all.iter().copied().collect();
        let mut a: OnlineStats = all[..37].iter().copied().collect();
        let b: OnlineStats = all[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-12);
        assert!((a.population_variance() - seq.population_variance()).abs() < 1e-10);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: OnlineStats = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn large_offset_stays_stable() {
        // naive sum-of-squares would lose precision here
        let s: OnlineStats = (0..1000).map(|i| 1e9 + (i % 10) as f64).collect();
        assert!((s.mean() - (1e9 + 4.5)).abs() < 1e-3);
        assert!((s.population_variance() - 8.25).abs() < 1e-3);
    }
}
