//! Fitted regression models.

use crate::features::FeatureMap;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A fitted polynomial regression model: `ŷ = Σ βᵢ · termᵢ(x)`.
///
/// Prediction is a handful of multiply-adds, satisfying the paper's
/// low-computational-cost requirement for runtime power estimation
/// (§3.3.1). Models serialise with `serde` so calibrated coefficients can
/// be shipped and reloaded.
///
/// # Example
///
/// ```
/// use tdp_modeling::{FeatureMap, RegressionModel};
///
/// // Equation 1's per-CPU form: 9.25 + 26.45·active + 4.31·uops_per_cycle
/// let map = FeatureMap::linear(2);
/// let m = RegressionModel::new(map, vec![9.25, 26.45, 4.31]);
/// let idle = m.predict(&[0.0, 0.0]);
/// let busy = m.predict(&[1.0, 3.0]);
/// assert!((idle - 9.25).abs() < 1e-12);
/// assert!((busy - 48.63).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionModel {
    map: FeatureMap,
    coefficients: Vec<f64>,
}

impl RegressionModel {
    /// Creates a model from a feature map and one coefficient per term.
    ///
    /// # Panics
    ///
    /// Panics if `coefficients.len() != map.output_dim()`.
    pub fn new(map: FeatureMap, coefficients: Vec<f64>) -> Self {
        assert_eq!(
            coefficients.len(),
            map.output_dim(),
            "need one coefficient per feature term"
        );
        Self { map, coefficients }
    }

    /// The feature map.
    pub fn feature_map(&self) -> &FeatureMap {
        &self.map
    }

    /// The fitted coefficients, one per feature term.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Predicts the target for an input vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != input_dim` of the feature map.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.map
            .terms()
            .iter()
            .zip(&self.coefficients)
            .map(|(t, &b)| b * t.eval(x))
            .sum()
    }

    /// Predicts each row of `xs`.
    pub fn predict_all<'a, I>(&'a self, xs: I) -> impl Iterator<Item = f64> + 'a
    where
        I: IntoIterator<Item = &'a [f64]> + 'a,
    {
        xs.into_iter().map(|x| self.predict(x))
    }
}

impl fmt::Display for RegressionModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (t, &b) in self.map.terms().iter().zip(&self.coefficients) {
            if first {
                write!(f, "{b:.4}·{t}")?;
                first = false;
            } else if b < 0.0 {
                write!(f, " - {:.4}·{t}", -b)?;
            } else {
                write!(f, " + {b:.4}·{t}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predict_all_matches_predict() {
        let m = RegressionModel::new(FeatureMap::linear(1), vec![1.0, 2.0]);
        let rows: Vec<Vec<f64>> = vec![vec![0.0], vec![1.0], vec![2.0]];
        let out: Vec<f64> = m.predict_all(rows.iter().map(|r| r.as_slice())).collect();
        assert_eq!(out, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "one coefficient per feature term")]
    fn coefficient_count_checked() {
        let _ = RegressionModel::new(FeatureMap::linear(1), vec![1.0]);
    }

    #[test]
    fn display_formats_signs() {
        let m = RegressionModel::new(
            FeatureMap::quadratic_single(1, 0),
            vec![29.2, -0.00501, 0.00000813],
        );
        let s = m.to_string();
        assert!(s.starts_with("29.2"), "{s}");
        assert!(s.contains('-'), "{s}");
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let m = RegressionModel::new(
            FeatureMap::quadratic_all(2),
            vec![21.6, 1.06, -1.11, 9.18, -4.54],
        );
        let json = serde_json::to_string(&m).unwrap();
        let back: RegressionModel = serde_json::from_str(&json).unwrap();
        let x = [0.3, 0.7];
        assert_eq!(m.predict(&x), back.predict(&x));
        assert_eq!(m, back);
    }
}
