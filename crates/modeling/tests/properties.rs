//! Property-based tests for the regression substrate.

use proptest::prelude::*;
use tdp_modeling::metrics::{error_summary, error_summary_with_offset};
use tdp_modeling::{
    fit_least_squares, fit_least_squares_ridge, fit_rls, FeatureMap, FitError, Matrix, OnlineStats,
    RecursiveLeastSquares,
};

proptest! {
    /// Solving `A·x = b` and multiplying back must reproduce `b` for
    /// well-conditioned matrices.
    #[test]
    fn solve_then_multiply_roundtrips(
        seed in 0u64..1000,
        n in 2usize..6,
    ) {
        // Build a diagonally dominant (hence invertible) matrix.
        let mut rows = Vec::new();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f64 / 1000.0 - 1.0
        };
        for i in 0..n {
            let mut row: Vec<f64> = (0..n).map(|_| next()).collect();
            row[i] += n as f64 + 1.0;
            rows.push(row);
        }
        let a = Matrix::from_rows(&rows);
        let b: Vec<f64> = (0..n).map(|_| next() * 10.0).collect();
        let x = a.solve(&b).expect("diagonally dominant is solvable");
        let back = a.matmul(&Matrix::column(&x));
        for i in 0..n {
            prop_assert!((back[(i, 0)] - b[i]).abs() < 1e-8,
                "row {i}: {} vs {}", back[(i, 0)], b[i]);
        }
    }

    /// Gram matrices are symmetric positive semi-definite on the
    /// diagonal.
    #[test]
    fn gram_is_symmetric_with_nonnegative_diagonal(
        vals in prop::collection::vec(-100.0f64..100.0, 12),
    ) {
        let rows: Vec<Vec<f64>> =
            vals.chunks(3).map(|c| c.to_vec()).collect();
        let m = Matrix::from_rows(&rows);
        let g = m.gram();
        for i in 0..3 {
            prop_assert!(g[(i, i)] >= 0.0);
            for j in 0..3 {
                prop_assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-9);
            }
        }
    }

    /// OLS recovers exact linear relationships regardless of the
    /// coefficients' signs and magnitudes (within float headroom).
    #[test]
    fn ols_recovers_exact_linear_fit(
        intercept in -100.0f64..100.0,
        slope in -10.0f64..10.0,
    ) {
        let map = FeatureMap::linear(1);
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> =
            xs.iter().map(|x| intercept + slope * x[0]).collect();
        let m = fit_least_squares(&map, &xs, &ys).unwrap();
        prop_assert!((m.coefficients()[0] - intercept).abs() < 1e-6);
        prop_assert!((m.coefficients()[1] - slope).abs() < 1e-7);
    }

    /// Ridge damping never turns a solvable system unsolvable, and its
    /// predictions stay close to the undamped ones.
    #[test]
    fn ridge_is_a_small_perturbation(lambda in 0.0f64..1e-6) {
        let map = FeatureMap::quadratic_single(1, 0);
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 * 0.1]).collect();
        let ys: Vec<f64> =
            xs.iter().map(|x| 5.0 + x[0] + 0.3 * x[0] * x[0]).collect();
        let plain = fit_least_squares(&map, &xs, &ys).unwrap();
        let damped = fit_least_squares_ridge(&map, &xs, &ys, lambda).unwrap();
        for x in &xs {
            prop_assert!((plain.predict(x) - damped.predict(x)).abs() < 1e-3);
        }
    }

    /// Equation-6 error is shift-sensitive but scale-invariant:
    /// multiplying both series by a positive constant leaves it
    /// unchanged.
    #[test]
    fn equation6_is_scale_invariant(
        scale in 0.1f64..100.0,
        measured in prop::collection::vec(10.0f64..500.0, 1..30),
    ) {
        let modeled: Vec<f64> =
            measured.iter().map(|m| m * 1.07).collect();
        let base = error_summary(&modeled, &measured).average_error_pct;
        let scaled_modeled: Vec<f64> = modeled.iter().map(|m| m * scale).collect();
        let scaled_measured: Vec<f64> = measured.iter().map(|m| m * scale).collect();
        let scaled = error_summary(&scaled_modeled, &scaled_measured).average_error_pct;
        prop_assert!((base - scaled).abs() < 1e-9);
        prop_assert!((base - 7.0).abs() < 1e-9, "7% by construction");
    }

    /// Subtracting a DC offset can only grow (or preserve) relative
    /// error when the offset moves measured values toward zero.
    #[test]
    fn dc_offset_amplifies_error(
        offset in 0.0f64..9.0,
        noise in 0.01f64..0.5,
    ) {
        let measured = vec![10.0, 11.0, 12.0];
        let modeled: Vec<f64> = measured.iter().map(|m| m + noise).collect();
        let plain = error_summary(&modeled, &measured).average_error_pct;
        let adjusted =
            error_summary_with_offset(&modeled, &measured, offset).average_error_pct;
        prop_assert!(adjusted >= plain - 1e-12);
    }

    /// Recursive least squares is the same estimator as batch OLS:
    /// across random seeds, slopes and intercepts, streaming the
    /// samples one at a time lands within 1e-9 of re-solving the
    /// normal equations over the full set.
    #[test]
    fn rls_matches_batch_ols_across_seeds(
        seed in 0u64..500,
        intercept in -50.0f64..50.0,
        slope in -5.0f64..5.0,
        quad in -0.5f64..0.5,
    ) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 4000) as f64 / 1000.0 - 2.0
        };
        let map = FeatureMap::quadratic_single(1, 0);
        let xs: Vec<Vec<f64>> = (0..50).map(|_| vec![next() * 3.0]).collect();
        // Deterministic "noise" so the residual is nonzero and both
        // solvers actually have to average something.
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| intercept + slope * x[0] + quad * x[0] * x[0] + next() * 0.01)
            .collect();
        let batch = fit_least_squares(&map, &xs, &ys).unwrap();
        let streamed = fit_rls(&map, &xs, &ys).unwrap();
        for (a, b) in batch.coefficients().iter().zip(streamed.coefficients()) {
            prop_assert!(
                (a - b).abs() < 1e-9 * a.abs().max(1.0),
                "batch {a} vs streamed {b}"
            );
        }
    }

    /// Welford statistics agree with naive two-pass computation.
    #[test]
    fn online_stats_match_two_pass(
        xs in prop::collection::vec(-1e3f64..1e3, 2..50),
    ) {
        let online: OnlineStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / xs.len() as f64;
        prop_assert!((online.mean() - mean).abs() < 1e-9 * mean.abs().max(1.0));
        prop_assert!((online.population_variance() - var).abs()
            < 1e-7 * var.max(1.0));
    }
}

/// Every `FitError` variant, produced on purpose, for both the batch
/// and the streaming fitters.
mod fit_error_variants {
    use super::*;

    fn map() -> FeatureMap {
        FeatureMap::linear(1)
    }

    #[test]
    fn not_enough_samples() {
        let err = fit_least_squares(&map(), &[vec![1.0]], &[1.0]).unwrap_err();
        assert!(matches!(
            err,
            FitError::NotEnoughSamples {
                samples: 1,
                coefficients: 2
            }
        ));
        assert!(matches!(
            fit_rls(&map(), &[vec![1.0]], &[1.0]).unwrap_err(),
            FitError::NotEnoughSamples {
                samples: 1,
                coefficients: 2
            }
        ));
    }

    #[test]
    fn singular_system() {
        // A constant input is collinear with the intercept.
        let xs = vec![vec![3.0]; 8];
        let ys = vec![1.0; 8];
        assert!(matches!(
            fit_least_squares(&map(), &xs, &ys).unwrap_err(),
            FitError::SingularSystem
        ));
        let mut rls = RecursiveLeastSquares::new(map());
        for (x, &y) in xs.iter().zip(&ys) {
            rls.observe(x, y).unwrap();
        }
        assert!(matches!(rls.model().unwrap_err(), FitError::SingularSystem));
    }

    #[test]
    fn length_mismatch() {
        let err = fit_least_squares(&map(), &[vec![1.0], vec![2.0]], &[1.0]).unwrap_err();
        assert!(matches!(err, FitError::LengthMismatch { xs: 2, ys: 1 }));
        assert!(matches!(
            fit_rls(&map(), &[vec![1.0], vec![2.0]], &[1.0]).unwrap_err(),
            FitError::LengthMismatch { xs: 2, ys: 1 }
        ));
    }

    #[test]
    fn non_finite_input() {
        let xs = vec![vec![1.0], vec![f64::NAN], vec![3.0]];
        let ys = vec![1.0, 2.0, 3.0];
        assert!(matches!(
            fit_least_squares(&map(), &xs, &ys).unwrap_err(),
            FitError::NonFiniteInput
        ));
        assert!(matches!(
            fit_rls(&map(), &xs, &ys).unwrap_err(),
            FitError::NonFiniteInput
        ));
        // Non-finite responses are rejected too.
        let bad_y = fit_least_squares(
            &map(),
            &[vec![1.0], vec![2.0], vec![3.0]],
            &[1.0, f64::INFINITY, 3.0],
        );
        assert!(matches!(bad_y.unwrap_err(), FitError::NonFiniteInput));
    }
}
