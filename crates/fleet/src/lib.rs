//! **tdp-fleet** — fleet-scale batched power estimation.
//!
//! The paper's estimator is deliberately cheap — "the model is simple
//! enough to be evaluated at runtime" (§3.3.1) — and PR 1 made a single
//! machine's sample→estimate path allocation-free. This crate scales
//! that path *across machines*: one [`SystemPowerModel`] evaluated over
//! thousands of simulated servers per window, the shape a datacenter
//! power-management controller consumes.
//!
//! Three ideas, three modules:
//!
//! * [`SampleBatch`] — structure-of-arrays ingestion. The models only
//!   consume thirteen machine-aggregated event rates, so a fleet window
//!   is thirteen contiguous `f64` columns (squared inputs materialised
//!   at ingest), not N pointer-chasing sample structs. Extraction
//!   mirrors `SystemSample::from_sample_set` exactly, in one pass, with
//!   zero allocation in the steady state.
//! * [`FleetEstimator`] — vectorized evaluation. Equations 1–5 are
//!   linear/quadratic forms, so each model coefficient becomes one
//!   `axpy` pass over a column ([`kernels`]); output lands in
//!   caller-owned column buffers reused window after window. The pooled
//!   path shards machines across a persistent
//!   [`tdp_parallel::WorkerPool`] and is **bit-identical** to serial
//!   for any worker count, because every kernel is elementwise.
//! * [`StreamingCalibrator`] — recursive-least-squares calibration
//!   ([`tdp_modeling::fit_rls`]): models refresh per window at
//!   `O(k²)` cost instead of re-solving the normal equations over the
//!   full history, with coefficients equivalent to the batch fit.
//!
//! # Quickstart
//!
//! ```
//! use tdp_fleet::FleetEstimator;
//! use tdp_simsys::{Machine, MachineConfig};
//! use trickledown::SystemPowerModel;
//!
//! // A fleet of 64 simulated machines (one here, sampled 64 times).
//! let mut machine = Machine::new(MachineConfig::default());
//! for _ in 0..1000 {
//!     machine.tick();
//! }
//! let set = machine.read_counters();
//!
//! let mut fleet = FleetEstimator::with_capacity(SystemPowerModel::paper(), 64);
//! fleet.begin_window();
//! for _ in 0..64 {
//!     fleet.push_sample_set(&set);
//! }
//! let estimates = fleet.estimate();
//! assert_eq!(estimates.len(), 64);
//! println!("fleet draws {:.0} W", estimates.fleet_total());
//! ```

// `deny` rather than `forbid`: `batch::wide` carries the two
// `#[target_feature(enable = "avx2")]` recompilations of the bulk
// ingest loop, whose call sites are `unsafe` by language rule alone
// (hardware support is re-verified before every call). Everything else
// in the crate stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod anomaly;
mod batch;
mod calibrate;
mod estimator;
pub mod kernels;

pub use anomaly::{AnomalyConfig, AnomalyDetector, AnomalySummary, Verdict};
pub use batch::{col, fold_event_lanes, RowAccumulator, SampleBatch, COLUMNS, ROW_EVENTS};
pub use calibrate::StreamingCalibrator;
pub use estimator::{FleetEstimates, FleetEstimator};
