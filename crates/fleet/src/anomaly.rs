//! Streaming anomaly detection over per-subsystem power estimates.
//!
//! The wire health ladder ([`tdp-wire`]'s quarantine/hold/stale
//! machinery) catches telemetry that is *malformed*; nothing there
//! catches a machine whose counters are perfectly well-formed but whose
//! **power trajectory** has left the fleet — a runaway workload, a
//! failing fan driving sustained turbo, a compromised host. This module
//! watches the estimator's own output, per subsystem, and flags
//! machines that diverge from their peers:
//!
//! * Each window, the detector takes the fleet's per-subsystem
//!   estimates (CPU, memory, disk, I/O — chipset is a constant and
//!   total is their sum) and computes a **cross-sectional robust
//!   center**: the fleet median per subsystem. Median instead of mean
//!   so a handful of already anomalous machines cannot drag the
//!   center toward themselves — and because the center is *this*
//!   window's, a fleet-wide load swing moves every machine and its
//!   center together and cancels, instead of flagging the whole fleet.
//! * The **scale** is MAD-derived (`1.4826·MAD`, floored at a small
//!   fraction of the median — an idle-uniform fleet has MAD ≈ 0 and
//!   the floor keeps z finite) and smoothed as the median over a
//!   fixed-capacity **window ring** of recent scales, so one window in
//!   which many machines misbehave at once cannot inflate the scale
//!   and hide them.
//! * Each machine's **z-score** is its worst subsystem divergence:
//!   `z = max_s |x_s − med_s| / denom_s`. `z ≥ threshold` ⇒
//!   [`Verdict::Anomalous`]; after recovery the machine is carried as
//!   [`Verdict::Suspect`] for a hysteresis hold before returning to
//!   [`Verdict::Normal`].
//!
//! # The adaptive-sampling loop
//!
//! Verdicts close the loop with the wire protocol:
//! [`AnomalyDetector::decimation`] answers, per machine, how often the
//! producer should transmit — `1` (every window) for anomalous,
//! suspect, or not-yet-warmed machines, the configured
//! [`healthy_decimation`](AnomalyConfig::healthy_decimation) for
//! machines the fleet agrees are boring. The controller forwards that
//! to [`WireEncoder::set_decimation`], the encoder announces it on the
//! machine's layout frame, and ingest reconstructs the skipped windows
//! by holding the last row — cutting steady-state wire + ingest cost
//! roughly `N×` while anomalous machines keep full resolution: trace
//! the problem, not the process.
//!
//! # Bit-identity contract
//!
//! The baseline refresh is serial in both entry points; the
//! per-machine judgement is a pure function of `(machine state,
//! baseline)`. [`AnomalyDetector::update_pooled`] shards only that
//! elementwise phase, so serial and pooled updates leave **bit-identical**
//! detector state for any worker count — pinned by
//! [`AnomalyDetector::digest`] in the chaos suite, the same contract
//! every other sharded stage of the pipeline honours.
//!
//! [`tdp-wire`]: ../tdp_wire/index.html
//! [`WireEncoder::set_decimation`]: ../tdp_wire/struct.WireEncoder.html#method.set_decimation

use crate::FleetEstimates;
use tdp_parallel::WorkerPool;

/// Subsystems the detector watches: CPU, memory, disk, I/O. Chipset is
/// a per-machine constant and total is the sum of the others — neither
/// can diverge on its own.
const SUBSYSTEMS: usize = 4;

/// Tuning for [`AnomalyDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyConfig {
    /// Capacity of the scale window ring — how many windows of
    /// cross-sectional MAD scales the operative denominator is the
    /// median of. Also the warmup length: until this many windows have
    /// been seen, every machine is sampled at full rate and no verdict
    /// leaves [`Verdict::Normal`].
    pub baseline_windows: usize,
    /// Robust z-score at or above which a machine is
    /// [`Verdict::Anomalous`]. A clean homogeneous fleet sits well
    /// under 3; the default leaves a wide false-positive margin while
    /// still catching order-of-magnitude spikes instantly.
    pub threshold: f64,
    /// Windows a machine stays [`Verdict::Suspect`] (still sampled
    /// every window) after its z-score drops back below the threshold.
    pub hold_windows: u32,
    /// Sampling decimation granted to warmed-up [`Verdict::Normal`]
    /// machines: transmit one window in this many, reconstructed by
    /// hold on ingest.
    pub healthy_decimation: u16,
    /// Relative floor on the MAD-derived scale, as a fraction of the
    /// baseline median's magnitude — keeps z finite on an idle fleet
    /// whose MAD is exactly zero.
    pub rel_floor: f64,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        Self {
            baseline_windows: 8,
            threshold: 6.0,
            hold_windows: 3,
            healthy_decimation: 4,
            rel_floor: 0.01,
        }
    }
}

/// Where a machine stands with the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Verdict {
    /// Tracking the fleet baseline; eligible for decimated sampling.
    #[default]
    Normal,
    /// Recently anomalous, inside the hysteresis hold — sampled every
    /// window, not (or no longer) over the threshold.
    Suspect,
    /// Diverging from fleet peers right now (`z ≥ threshold`).
    Anomalous,
}

/// One window's operative baseline: per-subsystem center (this
/// window's cross-sectional median) and scale (ring-smoothed MAD).
#[derive(Debug, Clone, Copy)]
struct Baseline {
    med: [f64; SUBSYSTEMS],
    denom: [f64; SUBSYSTEMS],
}

/// Fleet-wide verdict counts for one window (bench/report shape).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AnomalySummary {
    /// Machines currently [`Verdict::Anomalous`].
    pub anomalous: u64,
    /// Machines in the [`Verdict::Suspect`] hysteresis hold.
    pub suspect: u64,
    /// Largest per-machine z-score this window.
    pub max_z: f64,
}

/// Streaming per-machine anomaly detector; see the [module docs](self).
///
/// State is structure-of-arrays: one dense vector per per-machine
/// field, indexed by machine id, exactly like the wire health ledger —
/// the pooled update shards contiguous index ranges of them.
#[derive(Debug, Clone)]
pub struct AnomalyDetector {
    cfg: AnomalyConfig,
    /// Ring of per-window MAD-derived scales, subsystem-major
    /// (`ring_denom[s]` holds up to `baseline_windows` entries).
    ring_denom: [Vec<f64>; SUBSYSTEMS],
    /// Next ring slot to overwrite once the ring is full.
    ring_head: usize,
    /// Entries currently in the ring (`≤ baseline_windows`).
    ring_len: usize,
    /// Windows observed in total.
    windows: u64,
    /// Per machine: latest robust z-score.
    z: Vec<f64>,
    /// Per machine: current verdict.
    verdict: Vec<Verdict>,
    /// Per machine: remaining hysteresis windows.
    hold: Vec<u32>,
    /// Sort scratch for medians (values, then absolute deviations).
    scratch: Vec<f64>,
}

impl Default for AnomalyDetector {
    fn default() -> Self {
        Self::new(AnomalyConfig::default())
    }
}

/// Median of `vals` after an unstable total-order sort. Deterministic
/// for any input (NaNs order via `total_cmp`; the estimator's clamped
/// outputs never produce them).
fn median_in(vals: &mut [f64]) -> f64 {
    if vals.is_empty() {
        return 0.0;
    }
    vals.sort_unstable_by(f64::total_cmp);
    let n = vals.len();
    if n % 2 == 1 {
        vals[n / 2]
    } else {
        0.5 * (vals[n / 2 - 1] + vals[n / 2])
    }
}

/// The pure per-machine judgement: worst-subsystem z against the
/// baseline, then the verdict transition. Both update entry points call
/// exactly this, which is what makes them bit-identical.
#[inline]
fn judge(
    cfg: &AnomalyConfig,
    base: &Baseline,
    x: [f64; SUBSYSTEMS],
    prev_hold: u32,
    warmed: bool,
) -> (f64, Verdict, u32) {
    let mut z = 0.0f64;
    for ((&xs, &med), &denom) in x.iter().zip(&base.med).zip(&base.denom) {
        let d = (xs - med).abs() / denom;
        if d > z {
            z = d;
        }
    }
    if !warmed {
        return (z, Verdict::Normal, 0);
    }
    if z >= cfg.threshold {
        (z, Verdict::Anomalous, cfg.hold_windows)
    } else if prev_hold > 0 {
        (z, Verdict::Suspect, prev_hold - 1)
    } else {
        (z, Verdict::Normal, 0)
    }
}

impl AnomalyDetector {
    /// A detector with no windows observed.
    pub fn new(cfg: AnomalyConfig) -> Self {
        Self {
            cfg,
            ring_denom: Default::default(),
            ring_head: 0,
            ring_len: 0,
            windows: 0,
            z: Vec::new(),
            verdict: Vec::new(),
            hold: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// The configuration this detector runs.
    pub fn config(&self) -> &AnomalyConfig {
        &self.cfg
    }

    /// Windows observed so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Whether the baseline ring is full — verdicts and decimation
    /// grants are only issued from here on.
    pub fn warmed(&self) -> bool {
        self.ring_len >= self.cfg.baseline_windows.max(1)
    }

    /// Machine `m`'s current verdict ([`Verdict::Normal`] if never
    /// judged).
    pub fn verdict(&self, m: usize) -> Verdict {
        self.verdict.get(m).copied().unwrap_or_default()
    }

    /// Machine `m`'s latest robust z-score (0 if never judged).
    pub fn z(&self, m: usize) -> f64 {
        self.z.get(m).copied().unwrap_or(0.0)
    }

    /// The sampling decimation the control loop should grant machine
    /// `m`: full rate until the detector is warmed and for any machine
    /// not currently [`Verdict::Normal`], the configured healthy
    /// decimation otherwise.
    pub fn decimation(&self, m: usize) -> u16 {
        if self.warmed() && self.verdict(m) == Verdict::Normal {
            self.cfg.healthy_decimation.max(1)
        } else {
            1
        }
    }

    /// Fleet-wide verdict counts for the latest window.
    pub fn summary(&self) -> AnomalySummary {
        let mut s = AnomalySummary::default();
        for (&v, &z) in self.verdict.iter().zip(&self.z) {
            match v {
                Verdict::Anomalous => s.anomalous += 1,
                Verdict::Suspect => s.suspect += 1,
                Verdict::Normal => {}
            }
            if z > s.max_z {
                s.max_z = z;
            }
        }
        s
    }

    /// A mixing digest of the full detector state (window count, ring,
    /// every machine's z/verdict/hold) — two states are bit-identical
    /// iff their digests match, which is how the chaos suite pins the
    /// serial == pooled contract.
    pub fn digest(&self) -> u64 {
        const K: u64 = 0x9e37_79b9_7f4a_7c15;
        let mix = |h: u64, w: u64| (h.rotate_left(25) ^ w).wrapping_mul(K);
        let mut h = mix(0x7464_705f_616e_6f6d, self.windows);
        h = mix(h, self.ring_len as u64);
        h = mix(h, self.ring_head as u64);
        for s in 0..SUBSYSTEMS {
            for &d in &self.ring_denom[s] {
                h = mix(h, d.to_bits());
            }
        }
        for ((&z, &v), &hold) in self.z.iter().zip(&self.verdict).zip(&self.hold) {
            h = mix(h, z.to_bits());
            h = mix(h, v as u64);
            h = mix(h, hold as u64);
        }
        h
    }

    /// Grows the per-machine state to `n` machines (never shrinks; new
    /// machines start Normal with no history).
    fn ensure(&mut self, n: usize) {
        if self.z.len() < n {
            self.z.resize(n, 0.0);
            self.verdict.resize(n, Verdict::Normal);
            self.hold.resize(n, 0);
        }
    }

    /// The serial phase both entry points share: this window's
    /// cross-sectional median per subsystem (the operative center —
    /// fleet-wide swings cancel against it) and MAD scale, the scale
    /// pushed into the ring, and the operative scale (ring median)
    /// read back out.
    fn refresh_baseline(&mut self, cols: &[&[f64]; SUBSYSTEMS]) -> Baseline {
        let cap = self.cfg.baseline_windows.max(1);
        let mut base = Baseline {
            med: [0.0; SUBSYSTEMS],
            denom: [0.0; SUBSYSTEMS],
        };
        for (s, col) in cols.iter().enumerate() {
            self.scratch.clear();
            self.scratch.extend_from_slice(col);
            let med = median_in(&mut self.scratch);
            for v in self.scratch.iter_mut() {
                *v = (*v - med).abs();
            }
            let mad = median_in(&mut self.scratch);
            let denom = (1.4826 * mad).max(self.cfg.rel_floor * med.abs() + 1e-12);
            if self.ring_denom[s].len() < cap {
                self.ring_denom[s].push(denom);
            } else {
                self.ring_denom[s][self.ring_head] = denom;
            }
            base.med[s] = med;
        }
        self.ring_len = self.ring_denom[0].len();
        self.ring_head = (self.ring_head + 1) % cap;
        self.windows += 1;
        for s in 0..SUBSYSTEMS {
            self.scratch.clear();
            self.scratch.extend_from_slice(&self.ring_denom[s]);
            base.denom[s] = median_in(&mut self.scratch);
        }
        base
    }

    /// Observes one window of fleet estimates and re-judges every
    /// machine, serially. Allocation-free in the steady state.
    pub fn update(&mut self, est: &FleetEstimates) {
        let n = est.len();
        self.ensure(n);
        let cols = [est.cpu(), est.memory(), est.disk(), est.io()];
        let base = self.refresh_baseline(&cols);
        let warmed = self.warmed();
        #[allow(clippy::needless_range_loop)] // four parallel columns, one index
        for m in 0..n {
            let x = [cols[0][m], cols[1][m], cols[2][m], cols[3][m]];
            let (z, v, hold) = judge(&self.cfg, &base, x, self.hold[m], warmed);
            self.z[m] = z;
            self.verdict[m] = v;
            self.hold[m] = hold;
        }
    }

    /// [`update`](Self::update) with the per-machine judgement sharded
    /// across `pool`. The baseline refresh stays serial and the
    /// judgement is a pure per-machine function, so the resulting state
    /// is bit-identical to the serial update for any worker count.
    pub fn update_pooled(&mut self, est: &FleetEstimates, pool: &WorkerPool) {
        let n = est.len();
        self.ensure(n);
        let cols = [est.cpu(), est.memory(), est.disk(), est.io()];
        let base = self.refresh_baseline(&cols);
        let warmed = self.warmed();
        // Contiguous index ranges, judged in parallel from immutable
        // state, written back in order — elementwise, so sharding
        // cannot reorder or change any machine's arithmetic.
        const CHUNK: usize = 256;
        let cfg = self.cfg;
        let prev_hold = &self.hold;
        let ranges: Vec<(usize, usize)> = (0..n)
            .step_by(CHUNK)
            .map(|s| (s, (s + CHUNK).min(n)))
            .collect();
        let judged: Vec<Vec<(f64, Verdict, u32)>> = pool.par_map(ranges, |(lo, hi)| {
            (lo..hi)
                .map(|m| {
                    let x = [cols[0][m], cols[1][m], cols[2][m], cols[3][m]];
                    judge(&cfg, &base, x, prev_hold[m], warmed)
                })
                .collect()
        });
        for (i, (z, v, hold)) in judged.into_iter().flatten().enumerate() {
            self.z[i] = z;
            self.verdict[i] = v;
            self.hold[i] = hold;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::FleetEstimator;
    use crate::SampleBatch;
    use trickledown::SystemPowerModel;

    /// A deterministic synthetic fleet row straight into the batch
    /// columns: uniform-ish sane rates with small per-machine jitter.
    fn fill_batch(batch: &mut SampleBatch, machines: usize, seed: u64, spike: Option<usize>) {
        use crate::col;
        batch.resize_rows(machines);
        let cols = batch.columns_mut();
        #[allow(clippy::needless_range_loop)] // `m` indexes many parallel columns at once
        for m in 0..machines {
            let mut r = (seed + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ (m as u64 + 1).wrapping_mul(0xd1b5_4a32_d192_ed03);
            let mut next = || {
                r ^= r << 13;
                r ^= r >> 7;
                r ^= r << 17;
                (r >> 11) as f64 / (1u64 << 53) as f64
            };
            // Discard the first draws: nearby seeds need a few rounds
            // to decorrelate, and the jitter must genuinely differ per
            // machine for the MAD to be realistic.
            for _ in 0..3 {
                next();
            }
            let jitter = 0.9 + 0.2 * next();
            let spiked = spike == Some(m);
            cols[col::NUM_CPUS][m] = 4.0;
            cols[col::ACTIVE][m] = 2.0 * jitter;
            cols[col::UPC][m] = 4.0 * jitter;
            // A spiked machine runs its memory/disk/io rates far above
            // the fleet but still inside the sanity caps.
            let boost = if spiked { 30.0 } else { 1.0 };
            cols[col::L3][m] = 8.0 * jitter * boost;
            cols[col::L3_SQ][m] = 16.0 * jitter * boost * boost;
            cols[col::BUS][m] = 2.0e4 * jitter * boost;
            cols[col::BUS_SQ][m] = 1.0e8 * jitter * boost * boost;
            cols[col::DMA][m] = 0.05 * jitter * boost;
            cols[col::DMA_SQ][m] = 6.25e-4 * jitter * boost * boost;
            cols[col::DISK_INT][m] = 2.0e-8 * jitter * boost;
            cols[col::DISK_INT_SQ][m] = 4.0e-16 * jitter * boost * boost;
            cols[col::DEV_INT][m] = 3.0e-8 * jitter * boost;
            cols[col::DEV_INT_SQ][m] = 9.0e-16 * jitter * boost * boost;
        }
    }

    fn estimates_for(
        est: &mut FleetEstimator,
        machines: usize,
        seed: u64,
        spike: Option<usize>,
    ) -> FleetEstimates {
        est.begin_window();
        fill_batch(est.batch_mut(), machines, seed, spike);
        est.estimate().clone()
    }

    #[test]
    fn clean_fleet_stays_normal_and_earns_decimation() {
        let mut est = FleetEstimator::new(SystemPowerModel::paper());
        let mut det = AnomalyDetector::default();
        for w in 0..12 {
            let e = estimates_for(&mut est, 32, w, None);
            det.update(&e);
        }
        assert!(det.warmed());
        let s = det.summary();
        assert_eq!((s.anomalous, s.suspect), (0, 0), "false positives");
        assert!(s.max_z < det.config().threshold, "z = {}", s.max_z);
        for m in 0..32 {
            assert_eq!(det.decimation(m), det.config().healthy_decimation);
        }
    }

    #[test]
    fn spiked_machine_is_flagged_immediately_and_recovers_through_hold() {
        let mut est = FleetEstimator::new(SystemPowerModel::paper());
        let mut det = AnomalyDetector::default();
        for w in 0..8 {
            let e = estimates_for(&mut est, 32, w, None);
            det.update(&e);
        }
        assert!(det.warmed());
        // Spike machine 7: flagged in the same window, full-rate again.
        let e = estimates_for(&mut est, 32, 100, Some(7));
        det.update(&e);
        assert_eq!(det.verdict(7), Verdict::Anomalous);
        assert_eq!(det.decimation(7), 1);
        assert_eq!(det.summary().anomalous, 1, "only the spiked machine");
        // Recovery: suspect for hold_windows, then normal again.
        for w in 0..det.config().hold_windows {
            let e = estimates_for(&mut est, 32, 200 + w as u64, None);
            det.update(&e);
            assert_eq!(det.verdict(7), Verdict::Suspect, "hold window {w}");
            assert_eq!(det.decimation(7), 1);
        }
        let e = estimates_for(&mut est, 32, 300, None);
        det.update(&e);
        assert_eq!(det.verdict(7), Verdict::Normal);
        assert_eq!(det.decimation(7), det.config().healthy_decimation);
    }

    #[test]
    fn no_verdicts_or_decimation_before_warmup() {
        let mut est = FleetEstimator::new(SystemPowerModel::paper());
        let mut det = AnomalyDetector::default();
        // Even a spike in window 0 stays Normal (no trustworthy
        // baseline yet) and everyone is sampled at full rate.
        let e = estimates_for(&mut est, 16, 1, Some(3));
        det.update(&e);
        assert!(!det.warmed());
        assert_eq!(det.verdict(3), Verdict::Normal);
        for m in 0..16 {
            assert_eq!(det.decimation(m), 1);
        }
    }

    #[test]
    fn pooled_update_is_bit_identical_to_serial() {
        let pool = tdp_parallel::WorkerPool::new(4);
        let mut est = FleetEstimator::new(SystemPowerModel::paper());
        let mut serial = AnomalyDetector::default();
        let mut pooled = AnomalyDetector::default();
        for w in 0..14 {
            // A spike appears (and disappears) mid-run to exercise
            // every verdict transition under both drivers.
            let spike = (9..11).contains(&w).then_some(5);
            let e = estimates_for(&mut est, 700, w, spike);
            serial.update(&e);
            pooled.update_pooled(&e, &pool);
            assert_eq!(serial.digest(), pooled.digest(), "window {w}");
        }
        assert!(serial.summary().max_z > 0.0);
    }
}
