//! Structure-of-arrays ingestion of per-machine counter samples.
//!
//! The scalar path ([`trickledown::SystemSample::from_sample_set`])
//! materialises one heap-allocated `SystemSample` per machine per
//! window and the models then walk those little structs pointer by
//! pointer. At fleet scale that layout is exactly wrong: the models
//! only ever consume *machine-aggregated* event rates, and they
//! consume the same thirteen of them for every machine. `SampleBatch`
//! therefore stores one contiguous `f64` column per aggregate — one
//! entry per machine — so model evaluation becomes a handful of dense
//! column passes (see [`kernels`](crate::kernels)) instead of N
//! scattered struct walks.
//!
//! Ingestion mirrors `SystemSample::from_sample_set` (same
//! missing-event, zero-cycle and clamping semantics, same model-unit
//! scaling; rates agree to within an ulp — see `accumulate_cpu`) but in
//! one pass over each CPU's sparse counter pairs and with zero
//! allocation: aggregates are reduced on the stack and appended to the
//! columns, whose buffers are reused window after window.

use tdp_counters::{CounterSample, PerfEvent, SampleSet};
use trickledown::SystemSample;

/// Number of per-machine aggregate columns.
///
/// Thirteen covers every input of Equations 1–5 with squared inputs
/// materialised as their own columns, so each model coefficient maps to
/// exactly one `axpy` pass at evaluation time.
pub const COLUMNS: usize = 13;

/// Column indices into a [`SampleBatch`].
pub mod col {
    /// CPUs per machine (the Equation-1 `NumCPUs` multiplier).
    pub const NUM_CPUS: usize = 0;
    /// Σ over CPUs of the active (non-halted) fraction.
    pub const ACTIVE: usize = 1;
    /// Σ fetched uops per cycle.
    pub const UPC: usize = 2;
    /// Σ L3 load misses per **kilo**cycle (Equation 2's units).
    pub const L3: usize = 3;
    /// Σ of the per-CPU squares of [`L3`].
    pub const L3_SQ: usize = 4;
    /// Σ bus transactions per **mega**cycle (Equation 3's units).
    pub const BUS: usize = 5;
    /// Σ of the per-CPU squares of [`BUS`].
    pub const BUS_SQ: usize = 6;
    /// Σ DMA accesses per cycle.
    pub const DMA: usize = 7;
    /// Σ of the per-CPU squares of [`DMA`].
    pub const DMA_SQ: usize = 8;
    /// Σ disk-controller interrupts per cycle.
    pub const DISK_INT: usize = 9;
    /// Σ of the per-CPU squares of [`DISK_INT`].
    pub const DISK_INT_SQ: usize = 10;
    /// Σ device (non-timer) interrupts per cycle.
    pub const DEV_INT: usize = 11;
    /// Σ of the per-CPU squares of [`DEV_INT`].
    pub const DEV_INT_SQ: usize = 12;
}

/// One window's samples for a whole fleet, one machine per row, stored
/// column-major.
///
/// # Example
///
/// ```
/// use tdp_fleet::SampleBatch;
/// use tdp_simsys::{Machine, MachineConfig};
///
/// let mut machine = Machine::new(MachineConfig::default());
/// for _ in 0..1000 {
///     machine.tick();
/// }
/// let set = machine.read_counters();
///
/// let mut batch = SampleBatch::with_capacity(16);
/// for _ in 0..16 {
///     batch.push_sample_set(&set);
/// }
/// assert_eq!(batch.len(), 16);
/// batch.clear(); // buffers retained for the next window
/// assert!(batch.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct SampleBatch {
    pub(crate) cols: [Vec<f64>; COLUMNS],
    layout: LayoutCache,
}

impl SampleBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch with room for `machines` rows per column.
    pub fn with_capacity(machines: usize) -> Self {
        Self {
            cols: std::array::from_fn(|_| Vec::with_capacity(machines)),
            layout: LayoutCache::default(),
        }
    }

    /// Machines ingested this window.
    pub fn len(&self) -> usize {
        self.cols[0].len()
    }

    /// Whether no machine has been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.cols[0].is_empty()
    }

    /// Drops all rows, keeping the column buffers for reuse.
    pub fn clear(&mut self) {
        for c in &mut self.cols {
            c.clear();
        }
    }

    /// Appends one machine's raw counter read.
    ///
    /// Extraction semantics match
    /// [`SystemSample::from_sample_set`] — missing events contribute
    /// rate 0, a zero cycle count never divides by zero, the active
    /// fraction is clamped to `[0, 1]` and the device-interrupt rate is
    /// the non-negative total-minus-timer difference — but performed in
    /// a single pass per CPU with no allocation, and with rates formed
    /// as `count · (1/cycles)` (agreement to within an ulp).
    pub fn push_sample_set(&mut self, set: &SampleSet) {
        let row = extract_set_cached(set, &mut self.layout);
        self.push_row(row);
    }

    /// Appends one machine's pre-extracted sample.
    pub fn push_sample(&mut self, sample: &SystemSample) {
        self.push_row(extract_sample(sample));
    }

    /// Appends one machine's pre-aggregated column row — the raw-row
    /// ingestion point for producers that build rows outside this
    /// crate, such as the `tdp-wire` zero-copy decoder (via
    /// [`RowAccumulator`], which guarantees the row was formed by the
    /// exact arithmetic [`push_sample_set`](Self::push_sample_set)
    /// uses).
    pub fn push_row(&mut self, row: [f64; COLUMNS]) {
        for (c, v) in self.cols.iter_mut().zip(row) {
            c.push(v);
        }
    }

    /// Overwrites row `machine` with a pre-aggregated column row — the
    /// indexed counterpart of [`push_row`](Self::push_row) for writers
    /// that place machines at fixed positions (the streaming wire
    /// ingest keys rows by machine id so decoder sharding cannot change
    /// results).
    ///
    /// # Panics
    ///
    /// Panics if `machine` is out of range — size the batch first with
    /// [`resize_rows`](Self::resize_rows).
    pub fn set_row(&mut self, machine: usize, row: [f64; COLUMNS]) {
        for (c, v) in self.cols.iter_mut().zip(row) {
            c[machine] = v;
        }
    }

    /// All columns as shared slices, for evaluation.
    pub(crate) fn col_slices(&self) -> [&[f64]; COLUMNS] {
        std::array::from_fn(|k| self.cols[k].as_slice())
    }

    /// All columns as shared slices, indexable with the [`col`]
    /// constants (one entry per machine each).
    pub fn columns(&self) -> [&[f64]; COLUMNS] {
        self.col_slices()
    }

    /// Resizes every column to `machines` rows for the indexed write
    /// paths ([`set_row`](Self::set_row) and the pooled shard writer).
    /// Rows grown beyond the current length are zeroed; rows already
    /// present keep their values (call [`clear`](Self::clear) first for
    /// an all-zero window).
    pub fn resize_rows(&mut self, machines: usize) {
        for c in &mut self.cols {
            c.resize(machines, 0.0);
        }
    }

    /// All columns as mutable slices, for the sharded write path.
    pub(crate) fn col_slices_mut(&mut self) -> [&mut [f64]; COLUMNS] {
        let mut it = self.cols.iter_mut();
        std::array::from_fn(|_| it.next().expect("13 columns").as_mut_slice())
    }

    /// All columns as mutable slices, indexable with the [`col`]
    /// constants — the raw write surface external fused ingestion
    /// (the `tdp-wire` serial path) builds rows in directly, via
    /// [`RowAccumulator::finish_into`], instead of staging each row
    /// through [`set_row`](Self::set_row). Size the batch first with
    /// [`resize_rows`](Self::resize_rows).
    pub fn columns_mut(&mut self) -> [&mut [f64]; COLUMNS] {
        self.col_slices_mut()
    }
}

/// The nine raw events a machine row is built from, in the count order
/// [`RowAccumulator::accumulate_cpu`] consumes (and [`LayoutCache::pos`]
/// caches).
///
/// External ingestion paths — the `tdp-wire` decoder in particular —
/// gather one `Option<u64>` count per entry of this array per CPU and
/// feed them through [`RowAccumulator`], which applies the exact same
/// rate arithmetic as [`SampleBatch::push_sample_set`].
pub const ROW_EVENTS: [PerfEvent; 9] = [
    PerfEvent::Cycles,
    PerfEvent::HaltedCycles,
    PerfEvent::FetchedUops,
    PerfEvent::L3LoadMisses,
    PerfEvent::BusTransactionsAll,
    PerfEvent::DmaOtherBusTransactions,
    PerfEvent::InterruptsTotal,
    PerfEvent::TimerInterrupts,
    PerfEvent::DiskInterrupts,
];

const K_CYCLES: usize = 0;
const K_HALTED: usize = 1;
const K_UOPS: usize = 2;
const K_L3: usize = 3;
const K_BUS: usize = 4;
const K_DMA: usize = 5;
const K_INT_TOTAL: usize = 6;
const K_TIMER: usize = 7;
const K_DISK: usize = 8;

/// Longest event list the layout cache will memoise. [`PerfEvent`] has
/// 18 variants today; longer lists fall back to a per-sample rescan.
const MAX_CACHED_EVENTS: usize = 32;

/// Memoised event layout of the previous counter sample.
///
/// Every CPU in a fleet is normally programmed with the same event set
/// in the same order, so instead of dispatching on every `(event,
/// count)` pair of every sample, ingestion remembers where each wanted
/// event sat in the last sample and reads the next sample's counts with
/// one indexed load per event, *verifying the event tag on the same
/// tuple as it loads the count* — so a layout change can never be
/// consumed silently, and the verification costs no extra memory
/// traffic. Any mismatch (different PMU programming, first sample, a
/// wanted event missing) falls back to a linear rescan that rebuilds
/// the cache. All-inline storage: the cache itself never allocates.
///
/// One caveat, checked nowhere because no producer in this repo does
/// it: if a sample lists the same event *twice*, the verified-load path
/// may read whichever occurrence the previous layout pointed at, where
/// the rescan path keeps `CounterSample::count`'s first-match rule.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LayoutCache {
    /// Number of cached events; `u8::MAX` marks "nothing cached yet /
    /// layout too long to cache", which no real list length matches.
    len: u8,
    /// Whether every [`ROW_EVENTS`] entry was present — the
    /// precondition for the verified-load fast path.
    all_present: bool,
    events: [PerfEvent; MAX_CACHED_EVENTS],
    /// Position of each [`ROW_EVENTS`] entry in the layout
    /// (first occurrence, like `CounterSample::count`'s linear find);
    /// `u16::MAX` when absent.
    pos: [u16; ROW_EVENTS.len()],
}

impl Default for LayoutCache {
    fn default() -> Self {
        Self {
            len: u8::MAX,
            all_present: false,
            events: [PerfEvent::Cycles; MAX_CACHED_EVENTS],
            pos: [u16::MAX; ROW_EVENTS.len()],
        }
    }
}

impl LayoutCache {
    /// Verified loads of all wanted counts, or `None` if the sample's
    /// layout no longer matches the cached positions.
    #[inline]
    fn load_verified(&self, pairs: &[(PerfEvent, u64)]) -> Option<[u64; ROW_EVENTS.len()]> {
        if !self.all_present || pairs.len() != self.len as usize {
            return None;
        }
        let mut vals = [0u64; ROW_EVENTS.len()];
        let mut ok = true;
        for (k, (&wanted, v)) in ROW_EVENTS.iter().zip(&mut vals).enumerate() {
            let (event, count) = pairs[self.pos[k] as usize];
            ok &= event == wanted;
            *v = count;
        }
        ok.then_some(vals)
    }

    /// Whether the cached layout is exactly [`ROW_EVENTS`] in order
    /// with nothing else — the canonical producer layout, which the
    /// bulk fast path loads sequentially without position indirection
    /// ([`Self::load_identity`]).
    #[inline]
    fn is_identity(&self) -> bool {
        self.all_present
            && self.len as usize == ROW_EVENTS.len()
            && self.pos.iter().enumerate().all(|(k, &p)| p as usize == k)
    }

    /// Verified loads for the identity layout: nine sequential reads,
    /// same tag-on-the-loaded-tuple verification as
    /// [`Self::load_verified`], none of its position indirection (worth
    /// ~15% of bulk extraction — the indexed loads defeat the
    /// hardware prefetcher's stride detection).
    #[inline]
    fn load_identity(pairs: &[(PerfEvent, u64)]) -> Option<[u64; ROW_EVENTS.len()]> {
        let head = pairs.first_chunk::<{ ROW_EVENTS.len() }>()?;
        if pairs.len() != ROW_EVENTS.len() {
            return None;
        }
        let mut vals = [0u64; ROW_EVENTS.len()];
        let mut ok = true;
        for (k, (&(event, count), v)) in head.iter().zip(&mut vals).enumerate() {
            ok &= event == ROW_EVENTS[k];
            *v = count;
        }
        ok.then_some(vals)
    }

    #[inline]
    fn matches(&self, pairs: &[(PerfEvent, u64)]) -> bool {
        pairs.len() == self.len as usize
            && pairs.len() <= MAX_CACHED_EVENTS
            && pairs.iter().zip(&self.events).all(|(p, e)| p.0 == *e)
    }

    #[cold]
    fn rebuild(&mut self, pairs: &[(PerfEvent, u64)]) {
        if pairs.len() <= MAX_CACHED_EVENTS {
            self.len = pairs.len() as u8;
            for (dst, p) in self.events.iter_mut().zip(pairs) {
                *dst = p.0;
            }
        } else {
            self.len = u8::MAX;
        }
        for (k, &e) in ROW_EVENTS.iter().enumerate() {
            self.pos[k] = pairs
                .iter()
                .position(|&(pe, _)| pe == e)
                .map_or(u16::MAX, |i| i as u16);
        }
        self.all_present = self.pos.iter().all(|&p| p != u16::MAX);
    }
}

/// Machine-aggregated columns from one raw counter read. The hot inner
/// loop of fleet ingestion; `cache` carries the memoised event layout
/// between samples (see [`LayoutCache`]).
pub(crate) fn extract_set_cached(set: &SampleSet, cache: &mut LayoutCache) -> [f64; COLUMNS] {
    let mut row = [0.0f64; COLUMNS];
    row[col::NUM_CPUS] = set.per_cpu.len() as f64;
    for cpu in &set.per_cpu {
        accumulate_cpu(cpu, &mut row, cache);
    }
    row
}

/// Extracts a whole window of sets into column slices, machine `i`'s
/// row landing at index `i` of every column — the bulk counterpart of
/// [`extract_set_cached`] and the hot outer loop of `process_window`.
///
/// Dispatches between two compiled flavours of the same loop body
/// (baseline target features vs AVX2 — see [`wide`]), selected by the
/// process-wide [`tdp_simd::Dispatch::active`] decision. Identical
/// source, no reassociation: the flavours are bit-identical.
///
/// # Panics
///
/// Panics if any column is shorter than `sets`.
pub(crate) fn extract_sets_into(
    sets: &[SampleSet],
    cache: &mut LayoutCache,
    cols: &mut [&mut [f64]; COLUMNS],
) {
    match tdp_simd::Dispatch::active() {
        tdp_simd::Dispatch::Scalar => extract_sets_into_impl(sets, cache, cols),
        tdp_simd::Dispatch::Wide => {
            #[cfg(target_arch = "x86_64")]
            if tdp_simd::wide_available() {
                // SAFETY: AVX2 support verified on the line above; the
                // wrapper has no other obligations.
                #[allow(unsafe_code)]
                return unsafe { wide::extract_sets_avx2(sets, cache, cols) };
            }
            extract_sets_into_impl(sets, cache, cols)
        }
    }
}

/// The two-flavour recompilation of [`extract_sets_into_impl`]: the
/// only `unsafe` in this crate, confined here (see the crate-level
/// lint note).
mod wide {
    #![allow(unsafe_code)]

    use super::{extract_sets_into_impl, LayoutCache, COLUMNS};
    use tdp_counters::SampleSet;

    /// [`extract_sets_into_impl`] compiled with AVX2 available: LLVM
    /// widens the per-CPU rate arithmetic and the row/column stores to
    /// 256-bit lanes. Same source body, no reassociation —
    /// bit-identical to the baseline build.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (callers verify via
    /// [`tdp_simd::wide_available`]).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn extract_sets_avx2(
        sets: &[SampleSet],
        cache: &mut LayoutCache,
        cols: &mut [&mut [f64]; COLUMNS],
    ) {
        extract_sets_into_impl(sets, cache, cols)
    }
}

/// The shared loop body of [`extract_sets_into`].
///
/// Structural wins over calling [`extract_set_cached`] per set:
///
/// * the layout cache is snapshotted *by value once per run of
///   layout-stable sets*, so the per-CPU verified loads read the
///   memoised positions from registers instead of reloading them
///   through the `&mut` cache after every accumulation, and the
///   rebuilding slow path stays entirely outside the hot loop;
/// * the columns are resliced to exactly `sets.len()` up front, so the
///   thirteen per-machine stores are provably in bounds and compile
///   without per-store checks.
///
/// Any set that fails verification is re-extracted from scratch on the
/// slow path (same CPU order, same arithmetic — the row is
/// bit-identical), the cache rebuilds, and the fast loop resumes with
/// a fresh snapshot.
#[inline(always)]
fn extract_sets_into_impl(
    sets: &[SampleSet],
    cache: &mut LayoutCache,
    cols: &mut [&mut [f64]; COLUMNS],
) {
    let n = sets.len();
    let mut dst: [&mut [f64]; COLUMNS] = std::array::from_fn(|k| {
        let c = std::mem::take(&mut cols[k]);
        &mut c[..n]
    });
    let mut i = 0;
    while i < n {
        let snap = *cache;
        if snap.is_identity() {
            i = fast_run(sets, &mut dst, i, LayoutCache::load_identity);
        } else if snap.all_present {
            i = fast_run(sets, &mut dst, i, |pairs| snap.load_verified(pairs));
        }
        if i < n {
            // Layout changed (or nothing cached yet): extract this one
            // set through the rebuilding path, then re-snapshot.
            let row = extract_set_cached(&sets[i], cache);
            for (c, v) in dst.iter_mut().zip(row) {
                c[i] = v;
            }
            i += 1;
        }
    }
    // Hand the (full-length) columns back to the caller.
    for (slot, c) in cols.iter_mut().zip(dst) {
        *slot = c;
    }
}

/// The layout-stable run of [`extract_sets_into_impl`]: extracts
/// machines starting at `i`, writing each finished row straight into
/// the columns, until a set fails `load` (layout change — that set is
/// left for the caller's rebuilding slow path) or the window ends.
/// Returns the first unprocessed index.
#[inline(always)]
fn fast_run(
    sets: &[SampleSet],
    dst: &mut [&mut [f64]; COLUMNS],
    mut i: usize,
    load: impl Fn(&[(PerfEvent, u64)]) -> Option<[u64; ROW_EVENTS.len()]>,
) -> usize {
    'fast: while i < sets.len() {
        let set = &sets[i];
        let mut row = [0.0f64; COLUMNS];
        row[col::NUM_CPUS] = set.per_cpu.len() as f64;
        for cpu in &set.per_cpu {
            match load(cpu.counts()) {
                Some(vals) => accumulate_rates(&mut row, vals.map(Some)),
                None => break 'fast,
            }
        }
        for (c, v) in dst.iter_mut().zip(row) {
            c[i] = v;
        }
        i += 1;
    }
    i
}

/// One-shot extraction for cold paths (calibration, tests): pays a
/// layout rescan per call.
pub(crate) fn extract_set(set: &SampleSet) -> [f64; COLUMNS] {
    extract_set_cached(set, &mut LayoutCache::default())
}

fn accumulate_cpu(cpu: &CounterSample, row: &mut [f64; COLUMNS], cache: &mut LayoutCache) {
    let pairs = cpu.counts();
    // Fast path: every wanted event present at its remembered position
    // (verified tuple by tuple as the counts are loaded).
    if let Some(vals) = cache.load_verified(pairs) {
        return accumulate_rates(row, vals.map(Some));
    }
    // Slow path: rescan, then fetch through the rebuilt positions.
    if !cache.matches(pairs) {
        cache.rebuild(pairs);
    }
    let fetch = |k: usize| -> Option<u64> {
        let p = cache.pos[k];
        (p != u16::MAX).then(|| pairs[p as usize].1)
    };
    let vals = [
        fetch(K_CYCLES),
        fetch(K_HALTED),
        fetch(K_UOPS),
        fetch(K_L3),
        fetch(K_BUS),
        fetch(K_DMA),
        fetch(K_INT_TOTAL),
        fetch(K_TIMER),
        fetch(K_DISK),
    ];
    accumulate_rates(row, vals);
}

/// Turns one CPU's raw counts into model-unit rates and adds them to
/// the machine row. Inlined into both the verified-load fast path
/// (where every `Option` is statically `Some` and folds away) and the
/// rescan path.
///
/// A missing count maps to `0.0` before the shared f64 core runs; see
/// [`accumulate_rates_f64`] for why that mapping is bit-exact.
#[inline(always)]
fn accumulate_rates(row: &mut [f64; COLUMNS], vals: [Option<u64>; ROW_EVENTS.len()]) {
    accumulate_rates_f64(row, vals.map(|n| n.map_or(0.0, |n| n as f64)));
}

/// The f64 core of [`accumulate_rates`]: one CPU's counts already
/// widened to f64, a missing event carried as `0.0`. This is the entry
/// point for decode paths that widen counts at decode time (the planar
/// wire fold — see [`fold_event_lanes`]), and it is **bit-identical**
/// to routing `Option<u64>` counts through the historical arithmetic:
///
/// * `n as f64` is the same IEEE rounding wherever it is performed, so
///   widening early changes nothing;
/// * `cycles.unwrap_or(0).max(1) as f64 ≡ (cycles_f).max(1.0)`: a
///   missing or zero count makes both sides exactly `1.0`, any count
///   `≥ 1` widens to `≥ 1.0` and the max is a no-op on both sides
///   (counts past 2⁵³ round first, identically, and stay `≥ 1.0`);
/// * a missing event and a zero count produce identical rates:
///   `inv_cycles` is finite and positive, so `0.0 · inv_cycles` is
///   `+0.0` — the exact bits `unwrap_or(0.0)` produced — and every
///   downstream use (the active-fraction clamp, the device-interrupt
///   difference, the squares) receives identical inputs.
#[inline(always)]
fn accumulate_rates_f64(row: &mut [f64; COLUMNS], vals: [f64; ROW_EVENTS.len()]) {
    let [cycles, halted, uops, l3, bus, dma, int_total, timer, disk] = vals;

    // One reciprocal instead of nine divides per CPU: `n · (1/c)`
    // differs from `n / c` by at most one ulp, far inside the 1e-9
    // batch-vs-scalar agreement bound, and f64 multiplies pipeline
    // where divides serialise.
    let inv_cycles = 1.0 / cycles.max(1.0);
    let rate = |n: f64| n * inv_cycles;

    let active = (1.0 - rate(halted)).clamp(0.0, 1.0);
    let upc = rate(uops);
    let l3_kc = rate(l3) * 1_000.0;
    let bus_mc = rate(bus) * 1e6;
    let dma = rate(dma);
    let dev = (rate(int_total) - rate(timer)).max(0.0);
    let disk = rate(disk);

    row[col::ACTIVE] += active;
    row[col::UPC] += upc;
    row[col::L3] += l3_kc;
    row[col::L3_SQ] += l3_kc * l3_kc;
    row[col::BUS] += bus_mc;
    row[col::BUS_SQ] += bus_mc * bus_mc;
    row[col::DMA] += dma;
    row[col::DMA_SQ] += dma * dma;
    row[col::DISK_INT] += disk;
    row[col::DISK_INT_SQ] += disk * disk;
    row[col::DEV_INT] += dev;
    row[col::DEV_INT_SQ] += dev * dev;
}

/// Builds one machine row from per-CPU raw counts using the *same*
/// rate arithmetic as [`SampleBatch::push_sample_set`] — the contract
/// external decoders (the `tdp-wire` zero-copy path) rely on for
/// bit-identical wire-vs-in-memory ingestion.
///
/// Feed one `[Option<u64>; 9]` of counts per CPU, ordered as
/// [`ROW_EVENTS`] (`None` marks an event absent from that CPU's PMU
/// programming), then [`finish`](Self::finish) the row for
/// [`SampleBatch::push_row`] or [`SampleBatch::set_row`].
#[derive(Debug, Clone)]
pub struct RowAccumulator {
    row: [f64; COLUMNS],
}

impl RowAccumulator {
    /// Starts a row for a machine with `num_cpus` CPUs.
    pub fn new(num_cpus: usize) -> Self {
        let mut row = [0.0f64; COLUMNS];
        row[col::NUM_CPUS] = num_cpus as f64;
        Self { row }
    }

    /// Folds one CPU's raw counts (ordered as [`ROW_EVENTS`]) into the
    /// row. Call order must match CPU order — float accumulation is
    /// order-sensitive, and the bit-identical guarantee holds only for
    /// the same sequence `push_sample_set` would use (CPU 0 first).
    #[inline]
    pub fn accumulate_cpu(&mut self, counts: [Option<u64>; ROW_EVENTS.len()]) {
        accumulate_rates(&mut self.row, counts);
    }

    /// The finished machine row.
    pub fn finish(self) -> [f64; COLUMNS] {
        self.row
    }

    /// Writes the finished row straight into column slices at `idx` —
    /// the same thirteen values [`finish`](Self::finish) returns, minus
    /// the intermediate row copy a [`SampleBatch::set_row`] round trip
    /// would add. Pair with [`SampleBatch::columns_mut`].
    ///
    /// # Panics
    ///
    /// Panics if any column is `idx` or shorter.
    #[inline]
    pub fn finish_into(self, cols: &mut [&mut [f64]; COLUMNS], idx: usize) {
        for (c, v) in cols.iter_mut().zip(self.row) {
            c[idx] = v;
        }
    }
}

/// Reduces one machine's decoded event lanes to a fleet row — the
/// fused-column counterpart of [`RowAccumulator`], consuming counts
/// already widened to f64 at decode time instead of `Option<u64>`
/// gathers.
///
/// `lanes` is event-major: `lanes[e · cpus + c]` is wire event `e`'s
/// count on CPU `c` as f64 (`lanes.len() == n_events · cpus`). `pos`
/// maps each [`ROW_EVENTS`] entry to its wire event index (`u16::MAX`
/// = absent — the sentinel prices past any legal lane buffer, since
/// wire layouts carry at most a few dozen events, so one
/// bounds-checked `get` folds the presence test and the lookup exactly
/// as the row-major reference path does). `identity` short-circuits
/// the indirection for the canonical nine-event layout.
///
/// Bit-identity with the `Option<u64>` reference path
/// ([`SampleBatch::push_sample_set`] / [`RowAccumulator`]) holds by
/// the [`accumulate_rates_f64`] argument: widening is the same
/// rounding wherever performed, an absent event ≡ a `0.0` lane, and
/// the CPU fold order (CPU 0 first) is unchanged. The identity path
/// routes through the dispatched
/// [`fold_identity_rates`](tdp_simd::fold_identity_rates) kernel,
/// whose elementwise-then-ordered-reduce structure is itself
/// bit-identical to the scalar per-CPU accumulation (see its docs), so
/// dispatch flavour never changes a row.
#[inline]
pub fn fold_event_lanes(
    d: tdp_simd::Dispatch,
    lanes: &[f64],
    cpus: usize,
    pos: &[u16; ROW_EVENTS.len()],
    identity: bool,
) -> [f64; COLUMNS] {
    let mut row = [0.0f64; COLUMNS];
    row[col::NUM_CPUS] = cpus as f64;
    if identity && lanes.len() == ROW_EVENTS.len() * cpus {
        // Nine contiguous per-event lanes, rates derived a vector of
        // CPUs at a time (one packed divide instead of `cpus` serial
        // ones), reduced in CPU order.
        let rates: &mut [f64; COLUMNS - 1] = (&mut row[col::ACTIVE..])
            .try_into()
            .expect("12 rate columns");
        tdp_simd::fold_identity_rates(d, lanes, cpus, rates);
    } else {
        for c in 0..cpus {
            accumulate_rates_f64(
                &mut row,
                std::array::from_fn(|k| {
                    lanes
                        .get(pos[k] as usize * cpus + c)
                        .copied()
                        .unwrap_or(0.0)
                }),
            );
        }
    }
    row
}

/// Machine-aggregated columns from a pre-extracted sample, in the same
/// model units as [`extract_set`].
pub(crate) fn extract_sample(sample: &SystemSample) -> [f64; COLUMNS] {
    let mut row = [0.0f64; COLUMNS];
    row[col::NUM_CPUS] = sample.per_cpu.len() as f64;
    for c in &sample.per_cpu {
        let l3_kc = c.l3_load_misses * 1_000.0;
        row[col::ACTIVE] += c.active_frac;
        row[col::UPC] += c.fetched_upc;
        row[col::L3] += l3_kc;
        row[col::L3_SQ] += l3_kc * l3_kc;
        row[col::BUS] += c.bus_tx_per_mcycle;
        row[col::BUS_SQ] += c.bus_tx_per_mcycle * c.bus_tx_per_mcycle;
        row[col::DMA] += c.dma_per_cycle;
        row[col::DMA_SQ] += c.dma_per_cycle * c.dma_per_cycle;
        row[col::DISK_INT] += c.disk_interrupts_per_cycle;
        row[col::DISK_INT_SQ] += c.disk_interrupts_per_cycle * c.disk_interrupts_per_cycle;
        row[col::DEV_INT] += c.device_interrupts_per_cycle;
        row[col::DEV_INT_SQ] += c.device_interrupts_per_cycle * c.device_interrupts_per_cycle;
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_counters::{CpuId, InterruptSnapshot};

    fn set_with(per_cpu: Vec<Vec<(PerfEvent, u64)>>) -> SampleSet {
        SampleSet {
            time_ms: 1000,
            window_ms: 1000,
            seq: 0,
            per_cpu: per_cpu
                .into_iter()
                .enumerate()
                .map(|(i, counts)| CounterSample::new(CpuId::new(i as u8), 0, counts))
                .collect(),
            interrupts: InterruptSnapshot::default(),
        }
    }

    #[test]
    fn extraction_matches_from_sample_set() {
        let set = set_with(vec![
            vec![
                (PerfEvent::Cycles, 2_000_000_000),
                (PerfEvent::HaltedCycles, 500_000_000),
                (PerfEvent::FetchedUops, 3_000_000_000),
                (PerfEvent::L3LoadMisses, 4_000_000),
                (PerfEvent::BusTransactionsAll, 20_000_000),
                (PerfEvent::DmaOtherBusTransactions, 1_000_000),
                (PerfEvent::InterruptsTotal, 5_000),
                (PerfEvent::TimerInterrupts, 2_000),
                (PerfEvent::DiskInterrupts, 800),
            ],
            // Second CPU missing most events: rates must be zero.
            vec![(PerfEvent::Cycles, 1_000_000_000)],
        ]);
        let row = extract_set(&set);
        let via_sample = extract_sample(&SystemSample::from_sample_set(&set));
        // `extract_set` multiplies by 1/cycles where `from_sample_set`
        // divides, so agreement is to within a couple of ulps rather
        // than bit-for-bit.
        for (k, (a, b)) in row.iter().zip(&via_sample).enumerate() {
            assert!(
                (a - b).abs() <= 1e-12 * a.abs().max(1.0),
                "column {k}: extract_set {a} vs via from_sample_set {b}"
            );
        }
        assert_eq!(row[col::NUM_CPUS], 2.0);
        // CPU 1 has no halted counter ⇒ fully active.
        assert!((row[col::ACTIVE] - (0.75 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_and_missing_events_are_safe() {
        let set = set_with(vec![vec![
            (PerfEvent::Cycles, 0),
            (PerfEvent::FetchedUops, 7),
        ]]);
        let row = extract_set(&set);
        assert!(row.iter().all(|v| v.is_finite()));
        assert_eq!(row[col::DISK_INT], 0.0);
    }

    #[test]
    fn timer_exceeding_total_clamps_device_rate_to_zero() {
        let set = set_with(vec![vec![
            (PerfEvent::Cycles, 1_000_000),
            (PerfEvent::InterruptsTotal, 10),
            (PerfEvent::TimerInterrupts, 25),
        ]]);
        assert_eq!(extract_set(&set)[col::DEV_INT], 0.0);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut b = SampleBatch::with_capacity(4);
        let set = set_with(vec![vec![(PerfEvent::Cycles, 1_000)]]);
        for _ in 0..4 {
            b.push_sample_set(&set);
        }
        let cap_before = b.cols[0].capacity();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.cols[0].capacity(), cap_before);
    }
}
