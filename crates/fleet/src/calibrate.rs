//! Streaming calibration: per-window model refresh via recursive least
//! squares.
//!
//! The batch [`trickledown::Calibrator`] re-solves the normal equations
//! over the full training history every time — the right tool offline,
//! but a fleet controller that re-calibrates as measured power arrives
//! wants cost per window independent of history length. The
//! [`StreamingCalibrator`] keeps one
//! [`RecursiveLeastSquares`] estimator per subsystem, fed with exactly
//! the feature vectors the batch `fit` functions use, so the model it
//! produces after N windows matches a batch fit over the same N windows
//! (up to the batch path's vanishing ridge damping).

use crate::batch::{col, extract_sample, extract_set, COLUMNS};
use tdp_counters::{SampleSet, Subsystem};
use tdp_modeling::{FeatureMap, FitError, RecursiveLeastSquares};
use tdp_powermeter::SubsystemPower;
use trickledown::{
    CalibrationError, ChipsetPowerModel, CpuPowerModel, DiskPowerModel, IoPowerModel, MemoryInput,
    MemoryPowerModel, SystemPowerModel, SystemSample,
};

/// Streams `(sample, measured watts)` pairs and keeps an
/// always-current [`SystemPowerModel`].
///
/// # Example
///
/// ```
/// use tdp_fleet::StreamingCalibrator;
/// use trickledown::{CalibrationSuite, MemoryInput, SystemSample};
///
/// let suite = CalibrationSuite::capture(42, 2);
/// let mut cal = StreamingCalibrator::new(MemoryInput::BusTransactions);
/// for trace in [&suite.cpu, &suite.memory, &suite.disk_io] {
///     for record in &trace.records {
///         cal.observe(&record.input, &record.measured.watts)?;
///     }
/// }
/// let model = cal.model()?;
/// let check = &suite.cpu.records[0];
/// let err = (model.predict(&check.input).total()
///     - check.measured.watts.total())
///     .abs();
/// assert!(err < 0.3 * check.measured.watts.total());
/// # Ok::<(), trickledown::CalibrationError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StreamingCalibrator {
    memory_input: MemoryInput,
    /// CPUs per machine, latched from the first observation (the
    /// Equation-1 coefficient mapping needs it).
    num_cpus: Option<f64>,
    cpu: RecursiveLeastSquares,
    memory: RecursiveLeastSquares,
    disk: RecursiveLeastSquares,
    io: RecursiveLeastSquares,
    chipset_sum: f64,
    chipset_n: u64,
}

impl StreamingCalibrator {
    /// Creates a calibrator; `memory_input` selects Equation 2 or 3.
    pub fn new(memory_input: MemoryInput) -> Self {
        Self {
            memory_input,
            num_cpus: None,
            cpu: RecursiveLeastSquares::new(FeatureMap::linear(2)),
            memory: RecursiveLeastSquares::new(FeatureMap::linear(2)),
            disk: RecursiveLeastSquares::new(FeatureMap::linear(4)),
            io: RecursiveLeastSquares::new(FeatureMap::linear(2)),
            chipset_sum: 0.0,
            chipset_n: 0,
        }
    }

    /// Observations folded in so far.
    pub fn observations(&self) -> u64 {
        self.chipset_n
    }

    /// Folds in one machine-window: its extracted sample and the watts
    /// measured over the same window.
    ///
    /// # Errors
    ///
    /// [`CalibrationError`] naming the subsystem whose update rejected
    /// the input (non-finite values, in practice).
    pub fn observe(
        &mut self,
        sample: &SystemSample,
        measured: &SubsystemPower,
    ) -> Result<(), CalibrationError> {
        if self.num_cpus.is_none() {
            self.num_cpus = Some(sample.per_cpu.len() as f64);
        }
        self.observe_row(extract_sample(sample), measured)
    }

    /// Folds in one machine-window from a raw counter read.
    ///
    /// # Errors
    ///
    /// As [`observe`](Self::observe).
    pub fn observe_set(
        &mut self,
        set: &SampleSet,
        measured: &SubsystemPower,
    ) -> Result<(), CalibrationError> {
        if self.num_cpus.is_none() {
            self.num_cpus = Some(set.per_cpu.len() as f64);
        }
        self.observe_row(extract_set(set), measured)
    }

    fn observe_row(
        &mut self,
        row: [f64; COLUMNS],
        measured: &SubsystemPower,
    ) -> Result<(), CalibrationError> {
        let wrap =
            |subsystem: Subsystem| move |source: FitError| CalibrationError { subsystem, source };
        self.cpu
            .observe(
                &[row[col::ACTIVE], row[col::UPC]],
                measured.get(Subsystem::Cpu),
            )
            .map_err(wrap(Subsystem::Cpu))?;
        let (x, x_sq) = match self.memory_input {
            MemoryInput::L3LoadMisses => (row[col::L3], row[col::L3_SQ]),
            MemoryInput::BusTransactions => (row[col::BUS], row[col::BUS_SQ]),
        };
        self.memory
            .observe(&[x, x_sq], measured.get(Subsystem::Memory))
            .map_err(wrap(Subsystem::Memory))?;
        self.disk
            .observe(
                &[
                    row[col::DISK_INT],
                    row[col::DISK_INT_SQ],
                    row[col::DMA],
                    row[col::DMA_SQ],
                ],
                measured.get(Subsystem::Disk),
            )
            .map_err(wrap(Subsystem::Disk))?;
        self.io
            .observe(
                &[row[col::DEV_INT], row[col::DEV_INT_SQ]],
                measured.get(Subsystem::Io),
            )
            .map_err(wrap(Subsystem::Io))?;
        self.chipset_sum += measured.get(Subsystem::Chipset);
        self.chipset_n += 1;
        Ok(())
    }

    /// The model calibrated over everything observed so far.
    ///
    /// # Errors
    ///
    /// [`CalibrationError`] naming the first subsystem that cannot be
    /// fitted yet — too few windows, or no variation in its input (an
    /// idle-disk trace cannot pin the disk coefficients, exactly as in
    /// the batch calibrator).
    pub fn model(&self) -> Result<SystemPowerModel, CalibrationError> {
        let coeffs = |rls: &RecursiveLeastSquares, subsystem: Subsystem| {
            rls.model()
                .map(|m| m.coefficients().to_vec())
                .map_err(|source| CalibrationError { subsystem, source })
        };

        let c = coeffs(&self.cpu, Subsystem::Cpu)?;
        // total = N·halt + (active − halt)·Σactive + upc·Σupc — the
        // same unpacking as `CpuPowerModel::fit`.
        let halt_w = c[0] / self.num_cpus.unwrap_or(1.0).max(1.0);
        let cpu = CpuPowerModel {
            halt_w,
            active_w: halt_w + c[1],
            upc_w: c[2],
        };

        let m = coeffs(&self.memory, Subsystem::Memory)?;
        let memory = MemoryPowerModel {
            input: self.memory_input,
            background_w: m[0],
            lin: m[1],
            quad: m[2],
            valid_max: f64::INFINITY,
        };

        let d = coeffs(&self.disk, Subsystem::Disk)?;
        let disk = DiskPowerModel {
            dc_w: d[0],
            int_lin: d[1],
            int_quad: d[2],
            dma_lin: d[3],
            dma_quad: d[4],
            int_valid_max: f64::INFINITY,
            dma_valid_max: f64::INFINITY,
        };

        let i = coeffs(&self.io, Subsystem::Io)?;
        let io = IoPowerModel {
            dc_w: i[0],
            int_lin: i[1],
            int_quad: i[2],
            valid_max: f64::INFINITY,
        };

        if self.chipset_n == 0 {
            return Err(CalibrationError {
                subsystem: Subsystem::Chipset,
                source: FitError::NotEnoughSamples {
                    samples: 0,
                    coefficients: 1,
                },
            });
        }
        let chipset = ChipsetPowerModel {
            constant_w: self.chipset_sum / self.chipset_n as f64,
        };

        Ok(SystemPowerModel {
            cpu,
            memory,
            disk,
            io,
            chipset,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trickledown::CpuRates;

    fn varied_sample(i: usize) -> SystemSample {
        let m = i as f64;
        SystemSample {
            time_ms: 1000 * i as u64,
            window_ms: 1000,
            per_cpu: (0..4)
                .map(|c| CpuRates {
                    active_frac: ((m * 0.17 + c as f64 * 0.23) % 1.0),
                    fetched_upc: (m * 0.11 + c as f64 * 0.31) % 2.5,
                    bus_tx_per_mcycle: (m * 53.0 + c as f64 * 17.0) % 8000.0,
                    dma_per_cycle: (m * 3e-4 + c as f64 * 1e-4) % 0.03,
                    device_interrupts_per_cycle: (m * 2.3e-9 + c as f64 * 1e-9) % 1.4e-8,
                    disk_interrupts_per_cycle: (m * 1.7e-9 + c as f64 * 0.5e-9) % 0.9e-8,
                    ..CpuRates::default()
                })
                .collect(),
        }
    }

    #[test]
    fn streaming_fit_recovers_the_generating_model() {
        let truth = SystemPowerModel::paper();
        let mut cal = StreamingCalibrator::new(MemoryInput::BusTransactions);
        for i in 0..200 {
            let s = varied_sample(i);
            cal.observe(&s, &truth.predict(&s)).unwrap();
        }
        assert_eq!(cal.observations(), 200);
        let fitted = cal.model().unwrap();
        for i in 200..220 {
            let s = varied_sample(i);
            let a = truth.predict(&s).total();
            let b = fitted.predict(&s).total();
            assert!((a - b).abs() < 1e-6 * a, "window {i}: {a} vs {b}");
        }
    }

    #[test]
    fn streaming_matches_the_batch_model_fits() {
        let truth = SystemPowerModel::paper();
        let samples: Vec<SystemSample> = (0..150).map(varied_sample).collect();
        let mut cal = StreamingCalibrator::new(MemoryInput::BusTransactions);
        for s in &samples {
            cal.observe(s, &truth.predict(s)).unwrap();
        }
        let streamed = cal.model().unwrap();

        let cpu_watts: Vec<f64> = samples
            .iter()
            .map(|s| truth.predict(s).get(Subsystem::Cpu))
            .collect();
        let batch_cpu = CpuPowerModel::fit(&samples, &cpu_watts).unwrap();
        // The batch path adds a 1e-9 relative ridge; agreement is tight
        // but not bit-exact.
        assert!((streamed.cpu.halt_w - batch_cpu.halt_w).abs() < 1e-5);
        assert!((streamed.cpu.active_w - batch_cpu.active_w).abs() < 1e-5);
        assert!((streamed.cpu.upc_w - batch_cpu.upc_w).abs() < 1e-5);
    }

    #[test]
    fn no_variation_is_a_named_calibration_error() {
        let truth = SystemPowerModel::paper();
        let mut cal = StreamingCalibrator::new(MemoryInput::BusTransactions);
        // All-idle windows: disk/io inputs never move.
        let idle = SystemSample {
            time_ms: 1000,
            window_ms: 1000,
            per_cpu: vec![CpuRates::default(); 4],
        };
        for _ in 0..10 {
            cal.observe(&idle, &truth.predict(&idle)).unwrap();
        }
        let err = cal.model().unwrap_err();
        assert!(matches!(err.source, FitError::SingularSystem));
    }

    #[test]
    fn empty_calibrator_reports_not_enough_samples() {
        let cal = StreamingCalibrator::new(MemoryInput::BusTransactions);
        let err = cal.model().unwrap_err();
        assert!(matches!(err.source, FitError::NotEnoughSamples { .. }));
    }
}
