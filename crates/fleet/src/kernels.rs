//! Column kernels: the handful of dense f64 operations batched model
//! evaluation is made of.
//!
//! Equations 1–5 are linear/quadratic forms, so evaluating a model over
//! a whole fleet column reduces to `fill` (the DC term) plus a few
//! `axpy` passes (one per coefficient — the squared inputs are
//! materialised as their own columns at ingest). Each kernel walks its
//! slices in fixed-width chunks with the remainder handled separately,
//! the shape LLVM reliably turns into unrolled FMA vector code without
//! any explicit SIMD.
//!
//! Every kernel is elementwise — `out[i]` depends only on position `i`
//! of the inputs — which is what makes sharded (parallel) evaluation
//! bit-identical to serial: the per-element operation sequence never
//! changes, only which thread performs it.

/// Elements processed per unrolled step.
const LANES: usize = 8;

/// `out[i] = v`.
pub fn fill(out: &mut [f64], v: f64) {
    for o in out.iter_mut() {
        *o = v;
    }
}

/// `out[i] += a · x[i]`.
///
/// # Panics
///
/// Panics if the slices disagree in length.
pub fn axpy(out: &mut [f64], a: f64, x: &[f64]) {
    assert_eq!(out.len(), x.len(), "axpy length mismatch");
    let mut out_it = out.chunks_exact_mut(LANES);
    let mut x_it = x.chunks_exact(LANES);
    for (oc, xc) in out_it.by_ref().zip(x_it.by_ref()) {
        for (o, &xv) in oc.iter_mut().zip(xc) {
            *o += a * xv;
        }
    }
    for (o, &xv) in out_it.into_remainder().iter_mut().zip(x_it.remainder()) {
        *o += a * xv;
    }
}

/// `out[i] += x[i]`.
///
/// # Panics
///
/// Panics if the slices disagree in length.
pub fn add_assign(out: &mut [f64], x: &[f64]) {
    assert_eq!(out.len(), x.len(), "add_assign length mismatch");
    let mut out_it = out.chunks_exact_mut(LANES);
    let mut x_it = x.chunks_exact(LANES);
    for (oc, xc) in out_it.by_ref().zip(x_it.by_ref()) {
        for (o, &xv) in oc.iter_mut().zip(xc) {
            *o += xv;
        }
    }
    for (o, &xv) in out_it.into_remainder().iter_mut().zip(x_it.remainder()) {
        *o += xv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_match_scalar_loops_across_lengths() {
        // Cover the remainder path on either side of the lane width.
        for n in [0, 1, 7, 8, 9, 16, 33] {
            let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.5 - 3.0).collect();
            let mut out = vec![0.0; n];
            fill(&mut out, 2.5);
            assert!(out.iter().all(|&v| v == 2.5));
            axpy(&mut out, -1.5, &x);
            add_assign(&mut out, &x);
            for (i, &o) in out.iter().enumerate() {
                let expect = 2.5 + -1.5 * x[i] + x[i];
                assert_eq!(o, expect, "n={n} i={i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        axpy(&mut [0.0; 3], 1.0, &[0.0; 4]);
    }
}
