//! Column kernels: the handful of dense f64 operations batched model
//! evaluation is made of.
//!
//! Equations 1–5 are linear/quadratic forms, so evaluating a model over
//! a whole fleet column reduces to `fill` (the DC term) plus a few
//! `axpy` passes (one per coefficient — the squared inputs are
//! materialised as their own columns at ingest).
//!
//! The arithmetic itself lives in [`tdp_simd`], which compiles each
//! kernel body twice — once with the build's baseline target features,
//! once under AVX2 — and the functions here bind the process-wide
//! [`Dispatch::active`] decision so estimator code stays
//! dispatch-oblivious. Because both flavours compile the *same*
//! expression sequence, the elementwise kernels are bit-identical
//! across dispatch modes, which preserves the two contracts this crate
//! pins:
//!
//! * every kernel is elementwise — `out[i]` depends only on position
//!   `i` of the inputs — so sharded (parallel) evaluation is
//!   bit-identical to serial;
//! * the quadratic kernels evaluate `trickledown::quad_poly` /
//!   `trickledown::clamp_watts`'s exact expressions, so batched and
//!   scalar predictions agree bit for bit on identical aggregates (the
//!   tests below pin `tdp_simd`'s copies against the canonical
//!   helpers).
//!
//! The one reduction ([`sum`], used for the fleet total) uses a fixed
//! four-accumulator association — identical across dispatch modes, a
//! few ulp from a naive sequential sum.

use tdp_simd::Dispatch;

/// `out[i] = v`.
pub fn fill(out: &mut [f64], v: f64) {
    tdp_simd::fill(Dispatch::active(), out, v);
}

/// `out[i] += a · x[i]`.
///
/// # Panics
///
/// Panics if the slices disagree in length.
pub fn axpy(out: &mut [f64], a: f64, x: &[f64]) {
    tdp_simd::axpy(Dispatch::active(), out, a, x);
}

/// `out[i] = quad_poly(dc, lin, quad, x[i], x_sq[i])` — one whole
/// Equation-2/3/5 (or the interrupt half of Equation 4) per pass,
/// evaluating the exact expression of the shared
/// [`trickledown::quad_poly`] helper the scalar models call, so batched
/// and scalar predictions agree bit for bit on identical aggregates.
///
/// # Panics
///
/// Panics if the slices disagree in length.
pub fn quadratic(out: &mut [f64], dc: f64, lin: f64, quad: f64, x: &[f64], x_sq: &[f64]) {
    tdp_simd::quadratic(Dispatch::active(), out, dc, lin, quad, x, x_sq);
}

/// `out[i] += quad_poly(0, lin, quad, x[i], x_sq[i])` — the accumulate
/// form for multi-input models (Equation 4 adds its DMA quadratic on
/// top of the interrupt one).
///
/// # Panics
///
/// Panics if the slices disagree in length.
pub fn quadratic_acc(out: &mut [f64], lin: f64, quad: f64, x: &[f64], x_sq: &[f64]) {
    tdp_simd::quadratic_acc(Dispatch::active(), out, lin, quad, x, x_sq);
}

/// `out[i] = clamp_watts(out[i], dc + peak1 · ncpus[i])` — saturates a
/// finished subsystem column to its physically meaningful range (the
/// non-negative floor, and the ceiling the model's calibrated validity
/// range implies per machine). Returns how many entries the clamp
/// changed, for the pipeline-health counters.
///
/// The ceiling expression `dc + peak1 * n` and the clamp itself are the
/// very ones the scalar models evaluate
/// ([`trickledown::clamp_watts`] with `dc + dynamic_peak() * n`), so
/// scalar and batched predictions stay bit-identical — including for
/// out-of-range rows, where both saturate to the same ceiling bits.
///
/// # Panics
///
/// Panics if the slices disagree in length.
pub fn clamp_predictions(out: &mut [f64], dc: f64, peak1: f64, ncpus: &[f64]) -> u64 {
    tdp_simd::clamp_predictions(Dispatch::active(), out, dc, peak1, ncpus)
}

/// `out[i] += x[i]`.
///
/// # Panics
///
/// Panics if the slices disagree in length.
pub fn add_assign(out: &mut [f64], x: &[f64]) {
    tdp_simd::add_assign(Dispatch::active(), out, x);
}

/// `Σ x[i]` in `tdp_simd`'s fixed four-accumulator association
/// (identical across dispatch modes; a few ulp from a sequential sum).
pub fn sum(x: &[f64]) -> f64 {
    tdp_simd::sum(Dispatch::active(), x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trickledown::{clamp_watts, quad_poly};

    #[test]
    fn kernels_match_scalar_loops_across_lengths() {
        // Cover the remainder path on either side of the lane width.
        for n in [0, 1, 7, 8, 9, 16, 33] {
            let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.5 - 3.0).collect();
            let mut out = vec![0.0; n];
            fill(&mut out, 2.5);
            assert!(out.iter().all(|&v| v == 2.5));
            axpy(&mut out, -1.5, &x);
            add_assign(&mut out, &x);
            for (i, &o) in out.iter().enumerate() {
                let expect = 2.5 + -1.5 * x[i] + x[i];
                assert_eq!(o, expect, "n={n} i={i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        axpy(&mut [0.0; 3], 1.0, &[0.0; 4]);
    }

    #[test]
    fn clamp_predictions_matches_scalar_clamp_and_counts() {
        // One negative entry, one above the 4-CPU ceiling, two already
        // in range (incl. an exact-ceiling value that must not count).
        let dc = 21.6;
        let peak1 = 0.5;
        let ncpus = [4.0, 4.0, 4.0, 2.0];
        let mut out = [-3.0, 30.0, dc + peak1 * 4.0, 10.0];
        let n = clamp_predictions(&mut out, dc, peak1, &ncpus);
        assert_eq!(n, 2);
        for (i, (&o, &nc)) in out.iter().zip(&ncpus).enumerate() {
            let expect = clamp_watts(if i == 0 { -3.0 } else { o }, dc + peak1 * nc);
            assert_eq!(o.to_bits(), expect.to_bits(), "i={i}");
        }
        assert_eq!(out[0], 0.0);
        assert_eq!(out[1], dc + peak1 * 4.0);
        // An unbounded ceiling only enforces the floor.
        let mut raw = [f64::MAX, -1.0];
        assert_eq!(
            clamp_predictions(&mut raw, f64::INFINITY, 0.0, &[4.0, 4.0]),
            1
        );
        assert_eq!(raw, [f64::MAX, 0.0]);
    }

    /// Pins `tdp_simd`'s local `quad_poly` copy against the canonical
    /// `trickledown` helper, bit for bit (the simd crate sits below
    /// `trickledown` in the dependency graph, so it carries a copy —
    /// this test is what keeps the copy honest).
    #[test]
    fn quadratic_kernels_match_quad_poly_bit_for_bit() {
        let x: Vec<f64> = (0..33).map(|i| i as f64 * 0.37 - 4.0).collect();
        let x_sq: Vec<f64> = x.iter().map(|v| v * v).collect();
        let (dc, lin, quad) = (21.6, 10.6e7, -11.1e15);
        let mut out = vec![0.0; x.len()];
        quadratic(&mut out, dc, lin, quad, &x, &x_sq);
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(
                o.to_bits(),
                quad_poly(dc, lin, quad, x[i], x_sq[i]).to_bits()
            );
        }
        quadratic_acc(&mut out, 9.18, -45.4, &x, &x_sq);
        for (i, &o) in out.iter().enumerate() {
            let expect = quad_poly(dc, lin, quad, x[i], x_sq[i])
                + quad_poly(0.0, 9.18, -45.4, x[i], x_sq[i]);
            assert_eq!(o.to_bits(), expect.to_bits());
        }
    }

    #[test]
    fn sum_matches_sequential_within_ulps() {
        let x: Vec<f64> = (0..101).map(|i| (i as f64).sin() * 250.0).collect();
        let naive: f64 = x.iter().sum();
        let got = sum(&x);
        assert!(
            (got - naive).abs() <= 1e-12 * naive.abs().max(1.0),
            "{got} vs {naive}"
        );
        assert_eq!(sum(&[]), 0.0);
    }
}
