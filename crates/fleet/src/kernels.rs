//! Column kernels: the handful of dense f64 operations batched model
//! evaluation is made of.
//!
//! Equations 1–5 are linear/quadratic forms, so evaluating a model over
//! a whole fleet column reduces to `fill` (the DC term) plus a few
//! `axpy` passes (one per coefficient — the squared inputs are
//! materialised as their own columns at ingest). Each kernel walks its
//! slices in fixed-width chunks with the remainder handled separately,
//! the shape LLVM reliably turns into unrolled FMA vector code without
//! any explicit SIMD.
//!
//! Every kernel is elementwise — `out[i]` depends only on position `i`
//! of the inputs — which is what makes sharded (parallel) evaluation
//! bit-identical to serial: the per-element operation sequence never
//! changes, only which thread performs it.

use trickledown::quad_poly;

/// Elements processed per unrolled step.
const LANES: usize = 8;

/// `out[i] = v`.
pub fn fill(out: &mut [f64], v: f64) {
    for o in out.iter_mut() {
        *o = v;
    }
}

/// `out[i] += a · x[i]`.
///
/// # Panics
///
/// Panics if the slices disagree in length.
pub fn axpy(out: &mut [f64], a: f64, x: &[f64]) {
    assert_eq!(out.len(), x.len(), "axpy length mismatch");
    let mut out_it = out.chunks_exact_mut(LANES);
    let mut x_it = x.chunks_exact(LANES);
    for (oc, xc) in out_it.by_ref().zip(x_it.by_ref()) {
        for (o, &xv) in oc.iter_mut().zip(xc) {
            *o += a * xv;
        }
    }
    for (o, &xv) in out_it.into_remainder().iter_mut().zip(x_it.remainder()) {
        *o += a * xv;
    }
}

/// `out[i] = quad_poly(dc, lin, quad, x[i], x_sq[i])` — one whole
/// Equation-2/3/5 (or the interrupt half of Equation 4) per pass,
/// evaluated through the *same* shared [`trickledown::quad_poly`]
/// helper the scalar models call, so batched and scalar predictions
/// agree bit for bit on identical aggregates.
///
/// # Panics
///
/// Panics if the slices disagree in length.
pub fn quadratic(out: &mut [f64], dc: f64, lin: f64, quad: f64, x: &[f64], x_sq: &[f64]) {
    assert_eq!(out.len(), x.len(), "quadratic length mismatch");
    assert_eq!(out.len(), x_sq.len(), "quadratic length mismatch");
    for ((o, &xv), &sv) in out.iter_mut().zip(x).zip(x_sq) {
        *o = quad_poly(dc, lin, quad, xv, sv);
    }
}

/// `out[i] += quad_poly(0, lin, quad, x[i], x_sq[i])` — the accumulate
/// form for multi-input models (Equation 4 adds its DMA quadratic on
/// top of the interrupt one).
///
/// # Panics
///
/// Panics if the slices disagree in length.
pub fn quadratic_acc(out: &mut [f64], lin: f64, quad: f64, x: &[f64], x_sq: &[f64]) {
    assert_eq!(out.len(), x.len(), "quadratic_acc length mismatch");
    assert_eq!(out.len(), x_sq.len(), "quadratic_acc length mismatch");
    for ((o, &xv), &sv) in out.iter_mut().zip(x).zip(x_sq) {
        *o += quad_poly(0.0, lin, quad, xv, sv);
    }
}

/// `out[i] += x[i]`.
///
/// # Panics
///
/// Panics if the slices disagree in length.
pub fn add_assign(out: &mut [f64], x: &[f64]) {
    assert_eq!(out.len(), x.len(), "add_assign length mismatch");
    let mut out_it = out.chunks_exact_mut(LANES);
    let mut x_it = x.chunks_exact(LANES);
    for (oc, xc) in out_it.by_ref().zip(x_it.by_ref()) {
        for (o, &xv) in oc.iter_mut().zip(xc) {
            *o += xv;
        }
    }
    for (o, &xv) in out_it.into_remainder().iter_mut().zip(x_it.remainder()) {
        *o += xv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_match_scalar_loops_across_lengths() {
        // Cover the remainder path on either side of the lane width.
        for n in [0, 1, 7, 8, 9, 16, 33] {
            let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.5 - 3.0).collect();
            let mut out = vec![0.0; n];
            fill(&mut out, 2.5);
            assert!(out.iter().all(|&v| v == 2.5));
            axpy(&mut out, -1.5, &x);
            add_assign(&mut out, &x);
            for (i, &o) in out.iter().enumerate() {
                let expect = 2.5 + -1.5 * x[i] + x[i];
                assert_eq!(o, expect, "n={n} i={i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        axpy(&mut [0.0; 3], 1.0, &[0.0; 4]);
    }

    #[test]
    fn quadratic_kernels_match_quad_poly_bit_for_bit() {
        let x: Vec<f64> = (0..33).map(|i| i as f64 * 0.37 - 4.0).collect();
        let x_sq: Vec<f64> = x.iter().map(|v| v * v).collect();
        let (dc, lin, quad) = (21.6, 10.6e7, -11.1e15);
        let mut out = vec![0.0; x.len()];
        quadratic(&mut out, dc, lin, quad, &x, &x_sq);
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(
                o.to_bits(),
                quad_poly(dc, lin, quad, x[i], x_sq[i]).to_bits()
            );
        }
        quadratic_acc(&mut out, 9.18, -45.4, &x, &x_sq);
        for (i, &o) in out.iter().enumerate() {
            let expect = quad_poly(dc, lin, quad, x[i], x_sq[i])
                + quad_poly(0.0, 9.18, -45.4, x[i], x_sq[i]);
            assert_eq!(o.to_bits(), expect.to_bits());
        }
    }
}
