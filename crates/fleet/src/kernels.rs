//! Column kernels: the handful of dense f64 operations batched model
//! evaluation is made of.
//!
//! Equations 1–5 are linear/quadratic forms, so evaluating a model over
//! a whole fleet column reduces to `fill` (the DC term) plus a few
//! `axpy` passes (one per coefficient — the squared inputs are
//! materialised as their own columns at ingest). Each kernel walks its
//! slices in fixed-width chunks with the remainder handled separately,
//! the shape LLVM reliably turns into unrolled FMA vector code without
//! any explicit SIMD.
//!
//! Every kernel is elementwise — `out[i]` depends only on position `i`
//! of the inputs — which is what makes sharded (parallel) evaluation
//! bit-identical to serial: the per-element operation sequence never
//! changes, only which thread performs it.

use trickledown::{clamp_watts, quad_poly};

/// Elements processed per unrolled step.
const LANES: usize = 8;

/// `out[i] = v`.
pub fn fill(out: &mut [f64], v: f64) {
    for o in out.iter_mut() {
        *o = v;
    }
}

/// `out[i] += a · x[i]`.
///
/// # Panics
///
/// Panics if the slices disagree in length.
pub fn axpy(out: &mut [f64], a: f64, x: &[f64]) {
    assert_eq!(out.len(), x.len(), "axpy length mismatch");
    let mut out_it = out.chunks_exact_mut(LANES);
    let mut x_it = x.chunks_exact(LANES);
    for (oc, xc) in out_it.by_ref().zip(x_it.by_ref()) {
        for (o, &xv) in oc.iter_mut().zip(xc) {
            *o += a * xv;
        }
    }
    for (o, &xv) in out_it.into_remainder().iter_mut().zip(x_it.remainder()) {
        *o += a * xv;
    }
}

/// `out[i] = quad_poly(dc, lin, quad, x[i], x_sq[i])` — one whole
/// Equation-2/3/5 (or the interrupt half of Equation 4) per pass,
/// evaluated through the *same* shared [`trickledown::quad_poly`]
/// helper the scalar models call, so batched and scalar predictions
/// agree bit for bit on identical aggregates.
///
/// # Panics
///
/// Panics if the slices disagree in length.
pub fn quadratic(out: &mut [f64], dc: f64, lin: f64, quad: f64, x: &[f64], x_sq: &[f64]) {
    assert_eq!(out.len(), x.len(), "quadratic length mismatch");
    assert_eq!(out.len(), x_sq.len(), "quadratic length mismatch");
    for ((o, &xv), &sv) in out.iter_mut().zip(x).zip(x_sq) {
        *o = quad_poly(dc, lin, quad, xv, sv);
    }
}

/// `out[i] += quad_poly(0, lin, quad, x[i], x_sq[i])` — the accumulate
/// form for multi-input models (Equation 4 adds its DMA quadratic on
/// top of the interrupt one).
///
/// # Panics
///
/// Panics if the slices disagree in length.
pub fn quadratic_acc(out: &mut [f64], lin: f64, quad: f64, x: &[f64], x_sq: &[f64]) {
    assert_eq!(out.len(), x.len(), "quadratic_acc length mismatch");
    assert_eq!(out.len(), x_sq.len(), "quadratic_acc length mismatch");
    for ((o, &xv), &sv) in out.iter_mut().zip(x).zip(x_sq) {
        *o += quad_poly(0.0, lin, quad, xv, sv);
    }
}

/// `out[i] = clamp_watts(out[i], dc + peak1 · ncpus[i])` — saturates a
/// finished subsystem column to its physically meaningful range (the
/// non-negative floor, and the ceiling the model's calibrated validity
/// range implies per machine). Returns how many entries the clamp
/// changed, for the pipeline-health counters.
///
/// The ceiling expression `dc + peak1 * n` and the clamp itself are the
/// very ones the scalar models evaluate
/// ([`trickledown::clamp_watts`] with `dc + dynamic_peak() * n`), so
/// scalar and batched predictions stay bit-identical — including for
/// out-of-range rows, where both saturate to the same ceiling bits.
///
/// # Panics
///
/// Panics if the slices disagree in length.
pub fn clamp_predictions(out: &mut [f64], dc: f64, peak1: f64, ncpus: &[f64]) -> u64 {
    assert_eq!(out.len(), ncpus.len(), "clamp_predictions length mismatch");
    let mut clamped = 0u64;
    for (o, &n) in out.iter_mut().zip(ncpus) {
        let c = clamp_watts(*o, dc + peak1 * n);
        if c.to_bits() != o.to_bits() {
            clamped += 1;
        }
        *o = c;
    }
    clamped
}

/// `out[i] += x[i]`.
///
/// # Panics
///
/// Panics if the slices disagree in length.
pub fn add_assign(out: &mut [f64], x: &[f64]) {
    assert_eq!(out.len(), x.len(), "add_assign length mismatch");
    let mut out_it = out.chunks_exact_mut(LANES);
    let mut x_it = x.chunks_exact(LANES);
    for (oc, xc) in out_it.by_ref().zip(x_it.by_ref()) {
        for (o, &xv) in oc.iter_mut().zip(xc) {
            *o += xv;
        }
    }
    for (o, &xv) in out_it.into_remainder().iter_mut().zip(x_it.remainder()) {
        *o += xv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_match_scalar_loops_across_lengths() {
        // Cover the remainder path on either side of the lane width.
        for n in [0, 1, 7, 8, 9, 16, 33] {
            let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.5 - 3.0).collect();
            let mut out = vec![0.0; n];
            fill(&mut out, 2.5);
            assert!(out.iter().all(|&v| v == 2.5));
            axpy(&mut out, -1.5, &x);
            add_assign(&mut out, &x);
            for (i, &o) in out.iter().enumerate() {
                let expect = 2.5 + -1.5 * x[i] + x[i];
                assert_eq!(o, expect, "n={n} i={i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        axpy(&mut [0.0; 3], 1.0, &[0.0; 4]);
    }

    #[test]
    fn clamp_predictions_matches_scalar_clamp_and_counts() {
        // One negative entry, one above the 4-CPU ceiling, two already
        // in range (incl. an exact-ceiling value that must not count).
        let dc = 21.6;
        let peak1 = 0.5;
        let ncpus = [4.0, 4.0, 4.0, 2.0];
        let mut out = [-3.0, 30.0, dc + peak1 * 4.0, 10.0];
        let n = clamp_predictions(&mut out, dc, peak1, &ncpus);
        assert_eq!(n, 2);
        for (i, (&o, &nc)) in out.iter().zip(&ncpus).enumerate() {
            let expect = clamp_watts(if i == 0 { -3.0 } else { o }, dc + peak1 * nc);
            assert_eq!(o.to_bits(), expect.to_bits(), "i={i}");
        }
        assert_eq!(out[0], 0.0);
        assert_eq!(out[1], dc + peak1 * 4.0);
        // An unbounded ceiling only enforces the floor.
        let mut raw = [f64::MAX, -1.0];
        assert_eq!(
            clamp_predictions(&mut raw, f64::INFINITY, 0.0, &[4.0, 4.0]),
            1
        );
        assert_eq!(raw, [f64::MAX, 0.0]);
    }

    #[test]
    fn quadratic_kernels_match_quad_poly_bit_for_bit() {
        let x: Vec<f64> = (0..33).map(|i| i as f64 * 0.37 - 4.0).collect();
        let x_sq: Vec<f64> = x.iter().map(|v| v * v).collect();
        let (dc, lin, quad) = (21.6, 10.6e7, -11.1e15);
        let mut out = vec![0.0; x.len()];
        quadratic(&mut out, dc, lin, quad, &x, &x_sq);
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(
                o.to_bits(),
                quad_poly(dc, lin, quad, x[i], x_sq[i]).to_bits()
            );
        }
        quadratic_acc(&mut out, 9.18, -45.4, &x, &x_sq);
        for (i, &o) in out.iter().enumerate() {
            let expect = quad_poly(dc, lin, quad, x[i], x_sq[i])
                + quad_poly(0.0, 9.18, -45.4, x[i], x_sq[i]);
            assert_eq!(o.to_bits(), expect.to_bits());
        }
    }
}
