//! Batched fleet estimation: evaluate one [`SystemPowerModel`] over
//! every machine in a window with column kernels.

use crate::batch::{col, extract_sets_into, LayoutCache, SampleBatch, COLUMNS};
use crate::kernels::{add_assign, axpy, clamp_predictions, fill, quadratic, quadratic_acc};
use tdp_counters::{SampleSet, Subsystem};
use tdp_parallel::WorkerPool;
use tdp_powermeter::SubsystemPower;
use trickledown::{MemoryInput, SystemPowerModel, SystemSample};

/// Output columns: five subsystems plus the precomputed total.
const OUT_COLUMNS: usize = 6;

const OUT_CPU: usize = 0;
const OUT_MEMORY: usize = 1;
const OUT_DISK: usize = 2;
const OUT_IO: usize = 3;
const OUT_CHIPSET: usize = 4;
const OUT_TOTAL: usize = 5;

/// Per-machine power estimates for one fleet window, stored as one
/// column per subsystem (plus the total) so downstream aggregation —
/// fleet sums, percentile scans, per-subsystem histograms — also runs
/// over contiguous memory.
#[derive(Debug, Clone, Default)]
pub struct FleetEstimates {
    cols: [Vec<f64>; OUT_COLUMNS],
    clamped: u64,
}

impl FleetEstimates {
    /// Machines estimated this window.
    pub fn len(&self) -> usize {
        self.cols[0].len()
    }

    /// Whether the window was empty.
    pub fn is_empty(&self) -> bool {
        self.cols[0].is_empty()
    }

    /// Estimated CPU watts, one entry per machine.
    pub fn cpu(&self) -> &[f64] {
        &self.cols[OUT_CPU]
    }

    /// Estimated memory watts per machine.
    pub fn memory(&self) -> &[f64] {
        &self.cols[OUT_MEMORY]
    }

    /// Estimated disk watts per machine.
    pub fn disk(&self) -> &[f64] {
        &self.cols[OUT_DISK]
    }

    /// Estimated I/O watts per machine.
    pub fn io(&self) -> &[f64] {
        &self.cols[OUT_IO]
    }

    /// Estimated chipset watts per machine.
    pub fn chipset(&self) -> &[f64] {
        &self.cols[OUT_CHIPSET]
    }

    /// Estimated total system watts per machine.
    pub fn total(&self) -> &[f64] {
        &self.cols[OUT_TOTAL]
    }

    /// One machine's estimate in the scalar representation.
    ///
    /// # Panics
    ///
    /// Panics if `machine` is out of range.
    pub fn machine(&self, machine: usize) -> SubsystemPower {
        let mut p = SubsystemPower::default();
        p.set(Subsystem::Cpu, self.cols[OUT_CPU][machine]);
        p.set(Subsystem::Memory, self.cols[OUT_MEMORY][machine]);
        p.set(Subsystem::Disk, self.cols[OUT_DISK][machine]);
        p.set(Subsystem::Io, self.cols[OUT_IO][machine]);
        p.set(Subsystem::Chipset, self.cols[OUT_CHIPSET][machine]);
        p
    }

    /// Total estimated watts across the whole fleet.
    ///
    /// Reduced with [`crate::kernels::sum`]'s fixed four-accumulator
    /// association: identical across dispatch modes (and across serial
    /// vs sharded evaluation, since the reduction always runs over the
    /// whole assembled column), a few ulp from a sequential sum.
    pub fn fleet_total(&self) -> f64 {
        crate::kernels::sum(&self.cols[OUT_TOTAL])
    }

    /// How many subsystem predictions this window had to be clamped to
    /// their model's valid output range (non-negative floor, calibrated
    /// ceiling). Non-zero means some machine reported event rates
    /// outside what the models were calibrated for — a degradation
    /// signal, not an error.
    pub fn clamped_predictions(&self) -> u64 {
        self.clamped
    }

    fn resize_rows(&mut self, machines: usize) {
        for c in &mut self.cols {
            c.resize(machines, 0.0);
        }
    }

    fn col_slices_mut(&mut self) -> [&mut [f64]; OUT_COLUMNS] {
        let mut it = self.cols.iter_mut();
        std::array::from_fn(|_| it.next().expect("6 columns").as_mut_slice())
    }
}

/// Evaluates the model over whole columns, returning how many
/// subsystem predictions had to be clamped to their valid range (a
/// pipeline-health signal: non-zero means some machine reported rates
/// outside what the models were calibrated for). Elementwise — the
/// basis of the serial == sharded determinism guarantee.
fn evaluate(
    model: &SystemPowerModel,
    cols: &[&[f64]; COLUMNS],
    out: &mut [&mut [f64]; OUT_COLUMNS],
) -> u64 {
    // Equation 1: N·halt + (active − halt)·Σactive + upc·Σupc.
    let cpu = &model.cpu;
    fill(out[OUT_CPU], 0.0);
    axpy(out[OUT_CPU], cpu.halt_w, cols[col::NUM_CPUS]);
    axpy(out[OUT_CPU], cpu.active_w - cpu.halt_w, cols[col::ACTIVE]);
    axpy(out[OUT_CPU], cpu.upc_w, cols[col::UPC]);

    // Equations 2/3: background + lin·Σx + quad·Σx², evaluated through
    // the shared `quad_poly` helper — bit-identical to the scalar
    // models on identical aggregates (see `tests/quad_crosscheck.rs`).
    let mem = &model.memory;
    let (x, x_sq) = match mem.input {
        MemoryInput::L3LoadMisses => (cols[col::L3], cols[col::L3_SQ]),
        MemoryInput::BusTransactions => (cols[col::BUS], cols[col::BUS_SQ]),
    };
    quadratic(
        out[OUT_MEMORY],
        mem.background_w,
        mem.lin,
        mem.quad,
        x,
        x_sq,
    );

    // Equation 4: the interrupt quadratic carries the DC term, the DMA
    // quadratic accumulates on top (same order as the scalar model).
    let disk = &model.disk;
    quadratic(
        out[OUT_DISK],
        disk.dc_w,
        disk.int_lin,
        disk.int_quad,
        cols[col::DISK_INT],
        cols[col::DISK_INT_SQ],
    );
    quadratic_acc(
        out[OUT_DISK],
        disk.dma_lin,
        disk.dma_quad,
        cols[col::DMA],
        cols[col::DMA_SQ],
    );

    // Equation 5.
    let io = &model.io;
    quadratic(
        out[OUT_IO],
        io.dc_w,
        io.int_lin,
        io.int_quad,
        cols[col::DEV_INT],
        cols[col::DEV_INT_SQ],
    );

    fill(out[OUT_CHIPSET], model.chipset.constant_w);

    // Saturate every subsystem to its valid range before totalling —
    // the same `clamp_watts(raw, dc + dynamic_peak()·n)` the scalar
    // models apply, so clamped rows stay bit-identical too. CPU and
    // chipset are linear/constant: floor only (infinite ceiling).
    let ncpus = cols[col::NUM_CPUS];
    let mut clamped = 0;
    clamped += clamp_predictions(out[OUT_CPU], f64::INFINITY, 0.0, ncpus);
    clamped += clamp_predictions(out[OUT_MEMORY], mem.background_w, mem.dynamic_peak(), ncpus);
    clamped += clamp_predictions(out[OUT_DISK], disk.dc_w, disk.dynamic_peak(), ncpus);
    clamped += clamp_predictions(out[OUT_IO], io.dc_w, io.dynamic_peak(), ncpus);
    clamped += clamp_predictions(out[OUT_CHIPSET], f64::INFINITY, 0.0, ncpus);

    // Total, accumulated in `Subsystem::ALL` order so it matches
    // `SubsystemPower::total()` on the reassembled scalar estimate.
    fill(out[OUT_TOTAL], 0.0);
    let [cpu_col, mem_col, disk_col, io_col, chipset_col, total] = out;
    add_assign(total, cpu_col);
    add_assign(total, chipset_col);
    add_assign(total, mem_col);
    add_assign(total, io_col);
    add_assign(total, disk_col);
    clamped
}

/// The fleet-scale counterpart of
/// [`trickledown::SystemPowerEstimator`]: one model, N machines per
/// window, allocation-free after the first window.
///
/// Per window the cycle is: [`begin_window`](Self::begin_window), one
/// [`push_sample_set`](Self::push_sample_set) per machine, then
/// [`estimate`](Self::estimate) — or hand the whole window's sets to
/// [`process_window`](Self::process_window) /
/// [`process_window_pooled`](Self::process_window_pooled). The pooled
/// path shards machines across a persistent
/// [`WorkerPool`] and is bit-identical to the serial path for any
/// worker count (every kernel is elementwise; see
/// [`kernels`](crate::kernels)).
///
/// # Example
///
/// ```
/// use tdp_fleet::FleetEstimator;
/// use tdp_simsys::{Machine, MachineConfig};
/// use trickledown::SystemPowerModel;
///
/// let mut machine = Machine::new(MachineConfig::default());
/// for _ in 0..1000 {
///     machine.tick();
/// }
/// let set = machine.read_counters();
///
/// let mut fleet = FleetEstimator::with_capacity(SystemPowerModel::paper(), 8);
/// fleet.begin_window();
/// for _ in 0..8 {
///     fleet.push_sample_set(&set);
/// }
/// let est = fleet.estimate();
/// assert_eq!(est.len(), 8);
/// assert!(est.fleet_total() > 8.0 * 100.0, "eight idle servers");
/// ```
#[derive(Debug, Clone)]
pub struct FleetEstimator {
    model: SystemPowerModel,
    batch: SampleBatch,
    estimates: FleetEstimates,
    windows: u64,
}

impl FleetEstimator {
    /// Creates an estimator for `model`.
    pub fn new(model: SystemPowerModel) -> Self {
        Self::with_capacity(model, 0)
    }

    /// Creates an estimator with columns pre-sized for `machines`, so
    /// even the first window allocates nothing on the push path.
    pub fn with_capacity(model: SystemPowerModel, machines: usize) -> Self {
        Self {
            model,
            batch: SampleBatch::with_capacity(machines),
            estimates: FleetEstimates::default(),
            windows: 0,
        }
    }

    /// The model in use.
    pub fn model(&self) -> &SystemPowerModel {
        &self.model
    }

    /// Replaces the model (e.g. with a freshly calibrated one from
    /// [`StreamingCalibrator`](crate::StreamingCalibrator)) without
    /// disturbing the column buffers.
    pub fn set_model(&mut self, model: SystemPowerModel) {
        self.model = model;
    }

    /// Windows estimated so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// The current window's ingested batch.
    pub fn batch(&self) -> &SampleBatch {
        &self.batch
    }

    /// Mutable access to the current window's batch, for external
    /// ingestion paths (the `tdp-wire` streaming pipeline sizes the
    /// batch with [`SampleBatch::resize_rows`] and writes rows at fixed
    /// machine indices with [`SampleBatch::set_row`]).
    pub fn batch_mut(&mut self) -> &mut SampleBatch {
        &mut self.batch
    }

    /// Estimates from the most recent window.
    pub fn estimates(&self) -> &FleetEstimates {
        &self.estimates
    }

    /// Starts a new window, discarding the previous window's samples
    /// (column buffers are retained).
    pub fn begin_window(&mut self) {
        self.batch.clear();
    }

    /// Ingests one machine's raw counter read into the current window.
    pub fn push_sample_set(&mut self, set: &SampleSet) {
        self.batch.push_sample_set(set);
    }

    /// Ingests one machine's pre-extracted sample.
    pub fn push_sample(&mut self, sample: &SystemSample) {
        self.batch.push_sample(sample);
    }

    /// Evaluates the model over every ingested machine, serially.
    pub fn estimate(&mut self) -> &FleetEstimates {
        self.estimates.resize_rows(self.batch.len());
        self.estimates.clamped = evaluate(
            &self.model,
            &self.batch.col_slices(),
            &mut self.estimates.col_slices_mut(),
        );
        self.windows += 1;
        &self.estimates
    }

    /// One whole window, serially: clear, ingest every set, evaluate.
    ///
    /// Runs the same fused ingest-and-evaluate routine the pooled path
    /// gives each shard (indexed column writes instead of per-column
    /// pushes), over the whole fleet as one range.
    pub fn process_window(&mut self, sets: &[SampleSet]) -> &FleetEstimates {
        let n = sets.len();
        self.batch.resize_rows(n);
        self.estimates.resize_rows(n);
        self.estimates.clamped = ingest_evaluate(
            &self.model,
            &mut self.batch.col_slices_mut(),
            &mut self.estimates.col_slices_mut(),
            sets,
        );
        self.windows += 1;
        &self.estimates
    }

    /// One whole window sharded across `pool`: each shard ingests and
    /// evaluates a contiguous machine range, fused, so column data is
    /// still cache-hot when the kernels consume it. Results are
    /// bit-identical to [`process_window`](Self::process_window)
    /// regardless of worker count.
    pub fn process_window_pooled(
        &mut self,
        pool: &WorkerPool,
        sets: &[SampleSet],
    ) -> &FleetEstimates {
        let n = sets.len();
        self.batch.resize_rows(n);
        self.estimates.resize_rows(n);

        // Shard size: a few shards per worker for load balance, but
        // wide enough that the column kernels still vectorise well.
        // A single worker has nothing to balance, so it gets the whole
        // fleet as one shard.
        let workers = pool.workers().max(1);
        let shard = if workers == 1 {
            n.max(1)
        } else {
            n.div_ceil(workers * 4).max(16)
        };

        let mut col_rem = self.batch.col_slices_mut();
        let mut out_rem = self.estimates.col_slices_mut();
        let mut shards = Vec::with_capacity(n.div_ceil(shard));
        let mut start = 0;
        while start < n {
            let take = shard.min(n - start);
            let cols: [&mut [f64]; COLUMNS] = std::array::from_fn(|k| {
                let rest = std::mem::take(&mut col_rem[k]);
                let (head, tail) = rest.split_at_mut(take);
                col_rem[k] = tail;
                head
            });
            let outs: [&mut [f64]; OUT_COLUMNS] = std::array::from_fn(|k| {
                let rest = std::mem::take(&mut out_rem[k]);
                let (head, tail) = rest.split_at_mut(take);
                out_rem[k] = tail;
                head
            });
            shards.push((cols, outs, &sets[start..start + take]));
            start += take;
        }

        let model = &self.model;
        let per_shard = pool.par_map(shards, |(mut cols, mut outs, sets)| {
            ingest_evaluate(model, &mut cols, &mut outs, sets)
        });
        self.estimates.clamped = per_shard.iter().sum();

        self.windows += 1;
        &self.estimates
    }
}

/// Ingests `sets` into the column slices (indexed writes) and evaluates
/// the model over them — the per-shard body of the pooled path, and the
/// whole-fleet body of the serial one. Both call exactly this, which is
/// what makes them bit-identical by construction.
fn ingest_evaluate(
    model: &SystemPowerModel,
    cols: &mut [&mut [f64]; COLUMNS],
    outs: &mut [&mut [f64]; OUT_COLUMNS],
    sets: &[SampleSet],
) -> u64 {
    // Layout cache per call: all-inline, so no allocation.
    let mut layout = LayoutCache::default();
    extract_sets_into(sets, &mut layout, cols);
    let shared: [&[f64]; COLUMNS] = cols.each_ref().map(|s| &**s);
    evaluate(model, &shared, outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trickledown::CpuRates;

    fn sample(machine: usize) -> SystemSample {
        let m = machine as f64;
        SystemSample {
            time_ms: 1000,
            window_ms: 1000,
            per_cpu: (0..4)
                .map(|c| CpuRates {
                    active_frac: ((m * 0.13 + c as f64 * 0.21) % 1.0),
                    fetched_upc: (m * 0.07 + c as f64 * 0.4) % 2.0,
                    l3_load_misses: (m * 1e-5) % 3e-3,
                    bus_tx_per_mcycle: (m * 37.0) % 9000.0,
                    dma_per_cycle: (m * 1e-4) % 0.02,
                    interrupts_per_cycle: (m * 3e-9) % 2e-8,
                    device_interrupts_per_cycle: (m * 2e-9) % 1.5e-8,
                    disk_interrupts_per_cycle: (m * 1e-9) % 0.8e-8,
                    tlb_per_cycle: 0.0,
                    uncacheable_per_cycle: 0.0,
                })
                .collect(),
        }
    }

    #[test]
    fn batched_estimates_match_scalar_model_predictions() {
        let model = SystemPowerModel::paper();
        let mut fleet = FleetEstimator::new(model.clone());
        fleet.begin_window();
        let samples: Vec<SystemSample> = (0..97).map(sample).collect();
        for s in &samples {
            fleet.push_sample(s);
        }
        let est = fleet.estimate();
        assert_eq!(est.len(), 97);
        for (i, s) in samples.iter().enumerate() {
            let scalar = model.predict(s);
            let batched = est.machine(i);
            for &sub in Subsystem::ALL {
                let a = scalar.get(sub);
                let b = batched.get(sub);
                assert!(
                    (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                    "machine {i} {sub:?}: scalar {a} vs batched {b}"
                );
            }
            assert!((scalar.total() - est.total()[i]).abs() < 1e-9 * scalar.total());
        }
    }

    #[test]
    fn fleet_total_is_the_column_sum() {
        let mut fleet = FleetEstimator::new(SystemPowerModel::paper());
        fleet.begin_window();
        for i in 0..10 {
            fleet.push_sample(&sample(i));
        }
        let est = fleet.estimate();
        let by_machines: f64 = (0..10).map(|i| est.machine(i).total()).sum();
        assert!((est.fleet_total() - by_machines).abs() < 1e-9);
    }

    #[test]
    fn empty_window_is_fine() {
        let mut fleet = FleetEstimator::new(SystemPowerModel::paper());
        fleet.begin_window();
        let est = fleet.estimate();
        assert!(est.is_empty());
        assert_eq!(est.fleet_total(), 0.0);
    }

    #[test]
    fn l3_memory_model_reads_the_l3_columns() {
        let mut model = SystemPowerModel::paper();
        model.memory = trickledown::MemoryPowerModel::paper_l3();
        let s = sample(5);
        let mut fleet = FleetEstimator::new(model.clone());
        fleet.begin_window();
        fleet.push_sample(&s);
        let est = fleet.estimate();
        let expect = model.predict(&s).get(Subsystem::Memory);
        assert!((est.memory()[0] - expect).abs() < 1e-9 * expect.abs().max(1.0));
    }
}
