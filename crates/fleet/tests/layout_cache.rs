//! The layout-cache memoization must be invisible: a `SampleBatch`
//! whose cache was warmed by *any* previous PMU layout must extract a
//! sample with a *different* layout exactly as a cold batch would —
//! reordered, truncated or extended event lists can never misattribute
//! a count to the wrong column.
//!
//! The deterministic tests pin the mid-stream reprogramming scenarios
//! by name; the property test drives the cache through arbitrary
//! shuffled/subset layouts and checks bitwise agreement with fresh
//! extraction on every row.

use proptest::prelude::*;
use tdp_counters::{CounterSample, CpuId, InterruptSnapshot, PerfEvent, SampleSet};
use tdp_fleet::{SampleBatch, COLUMNS};

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A sample set whose CPUs all list `layout` in order, with
/// seed-derived counts large enough to produce nonzero rates.
fn set_with_layout(layout: &[PerfEvent], seed: u64, cpus: usize) -> SampleSet {
    let mut s = seed;
    let per_cpu = (0..cpus)
        .map(|cpu| {
            let counts = layout
                .iter()
                .map(|&e| {
                    let base = if e == PerfEvent::Cycles {
                        1_000_000_000
                    } else {
                        0
                    };
                    (e, base + splitmix(&mut s) % 1_000_000_000)
                })
                .collect();
            CounterSample::new(CpuId::new(cpu as u8), seed, counts)
        })
        .collect();
    SampleSet {
        time_ms: 1000,
        window_ms: 1000,
        seq: seed,
        per_cpu,
        interrupts: InterruptSnapshot::default(),
    }
}

/// Seed-derived layout: a subset of all events, Fisher–Yates shuffled.
fn arbitrary_layout(seed: u64) -> Vec<PerfEvent> {
    let mut s = seed;
    let mask = splitmix(&mut s);
    let mut layout: Vec<PerfEvent> = PerfEvent::ALL
        .iter()
        .enumerate()
        .filter(|(i, _)| mask >> i & 1 == 1)
        .map(|(_, &e)| e)
        .collect();
    for i in (1..layout.len()).rev() {
        layout.swap(i, (splitmix(&mut s) % (i as u64 + 1)) as usize);
    }
    layout
}

/// Row `i` of a batch, as bits.
fn row_bits(batch: &SampleBatch, i: usize) -> [u64; COLUMNS] {
    let cols = batch.columns();
    std::array::from_fn(|k| cols[k][i].to_bits())
}

/// Extraction through a cold (fresh) batch — the reference the warmed
/// cache must match.
fn fresh_row_bits(set: &SampleSet) -> [u64; COLUMNS] {
    let mut b = SampleBatch::new();
    b.push_sample_set(set);
    row_bits(&b, 0)
}

fn assert_stream_matches_fresh(sets: &[SampleSet]) {
    let mut warm = SampleBatch::new();
    for set in sets {
        warm.push_sample_set(set);
    }
    for (i, set) in sets.iter().enumerate() {
        assert_eq!(
            row_bits(&warm, i),
            fresh_row_bits(set),
            "sample {i}: warmed cache diverged from fresh extraction"
        );
    }
}

/// The canonical nine-event trickle-down programming.
const TRICKLE: [PerfEvent; 9] = [
    PerfEvent::Cycles,
    PerfEvent::HaltedCycles,
    PerfEvent::FetchedUops,
    PerfEvent::L3LoadMisses,
    PerfEvent::BusTransactionsAll,
    PerfEvent::DmaOtherBusTransactions,
    PerfEvent::InterruptsTotal,
    PerfEvent::TimerInterrupts,
    PerfEvent::DiskInterrupts,
];

#[test]
fn reordered_layout_mid_stream_invalidates_the_memo() {
    let mut reversed = TRICKLE;
    reversed.reverse();
    let mut rotated = TRICKLE;
    rotated.rotate_left(4);
    assert_stream_matches_fresh(&[
        set_with_layout(&TRICKLE, 1, 4),
        set_with_layout(&TRICKLE, 2, 4),  // verified-load fast path
        set_with_layout(&reversed, 3, 4), // same events, new positions
        set_with_layout(&rotated, 4, 4),
        set_with_layout(&TRICKLE, 5, 4), // back again
    ]);
}

#[test]
fn extended_layout_mid_stream_shifts_no_columns() {
    // The PMU gains extra events in front of and between the wanted
    // ones — every cached position is stale at once.
    let extended: Vec<PerfEvent> = [PerfEvent::TlbMisses, PerfEvent::L2Misses]
        .iter()
        .chain(TRICKLE.iter())
        .chain([PerfEvent::BranchMispredictions].iter())
        .copied()
        .collect();
    let interleaved: Vec<PerfEvent> = TRICKLE
        .iter()
        .flat_map(|&e| [e, PerfEvent::RetiredUops])
        .collect();
    // `interleaved` lists RetiredUops nine times; dedupe to keep the
    // first-occurrence rule trivially satisfied by construction.
    let mut seen = std::collections::HashSet::new();
    let interleaved: Vec<PerfEvent> = interleaved
        .into_iter()
        .filter(|e| seen.insert(*e))
        .collect();
    assert_stream_matches_fresh(&[
        set_with_layout(&TRICKLE, 10, 3),
        set_with_layout(&extended, 11, 3),
        set_with_layout(&interleaved, 12, 3),
        set_with_layout(&TRICKLE, 13, 3),
    ]);
}

#[test]
fn truncated_layout_mid_stream_zeroes_missing_events_only() {
    // Events vanish (counter multiplexed away): their rates must read
    // zero, and surviving events must keep their true values.
    let partial = [PerfEvent::Cycles, PerfEvent::FetchedUops];
    assert_stream_matches_fresh(&[
        set_with_layout(&TRICKLE, 20, 2),
        set_with_layout(&partial, 21, 2),
        set_with_layout(&TRICKLE, 22, 2),
    ]);
}

#[test]
fn oversized_layout_falls_back_without_misattribution() {
    // More simultaneous events than the cache memoises (33 > 32):
    // the rescan fallback must still extract correctly, repeatedly.
    let oversized: Vec<PerfEvent> = PerfEvent::ALL
        .iter()
        .chain(PerfEvent::ALL.iter().take(15))
        .copied()
        .collect();
    assert!(oversized.len() > 32);
    assert_stream_matches_fresh(&[
        set_with_layout(&oversized, 30, 2),
        set_with_layout(&oversized, 31, 2),
        set_with_layout(&TRICKLE, 32, 2),
    ]);
}

proptest! {
    /// Arbitrary streams of shuffled-subset layouts: the warmed cache
    /// must agree with fresh extraction bit for bit on every row, no
    /// matter how layouts mutate between samples.
    #[test]
    fn shuffled_layout_streams_match_fresh_extraction(
        seeds in prop::collection::vec(any::<u64>(), 1..12),
        cpus in 1usize..5,
    ) {
        let sets: Vec<SampleSet> = seeds
            .iter()
            .map(|&s| set_with_layout(&arbitrary_layout(s), s ^ 0xabcd, cpus))
            .collect();
        let mut warm = SampleBatch::new();
        for set in &sets {
            warm.push_sample_set(set);
        }
        for (i, set) in sets.iter().enumerate() {
            prop_assert_eq!(
                row_bits(&warm, i),
                fresh_row_bits(set),
                "sample {} diverged", i
            );
        }
    }
}
