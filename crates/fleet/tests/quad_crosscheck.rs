//! Bit-for-bit agreement between the scalar subsystem models and the
//! fleet column kernels on the shared quadratic form.
//!
//! Equations 2–5 are all `dc + lin·Σx + quad·Σx²`. Both evaluation
//! paths — `trickledown`'s per-machine `predict` and `tdp-fleet`'s
//! columnar `quadratic`/`quadratic_acc` kernels — route through the
//! single `trickledown::quad_poly` helper and aggregate `Σx`/`Σx²` in
//! the same CPU order, so their results must agree to the last bit,
//! not within a tolerance. This test pins that contract for every
//! quadratic model against fleet batches ingested from the same
//! pre-extracted samples.

use tdp_fleet::FleetEstimator;
use trickledown::{CpuRates, MemoryInput, SystemPowerModel, SystemSample};

fn sample(machine: usize, cpus: usize) -> SystemSample {
    let m = machine as f64;
    SystemSample {
        time_ms: 1000,
        window_ms: 1000,
        per_cpu: (0..cpus)
            .map(|c| {
                let s = c as f64;
                CpuRates {
                    active_frac: ((m * 0.13 + s * 0.21) % 1.0),
                    fetched_upc: (m * 0.07 + s * 0.4) % 2.0,
                    l3_load_misses: (m * 1.7e-5 + s * 3e-6) % 3e-3,
                    bus_tx_per_mcycle: (m * 41.0 + s * 13.0) % 9000.0,
                    dma_per_cycle: (m * 1.3e-4 + s * 2e-5) % 0.02,
                    interrupts_per_cycle: (m * 3e-9 + s * 5e-10) % 2e-8,
                    device_interrupts_per_cycle: (m * 2e-9 + s * 4e-10) % 1.5e-8,
                    disk_interrupts_per_cycle: (m * 1e-9 + s * 2e-10) % 0.8e-8,
                    tlb_per_cycle: 0.0,
                    uncacheable_per_cycle: 0.0,
                }
            })
            .collect(),
    }
}

/// Odd CPU counts exercise the kernels' remainder paths; machine count
/// 97 exercises the column kernels' lane remainder.
fn fleet_samples() -> Vec<SystemSample> {
    (0..97).map(|m| sample(m, 1 + m % 5)).collect()
}

fn crosscheck(model: SystemPowerModel) {
    let samples = fleet_samples();
    let mut fleet = FleetEstimator::new(model.clone());
    fleet.begin_window();
    for s in &samples {
        fleet.push_sample(s);
    }
    let est = fleet.estimate();

    for (i, s) in samples.iter().enumerate() {
        let scalar = model.predict(s);
        for (name, batched, scalar_w) in [
            (
                "memory",
                est.memory()[i],
                scalar.get(tdp_counters::Subsystem::Memory),
            ),
            (
                "disk",
                est.disk()[i],
                scalar.get(tdp_counters::Subsystem::Disk),
            ),
            ("io", est.io()[i], scalar.get(tdp_counters::Subsystem::Io)),
        ] {
            assert_eq!(
                batched.to_bits(),
                scalar_w.to_bits(),
                "machine {i} {name}: batched {batched} vs scalar {scalar_w}"
            );
        }
    }
}

#[test]
fn quadratic_models_agree_bit_for_bit_bus_memory() {
    crosscheck(SystemPowerModel::paper());
}

#[test]
fn quadratic_models_agree_bit_for_bit_l3_memory() {
    let mut model = SystemPowerModel::paper();
    model.memory = trickledown::MemoryPowerModel::paper_l3();
    crosscheck(model);
}

#[test]
fn clamped_predictions_agree_bit_for_bit_at_extreme_rates() {
    // Regression for the negative-power bug: rates far outside the
    // calibrated range drive the negative-curvature quadratics (disk
    // int_quad −11.1e15, io int_quad −1.12e9) below zero, and both
    // paths must saturate to the *same* floor/ceiling bits. Scale every
    // input by a huge factor so most machines clamp, while machine 0
    // (all-zero rates) stays on the untouched in-range path.
    let mut model = SystemPowerModel::paper();
    model.memory = trickledown::MemoryPowerModel::paper_l3().with_valid_max(10.0);
    model.disk = model.disk.with_valid_max(4e-9, 1e-3);
    model.io = model.io.with_valid_max(1e-8);

    let samples: Vec<SystemSample> = fleet_samples()
        .into_iter()
        .map(|mut s| {
            for c in &mut s.per_cpu {
                c.l3_load_misses *= 1e4;
                c.dma_per_cycle *= 1e4;
                c.disk_interrupts_per_cycle *= 1e6;
                c.device_interrupts_per_cycle *= 1e8;
            }
            s
        })
        .collect();

    let mut fleet = FleetEstimator::new(model.clone());
    fleet.begin_window();
    for s in &samples {
        fleet.push_sample(s);
    }
    let est = fleet.estimate();
    assert!(
        est.clamped_predictions() > 0,
        "extreme rates must trip the clamp counter"
    );

    for (i, s) in samples.iter().enumerate() {
        let scalar = model.predict(s);
        for (name, batched, scalar_w) in [
            (
                "memory",
                est.memory()[i],
                scalar.get(tdp_counters::Subsystem::Memory),
            ),
            (
                "disk",
                est.disk()[i],
                scalar.get(tdp_counters::Subsystem::Disk),
            ),
            ("io", est.io()[i], scalar.get(tdp_counters::Subsystem::Io)),
        ] {
            assert!(scalar_w >= 0.0, "machine {i} {name}: negative {scalar_w} W");
            assert_eq!(
                batched.to_bits(),
                scalar_w.to_bits(),
                "machine {i} {name}: batched {batched} vs scalar {scalar_w}"
            );
        }
    }
}

#[test]
fn quadratic_models_agree_bit_for_bit_fitted_coefficients() {
    // Not just the published constants: perturbed coefficients (as a
    // calibration pass would produce) must also agree, since agreement
    // comes from the shared evaluation routine, not from lucky values.
    let mut model = SystemPowerModel::paper();
    model.memory.lin *= 1.000001;
    model.memory.quad *= 0.999998;
    model.disk.int_lin *= 1.000003;
    model.disk.dma_quad *= 1.000007;
    model.io.int_quad *= 0.999991;
    assert!(matches!(model.memory.input, MemoryInput::BusTransactions));
    crosscheck(model);
}
