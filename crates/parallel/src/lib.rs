//! Deterministic pooled parallel map on a persistent worker pool.
//!
//! The capture, calibration and fleet-estimation pipelines fan out over
//! independent work items (one simulated workload trace each, one
//! candidate-input subset each, or one shard of fleet machines each).
//! The previous design spawned a fresh set of scoped threads per call
//! and drained a `Mutex<VecDeque>` of items; at fleet rates (thousands
//! of small shards per second) both the spawn cost and the queue lock
//! dominate. This crate now keeps one persistent, parked worker pool
//! per process and hands out work by **atomic chunk claiming**: items
//! are pre-split into indexed chunks and workers claim the next chunk
//! with a single `AtomicUsize::fetch_add` — no queue, no lock on the
//! claim path.
//!
//! Determinism contract: [`par_map`] and [`par_map_chunks`] return
//! results **in input order**, and each item is processed exactly once
//! by a pure-by-contract closure, so the output is bit-identical to
//! `items.map(f).collect()` regardless of worker count, chunk size,
//! scheduling, or host core count. This is what lets `tdp-bench`
//! guarantee that parallel trace capture equals a serial capture byte
//! for byte, and lets `tdp-fleet` guarantee that a pool-sharded batch
//! evaluation equals the serial column sweep bit for bit (the
//! golden-trace determinism tests pin both, at 1, 2 and max workers).

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

thread_local! {
    /// True while this thread is executing inside a pool job (either as
    /// a pool worker or as a submitting thread helping its own job).
    /// Nested `par_map` calls from such a thread degrade to a serial
    /// loop instead of deadlocking on the single-job-at-a-time pool.
    static IN_POOL_JOB: Cell<bool> = const { Cell::new(false) };
}

/// The lifetime-erased borrow of a job closure that parked workers
/// execute. Confined to this module so the erasure has exactly one
/// construction site with one documented obligation.
mod erased {
    /// A `&'static`-pretending borrow of the submitting thread's job
    /// closure.
    #[derive(Clone, Copy)]
    pub(crate) struct ErasedJob(&'static (dyn Fn() + Sync));

    impl ErasedJob {
        /// Erases the closure's lifetime so persistent worker threads
        /// can hold it.
        ///
        /// # Safety
        ///
        /// The caller must not return from the scope that owns `f`
        /// until every worker holding this handle has finished calling
        /// it and can no longer acquire it. [`WorkerPool::run`] is the
        /// only caller and enforces exactly that: it retracts the job
        /// under the pool lock and then blocks until the running count
        /// reaches zero.
        #[allow(unsafe_code)]
        pub(crate) unsafe fn new(f: &(dyn Fn() + Sync)) -> Self {
            // SAFETY: pure lifetime extension; liveness is guaranteed by
            // the caller per the contract above.
            Self(unsafe {
                std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(f)
            })
        }

        pub(crate) fn call(&self) {
            (self.0)()
        }
    }
}

use erased::ErasedJob;

struct PoolState {
    /// Incremented per submitted job; workers use it to run each job at
    /// most once.
    epoch: u64,
    /// The current job, present only while pickup is allowed.
    job: Option<ErasedJob>,
    /// Workers currently inside `job.call()`.
    running: usize,
    /// First panic payload captured from a worker.
    panic: Option<Box<dyn Any + Send>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Signalled when a new job is published (or on shutdown).
    work_ready: Condvar,
    /// Signalled when the last running worker finishes the current job.
    job_done: Condvar,
}

/// A persistent pool of parked worker threads executing one parallel
/// job at a time.
///
/// `WorkerPool::new(k)` provides a total concurrency of `k`: the
/// submitting thread always participates in its own job, and
/// `k − 1` persistent threads are spawned to help. A pool of one is a
/// pure serial loop with no threads, no locks and no behavioural
/// difference — which is also why worker count can never change
/// results (see the crate-level determinism contract).
///
/// Most callers want the process-wide [`WorkerPool::global`] pool via
/// the free [`par_map`] / [`par_map_chunks`] functions; explicit pools
/// exist for tests that pin determinism across worker counts.
pub struct WorkerPool {
    shared: std::sync::Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Total concurrency including the submitting thread.
    workers: usize,
    /// Serialises submissions: one job owns the pool at a time.
    submit: Mutex<()>,
}

impl WorkerPool {
    /// Creates a pool with total concurrency `workers` (clamped to at
    /// least 1), spawning `workers − 1` persistent threads.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = std::sync::Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                running: 0,
                panic: None,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
        });
        let handles = (1..workers)
            .map(|i| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tdp-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            handles,
            workers,
            submit: Mutex::new(()),
        }
    }

    /// The process-wide pool, sized to the host on first use
    /// ([`available_workers`]).
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| WorkerPool::new(available_workers()))
    }

    /// Total concurrency of this pool, including the submitting thread.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `job` once on every participant (the submitting thread plus
    /// any parked worker that wakes in time). `job` must partition its
    /// own work internally — [`par_map_chunks`](Self::par_map_chunks)
    /// does so with an atomic chunk cursor, which is why a participant
    /// that arrives late (or never) is harmless: the cursor is simply
    /// drained by whoever is present.
    ///
    /// Blocks until all participants have returned. Panics from any
    /// participant are re-raised here.
    fn run(&self, job: &(dyn Fn() + Sync)) {
        if self.handles.is_empty() || IN_POOL_JOB.with(Cell::get) {
            // Serial pool, or a nested call from inside a pool job:
            // run inline. Results are identical by the determinism
            // contract.
            job();
            return;
        }
        let guard = self.submit.lock().expect("submit lock");
        // SAFETY (ErasedJob contract): this function does not return
        // until `running == 0` with the job retracted, so no worker can
        // touch the borrow after we leave this scope.
        #[allow(unsafe_code)]
        let erased = unsafe { ErasedJob::new(job) };
        {
            let mut st = self.shared.state.lock().expect("pool state");
            st.epoch += 1;
            st.job = Some(erased);
            st.panic = None;
        }
        self.shared.work_ready.notify_all();

        // The submitting thread is a participant too: with all workers
        // busy waking up, the job still completes.
        IN_POOL_JOB.with(|f| f.set(true));
        let mine = catch_unwind(AssertUnwindSafe(job));
        IN_POOL_JOB.with(|f| f.set(false));

        // Retract the job so no further pickups happen, then wait for
        // stragglers already inside it.
        let worker_panic = {
            let mut st = self.shared.state.lock().expect("pool state");
            st.job = None;
            while st.running > 0 {
                st = self.shared.job_done.wait(st).expect("pool state");
            }
            st.panic.take()
        };
        drop(guard);
        if let Err(p) = mine {
            resume_unwind(p);
        }
        if let Some(p) = worker_panic {
            resume_unwind(p);
        }
    }

    /// Maps `f` over `items` on this pool, returning results in input
    /// order. Equivalent to [`par_map_chunks`](Self::par_map_chunks)
    /// with a chunk size of 1.
    pub fn par_map<I, T, R, F>(&self, items: I, f: F) -> Vec<R>
    where
        I: IntoIterator<Item = T>,
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        self.par_map_chunks(items, 1, f)
    }

    /// Maps `f` over `items`, claiming work `chunk_size` items at a
    /// time to amortise cursor traffic, and returns the results in
    /// input order.
    ///
    /// The pool degenerates to a serial loop when it has one worker or
    /// when the items fit in a single chunk, with zero behavioural
    /// difference. Panics in `f` propagate to the caller.
    pub fn par_map_chunks<I, T, R, F>(&self, items: I, chunk_size: usize, f: F) -> Vec<R>
    where
        I: IntoIterator<Item = T>,
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let items: Vec<T> = items.into_iter().collect();
        let n = items.len();
        let chunk = chunk_size.max(1);
        if n == 0 {
            return Vec::new();
        }
        if self.workers <= 1 || n <= chunk || IN_POOL_JOB.with(Cell::get) {
            return items.into_iter().map(f).collect();
        }

        // Pre-split the items into indexed slots. Each slot is claimed
        // exactly once via the atomic cursor; its Mutex is therefore
        // uncontended by construction and exists only to move the items
        // out and the results back in safely.
        struct Slot<T, R> {
            input: Vec<T>,
            output: Vec<R>,
        }
        let mut slots: Vec<Mutex<Slot<T, R>>> = Vec::with_capacity(n.div_ceil(chunk));
        let mut it = items.into_iter();
        loop {
            let batch: Vec<T> = it.by_ref().take(chunk).collect();
            if batch.is_empty() {
                break;
            }
            slots.push(Mutex::new(Slot {
                input: batch,
                output: Vec::new(),
            }));
        }

        let cursor = AtomicUsize::new(0);
        let job = || loop {
            let c = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(slot) = slots.get(c) else {
                break;
            };
            let mut slot = slot.lock().expect("slot lock");
            let input = std::mem::take(&mut slot.input);
            slot.output.reserve_exact(input.len());
            for item in input {
                let out = f(item);
                slot.output.push(out);
            }
        };
        self.run(&job);

        slots
            .into_iter()
            .flat_map(|s| s.into_inner().expect("slot poisoned").output)
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool state");
            st.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    IN_POOL_JOB.with(|f| f.set(true));
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool state");
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(job) = st.job {
                    if st.epoch != last_epoch {
                        last_epoch = st.epoch;
                        st.running += 1;
                        break job;
                    }
                }
                st = shared.work_ready.wait(st).expect("pool state");
            }
        };
        let result = catch_unwind(AssertUnwindSafe(|| job.call()));
        let mut st = shared.state.lock().expect("pool state");
        if let Err(p) = result {
            if st.panic.is_none() {
                st.panic = Some(p);
            }
        }
        st.running -= 1;
        if st.running == 0 {
            shared.job_done.notify_all();
        }
    }
}

/// Maps `f` over `items` on the process-wide pool, returning the
/// results in input order.
///
/// # Example
///
/// ```
/// let squares = tdp_parallel::par_map(0..8u64, |x| x * x);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn par_map<I, T, R, F>(items: I, f: F) -> Vec<R>
where
    I: IntoIterator<Item = T>,
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    WorkerPool::global().par_map(items, f)
}

/// Maps `f` over `items` on the process-wide pool, claiming work
/// `chunk_size` items at a time, and returns the results in input
/// order. Prefer this over [`par_map`] when items are small and
/// numerous (fleet shards, per-window slices).
pub fn par_map_chunks<I, T, R, F>(items: I, chunk_size: usize, f: F) -> Vec<R>
where
    I: IntoIterator<Item = T>,
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    WorkerPool::global().par_map_chunks(items, chunk_size, f)
}

/// The worker count the global pool uses: `available_parallelism`,
/// overridable with the `TDP_WORKERS` environment variable (useful for
/// pinning CI or determinism experiments).
pub fn available_workers() -> usize {
    if let Some(n) = std::env::var("TDP_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_input_order() {
        // Stagger work so later items finish first on a multicore host.
        let out = par_map(0..32u64, |i| {
            std::thread::sleep(std::time::Duration::from_micros((32 - i) * 50));
            i * 10
        });
        assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u8> = par_map(Vec::<u8>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = par_map(0..100usize, |i| {
            calls.fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(calls.load(Ordering::SeqCst), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn matches_serial_map_bit_for_bit() {
        let f = |i: u64| (i as f64).sin().to_bits();
        let serial: Vec<u64> = (0..257).map(f).collect();
        assert_eq!(par_map(0..257u64, f), serial);
    }

    #[test]
    fn chunked_map_matches_serial_for_any_chunk_size() {
        let f = |i: u64| (i as f64).cos().to_bits();
        let serial: Vec<u64> = (0..100).map(f).collect();
        for chunk in [1, 3, 7, 16, 99, 100, 1000] {
            assert_eq!(par_map_chunks(0..100u64, chunk, f), serial, "chunk {chunk}");
        }
    }

    #[test]
    fn explicit_pool_sizes_agree() {
        let f = |i: u64| (i as f64).sqrt().to_bits();
        let serial: Vec<u64> = (0..64).map(f).collect();
        for workers in [1, 2, 3, available_workers()] {
            let pool = WorkerPool::new(workers);
            assert_eq!(pool.par_map(0..64u64, f), serial, "{workers} workers");
            assert_eq!(
                pool.par_map_chunks(0..64u64, 5, f),
                serial,
                "{workers} workers, chunked"
            );
        }
    }

    #[test]
    fn pool_is_reusable_across_many_jobs() {
        let pool = WorkerPool::new(4);
        for round in 0..50u64 {
            let out = pool.par_map(0..16u64, |i| i + round);
            assert_eq!(out, (0..16).map(|i| i + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn nested_par_map_degrades_to_serial_without_deadlock() {
        let out = par_map(0..4u64, |i| {
            let inner = par_map(0..4u64, move |j| i * 10 + j);
            inner.iter().sum::<u64>()
        });
        assert_eq!(out, vec![6, 46, 86, 126]);
    }

    #[test]
    #[should_panic(expected = "worker panic propagates")]
    fn worker_panics_propagate() {
        let _ = par_map(0..4u32, |i| {
            if i == 2 {
                panic!("worker panic propagates");
            }
            i
        });
    }

    #[test]
    fn pool_survives_a_panicked_job() {
        let pool = WorkerPool::new(4);
        let poisoned = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(0..8u32, |i| {
                if i == 3 {
                    panic!("boom");
                }
                i
            })
        }));
        assert!(poisoned.is_err());
        // The pool keeps working after the panic is reported.
        assert_eq!(pool.par_map(0..4u32, |i| i * 2), vec![0, 2, 4, 6]);
    }

    #[test]
    fn at_least_one_worker_reported() {
        assert!(available_workers() >= 1);
    }
}
