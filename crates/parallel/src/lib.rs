//! Deterministic pooled parallel map.
//!
//! The capture and calibration pipelines fan out over independent work
//! items (one simulated workload trace each, or one candidate-input
//! subset each). A thread *per item* — the previous design — oversubscribes
//! the host as soon as the item count exceeds the core count, and an
//! external thread-pool dependency is off the approved list. This crate
//! is the minimal middle ground: a scoped worker pool, sized to the host
//! (capped at the item count), draining a shared queue of indexed items.
//!
//! Determinism contract: [`par_map`] returns results **in input order**,
//! and each item is processed exactly once by a pure-by-contract closure,
//! so the output is bit-identical to `items.map(f).collect()` regardless
//! of worker count, scheduling, or host core count. This is what lets
//! `tdp-bench` guarantee that parallel trace capture equals a serial
//! capture byte for byte (the golden-trace determinism test).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::Mutex;

/// Maps `f` over `items` on a pooled set of scoped threads, returning
/// the results in input order.
///
/// The pool size is `min(items.len(), available_parallelism)`, so a
/// single-core host degenerates to a serial loop with no thread churn
/// and zero behavioural difference. Panics in `f` propagate to the
/// caller (the scope re-raises them on join).
///
/// # Example
///
/// ```
/// let squares = tdp_parallel::par_map(0..8u64, |x| x * x);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn par_map<I, T, R, F>(items: I, f: F) -> Vec<R>
where
    I: IntoIterator<Item = T>,
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let queue: VecDeque<(usize, T)> = items.into_iter().enumerate().collect();
    let n = queue.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = available_workers().min(n);
    if workers <= 1 {
        // Serial fast path: no queue locking, no spawn cost.
        return queue.into_iter().map(|(_, item)| f(item)).collect();
    }

    let queue = Mutex::new(queue);
    let results: Mutex<Vec<Option<R>>> =
        Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let Some((idx, item)) = queue.lock().expect("queue lock").pop_front()
                else {
                    break;
                };
                let out = f(item);
                results.lock().expect("results lock")[idx] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .expect("results lock")
        .into_iter()
        .map(|r| r.expect("every index filled"))
        .collect()
}

/// The worker count [`par_map`] would use for an unbounded item list.
pub fn available_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_input_order() {
        // Stagger work so later items finish first on a multicore host.
        let out = par_map(0..32u64, |i| {
            std::thread::sleep(std::time::Duration::from_micros(
                (32 - i) * 50,
            ));
            i * 10
        });
        assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u8> = par_map(Vec::<u8>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = par_map(0..100usize, |i| {
            calls.fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(calls.load(Ordering::SeqCst), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn matches_serial_map_bit_for_bit() {
        let f = |i: u64| (i as f64).sin().to_bits();
        let serial: Vec<u64> = (0..257).map(f).collect();
        assert_eq!(par_map(0..257u64, f), serial);
    }

    #[test]
    #[should_panic(expected = "worker panic propagates")]
    fn worker_panics_propagate() {
        let _ = par_map(0..4u32, |i| {
            if i == 2 {
                panic!("worker panic propagates");
            }
            i
        });
    }

    #[test]
    fn at_least_one_worker_reported() {
        assert!(available_workers() >= 1);
    }
}
