//! The closed adaptive-sampling loop: wire ingest feeds fleet
//! estimates, the anomaly detector judges them, and its verdicts feed
//! decimation grants back into the encoder — so healthy machines
//! transmit one window in N while anomalous ones snap back to full
//! rate. These tests drive the whole loop end to end over a simulated
//! fleet: no false positives on a fault-free run, spikes flagged
//! within the machine's own decimation, and the pooled detector
//! bit-identical to serial on wire-derived estimates.

use tdp_counters::{CounterSample, CpuId, InterruptSnapshot, PerfEvent, SampleSet};
use tdp_fleet::{AnomalyDetector, FleetEstimator, Verdict};
use tdp_parallel::WorkerPool;
use tdp_wire::{ingest_serial_with, IngestState, WireEncoder};
use trickledown::SystemPowerModel;

const MACHINES: usize = 16;

const LAYOUT: [PerfEvent; 9] = [
    PerfEvent::Cycles,
    PerfEvent::HaltedCycles,
    PerfEvent::FetchedUops,
    PerfEvent::L3LoadMisses,
    PerfEvent::BusTransactionsAll,
    PerfEvent::DmaOtherBusTransactions,
    PerfEvent::InterruptsTotal,
    PerfEvent::TimerInterrupts,
    PerfEvent::DiskInterrupts,
];

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// A realistic 4-CPU machine-window. A spiked machine runs its uop and
/// bus rates far above the fleet — a runaway workload — while staying
/// inside every `DegradePolicy` sanity cap, so the row is *not*
/// quarantined: only the detector can catch it.
fn synthetic_set(machine: u64, seq: u64, spiked: bool) -> SampleSet {
    let mut rng = machine
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(seq)
        | 1;
    let per_cpu = (0..4)
        .map(|cpu| {
            let counts = LAYOUT
                .iter()
                .map(|&e| {
                    let r = xorshift(&mut rng);
                    let (scale, boost): (u64, u64) = match e {
                        PerfEvent::Cycles => (2_000_000_000, 1),
                        PerfEvent::HaltedCycles => (900_000_000, 1),
                        PerfEvent::FetchedUops => (2_500_000_000, 4),
                        PerfEvent::L3LoadMisses => (4_000_000, 5),
                        PerfEvent::BusTransactionsAll => (25_000_000, 4),
                        PerfEvent::DmaOtherBusTransactions => (1_500_000, 4),
                        PerfEvent::InterruptsTotal => (6_000, 4),
                        PerfEvent::TimerInterrupts => (2_000, 1),
                        PerfEvent::DiskInterrupts => (900, 4),
                        _ => (10_000, 1),
                    };
                    let base = scale / 2 + r % scale.max(1);
                    (e, if spiked { base * boost } else { base })
                })
                .collect();
            CounterSample::new(CpuId::new(cpu), seq, counts)
        })
        .collect();
    SampleSet {
        time_ms: (seq + 1) * 1000,
        window_ms: 1000,
        seq,
        per_cpu,
        interrupts: InterruptSnapshot::default(),
    }
}

/// One turn of the loop: encode every machine due this window (under
/// the encoder's current grants), ingest, estimate, judge, and feed
/// the verdict-derived grants back. Returns (sample frames sent,
/// rows quarantined).
fn turn(
    w: u64,
    enc: &mut WireEncoder,
    state: &mut IngestState,
    est: &mut FleetEstimator,
    det: &mut AnomalyDetector,
    spike: Option<usize>,
) -> (u64, u64) {
    let mut senders = 0u64;
    for m in 0..MACHINES as u64 {
        if enc.should_send(m, w) {
            let set = synthetic_set(m, w, spike == Some(m as usize));
            enc.push_sample_set(m, &set).unwrap();
            senders += 1;
        }
    }
    let buf = enc.take_bytes();
    let rep = ingest_serial_with(state, &buf, MACHINES, est);
    assert_eq!(rep.rows_written, MACHINES as u64, "window {w}");
    det.update(&est.estimate().clone());
    for m in 0..MACHINES as u64 {
        enc.set_decimation(m, det.decimation(m as usize));
    }
    (senders, rep.rows_quarantined)
}

#[test]
fn fault_free_loop_decimates_the_whole_fleet_with_zero_false_positives() {
    let mut enc = WireEncoder::new();
    let mut state = IngestState::new();
    let mut est = FleetEstimator::new(SystemPowerModel::paper());
    let mut det = AnomalyDetector::default();
    let warmup = det.config().baseline_windows as u64;
    let dec = det.config().healthy_decimation as u64;
    for w in 0..warmup + 12 {
        let (senders, _) = turn(w, &mut enc, &mut state, &mut est, &mut det, None);
        let s = det.summary();
        assert_eq!(
            (s.anomalous, s.suspect),
            (0, 0),
            "window {w}: false positive (max_z = {})",
            s.max_z
        );
        if w < warmup {
            assert_eq!(senders, MACHINES as u64, "window {w}: full rate in warmup");
        }
        if w > warmup + dec {
            // Grants announced and every machine past its first
            // decimated cycle: steady-state wire cost is cut dec×.
            assert_eq!(
                senders,
                MACHINES as u64 / dec,
                "window {w}: steady-state transmissions"
            );
        }
    }
    for m in 0..MACHINES {
        assert_eq!(det.verdict(m), Verdict::Normal);
        assert_eq!(det.decimation(m), det.config().healthy_decimation);
    }
}

#[test]
fn spike_on_a_decimated_machine_is_flagged_within_its_decimation() {
    const SPIKED: usize = 3;
    let mut enc = WireEncoder::new();
    let mut state = IngestState::new();
    let mut est = FleetEstimator::new(SystemPowerModel::paper());
    let mut det = AnomalyDetector::default();
    let warmup = det.config().baseline_windows as u64;
    let dec = det.config().healthy_decimation as u64;

    // Warm up and settle into decimated steady state.
    let onset = warmup + 2 * dec;
    for w in 0..onset {
        turn(w, &mut enc, &mut state, &mut est, &mut det, None);
    }
    assert_eq!(det.decimation(SPIKED), det.config().healthy_decimation);

    // The machine starts misbehaving while decimated: its spiked
    // sample may wait out its phase, so detection is bounded by the
    // decimation, not instant — that is exactly the resolution the
    // protocol trades for wire cost.
    let mut flagged_at = None;
    let mut quarantined = 0u64;
    for w in onset..onset + dec {
        let (_, q) = turn(w, &mut enc, &mut state, &mut est, &mut det, Some(SPIKED));
        quarantined += q;
        if det.verdict(SPIKED) == Verdict::Anomalous {
            flagged_at = Some(w);
            break;
        }
    }
    let flagged_at = flagged_at.expect("spike must be flagged within one decimation cycle");
    assert!(flagged_at < onset + dec, "flagged at {flagged_at}");
    assert_eq!(
        quarantined, 0,
        "the spike is sane-but-extreme: detector, not sanity bounds"
    );
    assert_eq!(
        det.decimation(SPIKED),
        1,
        "anomalous machines lose their grant"
    );
    assert_eq!(
        det.summary().anomalous,
        1,
        "only the spiked machine is flagged"
    );

    // While the spike persists the machine transmits every window and
    // stays flagged; nobody else is dragged along.
    for w in flagged_at + 1..flagged_at + 4 {
        turn(w, &mut enc, &mut state, &mut est, &mut det, Some(SPIKED));
        assert_eq!(det.verdict(SPIKED), Verdict::Anomalous, "window {w}");
        assert_eq!(det.summary().anomalous, 1, "window {w}");
    }

    // Recovery: back to fleet behaviour, through the hysteresis hold,
    // then re-granted decimation.
    let recover = flagged_at + 4;
    let mut w = recover;
    turn(w, &mut enc, &mut state, &mut est, &mut det, None);
    for _ in 0..det.config().hold_windows {
        assert_eq!(det.verdict(SPIKED), Verdict::Suspect, "window {w}");
        assert_eq!(det.decimation(SPIKED), 1);
        w += 1;
        turn(w, &mut enc, &mut state, &mut est, &mut det, None);
    }
    assert_eq!(det.verdict(SPIKED), Verdict::Normal);
    assert_eq!(det.decimation(SPIKED), det.config().healthy_decimation);
}

#[test]
fn pooled_detector_matches_serial_through_the_wire_loop() {
    // The bit-identity contract on real wire-derived estimates (held
    // rows, decimation, a mid-run spike): serial and pooled judgement
    // leave identical detector state every window.
    let pool = WorkerPool::new(4);
    let mut enc = WireEncoder::new();
    let mut state = IngestState::new();
    let mut est = FleetEstimator::new(SystemPowerModel::paper());
    let mut serial = AnomalyDetector::default();
    let mut pooled = AnomalyDetector::default();
    for w in 0..16u64 {
        let spike = (10..12).contains(&w).then_some(5usize);
        let mut senders = 0;
        for m in 0..MACHINES as u64 {
            if enc.should_send(m, w) {
                enc.push_sample_set(m, &synthetic_set(m, w, spike == Some(m as usize)))
                    .unwrap();
                senders += 1;
            }
        }
        assert!(senders > 0);
        let buf = enc.take_bytes();
        ingest_serial_with(&mut state, &buf, MACHINES, &mut est);
        let e = est.estimate().clone();
        serial.update(&e);
        pooled.update_pooled(&e, &pool);
        assert_eq!(serial.digest(), pooled.digest(), "window {w}");
        for m in 0..MACHINES as u64 {
            enc.set_decimation(m, serial.decimation(m as usize));
        }
    }
    assert!(serial.windows() == 16 && serial.summary().max_z > 0.0);
}
