//! Format-equivalence guarantees of the column-planar sample frames:
//! whatever the layout, CPU count or value range, ingesting a planar
//! stream produces **bit-identical** fleet rows and estimates to
//! ingesting the same windows as varint frames — serial and sharded —
//! and a battered planar stream degrades under exactly the same
//! clean-subset contract as the legacy format.

use proptest::prelude::*;
use std::collections::BTreeSet;
use tdp_counters::{CounterSample, CpuId, InterruptSnapshot, PerfEvent, SampleSet};
use tdp_fleet::FleetEstimator;
use tdp_parallel::WorkerPool;
use tdp_wire::{
    ingest_serial_with, stream_window_with, FaultKind, FaultPlan, FrameKind, IngestState,
    StreamConfig, WireEncoder,
};
use trickledown::SystemPowerModel;

/// Events a random layout draws from — trickle-down inputs plus the
/// deliberately-irrelevant alternates, so layouts of any shape appear.
const EVENT_POOL: [PerfEvent; 12] = [
    PerfEvent::Cycles,
    PerfEvent::HaltedCycles,
    PerfEvent::FetchedUops,
    PerfEvent::RetiredUops,
    PerfEvent::L2Misses,
    PerfEvent::L3LoadMisses,
    PerfEvent::TlbMisses,
    PerfEvent::BusTransactionsAll,
    PerfEvent::DmaOtherBusTransactions,
    PerfEvent::InterruptsTotal,
    PerfEvent::TimerInterrupts,
    PerfEvent::DiskInterrupts,
];

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// A random layout: `n_events` distinct events from the pool, order
/// shuffled by `seed`.
fn random_layout(n_events: usize, seed: u64) -> Vec<PerfEvent> {
    let mut pool = EVENT_POOL.to_vec();
    let mut rng = seed | 1;
    for i in (1..pool.len()).rev() {
        pool.swap(i, (xorshift(&mut rng) % (i as u64 + 1)) as usize);
    }
    pool.truncate(n_events);
    pool
}

/// Builds one machine-window over `layout` with explicit per-CPU
/// counts: `counts[cpu][event]`.
fn set_from_counts(seq: u64, layout: &[PerfEvent], counts: &[Vec<u64>]) -> SampleSet {
    let per_cpu = counts
        .iter()
        .enumerate()
        .map(|(cpu, row)| {
            let pairs = layout.iter().copied().zip(row.iter().copied()).collect();
            CounterSample::new(CpuId::new(cpu as u8), seq, pairs)
        })
        .collect();
    SampleSet {
        time_ms: (seq + 1) * 1000,
        window_ms: 1000,
        seq,
        per_cpu,
        interrupts: InterruptSnapshot::default(),
    }
}

/// Encodes `sets` as one window in the given format.
fn encode_as(kind: FrameKind, sets: &[SampleSet]) -> Vec<u8> {
    let mut enc = WireEncoder::with_kind(kind);
    for (id, set) in sets.iter().enumerate() {
        enc.push_sample_set(id as u64, set).unwrap();
    }
    enc.finish()
}

fn batch_bits(est: &FleetEstimator) -> Vec<Vec<u64>> {
    est.batch()
        .columns()
        .iter()
        .map(|c| c.iter().map(|v| v.to_bits()).collect())
        .collect()
}

fn total_bits(est: &mut FleetEstimator) -> Vec<u64> {
    est.estimate().total().iter().map(|v| v.to_bits()).collect()
}

/// Ingests `wire` serially and returns `(batch bits, estimate bits)`.
fn serial_bits(wire: &[u8], machines: usize) -> (Vec<Vec<u64>>, Vec<u64>) {
    let mut est = FleetEstimator::new(SystemPowerModel::paper());
    let rep = ingest_serial_with(&mut IngestState::new(), wire, machines, &mut est);
    assert_eq!(rep.corrupt_frames + rep.resyncs, 0, "clean stream");
    (batch_bits(&est), total_bits(&mut est))
}

/// Ingests `wire` through the sharded pool path and returns the bits.
fn sharded_bits(wire: &[u8], machines: usize) -> (Vec<Vec<u64>>, Vec<u64>) {
    let pool = WorkerPool::new(3);
    let cfg = StreamConfig {
        ring_capacity: 4,
        chunk_rows: 3,
        ..StreamConfig::default()
    };
    let mut est = FleetEstimator::new(SystemPowerModel::paper());
    let rep = stream_window_with(
        &mut IngestState::new(),
        &pool,
        &cfg,
        wire,
        machines,
        &mut est,
    );
    assert_eq!(rep.corrupt_frames + rep.resyncs, 0, "clean stream");
    (batch_bits(&est), total_bits(&mut est))
}

/// Width-boundary constants every plane-width decision pivots on.
const BOUNDARIES: [u64; 17] = [
    0,
    (1 << 7) - 1,
    1 << 7,
    (1 << 8) - 1,
    1 << 8,
    (1 << 15) - 1,
    1 << 15,
    (1 << 16) - 1,
    1 << 16,
    (1 << 31) - 1,
    1 << 31,
    (1 << 32) - 1,
    1u64 << 32,
    // Sign-bit neighbourhood: consecutive counts drawn from here and
    // from the small classes produce CPU-over-CPU deltas at the
    // i64::MIN/i64::MAX zigzag extremes.
    (1u64 << 63) - 1,
    1u64 << 63,
    (1u64 << 63) + 1,
    u64::MAX,
];

/// A count that lands on every interesting plane-width boundary with
/// decent probability, alongside uniform draws from each width class.
fn boundary_value() -> impl Strategy<Value = u64> {
    (any::<u64>(), 0u64..21).prop_map(|(raw, pick)| match pick {
        p if (p as usize) < BOUNDARIES.len() => BOUNDARIES[p as usize],
        17 => raw & 0xff,
        18 => raw & 0xffff,
        19 => raw & 0xffff_ffff,
        _ => raw,
    })
}

proptest! {
    /// Core tentpole property: for any layout shape, CPU count and
    /// value mix — including values straddling every plane-width
    /// boundary, which induce CPU-over-CPU deltas of every zigzag
    /// width — the planar and varint encodings of the same windows
    /// ingest to bit-identical fleet rows and estimates.
    #[test]
    fn planar_and_varint_ingest_bit_identically(
        machines in 1usize..6,
        cpus in 1usize..8,
        n_events in 1usize..10,
        layout_seed in any::<u64>(),
        values in prop::collection::vec(boundary_value(), 6 * 8 * 10),
    ) {
        let layout = random_layout(n_events, layout_seed);
        let sets: Vec<SampleSet> = (0..machines)
            .map(|m| {
                let counts: Vec<Vec<u64>> = (0..cpus)
                    .map(|cpu| {
                        (0..n_events)
                            .map(|e| values[(m * 8 + cpu) * 10 + e])
                            .collect()
                    })
                    .collect();
                set_from_counts(0, &layout, &counts)
            })
            .collect();

        let planar = encode_as(FrameKind::Planar, &sets);
        let varint = encode_as(FrameKind::Varint, &sets);
        prop_assert_eq!(
            serial_bits(&planar, machines),
            serial_bits(&varint, machines),
            "serial ingest diverged between formats"
        );
        prop_assert_eq!(
            sharded_bits(&planar, machines),
            serial_bits(&varint, machines),
            "sharded planar ingest diverged from serial varint ingest"
        );
    }
}

#[test]
fn width_boundary_deltas_roundtrip_bit_identically() {
    // Hand-placed CPU-over-CPU deltas at every signed width boundary:
    // ±2^7, ±2^15, ±2^31 and their neighbours, the exact points where
    // the planar encoder steps its per-plane byte width. Chains start
    // high or at zero so both underflow wrapping and plain arithmetic
    // appear.
    let deltas: [i64; 21] = [
        0,
        1,
        -1,
        (1 << 7) - 1,
        -(1 << 7),
        1 << 7,
        -(1 << 7) - 1,
        (1 << 15) - 1,
        -(1 << 15),
        1 << 15,
        -(1 << 15) - 1,
        (1 << 31) - 1,
        -(1i64 << 31),
        1 << 31,
        -(1i64 << 31) - 1,
        (1i64 << 32) - 1,
        -(1i64 << 32),
        i64::MAX,
        // The zigzag extremes: i64::MIN encodes to u64::MAX, the one
        // delta a sign-magnitude width pick would underprice.
        i64::MIN,
        i64::MIN + 1,
        -i64::MAX,
    ];
    let bases: [u64; 7] = [
        0,
        (1 << 8) - 1,
        1 << 16,
        (1 << 32) - 1,
        1 << 40,
        u64::MAX,
        1 << 63,
    ];
    let cpus = 4usize;
    // 3 deltas per 4-CPU chain; 21 deltas need 7 events, matching the
    // base list so every base width appears too.
    let layout = random_layout(7, 7);
    let counts: Vec<Vec<u64>> = (0..cpus)
        .map(|cpu| {
            (0..layout.len())
                .map(|e| {
                    let mut v = bases[e];
                    for d in deltas.iter().skip(e * 3).take(cpu) {
                        v = v.wrapping_add(*d as u64);
                    }
                    v
                })
                .collect()
        })
        .collect();
    let sets = [set_from_counts(0, &layout, &counts)];

    let planar = encode_as(FrameKind::Planar, &sets);
    let varint = encode_as(FrameKind::Varint, &sets);
    assert_eq!(
        serial_bits(&planar, 1),
        serial_bits(&varint, 1),
        "boundary deltas must decode identically in both formats"
    );
    assert_eq!(sharded_bits(&planar, 1), serial_bits(&varint, 1));
}

/// A realistic in-range machine-window (the chaos leg needs rows that
/// pass the sanity policy, so degradation comes only from the plan).
fn sane_set(machine: u64, seq: u64) -> SampleSet {
    let layout = [
        PerfEvent::Cycles,
        PerfEvent::HaltedCycles,
        PerfEvent::FetchedUops,
        PerfEvent::L3LoadMisses,
        PerfEvent::BusTransactionsAll,
        PerfEvent::DmaOtherBusTransactions,
        PerfEvent::InterruptsTotal,
        PerfEvent::TimerInterrupts,
        PerfEvent::DiskInterrupts,
    ];
    let mut rng = machine
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(seq)
        | 1;
    let counts: Vec<Vec<u64>> = (0..4)
        .map(|_| {
            layout
                .iter()
                .map(|&e| {
                    let r = xorshift(&mut rng);
                    let scale: u64 = match e {
                        PerfEvent::Cycles => 2_000_000_000,
                        PerfEvent::HaltedCycles => 900_000_000,
                        PerfEvent::FetchedUops => 2_500_000_000,
                        PerfEvent::L3LoadMisses => 4_000_000,
                        PerfEvent::BusTransactionsAll => 25_000_000,
                        PerfEvent::DmaOtherBusTransactions => 1_500_000,
                        PerfEvent::InterruptsTotal => 6_000,
                        PerfEvent::TimerInterrupts => 2_000,
                        _ => 900,
                    };
                    scale / 2 + r % scale.max(1)
                })
                .collect()
        })
        .collect();
    set_from_counts(seq, &layout, &counts)
}

#[test]
fn faulted_planar_stream_upholds_the_clean_subset_invariant() {
    // The chaos contract, explicitly over planar frames: bit flips are
    // caught by the checksum, framing damage resyncs, and machines
    // untouched by any fault within the staleness horizon estimate
    // bit-identically to a fault-free planar run.
    const MACHINES: usize = 16;
    const WINDOWS: u64 = 10;
    let plan = FaultPlan::new(0x00c0_ffee);

    let mut clean_enc = WireEncoder::with_kind(FrameKind::Planar);
    let mut fault_enc = WireEncoder::with_kind(FrameKind::Planar);
    let mut clean_state = IngestState::new();
    let mut fault_state = IngestState::new();
    let mut clean_est = FleetEstimator::new(SystemPowerModel::paper());
    let mut fault_est = FleetEstimator::new(SystemPowerModel::paper());
    let horizon = clean_state.policy().max_stale_windows as usize + 1;
    let mut recent: Vec<BTreeSet<u64>> = Vec::new();
    let (mut flips_seen, mut framing_seen) = (0u64, 0u64);

    for w in 0..WINDOWS {
        let encode = |enc: &mut WireEncoder| {
            for m in 0..MACHINES as u64 {
                enc.push_sample_set(m, &sane_set(m, w)).unwrap();
            }
            enc.take_bytes()
        };
        let clean_buf = encode(&mut clean_enc);
        let fault_src = encode(&mut fault_enc);
        assert_eq!(clean_buf, fault_src, "planar encoding is deterministic");

        // Window 0 delivers the layouts intact; later windows burn.
        let faulted = (w > 0).then(|| plan.apply(w, &fault_src));
        let buf = faulted
            .as_ref()
            .map_or(fault_src.clone(), |f| f.bytes.clone());
        recent.push(
            faulted
                .as_ref()
                .map(|f| f.affected.clone())
                .unwrap_or_default(),
        );

        ingest_serial_with(&mut clean_state, &clean_buf, MACHINES, &mut clean_est);
        let rep = ingest_serial_with(&mut fault_state, &buf, MACHINES, &mut fault_est);
        if let Some(f) = &faulted {
            // Every destructive fault must land in its health counter.
            flips_seen += f.count(FaultKind::BitFlip);
            framing_seen += f.count(FaultKind::GarbageInsert) + f.count(FaultKind::TruncateTail);
            assert!(
                rep.corrupt_frames >= f.count(FaultKind::BitFlip),
                "window {w}: bit flips slipped past the planar checksum"
            );
            assert!(
                rep.resyncs >= f.count(FaultKind::GarbageInsert) + f.count(FaultKind::TruncateTail),
                "window {w}: framing damage did not resync"
            );
            assert!(
                rep.rows_quarantined >= f.count(FaultKind::RateSpike),
                "window {w}: spiked planar rows were not quarantined"
            );
            assert!(
                rep.resets_detected + rep.duplicate_windows
                    >= f.count(FaultKind::SeqReset) + f.count(FaultKind::DuplicateFrame),
                "window {w}: sequence faults went unaccounted"
            );
        }

        let clean_e = clean_est.estimate();
        let fault_e = fault_est.estimate();
        let dirty: BTreeSet<u64> = recent
            .iter()
            .rev()
            .take(horizon)
            .flatten()
            .copied()
            .collect();
        for m in 0..MACHINES {
            if dirty.contains(&(m as u64)) {
                continue;
            }
            assert_eq!(
                fault_e.total()[m].to_bits(),
                clean_e.total()[m].to_bits(),
                "window {w}: clean machine {m} diverged under planar chaos"
            );
        }
    }
    assert!(
        flips_seen + framing_seen > 0,
        "the plan must actually have exercised checksum and resync paths"
    );
}
