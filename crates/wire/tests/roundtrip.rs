//! End-to-end guarantees of the wire codec and streaming pipeline:
//! wire ingestion is bit-identical to in-memory ingestion, streamed
//! results are bit-identical for any decoder count, and every
//! single-bit corruption of a frame is detected, never silently
//! ingested.

use tdp_counters::{CounterSample, CpuId, InterruptSnapshot, PerfEvent, SampleSet};
use tdp_fleet::FleetEstimator;
use tdp_parallel::WorkerPool;
use tdp_wire::{
    ingest_serial, ingest_serial_with, stream_window, stream_window_with, HealthState, IngestState,
    StreamConfig, WireEncoder,
};
use trickledown::SystemPowerModel;

/// The nine-event trickle-down layout every machine runs by default.
const LAYOUT: [PerfEvent; 9] = [
    PerfEvent::Cycles,
    PerfEvent::HaltedCycles,
    PerfEvent::FetchedUops,
    PerfEvent::L3LoadMisses,
    PerfEvent::BusTransactionsAll,
    PerfEvent::DmaOtherBusTransactions,
    PerfEvent::InterruptsTotal,
    PerfEvent::TimerInterrupts,
    PerfEvent::DiskInterrupts,
];

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// A realistic machine-window: 4 CPUs, counts scaled per event so the
/// derived rates land in each model's operating range.
fn synthetic_set(machine: u64, seq: u64, layout: &[PerfEvent]) -> SampleSet {
    let mut rng = machine
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(seq)
        | 1;
    let per_cpu = (0..4)
        .map(|cpu| {
            let counts = layout
                .iter()
                .map(|&e| {
                    let r = xorshift(&mut rng);
                    let scale: u64 = match e {
                        PerfEvent::Cycles => 2_000_000_000,
                        PerfEvent::HaltedCycles => 900_000_000,
                        PerfEvent::FetchedUops => 2_500_000_000,
                        PerfEvent::L3LoadMisses => 4_000_000,
                        PerfEvent::BusTransactionsAll => 25_000_000,
                        PerfEvent::DmaOtherBusTransactions => 1_500_000,
                        PerfEvent::InterruptsTotal => 6_000,
                        PerfEvent::TimerInterrupts => 2_000,
                        PerfEvent::DiskInterrupts => 900,
                        _ => 10_000,
                    };
                    (e, scale / 2 + r % scale.max(1))
                })
                .collect();
            CounterSample::new(CpuId::new(cpu), seq, counts)
        })
        .collect();
    SampleSet {
        time_ms: (seq + 1) * 1000,
        window_ms: 1000,
        seq,
        per_cpu,
        interrupts: InterruptSnapshot::default(),
    }
}

fn fleet_window(machines: u64) -> Vec<SampleSet> {
    (0..machines)
        .map(|m| synthetic_set(m, 3, &LAYOUT))
        .collect()
}

fn encode_window(sets: &[SampleSet]) -> Vec<u8> {
    let mut enc = WireEncoder::new();
    for (id, set) in sets.iter().enumerate() {
        enc.push_sample_set(id as u64, set).unwrap();
    }
    enc.finish()
}

/// Ingests in-memory and returns the batch columns + estimates as bits.
fn reference_bits(sets: &[SampleSet]) -> (Vec<Vec<u64>>, Vec<u64>) {
    let mut est = FleetEstimator::new(SystemPowerModel::paper());
    est.begin_window();
    for set in sets {
        est.push_sample_set(set);
    }
    let totals = est.estimate().total().iter().map(|v| v.to_bits()).collect();
    let cols = est
        .batch()
        .columns()
        .iter()
        .map(|c| c.iter().map(|v| v.to_bits()).collect())
        .collect();
    (cols, totals)
}

fn batch_bits(est: &FleetEstimator) -> Vec<Vec<u64>> {
    est.batch()
        .columns()
        .iter()
        .map(|c| c.iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn wire_ingestion_is_bit_identical_to_in_memory() {
    let sets = fleet_window(37);
    let wire = encode_window(&sets);
    let (ref_cols, ref_totals) = reference_bits(&sets);

    let mut est = FleetEstimator::new(SystemPowerModel::paper());
    let report = ingest_serial(&wire, sets.len(), &mut est);
    assert_eq!(report.rows_written, 37);
    assert_eq!(report.sample_frames, 37);
    assert_eq!(report.layout_frames, 37, "one layout frame per machine");
    assert_eq!(report.corrupt_frames + report.resyncs, 0);

    assert_eq!(batch_bits(&est), ref_cols, "columns must match bit for bit");
    let totals: Vec<u64> = est.estimate().total().iter().map(|v| v.to_bits()).collect();
    assert_eq!(totals, ref_totals, "estimates must match bit for bit");
}

#[test]
fn streamed_result_is_bit_identical_across_decoder_counts() {
    let sets = fleet_window(101);
    let wire = encode_window(&sets);
    let (ref_cols, ref_totals) = reference_bits(&sets);

    // Pool sizes 1 (serial fused), 2 (one decoder), 3 (two decoders)
    // and a wider pool; lossless mode must agree bit for bit with the
    // in-memory reference in every configuration, and with a tiny ring
    // that forces real backpressure.
    for (workers, ring_capacity) in [(1, 8), (2, 2), (3, 8), (4, 2), (8, 4)] {
        let pool = WorkerPool::new(workers);
        let cfg = StreamConfig {
            ring_capacity,
            chunk_rows: 7,
            ..StreamConfig::default()
        };
        let mut est = FleetEstimator::new(SystemPowerModel::paper());
        let report = stream_window(&pool, &cfg, &wire, sets.len(), &mut est);
        assert_eq!(report.rows_written, 101, "workers {workers}");
        assert_eq!(report.dropped_rows, 0, "lossless mode never drops");
        // A single-worker pool still decodes with one (fused) decoder.
        assert_eq!(report.decoders, workers.saturating_sub(1).clamp(1, 101));
        assert_eq!(batch_bits(&est), ref_cols, "workers {workers}");
        let totals: Vec<u64> = est.estimate().total().iter().map(|v| v.to_bits()).collect();
        assert_eq!(totals, ref_totals, "workers {workers}");
    }
}

#[test]
fn explicit_decoder_request_is_honoured_and_clamped() {
    let sets = fleet_window(9);
    let wire = encode_window(&sets);
    let pool = WorkerPool::new(4);
    for (requested, expect) in [(1, 1), (2, 2), (3, 3), (7, 3)] {
        let cfg = StreamConfig {
            decoders: requested,
            ..StreamConfig::default()
        };
        let mut est = FleetEstimator::new(SystemPowerModel::paper());
        let report = stream_window(&pool, &cfg, &wire, sets.len(), &mut est);
        assert_eq!(report.decoders, expect, "requested {requested}");
        assert_eq!(report.rows_written, 9);
    }
}

#[test]
fn every_single_bit_flip_is_detected() {
    // A small stream: two machines, layout + sample frame each.
    let sets = fleet_window(2);
    let wire = encode_window(&sets);
    let mut pristine = FleetEstimator::new(SystemPowerModel::paper());
    let base = ingest_serial(&wire, 2, &mut pristine);
    assert_eq!(base.corrupt_frames + base.resyncs, 0);
    let clean_cols = batch_bits(&pristine);

    for byte in 0..wire.len() {
        for bit in 0..8 {
            let mut bad = wire.clone();
            bad[byte] ^= 1 << bit;
            let mut est = FleetEstimator::new(SystemPowerModel::paper());
            let report = ingest_serial(&bad, 2, &mut est);
            let detections = report.corrupt_frames
                + report.resyncs
                + report.unknown_layout_frames
                + report.out_of_range_frames;
            // Every stored bit is covered: magic/version/type flips
            // fail their equality checks (resync), and everything else
            // — including the length and checksum fields — feeds the
            // bijective checksum mix.
            assert!(
                detections > 0,
                "flip of byte {byte} bit {bit} was silently accepted"
            );
            // And a detected frame is dropped, never half-ingested:
            // whatever rows were written match the pristine extraction.
            for (clean_col, col) in clean_cols.iter().zip(batch_bits(&est)) {
                for (m, (&clean, bits)) in clean_col.iter().zip(col).enumerate() {
                    assert!(
                        bits == clean || bits == 0f64.to_bits(),
                        "byte {byte} bit {bit}: machine {m} row silently altered"
                    );
                }
            }
        }
    }
}

#[test]
fn mid_stream_layout_change_never_misattributes_columns() {
    // Machine 0 reprograms its PMU mid-stream: same events reordered,
    // then an extended list with extra (irrelevant) events in front.
    let mut reordered = LAYOUT;
    reordered.reverse();
    let extended: Vec<PerfEvent> = [PerfEvent::TlbMisses, PerfEvent::L2Misses]
        .iter()
        .chain(LAYOUT.iter())
        .copied()
        .collect();

    let windows = [
        synthetic_set(0, 0, &LAYOUT),
        synthetic_set(0, 1, &reordered),
        synthetic_set(0, 2, &extended),
    ];

    for (seq, set) in windows.iter().enumerate() {
        // Wire path: encode this window alone (the encoder emits a
        // fresh layout frame at each change) and ingest it.
        let mut enc = WireEncoder::new();
        enc.push_sample_set(0, set).unwrap();
        let wire = enc.finish();
        let mut est = FleetEstimator::new(SystemPowerModel::paper());
        let report = ingest_serial(&wire, 1, &mut est);
        assert_eq!(report.rows_written, 1, "window {seq}");
        assert_eq!(report.corrupt_frames + report.unknown_layout_frames, 0);

        // In-memory reference for the same set.
        let mut reference = FleetEstimator::new(SystemPowerModel::paper());
        reference.begin_window();
        reference.push_sample_set(set);
        assert_eq!(
            batch_bits(&est),
            batch_bits(&reference),
            "window {seq}: wire row must match in-memory extraction"
        );
    }

    // And as one continuous stream: three windows, three layout frames.
    let mut enc = WireEncoder::new();
    for set in &windows {
        enc.push_sample_set(0, set).unwrap();
    }
    let wire = enc.finish();
    let mut est = FleetEstimator::new(SystemPowerModel::paper());
    let report = ingest_serial(&wire, 1, &mut est);
    assert_eq!(report.layout_frames, 3, "each reprogramming re-announces");
    assert_eq!(report.sample_frames, 3);
    assert_eq!(report.corrupt_frames + report.unknown_layout_frames, 0);

    // The surviving row is the last window's; it must equal the
    // in-memory extraction of that window.
    let mut reference = FleetEstimator::new(SystemPowerModel::paper());
    reference.begin_window();
    reference.push_sample_set(&windows[2]);
    assert_eq!(batch_bits(&est), batch_bits(&reference));
}

#[test]
fn sample_frame_without_its_layout_is_counted_not_guessed() {
    let sets = fleet_window(1);
    let wire = encode_window(&sets);
    // Strip the leading layout frame, leaving a dangling sample frame.
    let sample_start = {
        use tdp_wire::{CursorItem, FrameCursor};
        let mut cursor = FrameCursor::new(&wire);
        match cursor.next() {
            Some(CursorItem::Frame { header, start }) => start + 44 + header.payload_len as usize,
            other => panic!("expected leading layout frame, got {other:?}"),
        }
    };
    let mut est = FleetEstimator::new(SystemPowerModel::paper());
    let report = ingest_serial(&wire[sample_start..], 1, &mut est);
    assert_eq!(report.unknown_layout_frames, 1);
    assert_eq!(report.rows_written, 0);
    // The machine's row stays zero rather than being misdecoded.
    assert!(est.batch().columns().iter().all(|c| c[0] == 0.0));
}

#[test]
fn single_worker_pool_takes_the_serial_fused_path_deterministically() {
    // With one worker there is no room for a decoder shard plus a
    // consumer, so `stream_window` must fall back to the serial fused
    // path (reported as one decoder: the fused one) — and that fallback must be
    // indistinguishable, bit for bit and counter for counter, from
    // calling `ingest_serial_with` directly, across repeated windows.
    let machines = 13usize;
    let pool = WorkerPool::new(1);
    let cfg = StreamConfig {
        decoders: 4, // an explicit request cannot outvote the pool size
        ..StreamConfig::default()
    };
    let mut pooled_state = IngestState::new();
    let mut serial_state = IngestState::new();
    let mut pooled_est = FleetEstimator::new(SystemPowerModel::paper());
    let mut serial_est = FleetEstimator::new(SystemPowerModel::paper());
    for seq in 0..3u64 {
        let sets: Vec<SampleSet> = (0..machines)
            .map(|m| synthetic_set(m as u64, seq, &LAYOUT))
            .collect();
        let buf = encode_window(&sets);

        let pooled = stream_window_with(
            &mut pooled_state,
            &pool,
            &cfg,
            &buf,
            machines,
            &mut pooled_est,
        );
        assert_eq!(pooled.decoders, 1, "window {seq}: must report serial path");
        let serial = ingest_serial_with(&mut serial_state, &buf, machines, &mut serial_est);
        assert_eq!(pooled, serial, "window {seq}: reports must be identical");
        assert_eq!(
            batch_bits(&pooled_est),
            batch_bits(&serial_est),
            "window {seq}: batches must be identical"
        );
    }
}

#[test]
fn counter_reset_is_rebaselined_not_poisoned() {
    // A machine reboots mid-stream: its window sequence rewinds to
    // zero. Counters are read-and-clear, so the post-reboot row is a
    // valid per-window delta — ingest must accept it (bit-identical to
    // in-memory extraction of the same set), count exactly one reset,
    // mark the machine Suspect, and let the next monotone window
    // restore it to Healthy. Nothing about the reboot may leak into
    // the decoded values.
    let mut state = IngestState::new();
    let mut est = FleetEstimator::new(SystemPowerModel::paper());

    for (step, seq) in [5u64, 6, 0, 1].iter().enumerate() {
        let set = synthetic_set(0, *seq, &LAYOUT);
        let mut enc = WireEncoder::new();
        enc.push_sample_set(0, &set).unwrap();
        let rep = ingest_serial_with(&mut state, &enc.finish(), 1, &mut est);

        assert_eq!(rep.rows_written, 1, "step {step}: row must be accepted");
        assert_eq!(rep.rows_quarantined, 0);
        let expect_reset = u64::from(step == 2);
        assert_eq!(
            rep.resets_detected, expect_reset,
            "step {step}: reset counted exactly at the rewind"
        );
        let expect_state = if step == 2 {
            HealthState::Suspect
        } else {
            HealthState::Healthy
        };
        assert_eq!(state.machine_health(0), Some(expect_state), "step {step}");

        // The decoded row is the set's own delta — reboot or not.
        let mut reference = FleetEstimator::new(SystemPowerModel::paper());
        reference.begin_window();
        reference.push_sample_set(&set);
        assert_eq!(
            batch_bits(&est),
            batch_bits(&reference),
            "step {step}: reset must not distort the decoded row"
        );
    }
}

#[test]
fn drop_mode_accounts_for_every_row() {
    let sets = fleet_window(257);
    let wire = encode_window(&sets);
    let pool = WorkerPool::new(3);
    let cfg = StreamConfig {
        ring_capacity: 2,
        chunk_rows: 4,
        drop_when_full: true,
        ..StreamConfig::default()
    };
    let mut est = FleetEstimator::new(SystemPowerModel::paper());
    let report = stream_window(&pool, &cfg, &wire, sets.len(), &mut est);
    // Shedding is timing-dependent, but accounting never is: every
    // decoded row is either written or counted as dropped.
    assert_eq!(report.rows_written + report.dropped_rows, 257);
    assert_eq!(report.sample_frames, 257);
}

#[test]
fn persistent_state_decodes_steady_state_streams() {
    // A long-lived producer announces layouts once; every later window
    // is sample frames only. Persistent `IngestState` must decode every
    // such window fully and bit-identically to in-memory ingestion; a
    // cold decoder on the same bytes must count the frames unknown.
    let machines = 23usize;
    let pool = WorkerPool::global();
    let cfg = StreamConfig {
        decoders: 3,
        ring_capacity: 4,
        chunk_rows: 5,
        drop_when_full: false,
    };
    let mut enc = WireEncoder::new();
    let mut serial_state = IngestState::new();
    let mut stream_state = IngestState::new();
    let mut serial_est = FleetEstimator::new(SystemPowerModel::paper());
    let mut stream_est = FleetEstimator::new(SystemPowerModel::paper());
    for seq in 0..4u64 {
        let sets: Vec<SampleSet> = (0..machines)
            .map(|m| synthetic_set(m as u64, seq, &LAYOUT))
            .collect();
        for (id, set) in sets.iter().enumerate() {
            enc.push_sample_set(id as u64, set).unwrap();
        }
        let buf = enc.take_bytes();

        let rep = ingest_serial_with(&mut serial_state, &buf, machines, &mut serial_est);
        assert_eq!(rep.rows_written, machines as u64);
        assert_eq!(rep.unknown_layout_frames, 0);
        if seq > 0 {
            assert_eq!(rep.layout_frames, 0, "steady state re-announces nothing");
        }

        let rep = stream_window_with(
            &mut stream_state,
            pool,
            &cfg,
            &buf,
            machines,
            &mut stream_est,
        );
        assert_eq!(rep.rows_written, machines as u64);
        assert_eq!(rep.unknown_layout_frames, 0);

        let (ref_cols, ref_totals) = reference_bits(&sets);
        assert_eq!(batch_bits(&serial_est), ref_cols, "window {seq}: serial");
        assert_eq!(batch_bits(&stream_est), ref_cols, "window {seq}: streamed");
        let totals: Vec<u64> = serial_est
            .estimate()
            .total()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(totals, ref_totals, "window {seq}: estimates");

        if seq > 0 {
            let mut cold = FleetEstimator::new(SystemPowerModel::paper());
            let rep = ingest_serial(&buf, machines, &mut cold);
            assert_eq!(rep.unknown_layout_frames, machines as u64);
            assert_eq!(rep.rows_written, 0, "a cold decoder never guesses a layout");
        }
    }
}

#[test]
fn decimation_one_stream_is_byte_identical_to_legacy() {
    // The decimation field rides the layout header's previously-unused
    // `cpu_count`; at decimation 1 the encoder writes the legacy zero,
    // so an every-window stream is indistinguishable from one produced
    // before the field existed.
    let sets = fleet_window(5);
    let mut plain = WireEncoder::new();
    let mut dec1 = WireEncoder::new();
    for (id, set) in sets.iter().enumerate() {
        dec1.set_decimation(id as u64, 1);
        plain.push_sample_set(id as u64, set).unwrap();
        dec1.push_sample_set(id as u64, set).unwrap();
    }
    assert_eq!(plain.finish(), dec1.finish());
}

#[test]
fn decimated_stream_reconstructs_bit_exactly_and_stays_healthy() {
    // Eight machines granted decimation 4 after their first window:
    // phase-staggered, two transmit per window, the other six are
    // reconstructed at their last transmitted row — bit-exactly, with
    // no health downgrade, identically under serial and sharded ingest.
    const MACHINES: usize = 8;
    const DEC: u16 = 4;
    let pool = WorkerPool::new(4);
    let cfg = StreamConfig {
        ring_capacity: 4,
        chunk_rows: 3,
        ..StreamConfig::default()
    };
    let mut enc = WireEncoder::new();
    let mut serial_state = IngestState::new();
    let mut sharded_state = IngestState::new();
    let mut serial_est = FleetEstimator::new(SystemPowerModel::paper());
    let mut sharded_est = FleetEstimator::new(SystemPowerModel::paper());
    let mut last_sent = [0u64; MACHINES];
    for w in 0..12u64 {
        if w == 1 {
            // The control loop grants healthy machines decimation after
            // their first window; each machine announces it in-band on
            // its next transmitted layout frame.
            for m in 0..MACHINES as u64 {
                enc.set_decimation(m, DEC);
            }
        }
        let mut senders = 0u64;
        for m in 0..MACHINES as u64 {
            if enc.should_send(m, w) {
                enc.push_sample_set(m, &synthetic_set(m, w, &LAYOUT))
                    .unwrap();
                last_sent[m as usize] = w;
                senders += 1;
            }
        }
        assert_eq!(
            senders,
            if w == 0 { MACHINES as u64 } else { 2 },
            "window {w}: the phase stagger spreads transmissions evenly"
        );
        let buf = enc.take_bytes();
        let serial = ingest_serial_with(&mut serial_state, &buf, MACHINES, &mut serial_est);
        let sharded = stream_window_with(
            &mut sharded_state,
            &pool,
            &cfg,
            &buf,
            MACHINES,
            &mut sharded_est,
        );
        assert_eq!(serial.rows_written, MACHINES as u64, "window {w}");
        assert_eq!(serial.sample_frames, senders, "window {w}");
        assert_eq!(serial.rows_written, sharded.rows_written, "window {w}");
        assert_eq!(serial.rows_reconstructed, sharded.rows_reconstructed);
        assert_eq!(serial.rows_held, sharded.rows_held);
        assert_eq!(
            batch_bits(&serial_est),
            batch_bits(&sharded_est),
            "window {w}"
        );

        // Bit-exact reference: every machine's row is the in-memory
        // extraction of its last *transmitted* window.
        let mut reference = FleetEstimator::new(SystemPowerModel::paper());
        reference.begin_window();
        for (m, &sent) in last_sent.iter().enumerate() {
            reference.push_sample_set(&synthetic_set(m as u64, sent, &LAYOUT));
        }
        assert_eq!(
            batch_bits(&serial_est),
            batch_bits(&reference),
            "window {w}"
        );

        if w >= DEC as u64 {
            // Steady state: every machine has announced its decimation,
            // so silence is protocol (reconstruction), not degradation.
            assert_eq!(
                serial.rows_reconstructed,
                MACHINES as u64 - senders,
                "window {w}"
            );
            assert_eq!(serial.rows_held, 0, "window {w}");
            assert!(
                serial.health().is_clean(),
                "window {w}: {}",
                serial.health()
            );
            for m in 0..MACHINES as u64 {
                assert_eq!(
                    serial_state.machine_health(m),
                    Some(HealthState::Healthy),
                    "window {w} machine {m}"
                );
            }
        }
    }
}

#[test]
fn decimated_silence_past_grace_goes_stale_once_then_recovers() {
    // A decimated machine that actually dies: the first dec−1 silent
    // windows are reconstruction (protocol), the next max_stale_windows
    // are held as Suspect (the legacy grace), then staleness — counted
    // exactly once for the outage — and a fresh row revives it.
    const DEC: u16 = 4;
    let mut state = IngestState::new();
    let max_stale = state.policy().max_stale_windows;
    let mut est = FleetEstimator::new(SystemPowerModel::paper());
    let mut enc = WireEncoder::new();
    enc.set_decimation(0, DEC);
    enc.push_sample_set(0, &synthetic_set(0, 0, &LAYOUT))
        .unwrap();
    let rep = ingest_serial_with(&mut state, &enc.take_bytes(), 1, &mut est);
    assert_eq!(rep.rows_written, 1);

    let mut stale_events = 0u64;
    for since in 1..=(DEC as u64 - 1 + max_stale + 3) {
        let rep = ingest_serial_with(&mut state, &[], 1, &mut est);
        if since < DEC as u64 {
            assert_eq!(rep.rows_reconstructed, 1, "window {since}");
            assert_eq!(state.machine_health(0), Some(HealthState::Healthy));
        } else if since <= DEC as u64 - 1 + max_stale {
            assert_eq!(rep.rows_held, 1, "window {since}");
            assert_eq!(state.machine_health(0), Some(HealthState::Suspect));
        } else {
            assert_eq!(rep.rows_written, 0, "window {since}");
            assert_eq!(state.machine_health(0), Some(HealthState::Stale));
        }
        stale_events += rep.machines_stale;
    }
    assert_eq!(stale_events, 1, "one outage, one stale count");

    enc.push_sample_set(0, &synthetic_set(0, 99, &LAYOUT))
        .unwrap();
    let rep = ingest_serial_with(&mut state, &enc.take_bytes(), 1, &mut est);
    assert_eq!(rep.rows_written, 1);
    assert_eq!(state.machine_health(0), Some(HealthState::Healthy));
}

#[test]
fn stale_machine_replaying_its_last_window_rebaselines_not_locked_out() {
    // Regression for the staleness-boundary sequence bug: a machine
    // that crossed the staleness bound and reappeared replaying its
    // last accepted window sequence used to be judged a duplicate —
    // skipped, and locked out until its producer's sequence moved — and
    // its next outage could re-count in `machines_stale`. Equal
    // sequences from a Stale machine must re-baseline as a reset.
    let mut state = IngestState::new();
    let max_stale = state.policy().max_stale_windows;
    let mut est = FleetEstimator::new(SystemPowerModel::paper());
    let set = synthetic_set(0, 5, &LAYOUT);
    let mut enc = WireEncoder::new();
    enc.push_sample_set(0, &set).unwrap();
    ingest_serial_with(&mut state, &enc.take_bytes(), 1, &mut est);

    // stale → …
    let mut stales = 0;
    for _ in 0..max_stale + 2 {
        stales += ingest_serial_with(&mut state, &[], 1, &mut est).machines_stale;
    }
    assert_eq!(stales, 1);
    assert_eq!(state.machine_health(0), Some(HealthState::Stale));

    // … recover by replaying the same window sequence → …
    enc.push_sample_set(0, &set).unwrap();
    let rep = ingest_serial_with(&mut state, &enc.take_bytes(), 1, &mut est);
    assert_eq!(
        rep.duplicate_windows, 0,
        "replay after staleness is not a duplicate"
    );
    assert_eq!(rep.resets_detected, 1, "it re-baselines as a reset");
    assert_eq!(rep.rows_written, 1, "and the row is accepted");
    assert_eq!(state.machine_health(0), Some(HealthState::Suspect));

    // … → stale again: the fresh outage counts exactly once more.
    let mut stales = 0;
    for _ in 0..max_stale + 2 {
        stales += ingest_serial_with(&mut state, &[], 1, &mut est).machines_stale;
    }
    assert_eq!(stales, 1, "a fresh outage counts once more");
}
