//! Identity-directory memo contracts: the planar fast path (skipping
//! directory validation when a machine's frame shape repeats) must be
//! observationally invisible. A memoised decoder and one forced to
//! revalidate every frame must agree bit-for-bit over battered
//! streams, width changes, layout-epoch bumps and evictions — and the
//! fused planar ingest must stay bit-identical to the varint reference
//! leg when adaptive decimation, width-directory changes and a
//! sequence reset all land in the same stream.

use proptest::prelude::*;
use tdp_counters::{CounterSample, CpuId, InterruptSnapshot, PerfEvent, SampleSet};
use tdp_fleet::FleetEstimator;
use tdp_wire::{
    ingest_serial_with, CursorItem, Decoded, FaultPlan, FrameCursor, FrameDecoder, FrameKind,
    IngestState, WireEncoder,
};
use trickledown::SystemPowerModel;

/// The canonical nine-event identity layout (what real producers run).
const IDENTITY: [PerfEvent; 9] = [
    PerfEvent::Cycles,
    PerfEvent::HaltedCycles,
    PerfEvent::FetchedUops,
    PerfEvent::L3LoadMisses,
    PerfEvent::BusTransactionsAll,
    PerfEvent::DmaOtherBusTransactions,
    PerfEvent::InterruptsTotal,
    PerfEvent::TimerInterrupts,
    PerfEvent::DiskInterrupts,
];

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// A sane machine-window whose counter magnitudes are scaled by
/// `magnitude`: rates (count / cycles) stay in the sanity envelope
/// while the planar plane widths step through entirely different
/// width-directory bytes — a magnitude regime switch is exactly the
/// event that must strand a machine's identity-directory memo.
fn scaled_set(machine: u64, seq: u64, magnitude: u64) -> SampleSet {
    let mut rng = machine
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(seq)
        .wrapping_add(magnitude.wrapping_mul(0x6a09_e667_f3bc_c909))
        | 1;
    let per_cpu = (0..4)
        .map(|cpu| {
            let pairs = IDENTITY
                .iter()
                .map(|&e| {
                    let r = xorshift(&mut rng);
                    let scale: u64 = match e {
                        PerfEvent::Cycles => 2_000_000,
                        PerfEvent::HaltedCycles => 900_000,
                        PerfEvent::FetchedUops => 2_500_000,
                        PerfEvent::L3LoadMisses => 4_000,
                        PerfEvent::BusTransactionsAll => 25_000,
                        PerfEvent::DmaOtherBusTransactions => 1_500,
                        PerfEvent::InterruptsTotal => 600,
                        PerfEvent::TimerInterrupts => 200,
                        _ => 90,
                    };
                    let scale = scale.saturating_mul(magnitude);
                    (e, scale / 2 + r % scale.max(1))
                })
                .collect();
            CounterSample::new(CpuId::new(cpu as u8), seq, pairs)
        })
        .collect();
    SampleSet {
        time_ms: (seq + 1) * 1000,
        window_ms: 1000,
        seq,
        per_cpu,
        interrupts: InterruptSnapshot::default(),
    }
}

fn batch_bits(est: &FleetEstimator) -> Vec<Vec<u64>> {
    est.batch()
        .columns()
        .iter()
        .map(|c| c.iter().map(|v| v.to_bits()).collect())
        .collect()
}

/// Decodes every frame of `bytes` through both decoders — `memo`
/// keeps its identity-directory memo, `reference` is evicted before
/// every frame so it revalidates from scratch — and asserts the two
/// verdicts (rows, layouts, errors alike) are identical.
fn assert_decoders_agree(
    bytes: &[u8],
    memo: &mut FrameDecoder,
    reference: &mut FrameDecoder,
    context: &str,
) -> Result<(), String> {
    let mut cursor = FrameCursor::new(bytes);
    while let Some(item) = cursor.next() {
        if let CursorItem::Frame { start, header } = item {
            let payload = cursor.payload(start, &header);
            reference.evict_dir_memo(header.machine_id);
            let got = memo.decode_frame(&header, payload);
            let want = reference.decode_frame(&header, payload);
            prop_assert_eq!(
                &got,
                &want,
                "{}: memoised and revalidating decodes diverged (machine {}, seq {})",
                context,
                header.machine_id,
                header.window_seq
            );
            if let (Ok(Decoded::Row { row: a, .. }), Ok(Decoded::Row { row: b, .. })) =
                (&got, &want)
            {
                for (k, (x, y)) in a.iter().zip(b).enumerate() {
                    prop_assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{}: column {} bits diverged",
                        context,
                        k
                    );
                }
            }
        }
    }
    Ok(())
}

proptest! {
    /// Over arbitrary seeded fault plans — windows that are clean,
    /// corrupt (bit flips), quarantine-bound (rate spikes) and mixed —
    /// the identity-directory fast path must produce exactly the
    /// verdict of full per-frame revalidation: same rows bit-for-bit,
    /// same errors, frame by frame.
    #[test]
    fn memoised_decode_matches_full_revalidation_over_faulted_streams(seed in any::<u64>()) {
        const MACHINES: u64 = 10;
        let plan = FaultPlan::new(seed);
        let mut enc = WireEncoder::with_kind(FrameKind::Planar);
        let mut memo = FrameDecoder::new();
        let mut reference = FrameDecoder::new();
        for w in 0..4u64 {
            for m in 0..MACHINES {
                enc.push_sample_set(m, &scaled_set(m, w, 1_000)).unwrap();
            }
            let clean = enc.take_bytes();
            // Window 0 delivers the layouts intact; later windows burn.
            let bytes = if w == 0 { clean } else { plan.apply(w, &clean).bytes };
            assert_decoders_agree(
                &bytes,
                &mut memo,
                &mut reference,
                &format!("seed {seed} window {w}"),
            )?;
        }
    }

    /// The three memo-invalidation edges — a width-directory change
    /// (counter magnitude regime switch), a layout-epoch bump (any
    /// layout registration strands every memo), and explicit machine
    /// eviction — must each force clean revalidation: the memoised
    /// decoder keeps agreeing with the always-revalidating reference
    /// across every transition.
    #[test]
    fn width_changes_epoch_bumps_and_eviction_strand_the_memo_cleanly(
        seed in any::<u64>(),
        magnitudes in prop::collection::vec(0u32..6, 8),
        bump_at in 1u64..7,
        evict_at in 1u64..7,
    ) {
        const MACHINES: u64 = 6;
        let mut enc = WireEncoder::with_kind(FrameKind::Planar);
        let mut memo = FrameDecoder::new();
        let mut reference = FrameDecoder::new();
        for (w, &mag) in magnitudes.iter().enumerate() {
            let w = w as u64;
            // Per-window magnitude regime: plane widths jump between
            // 1-, 2-, 4- and 8-byte classes window over window.
            let magnitude = 10u64.pow(mag);
            for m in 0..MACHINES {
                // One machine alternates regime out of phase, so some
                // frames hit the memo while neighbours miss.
                let mag = if m == 1 { 10u64.pow((5 - mag) % 6) } else { magnitude };
                enc.push_sample_set(m, &scaled_set(m.wrapping_add(seed), w, mag)).unwrap();
            }
            if w == bump_at {
                // A brand-new layout registration (an eight-event
                // truncation of the canonical one) bumps the layout
                // epoch and strands every machine's memo at once.
                let novel: Vec<PerfEvent> = IDENTITY[..8].to_vec();
                let mut set = scaled_set(99, w, 1);
                for cpu in &mut set.per_cpu {
                    let pairs = novel.iter().map(|&e| (e, 7u64)).collect();
                    *cpu = CounterSample::new(cpu.cpu(), w, pairs);
                }
                enc.push_sample_set(MACHINES + 1, &set).unwrap();
            }
            let bytes = enc.take_bytes();
            if w == evict_at {
                memo.evict_dir_memo(seed % MACHINES);
            }
            assert_decoders_agree(
                &bytes,
                &mut memo,
                &mut reference,
                &format!("seed {seed} window {w} mag {mag}"),
            )?;
        }
    }
}

/// The decimation × planar chaos regression: adaptive sampling
/// (phase-staggered skipped windows), a mid-run width-directory
/// change, and a window-sequence reset all interact with the
/// identity-directory fast path in one stream — and the fused planar
/// ingest must remain bit-identical to the varint reference leg, row
/// for row, window for window, including the held/reconstructed rows
/// of decimated machines.
#[test]
fn decimated_planar_stream_with_width_change_and_seq_reset_matches_varint() {
    const MACHINES: usize = 8;
    const WINDOWS: u64 = 24;
    /// Window where machine 3's counter magnitudes jump three decades
    /// (every plane width changes; its memo must revalidate).
    const WIDTH_JUMP_AT: u64 = 10;
    /// Window where machine 5's producer reboots (window_seq restarts
    /// from 0 — the ledger re-baselines it as a reset).
    const RESET_AT: u64 = 15;

    let mut planar_enc = WireEncoder::with_kind(FrameKind::Planar);
    let mut varint_enc = WireEncoder::with_kind(FrameKind::Varint);
    // Mixed negotiated decimations: every-window, every-2nd, every-4th.
    for m in 0..MACHINES as u64 {
        let dec = [1u16, 1, 2, 2, 4, 4, 4, 1][m as usize];
        planar_enc.set_decimation(m, dec);
        varint_enc.set_decimation(m, dec);
    }

    let mut planar_state = IngestState::new();
    let mut varint_state = IngestState::new();
    let mut planar_est = FleetEstimator::new(SystemPowerModel::paper());
    let mut varint_est = FleetEstimator::new(SystemPowerModel::paper());
    let mut resets_seen = 0u64;

    for w in 0..WINDOWS {
        for m in 0..MACHINES as u64 {
            let seq = if m == 5 && w >= RESET_AT {
                w - RESET_AT
            } else {
                w
            };
            if !planar_enc.should_send(m, seq) {
                continue;
            }
            let magnitude = if m == 3 && w >= WIDTH_JUMP_AT {
                1_000_000
            } else {
                1_000
            };
            let set = scaled_set(m, seq, magnitude);
            planar_enc.push_sample_set(m, &set).unwrap();
            varint_enc.push_sample_set(m, &set).unwrap();
        }
        let planar_buf = planar_enc.take_bytes();
        let varint_buf = varint_enc.take_bytes();

        let planar_rep =
            ingest_serial_with(&mut planar_state, &planar_buf, MACHINES, &mut planar_est);
        let varint_rep =
            ingest_serial_with(&mut varint_state, &varint_buf, MACHINES, &mut varint_est);

        assert_eq!(
            planar_rep.rows_written, varint_rep.rows_written,
            "window {w}: legs committed different row counts"
        );
        assert_eq!(
            planar_rep.resets_detected, varint_rep.resets_detected,
            "window {w}: legs disagree on sequence resets"
        );
        assert_eq!(
            batch_bits(&planar_est),
            batch_bits(&varint_est),
            "window {w}: planar batch diverged from the varint reference"
        );
        let p: Vec<u64> = planar_est
            .estimate()
            .total()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let v: Vec<u64> = varint_est
            .estimate()
            .total()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(p, v, "window {w}: estimates diverged between formats");
        resets_seen += planar_rep.resets_detected;
    }
    // Machine 5's rebooted counter transmits again (decimation phase)
    // a window after RESET_AT; the regression is the reset going
    // unnoticed while its directory memo serves the fast path.
    assert!(resets_seen >= 1, "the seq reset was never detected");
}
