//! Chaos test: a seeded [`FaultPlan`] batters a multi-window stream
//! while persistent ingest degrades gracefully — every injected fault
//! lands in a pipeline-health counter, machines untouched by recent
//! faults estimate **bit-identically** to a fault-free run, and the
//! whole scenario replays deterministically (serial and sharded alike).

use proptest::prelude::*;
use std::collections::BTreeSet;
use tdp_counters::{CounterSample, CpuId, InterruptSnapshot, PerfEvent, SampleSet};
use tdp_fleet::FleetEstimator;
use tdp_parallel::WorkerPool;
use tdp_wire::{
    ingest_serial, ingest_serial_with, stream_window_with, FaultKind, FaultPlan, FaultedWindow,
    HealthState, IngestState, PipelineHealth, StreamConfig, StreamReport, WireEncoder,
};
use trickledown::SystemPowerModel;

const MACHINES: usize = 24;
const WINDOWS: u64 = 8;
const SEED: u64 = 0x00c0_ffee;

const LAYOUT: [PerfEvent; 9] = [
    PerfEvent::Cycles,
    PerfEvent::HaltedCycles,
    PerfEvent::FetchedUops,
    PerfEvent::L3LoadMisses,
    PerfEvent::BusTransactionsAll,
    PerfEvent::DmaOtherBusTransactions,
    PerfEvent::InterruptsTotal,
    PerfEvent::TimerInterrupts,
    PerfEvent::DiskInterrupts,
];

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// A realistic 4-CPU machine-window with rates inside both the models'
/// operating range and the default `DegradePolicy` sanity bounds.
fn synthetic_set(machine: u64, seq: u64) -> SampleSet {
    let mut rng = machine
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(seq)
        | 1;
    let per_cpu = (0..4)
        .map(|cpu| {
            let counts = LAYOUT
                .iter()
                .map(|&e| {
                    let r = xorshift(&mut rng);
                    let scale: u64 = match e {
                        PerfEvent::Cycles => 2_000_000_000,
                        PerfEvent::HaltedCycles => 900_000_000,
                        PerfEvent::FetchedUops => 2_500_000_000,
                        PerfEvent::L3LoadMisses => 4_000_000,
                        PerfEvent::BusTransactionsAll => 25_000_000,
                        PerfEvent::DmaOtherBusTransactions => 1_500_000,
                        PerfEvent::InterruptsTotal => 6_000,
                        PerfEvent::TimerInterrupts => 2_000,
                        PerfEvent::DiskInterrupts => 900,
                        _ => 10_000,
                    };
                    (e, scale / 2 + r % scale.max(1))
                })
                .collect();
            CounterSample::new(CpuId::new(cpu), seq, counts)
        })
        .collect();
    SampleSet {
        time_ms: (seq + 1) * 1000,
        window_ms: 1000,
        seq,
        per_cpu,
        interrupts: InterruptSnapshot::default(),
    }
}

/// Encodes one steady-state window (layout frames only on window 0,
/// courtesy of the persistent encoder).
fn encode_window(enc: &mut WireEncoder, seq: u64) -> Vec<u8> {
    for m in 0..MACHINES as u64 {
        enc.push_sample_set(m, &synthetic_set(m, seq)).unwrap();
    }
    enc.take_bytes()
}

/// Per-machine estimate bits for the window just evaluated.
fn estimate_bits(est: &mut FleetEstimator) -> Vec<[u64; 4]> {
    let e = est.estimate();
    (0..MACHINES)
        .map(|i| {
            [
                e.memory()[i].to_bits(),
                e.disk()[i].to_bits(),
                e.io()[i].to_bits(),
                e.total()[i].to_bits(),
            ]
        })
        .collect()
}

/// Counter floors implied by a window's injected faults: if any of
/// these fail, a fault degraded the pipeline without being accounted.
fn assert_faults_accounted(w: u64, f: &FaultedWindow, rep: &StreamReport) {
    assert!(
        rep.corrupt_frames >= f.count(FaultKind::BitFlip),
        "window {w}: {} bit flips but only {} corrupt frames",
        f.count(FaultKind::BitFlip),
        rep.corrupt_frames
    );
    let framing = f.count(FaultKind::GarbageInsert) + f.count(FaultKind::TruncateTail);
    assert!(
        rep.resyncs >= framing,
        "window {w}: {framing} framing faults but only {} resyncs",
        rep.resyncs
    );
    assert!(
        rep.rows_quarantined >= f.count(FaultKind::RateSpike),
        "window {w}: {} rate spikes but only {} quarantined",
        f.count(FaultKind::RateSpike),
        rep.rows_quarantined
    );
    // A rewound sequence is detected as a reset the first time; a
    // rewind landing on an already-rewound machine reads as a
    // duplicate, so the two counters jointly cover both fault kinds.
    let seq_faults = f.count(FaultKind::SeqReset) + f.count(FaultKind::DuplicateFrame);
    assert!(
        rep.resets_detected + rep.duplicate_windows >= seq_faults,
        "window {w}: {seq_faults} sequence faults but resets={} dups={}",
        rep.resets_detected,
        rep.duplicate_windows
    );
}

#[test]
fn faulted_stream_degrades_gracefully_and_clean_subset_is_bit_identical() {
    let plan = FaultPlan::new(SEED);
    let pool = WorkerPool::new(4);
    let cfg = StreamConfig {
        ring_capacity: 4,
        chunk_rows: 5,
        ..StreamConfig::default()
    };
    let policy_span = IngestState::new().policy().max_stale_windows;

    let mut clean_enc = WireEncoder::new();
    let mut fault_enc = WireEncoder::new();
    let mut clean_state = IngestState::new();
    let mut serial_state = IngestState::new();
    let mut stream_state = IngestState::new();
    let mut clean_est = FleetEstimator::new(SystemPowerModel::paper());
    let mut serial_est = FleetEstimator::new(SystemPowerModel::paper());
    let mut stream_est = FleetEstimator::new(SystemPowerModel::paper());

    // Machines hit by a fault within the staleness span may hold or
    // re-learn state; everything outside that trailing set must match
    // the fault-free run bit for bit.
    let mut recent_affected: Vec<BTreeSet<u64>> = Vec::new();
    let mut total_injected = 0u64;

    for w in 0..WINDOWS {
        let clean_buf = encode_window(&mut clean_enc, w);
        let fault_src = encode_window(&mut fault_enc, w);
        assert_eq!(clean_buf, fault_src, "encoders must agree on clean bytes");

        // Window 0 is delivered intact (it carries the layouts); every
        // later window is damaged by the plan.
        let (buf, injected) = if w == 0 {
            (fault_src, FaultedWindow::default())
        } else {
            let f = plan.apply(w, &fault_src);
            let bytes = f.bytes.clone();
            (bytes, f)
        };
        total_injected += injected.injected.len() as u64;
        recent_affected.push(injected.affected.clone());

        let clean_rep = ingest_serial_with(&mut clean_state, &clean_buf, MACHINES, &mut clean_est);
        assert!(
            clean_rep.health().is_clean(),
            "window {w}: fault-free stream reported degradation: {}",
            clean_rep.health()
        );
        let clean_bits = estimate_bits(&mut clean_est);

        let serial_rep = ingest_serial_with(&mut serial_state, &buf, MACHINES, &mut serial_est);
        let stream_rep = stream_window_with(
            &mut stream_state,
            &pool,
            &cfg,
            &buf,
            MACHINES,
            &mut stream_est,
        );

        assert_faults_accounted(w, &injected, &serial_rep);
        assert_eq!(
            PipelineHealth::from_report(&serial_rep),
            PipelineHealth::from_report(&stream_rep),
            "window {w}: serial and sharded ingest must degrade identically"
        );
        assert_eq!(serial_rep.rows_written, stream_rep.rows_written);

        // Every machine is either contributing a row or known-stale —
        // nothing simply vanishes.
        let stale = (0..MACHINES as u64)
            .filter(|&m| serial_state.machine_health(m) == Some(HealthState::Stale))
            .count() as u64;
        assert_eq!(
            serial_rep.rows_written + stale,
            MACHINES as u64,
            "window {w}: rows + stale machines must cover the fleet"
        );

        // Clean-subset bit-identity, serial and sharded: machines with
        // no fault in the last `max_stale_windows + 1` windows have
        // been fed exclusively intact fresh frames, so their estimates
        // carry no trace of the chaos elsewhere in the fleet.
        let span = (policy_span + 1) as usize;
        let dirty: BTreeSet<u64> = recent_affected
            .iter()
            .rev()
            .take(span)
            .flatten()
            .copied()
            .collect();
        assert!(
            dirty.len() < MACHINES / 2,
            "window {w}: fault plan dirtied {} of {MACHINES} machines — \
             too few clean machines for the identity check to mean much",
            dirty.len()
        );
        let serial_bits = estimate_bits(&mut serial_est);
        let stream_bits = estimate_bits(&mut stream_est);
        for m in 0..MACHINES as u64 {
            if dirty.contains(&m) {
                continue;
            }
            assert_eq!(
                serial_bits[m as usize], clean_bits[m as usize],
                "window {w}: clean machine {m} diverged under serial faulted ingest"
            );
            assert_eq!(
                stream_bits[m as usize], clean_bits[m as usize],
                "window {w}: clean machine {m} diverged under sharded faulted ingest"
            );
        }
    }
    assert!(
        total_injected >= WINDOWS - 1,
        "plan injected only {total_injected} faults over {WINDOWS} windows"
    );
}

proptest! {
    /// The serial fused path screens health in *batches* — an SoA
    /// [`HealthLedger`] plus one vectorised column sanity scan per
    /// window — while the sharded path walks the per-row ladder, which
    /// is the semantic reference. Across arbitrary seeded fault plans
    /// the two must be indistinguishable: same health-counter block,
    /// same rows delivered, same per-machine ladder states, and
    /// bit-identical estimates, every window.
    #[test]
    fn batched_serial_health_matches_per_row_sharded_reference(seed in any::<u64>()) {
        let plan = FaultPlan::new(seed);
        let pool = WorkerPool::new(3);
        let cfg = StreamConfig {
            ring_capacity: 4,
            chunk_rows: 3,
            ..StreamConfig::default()
        };
        let mut enc = WireEncoder::new();
        let mut serial_state = IngestState::new();
        let mut sharded_state = IngestState::new();
        let mut serial_est = FleetEstimator::new(SystemPowerModel::paper());
        let mut sharded_est = FleetEstimator::new(SystemPowerModel::paper());
        for w in 0..4u64 {
            let clean = encode_window(&mut enc, w);
            // Window 0 carries the layouts intact; every later window
            // is battered by the seed's plan before both paths see it.
            let buf = if w == 0 {
                clean
            } else {
                plan.apply(w, &clean).bytes
            };
            let serial_rep =
                ingest_serial_with(&mut serial_state, &buf, MACHINES, &mut serial_est);
            let sharded_rep = stream_window_with(
                &mut sharded_state,
                &pool,
                &cfg,
                &buf,
                MACHINES,
                &mut sharded_est,
            );
            prop_assert_eq!(
                PipelineHealth::from_report(&serial_rep),
                PipelineHealth::from_report(&sharded_rep),
                "seed {} window {}: health blocks diverged",
                seed,
                w
            );
            prop_assert_eq!(serial_rep.rows_written, sharded_rep.rows_written);
            for m in 0..MACHINES as u64 {
                prop_assert_eq!(
                    serial_state.machine_health(m),
                    sharded_state.machine_health(m),
                    "seed {} window {} machine {}: ladder states diverged",
                    seed,
                    w,
                    m
                );
            }
            prop_assert_eq!(
                estimate_bits(&mut serial_est),
                estimate_bits(&mut sharded_est),
                "seed {} window {}: estimate bits diverged",
                seed,
                w
            );
        }
    }
}

#[test]
fn chaos_run_replays_bit_identically() {
    // The whole point of a *seeded* fault plan: two full runs of the
    // same scenario — same seed, same windows — produce the same
    // reports, the same health states, and the same estimate bits.
    let run = || {
        let plan = FaultPlan::new(SEED);
        let mut enc = WireEncoder::new();
        let mut state = IngestState::new();
        let mut est = FleetEstimator::new(SystemPowerModel::paper());
        let mut reports = Vec::new();
        let mut bits = Vec::new();
        for w in 0..WINDOWS {
            let clean = encode_window(&mut enc, w);
            let buf = if w == 0 {
                clean
            } else {
                plan.apply(w, &clean).bytes
            };
            reports.push(ingest_serial_with(&mut state, &buf, MACHINES, &mut est));
            bits.push(estimate_bits(&mut est));
        }
        let health: Vec<Option<HealthState>> = (0..MACHINES as u64)
            .map(|m| state.machine_health(m))
            .collect();
        (reports, bits, health)
    };
    assert_eq!(run(), run());
}

#[test]
fn sane_but_out_of_calibration_rows_trip_the_prediction_clamp() {
    // The sneaky producer: a frame whose rates pass every DegradePolicy
    // plausibility bound (so it is *not* quarantined) but sit far past
    // the disk model's negative-curvature vertex (~4.8e-9 interrupts
    // per cycle), where the raw Equation-4 quadratic predicts large
    // negative watts. Row-level screening cannot catch this — the
    // model-level clamp must, pinning the prediction at the
    // non-negative floor and counting the intervention.
    let cycles: u64 = 2_000_000_000;
    let per_cpu = (0..4)
        .map(|cpu| {
            let counts = LAYOUT
                .iter()
                .map(|&e| {
                    let v = match e {
                        PerfEvent::Cycles => cycles,
                        PerfEvent::HaltedCycles => cycles / 2,
                        PerfEvent::FetchedUops => cycles,
                        PerfEvent::L3LoadMisses => 2_000_000,
                        PerfEvent::BusTransactionsAll => 20_000_000,
                        PerfEvent::DmaOtherBusTransactions => 1_000_000,
                        // ~1e-5 disk interrupts per cycle: 100× under
                        // the 1e-3 sanity cap, 2000× past the
                        // calibrated vertex.
                        PerfEvent::DiskInterrupts => cycles / 100_000,
                        PerfEvent::InterruptsTotal => cycles / 50_000,
                        PerfEvent::TimerInterrupts => 2_000,
                        _ => 0,
                    };
                    (e, v)
                })
                .collect();
            CounterSample::new(CpuId::new(cpu), 0, counts)
        })
        .collect();
    let sneaky = SampleSet {
        time_ms: 1000,
        window_ms: 1000,
        seq: 0,
        per_cpu,
        interrupts: InterruptSnapshot::default(),
    };
    let mut enc = WireEncoder::new();
    enc.push_sample_set(0, &sneaky).unwrap();
    let wire = enc.finish();

    let mut est = FleetEstimator::new(SystemPowerModel::paper());
    let rep = ingest_serial(&wire, 1, &mut est);
    assert_eq!(rep.rows_written, 1, "the row must pass sanity screening");
    assert_eq!(rep.rows_quarantined, 0);

    let e = est.estimate();
    assert!(
        e.clamped_predictions() > 0,
        "out-of-calibration rates must trip the prediction clamp"
    );
    assert_eq!(
        e.disk()[0],
        0.0,
        "deep past the vertex the raw quadratic is negative; the clamp \
         floors it at zero watts"
    );
    assert!(e.total()[0] >= 0.0);
}
