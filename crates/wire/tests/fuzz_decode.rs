//! Property/fuzz tests for the frame cursor and decoder: arbitrary
//! bytes never panic, the cursor's items exactly partition its input,
//! damaged streams ingest deterministically, and a resync always
//! recovers the next intact frame.

use proptest::prelude::*;
use tdp_counters::{CounterSample, CpuId, InterruptSnapshot, PerfEvent, SampleSet};
use tdp_fleet::FleetEstimator;
use tdp_wire::frame::HEADER_LEN;
use tdp_wire::{ingest_serial, CursorItem, FrameCursor, StreamReport, WireEncoder};
use trickledown::SystemPowerModel;

const LAYOUT: [PerfEvent; 9] = [
    PerfEvent::Cycles,
    PerfEvent::HaltedCycles,
    PerfEvent::FetchedUops,
    PerfEvent::L3LoadMisses,
    PerfEvent::BusTransactionsAll,
    PerfEvent::DmaOtherBusTransactions,
    PerfEvent::InterruptsTotal,
    PerfEvent::TimerInterrupts,
    PerfEvent::DiskInterrupts,
];

/// A plain plausible machine-window (fixed counts in each model's
/// operating range; these tests fuzz the byte stream, not the data).
fn plain_set(seq: u64) -> SampleSet {
    let per_cpu = (0..2)
        .map(|cpu| {
            let counts = LAYOUT
                .iter()
                .map(|&e| {
                    let v: u64 = match e {
                        PerfEvent::Cycles => 2_000_000_000,
                        PerfEvent::HaltedCycles => 800_000_000,
                        PerfEvent::FetchedUops => 2_400_000_000,
                        PerfEvent::L3LoadMisses => 3_000_000,
                        PerfEvent::BusTransactionsAll => 22_000_000,
                        PerfEvent::DmaOtherBusTransactions => 1_200_000,
                        PerfEvent::InterruptsTotal => 5_000,
                        PerfEvent::TimerInterrupts => 2_000,
                        PerfEvent::DiskInterrupts => 800,
                        _ => 0,
                    };
                    (e, v + cpu as u64)
                })
                .collect();
            CounterSample::new(CpuId::new(cpu), seq, counts)
        })
        .collect();
    SampleSet {
        time_ms: (seq + 1) * 1000,
        window_ms: 1000,
        seq,
        per_cpu,
        interrupts: InterruptSnapshot::default(),
    }
}

fn valid_stream(machines: u64) -> Vec<u8> {
    let mut enc = WireEncoder::new();
    for m in 0..machines {
        enc.push_sample_set(m, &plain_set(1)).unwrap();
    }
    enc.finish()
}

/// Walks `buf` with a [`FrameCursor`], asserting the partition
/// invariant: frame extents and resync skips exactly tile the buffer,
/// in order, with no gaps and no overlap. Returns `(frames, resyncs)`.
fn walk_partition(buf: &[u8]) -> Result<(u64, u64), String> {
    let mut pos = 0usize;
    let (mut frames, mut resyncs) = (0u64, 0u64);
    for item in FrameCursor::new(buf) {
        match item {
            CursorItem::Frame { start, header } => {
                if start != pos {
                    return Err(format!("frame at {start}, cursor position {pos}"));
                }
                pos += HEADER_LEN + header.payload_len as usize;
                frames += 1;
            }
            CursorItem::Resync { skipped } => {
                if skipped == 0 {
                    return Err("zero-length resync would not terminate".into());
                }
                pos += skipped;
                resyncs += 1;
            }
        }
        if pos > buf.len() {
            return Err(format!("cursor overran: {pos} > {}", buf.len()));
        }
    }
    if pos != buf.len() {
        return Err(format!("cursor stopped at {pos} of {}", buf.len()));
    }
    Ok((frames, resyncs))
}

fn ingest(buf: &[u8], machines: usize) -> StreamReport {
    let mut est = FleetEstimator::new(SystemPowerModel::paper());
    ingest_serial(buf, machines, &mut est)
}

proptest! {
    /// Arbitrary bytes: the cursor never panics, never loops, and its
    /// items partition the input exactly.
    #[test]
    fn arbitrary_bytes_partition_cleanly(
        buf in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        walk_partition(&buf)?;
        // Full ingest over garbage: no panic, and accounting stays
        // within the input (can't resync more bytes than exist).
        let rep = ingest(&buf, 8);
        prop_assert!(rep.resync_bytes <= buf.len() as u64);
        prop_assert!(rep.rows_written <= 8);
    }

    /// A valid stream cut at an arbitrary point: ingest never panics,
    /// is deterministic (same bytes, same report), and whatever decodes
    /// is a prefix-subset of the fleet.
    #[test]
    fn truncated_streams_ingest_deterministically(
        cut_frac in 0.0f64..1.0,
        machines in 1u64..8,
    ) {
        let full = valid_stream(machines);
        let cut = (cut_frac * full.len() as f64) as usize;
        let buf = &full[..cut.min(full.len())];
        let a = ingest(buf, machines as usize);
        let b = ingest(buf, machines as usize);
        prop_assert_eq!(a, b, "identical bytes must ingest identically");
        prop_assert!(a.rows_written <= machines);
        prop_assert!(a.resync_bytes <= buf.len() as u64);
    }

    /// Arbitrary multi-bit corruption of a valid stream: never a panic,
    /// and counters always account for the whole walk (frames attempted
    /// are bounded by frames present in the pristine stream plus
    /// whatever phantom frames corruption fabricates — all of which end
    /// in a counted outcome, never a silent stall).
    #[test]
    fn corrupted_streams_never_panic(
        flips in prop::collection::vec((any::<usize>(), 0u8..8), 1..24),
        machines in 1u64..6,
    ) {
        let mut buf = valid_stream(machines);
        for &(at, bit) in &flips {
            let i = at % buf.len();
            buf[i] ^= 1 << bit;
        }
        walk_partition(&buf)?;
        let rep = ingest(&buf, machines as usize);
        prop_assert_eq!(rep, ingest(&buf, machines as usize));
    }
}

#[test]
fn resync_recovers_the_next_intact_frame() {
    // machine 0's frames, then a run of junk free of the magic prefix
    // byte, then machine 1's frames (fresh encoder, so its layout is
    // announced after the junk). The decoder must skip the junk in one
    // resync and ingest machine 1 untouched.
    let mut enc0 = WireEncoder::new();
    enc0.push_sample_set(0, &plain_set(1)).unwrap();
    let mut enc1 = WireEncoder::new();
    enc1.push_sample_set(1, &plain_set(1)).unwrap();

    let mut buf = enc0.finish();
    let junk: Vec<u8> = (0..37u8)
        .map(|b| if b == 0x54 { 0x55 } else { b })
        .collect();
    buf.extend_from_slice(&junk);
    buf.extend_from_slice(&enc1.finish());

    let (frames, resyncs) = walk_partition(&buf).unwrap();
    assert_eq!(frames, 4, "layout + sample per machine");
    assert_eq!(resyncs, 1, "the junk run is exactly one resync");

    let rep = ingest(&buf, 2);
    assert_eq!(rep.rows_written, 2, "both machines decode around the junk");
    assert_eq!(rep.resyncs, 1);
    assert_eq!(rep.resync_bytes, junk.len() as u64);
    assert_eq!(rep.corrupt_frames, 0);
}

#[test]
fn mid_frame_cut_before_good_frames_is_skipped_not_fatal() {
    // A stream whose first frame is cut off mid-payload (its tail
    // replaced by magic-free junk) followed by an intact machine: the
    // classic "writer died mid-frame, log rotated, writer resumed".
    let mut enc0 = WireEncoder::new();
    enc0.push_sample_set(0, &plain_set(1)).unwrap();
    let damaged = enc0.finish();
    // Keep the first frame's header plus a few payload bytes, then junk
    // the rest of its extent so the checksum cannot hold.
    let keep = HEADER_LEN + 3;
    let mut buf = damaged[..keep].to_vec();
    buf.extend(std::iter::repeat_n(0x22u8, 20));

    let mut enc1 = WireEncoder::new();
    enc1.push_sample_set(1, &plain_set(1)).unwrap();
    buf.extend_from_slice(&enc1.finish());

    let rep = ingest(&buf, 2);
    assert_eq!(
        rep.rows_written, 1,
        "machine 1 decodes despite the mangled prefix"
    );
    assert!(
        rep.corrupt_frames + rep.resyncs >= 1,
        "the mangled prefix must be detected, got {rep:?}"
    );
}
