//! The frame format: fixed little-endian header, LEB128 varints,
//! zigzag deltas, and a mix-based 64-bit frame checksum.
//!
//! A wire stream is a concatenation of frames. Each frame is a 44-byte
//! header followed by `payload_len` payload bytes:
//!
//! ```text
//! offset  size  field
//!      0     2  magic        0x5754 ("TW" little-endian)
//!      2     1  version      1
//!      3     1  frame type   0 = layout, 1 = sample, 2 = planar sample
//!      4     4  payload_len  bytes following the header
//!      8     8  machine_id
//!     16     8  window_seq   sampling-window sequence number
//!     24     8  layout_hash  tdp_counters::layout_hash of the event list
//!     32     2  cpu_count
//!     34     2  n_events     events per CPU in this layout
//!     36     8  checksum     see [`FrameHeader::expected_checksum`]
//! ```
//!
//! A **layout frame** declares a PMU event layout: its payload is
//! `n_events` varints of stable event indices ([`PerfEvent::index`]),
//! and `layout_hash` is their [`layout_hash_indices`] — a decoder
//! verifies the two agree before trusting either. Layout frames have
//! no CPUs to describe, so their `cpu_count` field carries the
//! machine's negotiated **sampling decimation** instead: `0` or `1`
//! means every window is transmitted, `N > 1` means the machine sends
//! one window in `N` and expects the consumer to hold-reconstruct the
//! rest (capped at [`MAX_DECIMATION`]; the field is checksummed like
//! any other, and legacy producers always wrote `0`). A **sample frame**
//! carries one machine's window of raw counts: `cpu_count × n_events`
//! varints in layout order, CPU 0 raw and every later CPU zigzag
//! delta-encoded against the previous CPU's count of the same event
//! (fleet siblings count nearly alike, so deltas are short).
//!
//! A **planar sample frame** carries the same machine-window in the
//! column-planar fixed-width layout of [`crate::planar`]: a per-event
//! width directory, then raw CPU-0 base counts, then per-event
//! contiguous planes of fixed-width little-endian zigzag deltas. The
//! two sample encodings are interchangeable — a decoder produces
//! bit-identical fleet rows from either — and an encoder picks one per
//! layout epoch via [`FrameKind`].
//!
//! The checksum mixes every header field (except the checksum itself)
//! and every payload word through a chain of bijective steps
//! (`rotate ⊕ mul-odd`), so **any single-bit corruption of a stored
//! frame changes the expected checksum** — each step is invertible in
//! both its state and its input word, so a difference introduced at any
//! step survives to the final state. Magic and version are excluded
//! only because their flips are caught by their own equality checks
//! before the checksum is ever consulted.
//!
//! [`PerfEvent::index`]: tdp_counters::PerfEvent::index
//! [`layout_hash_indices`]: tdp_counters::layout_hash_indices

/// First two header bytes, `"TW"` read as a little-endian `u16`.
pub const MAGIC: u16 = 0x5754;

/// Current (only) format version.
pub const VERSION: u8 = 1;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 44;

/// Upper bound on `n_events` a decoder will size scratch buffers for.
/// Generous versus [`tdp_counters::PerfEvent::count`] (18 today) to
/// leave room for newer producers, tight enough that a corrupt header
/// cannot request an absurd allocation.
pub const MAX_WIRE_EVENTS: usize = 64;

/// Largest per-machine sampling decimation a layout frame may declare
/// (its `cpu_count` field; see the [module docs](self)). Sending one
/// window in 1024 is already far past useful reconstruction; anything
/// larger in the field is treated as a malformed frame.
pub const MAX_DECIMATION: u16 = 1024;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// Declares an event layout (payload: `n_events` event indices).
    Layout,
    /// One machine-window of counts (payload: `cpu_count × n_events`
    /// delta/varint counts).
    Sample,
    /// One machine-window of counts in the column-planar fixed-width
    /// encoding (payload: width directory + bases + delta planes, see
    /// [`crate::planar`]).
    PlanarSample,
}

impl FrameType {
    fn from_wire(b: u8) -> Option<Self> {
        match b {
            0 => Some(FrameType::Layout),
            1 => Some(FrameType::Sample),
            2 => Some(FrameType::PlanarSample),
            _ => None,
        }
    }

    fn to_wire(self) -> u8 {
        match self {
            FrameType::Layout => 0,
            FrameType::Sample => 1,
            FrameType::PlanarSample => 2,
        }
    }

    /// Whether this frame carries a machine-window of counts (either
    /// sample encoding), as opposed to a layout announcement.
    #[must_use]
    pub fn is_sample(self) -> bool {
        matches!(self, FrameType::Sample | FrameType::PlanarSample)
    }
}

/// Which sample-frame encoding an encoder emits; negotiated per layout
/// epoch (the layout frame precedes the first sample of either kind, so
/// a decoder needs no out-of-band signal — the frame-type byte is the
/// negotiation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrameKind {
    /// Column-planar fixed-width planes ([`FrameType::PlanarSample`]).
    /// The default: decode is a branch-free widen + zigzag +
    /// delta-unfold instead of a serial varint walk.
    #[default]
    Planar,
    /// Row-major LEB128 varints ([`FrameType::Sample`]); retained for
    /// compatibility and as the A/B baseline.
    Varint,
}

impl FrameKind {
    /// Stable lower-case label (`"planar"` / `"varint"`), as accepted
    /// by [`parse`](Self::parse) and reported in `BENCH_wire.json`.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FrameKind::Planar => "planar",
            FrameKind::Varint => "varint",
        }
    }

    /// Parses a label back into a kind (`"planar"` / `"varint"`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "planar" => Some(FrameKind::Planar),
            "varint" => Some(FrameKind::Varint),
            _ => None,
        }
    }

    /// The frame type sample frames of this kind carry on the wire.
    #[must_use]
    pub fn sample_frame_type(self) -> FrameType {
        match self {
            FrameKind::Planar => FrameType::PlanarSample,
            FrameKind::Varint => FrameType::Sample,
        }
    }
}

/// A parsed frame header (all fields host-endian).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// What the payload contains.
    pub frame_type: FrameType,
    /// Payload bytes following the header.
    pub payload_len: u32,
    /// Which machine this frame describes.
    pub machine_id: u64,
    /// Sampling-window sequence number.
    pub window_seq: u64,
    /// Identity of the event layout the payload is encoded against.
    pub layout_hash: u64,
    /// CPUs in a sample frame. Layout frames have no CPUs; the field
    /// carries the machine's negotiated sampling decimation there
    /// (0 ⇒ 1, see the [module docs](self)).
    pub cpu_count: u16,
    /// Events per CPU in the layout.
    pub n_events: u16,
    /// Stored frame checksum.
    pub checksum: u64,
}

/// Why a header failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderError {
    /// Fewer than [`HEADER_LEN`] bytes available.
    Truncated,
    /// First two bytes are not [`MAGIC`].
    BadMagic,
    /// Unsupported [`VERSION`].
    BadVersion,
    /// Unknown frame-type byte.
    BadType,
}

impl FrameHeader {
    /// Parses the fixed header at the start of `buf`.
    ///
    /// # Errors
    ///
    /// Returns a [`HeaderError`] when `buf` is too short or the
    /// magic/version/type bytes are wrong. Checksum verification is
    /// separate ([`verify`](Self::verify)) because skip-scanning
    /// decoders read headers without touching payloads.
    pub fn parse(buf: &[u8]) -> Result<Self, HeaderError> {
        if buf.len() < HEADER_LEN {
            return Err(HeaderError::Truncated);
        }
        let u16_at = |o: usize| u16::from_le_bytes([buf[o], buf[o + 1]]);
        let u32_at = |o: usize| u32::from_le_bytes([buf[o], buf[o + 1], buf[o + 2], buf[o + 3]]);
        let u64_at = |o: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&buf[o..o + 8]);
            u64::from_le_bytes(b)
        };
        if u16_at(0) != MAGIC {
            return Err(HeaderError::BadMagic);
        }
        if buf[2] != VERSION {
            return Err(HeaderError::BadVersion);
        }
        let frame_type = FrameType::from_wire(buf[3]).ok_or(HeaderError::BadType)?;
        Ok(Self {
            frame_type,
            payload_len: u32_at(4),
            machine_id: u64_at(8),
            window_seq: u64_at(16),
            layout_hash: u64_at(24),
            cpu_count: u16_at(32),
            n_events: u16_at(34),
            checksum: u64_at(36),
        })
    }

    /// Serialises the header into exactly [`HEADER_LEN`] bytes at the
    /// start of `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than [`HEADER_LEN`].
    pub fn write(&self, out: &mut [u8]) {
        out[0..2].copy_from_slice(&MAGIC.to_le_bytes());
        out[2] = VERSION;
        out[3] = self.frame_type.to_wire();
        out[4..8].copy_from_slice(&self.payload_len.to_le_bytes());
        out[8..16].copy_from_slice(&self.machine_id.to_le_bytes());
        out[16..24].copy_from_slice(&self.window_seq.to_le_bytes());
        out[24..32].copy_from_slice(&self.layout_hash.to_le_bytes());
        out[32..34].copy_from_slice(&self.cpu_count.to_le_bytes());
        out[34..36].copy_from_slice(&self.n_events.to_le_bytes());
        out[36..44].copy_from_slice(&self.checksum.to_le_bytes());
    }

    /// The checksum this header + payload *should* carry.
    ///
    /// One-shot form of [`PayloadChecksum`] (the single definition of
    /// the algorithm): seed from the header, absorb the whole payload,
    /// fold the lanes.
    pub fn expected_checksum(&self, payload: &[u8]) -> u64 {
        PayloadChecksum::new(self).finish(payload)
    }

    /// Whether the stored checksum matches the payload.
    #[must_use]
    pub fn verify(&self, payload: &[u8]) -> bool {
        self.checksum == self.expected_checksum(payload)
    }
}

// Odd multiplier (golden-ratio) and nothing-up-my-sleeve seeds
// (π words). Each step `h = rotl(h) ⊕ w  ·  K` is a bijection
// of `h` for fixed `w` and of `w` for fixed `h`. Payload words
// feed two independent lanes (even words → lane 0, odd → lane
// 1) so the multiply chains overlap instead of serialising;
// a flipped bit perturbs exactly one lane's state, and the
// final cross-lane mix is bijective in each lane, so the
// single-bit detection argument is unchanged.
const K: u64 = 0x9e37_79b9_7f4a_7c15;
const SEED0: u64 = 0x243f_6a88_85a3_08d3;
const SEED1: u64 = 0x1319_8a2e_0370_7344;

#[inline]
fn mix(h: u64, w: u64) -> u64 {
    (h.rotate_left(25) ^ w).wrapping_mul(K)
}

/// Loads up to 8 bytes little-endian, zero-padding a short slice.
/// Total (no panic path): this checksum runs on attacker-controlled
/// frames, so the walk must reject, never abort.
#[inline]
fn le_word(bytes: &[u8]) -> u64 {
    let take = bytes.len().min(8);
    let mut b = [0u8; 8];
    b[..take].copy_from_slice(&bytes[..take]);
    u64::from_le_bytes(b)
}

/// Incremental frame checksum: the same two-lane mix as
/// [`FrameHeader::expected_checksum`] (which delegates here, so the two
/// can never drift), exposed as a streaming absorb so a decoder can
/// fold verification into the pass that is already reading the payload
/// — varint decode — instead of walking the bytes twice.
///
/// Usage: [`new`](Self::new) seeds the lanes from the header fields;
/// [`absorb_to`](Self::absorb_to) may be called any number of times
/// with a monotonically growing watermark and consumes every *complete*
/// 16-byte chunk below it; [`finish`](Self::finish) absorbs whatever
/// remains (including the zero-padded tail words) and folds the lanes.
/// The result is bit-identical to the one-shot form no matter how the
/// absorb calls are spaced — the chunk→lane assignment is a pure
/// function of byte position.
#[derive(Debug, Clone, Copy)]
pub struct PayloadChecksum {
    h: u64,
    lane: u64,
    /// Payload bytes already absorbed (always a multiple of 16 until
    /// `finish`).
    done: usize,
}

impl PayloadChecksum {
    /// Seeds the checksum with every checksummed header field.
    ///
    /// The fields are split across the two lanes — two mixes each —
    /// so seeding latency is two multiply chains deep instead of five:
    /// the decoder pays this per frame, fused into the payload walk.
    /// Every field keeps its own disjoint bit range within exactly one
    /// mix word (the frame type xors into the lane-1 seed, a bijection
    /// of the seed), so a single flipped header bit still perturbs
    /// exactly one lane's state and the single-bit detection argument
    /// is unchanged.
    pub fn new(header: &FrameHeader) -> Self {
        let geom = header.payload_len as u64
            | (header.cpu_count as u64) << 32
            | (header.n_events as u64) << 48;
        let mut h = mix(SEED0, geom);
        let mut lane = mix(
            SEED1 ^ (header.frame_type.to_wire() as u64) << 56,
            header.machine_id,
        );
        h = mix(h, header.window_seq);
        lane = mix(lane, header.layout_hash);
        Self { h, lane, done: 0 }
    }

    /// Absorbs every complete 16-byte payload chunk that lies fully
    /// below `upto` and has not been absorbed yet. Cheap when there is
    /// nothing new to do, so callers may invoke it at whatever cadence
    /// their own walk produces.
    #[inline]
    pub fn absorb_to(&mut self, payload: &[u8], upto: usize) {
        let end = upto.min(payload.len()) & !15;
        while self.done < end {
            // `end` is 16-aligned and ≤ payload.len(), so the chunk is
            // always there; `get` keeps the walk total regardless.
            let Some(c) = payload.get(self.done..self.done + 16) else {
                break;
            };
            self.h = mix(self.h, le_word(&c[..8]));
            self.lane = mix(self.lane, le_word(&c[8..]));
            self.done += 16;
        }
    }

    /// Absorbs the unconsumed remainder of `payload` (the final partial
    /// chunk is zero-padded per 8-byte word: first word → lane 0, rest
    /// → lane 1) and folds the lanes into the frame checksum.
    ///
    /// `payload_len` is already mixed in by [`new`](Self::new), so the
    /// zero padding cannot alias a longer payload.
    pub fn finish(mut self, payload: &[u8]) -> u64 {
        self.absorb_to(payload, payload.len());
        // After the chunked absorb the remainder is < 16 bytes: at most
        // one word per lane, zero-padded. Staging it through one fixed
        // 16-byte buffer keeps the padding semantics of the historical
        // per-word `le_word` calls (same words, same zeros) while
        // paying a single variable-length copy instead of two.
        let rem = payload.get(self.done..).unwrap_or_default();
        let mut tail = [0u8; 16];
        tail[..rem.len()].copy_from_slice(rem);
        if !rem.is_empty() {
            self.h = mix(self.h, u64::from_le_bytes(tail[..8].try_into().unwrap()));
        }
        if rem.len() > 8 {
            self.lane = mix(self.lane, u64::from_le_bytes(tail[8..].try_into().unwrap()));
        }
        mix(self.h, self.lane)
    }
}

// The varint / zigzag codec helpers live in [`crate::varint`] (one
// definition each); re-exported here because the frame format is where
// users historically found them.
pub use crate::varint::{put_uvarint, read_uvarint, unzigzag, zigzag, MAX_VARINT_LEN};

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> FrameHeader {
        FrameHeader {
            frame_type: FrameType::Sample,
            payload_len: 5,
            machine_id: 0x0123_4567_89ab_cdef,
            window_seq: 42,
            layout_hash: 0xdead_beef_cafe_f00d,
            cpu_count: 4,
            n_events: 9,
            checksum: 0,
        }
    }

    #[test]
    fn header_roundtrips() {
        let mut h = header();
        h.checksum = h.expected_checksum(b"hello");
        let mut buf = [0u8; HEADER_LEN];
        h.write(&mut buf);
        assert_eq!(FrameHeader::parse(&buf), Ok(h));
    }

    #[test]
    fn parse_rejects_bad_prefixes() {
        let mut buf = [0u8; HEADER_LEN];
        header().write(&mut buf);
        assert_eq!(FrameHeader::parse(&buf[..10]), Err(HeaderError::Truncated));
        let mut bad = buf;
        bad[0] ^= 1;
        assert_eq!(FrameHeader::parse(&bad), Err(HeaderError::BadMagic));
        let mut bad = buf;
        bad[2] = 9;
        assert_eq!(FrameHeader::parse(&bad), Err(HeaderError::BadVersion));
        let mut bad = buf;
        bad[3] = 7;
        assert_eq!(FrameHeader::parse(&bad), Err(HeaderError::BadType));
        // Wire byte 2 is the planar sample type, not an error.
        let mut planar = buf;
        planar[3] = 2;
        let parsed = FrameHeader::parse(&planar).expect("planar type parses");
        assert_eq!(parsed.frame_type, FrameType::PlanarSample);
    }

    #[test]
    fn frame_kind_labels_roundtrip() {
        for kind in [FrameKind::Planar, FrameKind::Varint] {
            assert_eq!(FrameKind::parse(kind.label()), Some(kind));
            assert!(kind.sample_frame_type().is_sample());
        }
        assert_eq!(FrameKind::parse("csv"), None);
        assert_eq!(FrameKind::default(), FrameKind::Planar);
        assert!(!FrameType::Layout.is_sample());
    }

    #[test]
    fn streaming_checksum_matches_one_shot_at_every_split() {
        let h = header();
        // Lengths that cover: empty, sub-chunk, exact chunk multiples,
        // one- and two-word tails.
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 24, 31, 32, 33, 40, 130] {
            let payload: Vec<u8> = (0..len)
                .map(|i| (i as u8).wrapping_mul(37) ^ 0x5a)
                .collect();
            let want = h.expected_checksum(&payload);
            // Single absorb watermark at every position (including far
            // past the end), then finish.
            for split in 0..=len + 8 {
                let mut ck = PayloadChecksum::new(&h);
                ck.absorb_to(&payload, split);
                assert_eq!(ck.finish(&payload), want, "len {len} split {split}");
            }
            // Many small monotone absorbs, as a varint walk produces.
            let mut ck = PayloadChecksum::new(&h);
            for upto in (0..=len).step_by(3) {
                ck.absorb_to(&payload, upto);
            }
            assert_eq!(ck.finish(&payload), want, "len {len} stepped");
        }
    }

    #[test]
    fn every_single_bit_flip_changes_the_checksum() {
        let h = header();
        let payload = b"payload bytes!";
        let base = h.expected_checksum(payload);
        // Payload bits.
        for byte in 0..payload.len() {
            for bit in 0..8 {
                let mut p = payload.to_vec();
                p[byte] ^= 1 << bit;
                assert_ne!(h.expected_checksum(&p), base, "payload {byte}:{bit}");
            }
        }
        // Checksummed header fields (everything past magic/version,
        // which are equality-checked before the checksum).
        let mut buf = vec![0u8; HEADER_LEN];
        h.write(&mut buf);
        for byte in 3..36 {
            for bit in 0..8 {
                let mut b = buf.clone();
                b[byte] ^= 1 << bit;
                if let Ok(flipped) = FrameHeader::parse(&b) {
                    assert_ne!(
                        flipped.expected_checksum(payload),
                        base,
                        "header {byte}:{bit}"
                    );
                }
            }
        }
    }
}
