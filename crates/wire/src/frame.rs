//! The frame format: fixed little-endian header, LEB128 varints,
//! zigzag deltas, and a mix-based 64-bit frame checksum.
//!
//! A wire stream is a concatenation of frames. Each frame is a 44-byte
//! header followed by `payload_len` payload bytes:
//!
//! ```text
//! offset  size  field
//!      0     2  magic        0x5754 ("TW" little-endian)
//!      2     1  version      1
//!      3     1  frame type   0 = layout, 1 = sample
//!      4     4  payload_len  bytes following the header
//!      8     8  machine_id
//!     16     8  window_seq   sampling-window sequence number
//!     24     8  layout_hash  tdp_counters::layout_hash of the event list
//!     32     2  cpu_count
//!     34     2  n_events     events per CPU in this layout
//!     36     8  checksum     see [`FrameHeader::expected_checksum`]
//! ```
//!
//! A **layout frame** declares a PMU event layout: its payload is
//! `n_events` varints of stable event indices ([`PerfEvent::index`]),
//! and `layout_hash` is their [`layout_hash_indices`] — a decoder
//! verifies the two agree before trusting either. A **sample frame**
//! carries one machine's window of raw counts: `cpu_count × n_events`
//! varints in layout order, CPU 0 raw and every later CPU zigzag
//! delta-encoded against the previous CPU's count of the same event
//! (fleet siblings count nearly alike, so deltas are short).
//!
//! The checksum mixes every header field (except the checksum itself)
//! and every payload word through a chain of bijective steps
//! (`rotate ⊕ mul-odd`), so **any single-bit corruption of a stored
//! frame changes the expected checksum** — each step is invertible in
//! both its state and its input word, so a difference introduced at any
//! step survives to the final state. Magic and version are excluded
//! only because their flips are caught by their own equality checks
//! before the checksum is ever consulted.
//!
//! [`PerfEvent::index`]: tdp_counters::PerfEvent::index
//! [`layout_hash_indices`]: tdp_counters::layout_hash_indices

/// First two header bytes, `"TW"` read as a little-endian `u16`.
pub const MAGIC: u16 = 0x5754;

/// Current (only) format version.
pub const VERSION: u8 = 1;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 44;

/// Upper bound on `n_events` a decoder will size scratch buffers for.
/// Generous versus [`tdp_counters::PerfEvent::count`] (18 today) to
/// leave room for newer producers, tight enough that a corrupt header
/// cannot request an absurd allocation.
pub const MAX_WIRE_EVENTS: usize = 64;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// Declares an event layout (payload: `n_events` event indices).
    Layout,
    /// One machine-window of counts (payload: `cpu_count × n_events`
    /// delta/varint counts).
    Sample,
}

impl FrameType {
    fn from_wire(b: u8) -> Option<Self> {
        match b {
            0 => Some(FrameType::Layout),
            1 => Some(FrameType::Sample),
            _ => None,
        }
    }

    fn to_wire(self) -> u8 {
        match self {
            FrameType::Layout => 0,
            FrameType::Sample => 1,
        }
    }
}

/// A parsed frame header (all fields host-endian).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// What the payload contains.
    pub frame_type: FrameType,
    /// Payload bytes following the header.
    pub payload_len: u32,
    /// Which machine this frame describes.
    pub machine_id: u64,
    /// Sampling-window sequence number.
    pub window_seq: u64,
    /// Identity of the event layout the payload is encoded against.
    pub layout_hash: u64,
    /// CPUs in a sample frame (0 for layout frames).
    pub cpu_count: u16,
    /// Events per CPU in the layout.
    pub n_events: u16,
    /// Stored frame checksum.
    pub checksum: u64,
}

/// Why a header failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderError {
    /// Fewer than [`HEADER_LEN`] bytes available.
    Truncated,
    /// First two bytes are not [`MAGIC`].
    BadMagic,
    /// Unsupported [`VERSION`].
    BadVersion,
    /// Unknown frame-type byte.
    BadType,
}

impl FrameHeader {
    /// Parses the fixed header at the start of `buf`.
    ///
    /// # Errors
    ///
    /// Returns a [`HeaderError`] when `buf` is too short or the
    /// magic/version/type bytes are wrong. Checksum verification is
    /// separate ([`verify`](Self::verify)) because skip-scanning
    /// decoders read headers without touching payloads.
    pub fn parse(buf: &[u8]) -> Result<Self, HeaderError> {
        if buf.len() < HEADER_LEN {
            return Err(HeaderError::Truncated);
        }
        let u16_at = |o: usize| u16::from_le_bytes([buf[o], buf[o + 1]]);
        let u32_at = |o: usize| u32::from_le_bytes([buf[o], buf[o + 1], buf[o + 2], buf[o + 3]]);
        let u64_at = |o: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&buf[o..o + 8]);
            u64::from_le_bytes(b)
        };
        if u16_at(0) != MAGIC {
            return Err(HeaderError::BadMagic);
        }
        if buf[2] != VERSION {
            return Err(HeaderError::BadVersion);
        }
        let frame_type = FrameType::from_wire(buf[3]).ok_or(HeaderError::BadType)?;
        Ok(Self {
            frame_type,
            payload_len: u32_at(4),
            machine_id: u64_at(8),
            window_seq: u64_at(16),
            layout_hash: u64_at(24),
            cpu_count: u16_at(32),
            n_events: u16_at(34),
            checksum: u64_at(36),
        })
    }

    /// Serialises the header into exactly [`HEADER_LEN`] bytes at the
    /// start of `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than [`HEADER_LEN`].
    pub fn write(&self, out: &mut [u8]) {
        out[0..2].copy_from_slice(&MAGIC.to_le_bytes());
        out[2] = VERSION;
        out[3] = self.frame_type.to_wire();
        out[4..8].copy_from_slice(&self.payload_len.to_le_bytes());
        out[8..16].copy_from_slice(&self.machine_id.to_le_bytes());
        out[16..24].copy_from_slice(&self.window_seq.to_le_bytes());
        out[24..32].copy_from_slice(&self.layout_hash.to_le_bytes());
        out[32..34].copy_from_slice(&self.cpu_count.to_le_bytes());
        out[34..36].copy_from_slice(&self.n_events.to_le_bytes());
        out[36..44].copy_from_slice(&self.checksum.to_le_bytes());
    }

    /// The checksum this header + payload *should* carry.
    pub fn expected_checksum(&self, payload: &[u8]) -> u64 {
        // Odd multiplier (golden-ratio) and nothing-up-my-sleeve seeds
        // (π words). Each step `h = rotl(h) ⊕ w  ·  K` is a bijection
        // of `h` for fixed `w` and of `w` for fixed `h`. Payload words
        // feed two independent lanes (even words → lane 0, odd → lane
        // 1) so the multiply chains overlap instead of serialising;
        // a flipped bit perturbs exactly one lane's state, and the
        // final cross-lane mix is bijective in each lane, so the
        // single-bit detection argument is unchanged.
        const K: u64 = 0x9e37_79b9_7f4a_7c15;
        const SEED0: u64 = 0x243f_6a88_85a3_08d3;
        const SEED1: u64 = 0x1319_8a2e_0370_7344;
        let mix = |h: u64, w: u64| (h.rotate_left(25) ^ w).wrapping_mul(K);
        let mut h = SEED0;
        h = mix(
            h,
            (self.frame_type.to_wire() as u64) << 32 | self.payload_len as u64,
        );
        h = mix(h, self.machine_id);
        h = mix(h, self.window_seq);
        h = mix(h, self.layout_hash);
        h = mix(h, (self.cpu_count as u64) << 16 | self.n_events as u64);
        let mut lane = SEED1;
        let mut chunks = payload.chunks_exact(16);
        for c in chunks.by_ref() {
            let a = u64::from_le_bytes(c[..8].try_into().expect("8 bytes"));
            let b = u64::from_le_bytes(c[8..].try_into().expect("8 bytes"));
            h = mix(h, a);
            lane = mix(lane, b);
        }
        let rem = chunks.remainder();
        let mut i = 0;
        while i < rem.len() {
            let take = rem.len().min(i + 8);
            let mut b = [0u8; 8];
            b[..take - i].copy_from_slice(&rem[i..take]);
            let w = u64::from_le_bytes(b);
            if i == 0 {
                h = mix(h, w);
            } else {
                lane = mix(lane, w);
            }
            i = take;
        }
        // payload_len is already mixed in, so the zero padding of the
        // final partial word cannot alias a longer payload, and the
        // word → lane assignment is a pure function of position.
        mix(h, lane)
    }

    /// Whether the stored checksum matches the payload.
    #[must_use]
    pub fn verify(&self, payload: &[u8]) -> bool {
        self.checksum == self.expected_checksum(payload)
    }
}

// The varint / zigzag codec helpers live in [`crate::varint`] (one
// definition each); re-exported here because the frame format is where
// users historically found them.
pub use crate::varint::{put_uvarint, read_uvarint, unzigzag, zigzag, MAX_VARINT_LEN};

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> FrameHeader {
        FrameHeader {
            frame_type: FrameType::Sample,
            payload_len: 5,
            machine_id: 0x0123_4567_89ab_cdef,
            window_seq: 42,
            layout_hash: 0xdead_beef_cafe_f00d,
            cpu_count: 4,
            n_events: 9,
            checksum: 0,
        }
    }

    #[test]
    fn header_roundtrips() {
        let mut h = header();
        h.checksum = h.expected_checksum(b"hello");
        let mut buf = [0u8; HEADER_LEN];
        h.write(&mut buf);
        assert_eq!(FrameHeader::parse(&buf), Ok(h));
    }

    #[test]
    fn parse_rejects_bad_prefixes() {
        let mut buf = [0u8; HEADER_LEN];
        header().write(&mut buf);
        assert_eq!(FrameHeader::parse(&buf[..10]), Err(HeaderError::Truncated));
        let mut bad = buf;
        bad[0] ^= 1;
        assert_eq!(FrameHeader::parse(&bad), Err(HeaderError::BadMagic));
        let mut bad = buf;
        bad[2] = 9;
        assert_eq!(FrameHeader::parse(&bad), Err(HeaderError::BadVersion));
        let mut bad = buf;
        bad[3] = 7;
        assert_eq!(FrameHeader::parse(&bad), Err(HeaderError::BadType));
    }

    #[test]
    fn every_single_bit_flip_changes_the_checksum() {
        let h = header();
        let payload = b"payload bytes!";
        let base = h.expected_checksum(payload);
        // Payload bits.
        for byte in 0..payload.len() {
            for bit in 0..8 {
                let mut p = payload.to_vec();
                p[byte] ^= 1 << bit;
                assert_ne!(h.expected_checksum(&p), base, "payload {byte}:{bit}");
            }
        }
        // Checksummed header fields (everything past magic/version,
        // which are equality-checked before the checksum).
        let mut buf = vec![0u8; HEADER_LEN];
        h.write(&mut buf);
        for byte in 3..36 {
            for bit in 0..8 {
                let mut b = buf.clone();
                b[byte] ^= 1 << bit;
                if let Ok(flipped) = FrameHeader::parse(&b) {
                    assert_ne!(
                        flipped.expected_checksum(payload),
                        base,
                        "header {byte}:{bit}"
                    );
                }
            }
        }
    }
}
