//! Frame encoding: [`SampleSet`]s → wire bytes.
//!
//! [`WireEncoder`] is the stateful producer side: it tracks the last
//! layout hash announced per machine and interleaves a layout frame
//! whenever a machine's PMU programming changes (including the first
//! time it is seen), so a stream is always self-describing, and emits
//! sample frames in its negotiated [`FrameKind`] (column-planar by
//! default, row-major varint for legacy consumers and A/B baselines).
//! The stateless [`encode_layout_frame`] / [`encode_sample_frame`] /
//! [`encode_planar_sample_frame`] building blocks are public for tests
//! and custom producers.

use crate::frame::{
    put_uvarint, zigzag, FrameHeader, FrameKind, FrameType, HEADER_LEN, MAX_DECIMATION,
    MAX_WIRE_EVENTS,
};
use std::collections::HashMap;
use tdp_counters::{layout_hash, PerfEvent, SampleSet};

/// Why a sample set could not be encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// CPUs within one set disagree on event list or order; a frame
    /// carries exactly one layout for all its CPUs.
    MixedLayouts,
    /// More events per CPU than [`MAX_WIRE_EVENTS`] (or more CPUs than
    /// `u16::MAX`) — outside the format's bounds.
    OutOfBounds,
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::MixedLayouts => {
                write!(f, "CPUs in one sample set must share one event layout")
            }
            EncodeError::OutOfBounds => write!(f, "layout exceeds wire format bounds"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// Reserves header space, runs `payload` to append the payload, then
/// backfills the header (with checksum) over the reservation.
fn with_frame(out: &mut Vec<u8>, mut header: FrameHeader, payload: impl FnOnce(&mut Vec<u8>)) {
    let start = out.len();
    out.resize(start + HEADER_LEN, 0);
    payload(out);
    let payload_len = out.len() - start - HEADER_LEN;
    header.payload_len = payload_len as u32;
    header.checksum = header.expected_checksum(&out[start + HEADER_LEN..]);
    let (head, _) = out[start..].split_at_mut(HEADER_LEN);
    header.write(head);
}

/// Appends one layout frame declaring `events` for `machine_id`.
///
/// # Errors
///
/// [`EncodeError::OutOfBounds`] if `events` exceeds
/// [`MAX_WIRE_EVENTS`].
pub fn encode_layout_frame(
    out: &mut Vec<u8>,
    machine_id: u64,
    window_seq: u64,
    events: &[PerfEvent],
) -> Result<(), EncodeError> {
    encode_layout_frame_with_decimation(out, machine_id, window_seq, events, 1)
}

/// [`encode_layout_frame`] announcing a sampling decimation alongside
/// the layout: the header's (otherwise unused) `cpu_count` field tells
/// the consumer this machine will send one sample frame every
/// `decimation` windows, phase-staggered, and expects held
/// reconstruction in between. `decimation ≤ 1` writes the legacy `0`,
/// so an every-window stream is byte-identical to one produced before
/// the field existed.
///
/// # Errors
///
/// [`EncodeError::OutOfBounds`] if `events` exceeds
/// [`MAX_WIRE_EVENTS`] or `decimation` exceeds [`MAX_DECIMATION`].
pub fn encode_layout_frame_with_decimation(
    out: &mut Vec<u8>,
    machine_id: u64,
    window_seq: u64,
    events: &[PerfEvent],
    decimation: u16,
) -> Result<(), EncodeError> {
    if events.len() > MAX_WIRE_EVENTS || decimation > MAX_DECIMATION {
        return Err(EncodeError::OutOfBounds);
    }
    let header = FrameHeader {
        frame_type: FrameType::Layout,
        payload_len: 0,
        machine_id,
        window_seq,
        layout_hash: layout_hash(events),
        cpu_count: if decimation <= 1 { 0 } else { decimation },
        n_events: events.len() as u16,
        checksum: 0,
    };
    with_frame(out, header, |buf| {
        for &e in events {
            put_uvarint(buf, e.index() as u64);
        }
    });
    Ok(())
}

/// Appends one sample frame for `machine_id`, encoding every CPU's
/// counts against `events` (the layout all CPUs of the set share).
///
/// CPU 0's counts are raw varints; each later CPU stores the zigzag
/// delta against the previous CPU's count of the same event.
///
/// # Errors
///
/// [`EncodeError::MixedLayouts`] if any CPU's counter layout differs
/// from the first CPU's; [`EncodeError::OutOfBounds`] if the layout or
/// CPU count exceeds the format's bounds.
pub fn encode_sample_frame(
    out: &mut Vec<u8>,
    machine_id: u64,
    set: &SampleSet,
) -> Result<(), EncodeError> {
    let first = validate_sample_geometry(set)?;
    let header = sample_header(FrameType::Sample, machine_id, set, first);
    with_frame(out, header, |buf| {
        for (k, cpu) in set.per_cpu.iter().enumerate() {
            for (e, &(_, count)) in cpu.counts().iter().enumerate() {
                if k == 0 {
                    put_uvarint(buf, count);
                } else {
                    let prev = set.per_cpu[k - 1].counts()[e].1;
                    put_uvarint(buf, zigzag(count.wrapping_sub(prev) as i64));
                }
            }
        }
    });
    Ok(())
}

/// Appends one column-planar sample frame for `machine_id` — the same
/// machine-window [`encode_sample_frame`] would emit, in the
/// fixed-width plane encoding of [`crate::planar`]. A decoder
/// reconstructs bit-identical counts from either frame.
///
/// # Errors
///
/// Identical to [`encode_sample_frame`]:
/// [`EncodeError::MixedLayouts`] / [`EncodeError::OutOfBounds`].
pub fn encode_planar_sample_frame(
    out: &mut Vec<u8>,
    machine_id: u64,
    set: &SampleSet,
) -> Result<(), EncodeError> {
    let first = validate_sample_geometry(set)?;
    let header = sample_header(FrameType::PlanarSample, machine_id, set, first);
    with_frame(out, header, |buf| crate::planar::encode_payload(buf, set));
    Ok(())
}

/// The geometry checks both sample encoders share: uniform per-CPU
/// layouts within the format's bounds. Returns the first CPU's counts
/// (the layout all CPUs follow).
fn validate_sample_geometry(set: &SampleSet) -> Result<&[(PerfEvent, u64)], EncodeError> {
    let first: &[(PerfEvent, u64)] = set.per_cpu.first().map_or(&[], |c| c.counts());
    if first.len() > MAX_WIRE_EVENTS || set.per_cpu.len() > u16::MAX as usize {
        return Err(EncodeError::OutOfBounds);
    }
    for cpu in &set.per_cpu {
        let counts = cpu.counts();
        if counts.len() != first.len() || counts.iter().zip(first).any(|(a, b)| a.0 != b.0) {
            return Err(EncodeError::MixedLayouts);
        }
    }
    Ok(first)
}

fn sample_header(
    frame_type: FrameType,
    machine_id: u64,
    set: &SampleSet,
    first: &[(PerfEvent, u64)],
) -> FrameHeader {
    FrameHeader {
        frame_type,
        payload_len: 0,
        machine_id,
        window_seq: set.seq,
        layout_hash: layout_hash_of(first),
        cpu_count: set.per_cpu.len() as u16,
        n_events: first.len() as u16,
        checksum: 0,
    }
}

fn layout_hash_of(pairs: &[(PerfEvent, u64)]) -> u64 {
    tdp_counters::layout_hash_indices(pairs.iter().map(|p| p.0.index() as u64))
}

/// Stateful stream encoder: one byte buffer, automatic layout frames.
///
/// # Example
///
/// ```
/// use tdp_simsys::{Machine, MachineConfig};
/// use tdp_wire::WireEncoder;
///
/// let mut machine = Machine::new(MachineConfig::default());
/// for _ in 0..1000 {
///     machine.tick();
/// }
/// let set = machine.read_counters();
///
/// let mut enc = WireEncoder::new();
/// enc.push_sample_set(7, &set).unwrap(); // layout frame + sample frame
/// enc.push_sample_set(7, &set).unwrap(); // sample frame only
/// assert!(!enc.bytes().is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct WireEncoder {
    buf: Vec<u8>,
    /// Per machine: the layout hash and decimation last *announced* on
    /// the wire. A change in either re-emits the layout frame.
    last_layout: HashMap<u64, (u64, u16)>,
    /// Per machine: the decimation the control loop *wants* (1 when
    /// unset). Announced lazily by the next `push_sample_set`.
    decimation: HashMap<u64, u16>,
    /// Reusable scratch for the pushed set's event layout — one
    /// steady-state `push_sample_set` must not heap-allocate.
    events: Vec<PerfEvent>,
    kind: FrameKind,
}

impl WireEncoder {
    /// An empty encoder emitting the default sample encoding
    /// ([`FrameKind::Planar`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty encoder emitting `kind` sample frames
    /// ([`FrameKind::Varint`] keeps the legacy row-major varint
    /// encoding, e.g. for A/B comparison or old consumers).
    pub fn with_kind(kind: FrameKind) -> Self {
        Self {
            kind,
            ..Self::default()
        }
    }

    /// The sample encoding this encoder emits.
    pub fn frame_kind(&self) -> FrameKind {
        self.kind
    }

    /// Switches the sample encoding for frames pushed from now on. The
    /// format is negotiated in-band — a decoder reads the frame-type
    /// byte — so mid-stream switches are safe; producers conventionally
    /// switch at layout-epoch boundaries.
    pub fn set_frame_kind(&mut self, kind: FrameKind) {
        self.kind = kind;
    }

    /// Sets the sampling decimation the control loop wants for
    /// `machine_id` (clamped to `1..=`[`MAX_DECIMATION`]). The change
    /// takes effect on the machine's next `push_sample_set`, which
    /// re-announces the (unchanged) layout with the new decimation —
    /// the consumer learns about it in-band, on the frame before the
    /// first frame it applies to.
    pub fn set_decimation(&mut self, machine_id: u64, decimation: u16) {
        self.decimation
            .insert(machine_id, decimation.clamp(1, MAX_DECIMATION));
    }

    /// The decimation currently wanted for `machine_id` (1 if never
    /// set: sample every window).
    pub fn decimation(&self, machine_id: u64) -> u16 {
        self.decimation.get(&machine_id).copied().unwrap_or(1)
    }

    /// Whether `machine_id` should transmit its sample for
    /// `window_seq` under its current decimation: every window at
    /// decimation 1, else one window in `dec`, phase-staggered by
    /// machine id so a homogeneous fleet spreads its transmissions
    /// across windows instead of bursting every `dec`-th one.
    pub fn should_send(&self, machine_id: u64, window_seq: u64) -> bool {
        let dec = self.decimation(machine_id) as u64;
        dec <= 1 || window_seq % dec == machine_id % dec
    }

    /// Appends one machine-window, preceding it with a layout frame if
    /// this machine's event layout is new or changed — or if its
    /// negotiated decimation changed since last announced.
    ///
    /// # Errors
    ///
    /// Propagates [`EncodeError`] (nothing is appended on error).
    pub fn push_sample_set(&mut self, machine_id: u64, set: &SampleSet) -> Result<(), EncodeError> {
        self.events.clear();
        if let Some(c) = set.per_cpu.first() {
            self.events.extend(c.counts().iter().map(|p| p.0));
        }
        let hash = layout_hash(&self.events);
        let dec = self.decimation(machine_id);
        let rollback = self.buf.len();
        if self.last_layout.get(&machine_id) != Some(&(hash, dec)) {
            encode_layout_frame_with_decimation(
                &mut self.buf,
                machine_id,
                set.seq,
                &self.events,
                dec,
            )?;
        }
        let encoded = match self.kind {
            FrameKind::Planar => encode_planar_sample_frame(&mut self.buf, machine_id, set),
            FrameKind::Varint => encode_sample_frame(&mut self.buf, machine_id, set),
        };
        match encoded {
            Ok(()) => {
                self.last_layout.insert(machine_id, (hash, dec));
                Ok(())
            }
            Err(e) => {
                self.buf.truncate(rollback);
                Err(e)
            }
        }
    }

    /// The encoded stream so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Drains the encoded bytes, keeping the per-machine layout
    /// memory — the natural per-window flush for a long-lived
    /// producer: layout frames are re-emitted only when a machine's
    /// PMU programming actually changes, not once per window.
    pub fn take_bytes(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }

    /// Consumes the encoder, returning the encoded stream.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}
