//! Graceful degradation policy for streaming ingest.
//!
//! A fleet stream is a hostile input: frames arrive bit-flipped,
//! truncated, duplicated, reordered, or not at all, and a rebooted
//! machine restarts its window sequence from zero. The codec layer
//! already *detects* most of this (checksums, resync scanning); this
//! module decides what the pipeline does about it, so that damage to
//! one machine's telemetry never contaminates another's estimate:
//!
//! * every machine carries a [`HealthState`] that ingest updates from
//!   observed evidence (sequence regressions, insane rates, silence);
//! * rows whose rates fail the [`DegradePolicy`] sanity bounds are
//!   **quarantined** — counted, never fed to the estimator;
//! * a machine that goes silent is **held** at its last good row for a
//!   bounded number of windows ([`DegradePolicy::max_stale_windows`]),
//!   then declared stale and dropped from the window entirely;
//! * model-level protection (prediction clamping to the calibrated
//!   validity range — see [`trickledown::clamp_watts`]) catches what
//!   row-level sanity bounds cannot: rates that are individually
//!   plausible but outside what the quadratics were fitted on, the
//!   paper's own Equation-2 "fails under extreme cases" caveat
//!   (§4.2.2).
//!
//! The counters all of this produces are summarised by
//! [`PipelineHealth`].

use crate::stream::StreamReport;
use tdp_fleet::{col, COLUMNS};

/// Where a machine stands in the degradation ladder.
///
/// Transitions (applied by streaming ingest, per machine, per window):
///
/// ```text
/// Healthy ──insane row──────────► Quarantined
/// Healthy ──seq regression──────► Suspect
/// Healthy ──no frame, held──────► Suspect
/// Suspect/Quarantined ──good row► Healthy
/// any ──held past staleness─────► Stale
/// Stale ──good row──────────────► Healthy
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthState {
    /// Last observed window decoded cleanly and passed sanity bounds.
    #[default]
    Healthy,
    /// Evidence of trouble that didn't invalidate data: a window
    /// sequence regression (counter reset / reboot), or the machine's
    /// row was held from a previous window.
    Suspect,
    /// The machine's latest decoded row failed the sanity bounds and
    /// was withheld from the estimator.
    Quarantined,
    /// No acceptable row for longer than the staleness bound; the
    /// machine no longer contributes to fleet estimates.
    Stale,
}

/// Sanity bounds and hold limits for streaming ingest.
///
/// The rate caps are *physical plausibility* screens, deliberately far
/// above anything a real machine sustains (compare: the simulated
/// fleet peaks around 3 misses/kilocycle, 9 000 bus tx/megacycle,
/// 0.03 DMA/cycle, and interrupt rates near 1e-8/cycle) but far below
/// the garbage a misattributed or malicious payload produces. Rows are
/// machine-aggregated sums over CPUs, so every per-CPU cap is scaled
/// by the row's CPU count before comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradePolicy {
    /// Max fetched uops per cycle, per CPU (architectural width is
    /// single digits).
    pub max_upc: f64,
    /// Max L3 load misses per **kilo**cycle, per CPU.
    pub max_l3_per_kilocycle: f64,
    /// Max bus transactions per **mega**cycle, per CPU.
    pub max_bus_per_megacycle: f64,
    /// Max DMA accesses per cycle, per CPU.
    pub max_dma_per_cycle: f64,
    /// Max interrupts per cycle, per CPU (covers disk and device
    /// interrupt rates; even a 1 kHz tick at 10 MHz is 1e-4).
    pub max_interrupts_per_cycle: f64,
    /// Max CPUs one machine may claim.
    pub max_cpus: f64,
    /// How many consecutive windows a silent machine is carried at its
    /// last good row before being declared [`HealthState::Stale`].
    pub max_stale_windows: u64,
}

impl Default for DegradePolicy {
    fn default() -> Self {
        Self {
            max_upc: 16.0,
            max_l3_per_kilocycle: 50.0,
            max_bus_per_megacycle: 1e5,
            max_dma_per_cycle: 0.2,
            max_interrupts_per_cycle: 1e-3,
            max_cpus: 1024.0,
            max_stale_windows: 4,
        }
    }
}

impl DegradePolicy {
    /// Whether a decoded sample row is physically plausible under this
    /// policy. A `false` verdict quarantines the row: it checksummed
    /// (the bytes arrived as sent) but describes a machine that cannot
    /// exist, so the *producer* is lying or broken, not the wire.
    pub fn row_is_sane(&self, row: &[f64; COLUMNS]) -> bool {
        if !row.iter().all(|v| v.is_finite() && *v >= 0.0) {
            return false;
        }
        let n = row[col::NUM_CPUS];
        if !(1.0..=self.max_cpus).contains(&n) {
            return false;
        }
        // Aggregates are per-CPU sums, each term individually capped,
        // so the sums are bounded by n·cap and the squared-rate sums
        // by n·cap².
        let within = |sum: f64, sq: f64, cap: f64| sum <= cap * n && sq <= cap * cap * n;
        row[col::ACTIVE] <= n
            && within(row[col::UPC], 0.0, self.max_upc)
            && within(row[col::L3], row[col::L3_SQ], self.max_l3_per_kilocycle)
            && within(row[col::BUS], row[col::BUS_SQ], self.max_bus_per_megacycle)
            && within(row[col::DMA], row[col::DMA_SQ], self.max_dma_per_cycle)
            && within(
                row[col::DISK_INT],
                row[col::DISK_INT_SQ],
                self.max_interrupts_per_cycle,
            )
            && within(
                row[col::DEV_INT],
                row[col::DEV_INT_SQ],
                self.max_interrupts_per_cycle,
            )
    }
}

/// Per-machine ingest health, tracked by the owning decoder shard.
#[derive(Debug, Clone, Default)]
pub(crate) struct MachineHealth {
    /// Current position on the degradation ladder.
    pub state: HealthState,
    /// Last accepted window sequence number (duplicate / regression
    /// detection).
    pub last_seq: Option<u64>,
    /// Last row that decoded cleanly and passed sanity bounds — the
    /// value held for bounded staleness when the machine goes silent.
    pub last_good: Option<[f64; COLUMNS]>,
    /// Ingest epoch `last_good` was captured in.
    pub last_good_epoch: u64,
    /// Ingest epoch this machine last contributed a row (fresh or
    /// held).
    pub emitted_epoch: u64,
    /// Whether this silence has already been counted in
    /// `machines_stale` (one count per outage, not per window).
    pub counted_stale: bool,
}

/// The pipeline-health counter block: every way the stream degraded
/// this window, condensed from a [`StreamReport`].
///
/// Invariant the chaos tests pin: every injected fault lands in at
/// least one of these counters — nothing fails silently.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineHealth {
    /// Frames rejected by checksum or structure.
    pub corrupt_frames: u64,
    /// Framing losses that forced a scan for the next boundary.
    pub resyncs: u64,
    /// Window-sequence regressions (machine reboot / counter reset).
    pub resets_detected: u64,
    /// Frames re-delivering an already-accepted window.
    pub duplicate_windows: u64,
    /// Decoded rows withheld as physically implausible.
    pub rows_quarantined: u64,
    /// Rows emitted from a machine's last good window while it was
    /// silent or quarantined.
    pub rows_held: u64,
    /// Machines dropped after exceeding the staleness bound.
    pub machines_stale: u64,
    /// Rows shed under backpressure (lossy mode only).
    pub dropped_rows: u64,
}

impl PipelineHealth {
    /// Condenses a window's [`StreamReport`] to the health block.
    pub fn from_report(r: &StreamReport) -> Self {
        Self {
            corrupt_frames: r.corrupt_frames,
            resyncs: r.resyncs,
            resets_detected: r.resets_detected,
            duplicate_windows: r.duplicate_windows,
            rows_quarantined: r.rows_quarantined,
            rows_held: r.rows_held,
            machines_stale: r.machines_stale,
            dropped_rows: r.dropped_rows,
        }
    }

    /// Whether the window showed no degradation at all.
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }
}

impl std::fmt::Display for PipelineHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "corrupt={} resyncs={} resets={} dups={} quarantined={} held={} stale={} dropped={}",
            self.corrupt_frames,
            self.resyncs,
            self.resets_detected,
            self.duplicate_windows,
            self.rows_quarantined,
            self.rows_held,
            self.machines_stale,
            self.dropped_rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sane_row() -> [f64; COLUMNS] {
        let mut row = [0.0; COLUMNS];
        row[col::NUM_CPUS] = 4.0;
        row[col::ACTIVE] = 2.5;
        row[col::UPC] = 6.0;
        row[col::L3] = 8.0;
        row[col::L3_SQ] = 20.0;
        row[col::BUS] = 20_000.0;
        row[col::BUS_SQ] = 1.2e8;
        row[col::DMA] = 0.1;
        row[col::DMA_SQ] = 0.004;
        row[col::DISK_INT] = 2e-8;
        row[col::DISK_INT_SQ] = 4e-16;
        row[col::DEV_INT] = 3e-8;
        row[col::DEV_INT_SQ] = 9e-16;
        row
    }

    #[test]
    fn default_policy_accepts_plausible_rows() {
        assert!(DegradePolicy::default().row_is_sane(&sane_row()));
    }

    #[test]
    fn each_bound_rejects_independently() {
        let p = DegradePolicy::default();
        let cases: [(usize, f64); 9] = [
            (col::NUM_CPUS, 0.0),
            (col::NUM_CPUS, 4096.0),
            (col::ACTIVE, 4.5),
            (col::UPC, 100.0),
            (col::L3, 1000.0),
            (col::BUS, 4.0e6),
            (col::DMA, 4.0),
            (col::DISK_INT, 1.0),
            (col::DEV_INT, 1.0),
        ];
        for (i, v) in cases {
            let mut row = sane_row();
            row[i] = v;
            assert!(!p.row_is_sane(&row), "col {i} = {v} must be insane");
        }
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            let mut row = sane_row();
            row[col::UPC] = bad;
            assert!(!p.row_is_sane(&row), "{bad} must be insane");
        }
        // Squared-rate columns are bounded too (a consistent sum with
        // an impossible square means the payload lies).
        let mut row = sane_row();
        row[col::L3_SQ] = 1e9;
        assert!(!p.row_is_sane(&row));
    }

    #[test]
    fn health_block_display_and_cleanliness() {
        let clean = PipelineHealth::default();
        assert!(clean.is_clean());
        let mut dirty = clean;
        dirty.rows_quarantined = 3;
        assert!(!dirty.is_clean());
        let s = dirty.to_string();
        assert!(s.contains("quarantined=3"), "{s}");
    }
}
