//! Graceful degradation policy for streaming ingest.
//!
//! A fleet stream is a hostile input: frames arrive bit-flipped,
//! truncated, duplicated, reordered, or not at all, and a rebooted
//! machine restarts its window sequence from zero. The codec layer
//! already *detects* most of this (checksums, resync scanning); this
//! module decides what the pipeline does about it, so that damage to
//! one machine's telemetry never contaminates another's estimate:
//!
//! * every machine carries a [`HealthState`] that ingest updates from
//!   observed evidence (sequence regressions, insane rates, silence);
//! * rows whose rates fail the [`DegradePolicy`] sanity bounds are
//!   **quarantined** — counted, never fed to the estimator;
//! * a machine that goes silent is **held** at its last good row for a
//!   bounded number of windows ([`DegradePolicy::max_stale_windows`]),
//!   then declared stale and dropped from the window entirely;
//! * model-level protection (prediction clamping to the calibrated
//!   validity range — see [`trickledown::clamp_watts`]) catches what
//!   row-level sanity bounds cannot: rates that are individually
//!   plausible but outside what the quadratics were fitted on, the
//!   paper's own Equation-2 "fails under extreme cases" caveat
//!   (§4.2.2).
//!
//! The counters all of this produces are summarised by
//! [`PipelineHealth`].

use crate::stream::StreamReport;
use tdp_fleet::{col, COLUMNS};
use tdp_simd::{mask_in_range, mask_nonneg_le_scaled, Dispatch};

/// Where a machine stands in the degradation ladder.
///
/// Transitions (applied by streaming ingest, per machine, per window):
///
/// ```text
/// Healthy ──insane row──────────► Quarantined
/// Healthy ──seq regression──────► Suspect
/// Healthy ──no frame, held──────► Suspect
/// Suspect/Quarantined ──good row► Healthy
/// any ──held past staleness─────► Stale
/// Stale ──good row──────────────► Healthy
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthState {
    /// Last observed window decoded cleanly and passed sanity bounds.
    #[default]
    Healthy,
    /// Evidence of trouble that didn't invalidate data: a window
    /// sequence regression (counter reset / reboot), or the machine's
    /// row was held from a previous window.
    Suspect,
    /// The machine's latest decoded row failed the sanity bounds and
    /// was withheld from the estimator.
    Quarantined,
    /// No acceptable row for longer than the staleness bound; the
    /// machine no longer contributes to fleet estimates.
    Stale,
}

/// Sanity bounds and hold limits for streaming ingest.
///
/// The rate caps are *physical plausibility* screens, deliberately far
/// above anything a real machine sustains (compare: the simulated
/// fleet peaks around 3 misses/kilocycle, 9 000 bus tx/megacycle,
/// 0.03 DMA/cycle, and interrupt rates near 1e-8/cycle) but far below
/// the garbage a misattributed or malicious payload produces. Rows are
/// machine-aggregated sums over CPUs, so every per-CPU cap is scaled
/// by the row's CPU count before comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradePolicy {
    /// Max fetched uops per cycle, per CPU (architectural width is
    /// single digits).
    pub max_upc: f64,
    /// Max L3 load misses per **kilo**cycle, per CPU.
    pub max_l3_per_kilocycle: f64,
    /// Max bus transactions per **mega**cycle, per CPU.
    pub max_bus_per_megacycle: f64,
    /// Max DMA accesses per cycle, per CPU.
    pub max_dma_per_cycle: f64,
    /// Max interrupts per cycle, per CPU (covers disk and device
    /// interrupt rates; even a 1 kHz tick at 10 MHz is 1e-4).
    pub max_interrupts_per_cycle: f64,
    /// Max CPUs one machine may claim.
    pub max_cpus: f64,
    /// How many consecutive windows a silent machine is carried at its
    /// last good row before being declared [`HealthState::Stale`].
    pub max_stale_windows: u64,
}

impl Default for DegradePolicy {
    fn default() -> Self {
        Self {
            max_upc: 16.0,
            max_l3_per_kilocycle: 50.0,
            max_bus_per_megacycle: 1e5,
            max_dma_per_cycle: 0.2,
            max_interrupts_per_cycle: 1e-3,
            max_cpus: 1024.0,
            max_stale_windows: 4,
        }
    }
}

impl DegradePolicy {
    /// Whether a decoded sample row is physically plausible under this
    /// policy. A `false` verdict quarantines the row: it checksummed
    /// (the bytes arrived as sent) but describes a machine that cannot
    /// exist, so the *producer* is lying or broken, not the wire.
    pub fn row_is_sane(&self, row: &[f64; COLUMNS]) -> bool {
        if !row.iter().all(|v| v.is_finite() && *v >= 0.0) {
            return false;
        }
        let n = row[col::NUM_CPUS];
        if !(1.0..=self.max_cpus).contains(&n) {
            return false;
        }
        // Aggregates are per-CPU sums, each term individually capped,
        // so the sums are bounded by n·cap and the squared-rate sums
        // by n·cap².
        let within = |sum: f64, sq: f64, cap: f64| sum <= cap * n && sq <= cap * cap * n;
        row[col::ACTIVE] <= n
            && within(row[col::UPC], 0.0, self.max_upc)
            && within(row[col::L3], row[col::L3_SQ], self.max_l3_per_kilocycle)
            && within(row[col::BUS], row[col::BUS_SQ], self.max_bus_per_megacycle)
            && within(row[col::DMA], row[col::DMA_SQ], self.max_dma_per_cycle)
            && within(
                row[col::DISK_INT],
                row[col::DISK_INT_SQ],
                self.max_interrupts_per_cycle,
            )
            && within(
                row[col::DEV_INT],
                row[col::DEV_INT_SQ],
                self.max_interrupts_per_cycle,
            )
    }

    /// The cap each column's sanity pass scales by the row's CPU count,
    /// ordered as the batched mask applies them (every column except
    /// `NUM_CPUS`, which takes the range check instead). Squared-rate
    /// columns use `cap·cap`, associated exactly as
    /// [`row_is_sane`](Self::row_is_sane)'s `cap * cap * n`.
    fn column_caps(&self) -> [(usize, f64); COLUMNS - 1] {
        let l3 = self.max_l3_per_kilocycle;
        let bus = self.max_bus_per_megacycle;
        let dma = self.max_dma_per_cycle;
        let int = self.max_interrupts_per_cycle;
        [
            (col::ACTIVE, 1.0),
            (col::UPC, self.max_upc),
            (col::L3, l3),
            (col::L3_SQ, l3 * l3),
            (col::BUS, bus),
            (col::BUS_SQ, bus * bus),
            (col::DMA, dma),
            (col::DMA_SQ, dma * dma),
            (col::DISK_INT, int),
            (col::DISK_INT_SQ, int * int),
            (col::DEV_INT, int),
            (col::DEV_INT_SQ, int * int),
        ]
    }

    /// Batched form of [`row_is_sane`](Self::row_is_sane): evaluates
    /// the sanity verdict for *every* row of a window's columns in
    /// thirteen AND-accumulating column passes
    /// ([`tdp_simd::mask_in_range`] on the CPU-count column,
    /// [`tdp_simd::mask_nonneg_le_scaled`] on the other twelve),
    /// leaving `mask[i] != 0` ⇔ `row_is_sane(row i)`.
    ///
    /// Bit-equivalence with the per-row form (which remains the
    /// semantic reference) holds because the verdict is a pure
    /// conjunction: the explicit finiteness screen is implied by the
    /// cap passes once the CPU count passes its range check — every cap
    /// is finite, so `cap·n` is finite, and a NaN/∞/negative value
    /// fails its own `0 ≤ v ≤ cap·n` — and each comparison (including
    /// the `cap·cap·n` association for squared columns) is written
    /// identically in both forms. Pinned per-row-vs-mask by tests here
    /// and across seeded fault plans by the chaos property suite.
    pub(crate) fn sane_mask(&self, d: Dispatch, cols: &[&mut [f64]; COLUMNS], mask: &mut Vec<u8>) {
        self.sane_mask_batch(d, std::array::from_fn(|i| &*cols[i]), mask);
    }

    /// The batched sanity scan over shared column slices — the exact
    /// pass the fused serial ingest runs once per window. Public so
    /// benchmarks can time the health stage in isolation; `mask[i] != 0`
    /// ⇔ [`row_is_sane`](Self::row_is_sane) on row `i`.
    pub fn sane_mask_batch(&self, d: Dispatch, cols: [&[f64]; COLUMNS], mask: &mut Vec<u8>) {
        let ncpus = cols[col::NUM_CPUS];
        mask.clear();
        mask.resize(ncpus.len(), 1);
        mask_in_range(d, ncpus, 1.0, self.max_cpus, mask);
        for (c, cap) in self.column_caps() {
            mask_nonneg_le_scaled(d, cols[c], cap, ncpus, mask);
        }
    }
}

/// What sequence bookkeeping concluded about one frame's window
/// sequence (see [`HealthLedger::note_seq`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SeqNote {
    /// Re-delivery of the machine's already-accepted window — skip the
    /// row, the first delivery already decided this window.
    Duplicate,
    /// The sequence went backwards (reboot / counter reset): accept the
    /// row but re-baseline the machine as [`HealthState::Suspect`].
    Reset,
    /// A new window sequence, accepted normally.
    Fresh,
}

/// What the hold / staleness pass decided for one silent machine (see
/// [`HealthLedger::hold`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Hold {
    /// The machine is silent *by protocol* — still within its
    /// negotiated sampling decimation of its last transmitted window —
    /// so its last good row is reconstructed with no health downgrade.
    Reconstructed([f64; COLUMNS]),
    /// Carry the machine at its last good row for this window.
    Held([f64; COLUMNS]),
    /// The machine just crossed the staleness bound — count it in
    /// `machines_stale` (once per outage).
    NewlyStale,
    /// Still stale from an already-counted outage.
    AlreadyStale,
}

/// Column-major (SoA) per-machine health ledger for one decoder shard.
///
/// Replaces a vector of per-machine structs: the hold / staleness pass
/// and the batched clean-window commit each touch one *field* across
/// all machines, so every field lives in its own dense vector indexed
/// by machine id, and the last good rows live column-major like
/// [`tdp_fleet::SampleBatch`]. The ladder semantics are exactly the
/// per-row transitions documented on [`HealthState`] — the chaos
/// property suite pins them against seeded fault plans, serial vs
/// sharded.
#[derive(Debug, Default)]
pub(crate) struct HealthLedger {
    /// Degradation-ladder position per machine.
    state: Vec<HealthState>,
    /// Whether the machine ever had a frame accepted for sequence
    /// bookkeeping (a dense slot never decoded into stays `false`).
    seen: Vec<bool>,
    /// Last accepted window sequence (meaningful only when `seen`).
    last_seq: Vec<u64>,
    /// Whether `last_good` holds a real row for the machine.
    has_last_good: Vec<bool>,
    /// Ingest epoch the last good row was captured in.
    last_good_epoch: Vec<u64>,
    /// Ingest epoch the machine last contributed a row (fresh or held).
    emitted_epoch: Vec<u64>,
    /// Whether the current outage was already counted in
    /// `machines_stale` (one count per outage, not per window).
    counted_stale: Vec<bool>,
    /// Negotiated sampling decimation per machine (1 = every window),
    /// learned from the machine's layout frames. Windows of silence
    /// shorter than this are reconstruction, not degradation.
    decimation: Vec<u16>,
    /// Last row that decoded cleanly and passed sanity bounds — the
    /// value held for bounded staleness when a machine goes silent.
    last_good: [Vec<f64>; COLUMNS],
}

impl HealthLedger {
    /// Grows the ledger to cover machines `0..n` (never shrinks; new
    /// slots start unseen and Healthy).
    pub(crate) fn ensure(&mut self, n: usize) {
        if self.state.len() >= n {
            return;
        }
        self.state.resize(n, HealthState::Healthy);
        self.seen.resize(n, false);
        self.last_seq.resize(n, 0);
        self.has_last_good.resize(n, false);
        self.last_good_epoch.resize(n, 0);
        self.emitted_epoch.resize(n, 0);
        self.counted_stale.resize(n, false);
        self.decimation.resize(n, 1);
        for c in &mut self.last_good {
            c.resize(n, 0.0);
        }
    }

    /// Records machine `m`'s negotiated sampling decimation (from its
    /// layout frame; values are already normalised ≥ 1 by the decoder).
    pub(crate) fn set_decimation(&mut self, m: usize, decimation: u16) {
        self.decimation[m] = decimation.max(1);
    }

    /// Machines the ledger has slots for.
    pub(crate) fn len(&self) -> usize {
        self.state.len()
    }

    /// Whether machine `m` ever had a frame accepted (false for dense
    /// slots that only exist because a higher id grew the ledger).
    pub(crate) fn seen(&self, m: usize) -> bool {
        self.seen.get(m).copied().unwrap_or(false)
    }

    /// Machine `m`'s current ladder position.
    pub(crate) fn state(&self, m: usize) -> HealthState {
        self.state[m]
    }

    /// Sequence bookkeeping for one in-range frame: duplicate skip,
    /// reset detection, and the `last_seq` update, in the ladder's
    /// order (duplicates are judged against the *previous* sequence,
    /// before it re-baselines).
    pub(crate) fn note_seq(&mut self, m: usize, seq: u64) -> SeqNote {
        if self.seen[m] {
            let last = self.last_seq[m];
            if last == seq {
                // A machine already past the staleness bound cannot be
                // re-delivering a window this outage accepted — it
                // delivered nothing. Equal sequences from a Stale
                // machine mean a rebooted producer resuming where its
                // counter left off (the wire bench's warmup seq is one
                // such replay), so re-baseline it as a reset instead of
                // locking it out as a duplicate forever — and without
                // re-counting the same outage in `machines_stale`.
                if self.state[m] == HealthState::Stale {
                    return SeqNote::Reset;
                }
                return SeqNote::Duplicate;
            }
            self.last_seq[m] = seq;
            if seq < last {
                return SeqNote::Reset;
            }
        } else {
            self.seen[m] = true;
            self.last_seq[m] = seq;
        }
        SeqNote::Fresh
    }

    /// Marks machine `m`'s latest row as withheld by the sanity bounds.
    pub(crate) fn quarantine(&mut self, m: usize) {
        self.state[m] = HealthState::Quarantined;
    }

    /// Shared tail of every good-row commit: flags, epochs and ladder
    /// position (the row itself was already stored by the caller).
    fn mark_good(&mut self, m: usize, epoch: u64, reset: bool) {
        self.has_last_good[m] = true;
        self.last_good_epoch[m] = epoch;
        self.emitted_epoch[m] = epoch;
        self.counted_stale[m] = false;
        self.state[m] = if reset {
            HealthState::Suspect
        } else {
            HealthState::Healthy
        };
    }

    /// Commits a fresh sane row delivered as a row array (the sharded
    /// path's shape).
    pub(crate) fn commit_row(&mut self, m: usize, epoch: u64, row: &[f64; COLUMNS], reset: bool) {
        for (c, v) in self.last_good.iter_mut().zip(row) {
            c[m] = *v;
        }
        self.mark_good(m, epoch, reset);
    }

    /// Commits a fresh sane row already sitting in the batch columns at
    /// index `m` (the serial fused path's shape).
    pub(crate) fn commit_from_cols(
        &mut self,
        m: usize,
        epoch: u64,
        cols: &[&mut [f64]; COLUMNS],
        reset: bool,
    ) {
        for (c, src) in self.last_good.iter_mut().zip(cols) {
            c[m] = src[m];
        }
        self.mark_good(m, epoch, reset);
    }

    /// Copies machine `m`'s last good row back into the batch columns —
    /// undoes a quarantined row that overwrote an already-emitted one.
    pub(crate) fn restore_into(&self, m: usize, cols: &mut [&mut [f64]; COLUMNS]) {
        for (src, c) in self.last_good.iter().zip(cols.iter_mut()) {
            c[m] = src[m];
        }
    }

    /// Whether machine `m` already contributed a row (fresh or held)
    /// this epoch.
    pub(crate) fn emitted_this(&self, m: usize, epoch: u64) -> bool {
        self.emitted_epoch[m] == epoch
    }

    /// The hold / staleness decision for a machine that contributed
    /// nothing this window, in three tiers anchored at the machine's
    /// negotiated decimation `dec` (windows since its last good row):
    ///
    /// * `since < dec` — silence is the sampling protocol itself;
    ///   reconstruct the last good row with no health downgrade;
    /// * `since ≤ dec − 1 + max_stale` — the machine has missed a
    ///   window it owed; carry it as Suspect (the legacy hold);
    /// * beyond that — declare it stale.
    ///
    /// At `dec = 1` the first tier is unreachable (a machine with a
    /// good row *this* epoch never reaches `hold`), so the ladder
    /// reduces exactly to the historical every-window behaviour.
    pub(crate) fn hold(&mut self, m: usize, epoch: u64, max_stale: u64) -> Hold {
        if self.has_last_good[m] {
            let since = epoch - self.last_good_epoch[m];
            let dec = self.decimation[m] as u64;
            if since < dec {
                self.emitted_epoch[m] = epoch;
                let mut row = [0.0; COLUMNS];
                for (v, c) in row.iter_mut().zip(&self.last_good) {
                    *v = c[m];
                }
                return Hold::Reconstructed(row);
            }
            if since <= dec - 1 + max_stale {
                self.emitted_epoch[m] = epoch;
                if self.state[m] == HealthState::Healthy {
                    self.state[m] = HealthState::Suspect;
                }
                let mut row = [0.0; COLUMNS];
                for (v, c) in row.iter_mut().zip(&self.last_good) {
                    *v = c[m];
                }
                return Hold::Held(row);
            }
        }
        self.state[m] = HealthState::Stale;
        if self.counted_stale[m] {
            Hold::AlreadyStale
        } else {
            self.counted_stale[m] = true;
            Hold::NewlyStale
        }
    }

    /// Bulk commit for a perfectly clean window: machines `0..n` each
    /// delivered exactly one fresh sane row (already in `cols`) with no
    /// sequence resets, so every per-machine field takes the same value
    /// and the last good rows are straight column memcpys. Equivalent
    /// to `n` [`commit_from_cols`](Self::commit_from_cols) calls with
    /// `reset = false`.
    pub(crate) fn commit_all(&mut self, epoch: u64, cols: &[&mut [f64]; COLUMNS], n: usize) {
        for (dst, src) in self.last_good.iter_mut().zip(cols) {
            dst[..n].copy_from_slice(&src[..n]);
        }
        self.has_last_good[..n].fill(true);
        self.last_good_epoch[..n].fill(epoch);
        self.emitted_epoch[..n].fill(epoch);
        self.counted_stale[..n].fill(false);
        self.state[..n].fill(HealthState::Healthy);
    }
}

/// The pipeline-health counter block: every way the stream degraded
/// this window, condensed from a [`StreamReport`].
///
/// Invariant the chaos tests pin: every injected fault lands in at
/// least one of these counters — nothing fails silently.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineHealth {
    /// Frames rejected by checksum or structure.
    pub corrupt_frames: u64,
    /// Framing losses that forced a scan for the next boundary.
    pub resyncs: u64,
    /// Window-sequence regressions (machine reboot / counter reset).
    pub resets_detected: u64,
    /// Frames re-delivering an already-accepted window.
    pub duplicate_windows: u64,
    /// Decoded rows withheld as physically implausible.
    pub rows_quarantined: u64,
    /// Rows emitted from a machine's last good window while it was
    /// silent or quarantined.
    pub rows_held: u64,
    /// Machines dropped after exceeding the staleness bound.
    pub machines_stale: u64,
    /// Rows shed under backpressure (lossy mode only).
    pub dropped_rows: u64,
}

impl PipelineHealth {
    /// Condenses a window's [`StreamReport`] to the health block.
    pub fn from_report(r: &StreamReport) -> Self {
        Self {
            corrupt_frames: r.corrupt_frames,
            resyncs: r.resyncs,
            resets_detected: r.resets_detected,
            duplicate_windows: r.duplicate_windows,
            rows_quarantined: r.rows_quarantined,
            rows_held: r.rows_held,
            machines_stale: r.machines_stale,
            dropped_rows: r.dropped_rows,
        }
    }

    /// Whether the window showed no degradation at all.
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }
}

impl std::fmt::Display for PipelineHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "corrupt={} resyncs={} resets={} dups={} quarantined={} held={} stale={} dropped={}",
            self.corrupt_frames,
            self.resyncs,
            self.resets_detected,
            self.duplicate_windows,
            self.rows_quarantined,
            self.rows_held,
            self.machines_stale,
            self.dropped_rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sane_row() -> [f64; COLUMNS] {
        let mut row = [0.0; COLUMNS];
        row[col::NUM_CPUS] = 4.0;
        row[col::ACTIVE] = 2.5;
        row[col::UPC] = 6.0;
        row[col::L3] = 8.0;
        row[col::L3_SQ] = 20.0;
        row[col::BUS] = 20_000.0;
        row[col::BUS_SQ] = 1.2e8;
        row[col::DMA] = 0.1;
        row[col::DMA_SQ] = 0.004;
        row[col::DISK_INT] = 2e-8;
        row[col::DISK_INT_SQ] = 4e-16;
        row[col::DEV_INT] = 3e-8;
        row[col::DEV_INT_SQ] = 9e-16;
        row
    }

    #[test]
    fn default_policy_accepts_plausible_rows() {
        assert!(DegradePolicy::default().row_is_sane(&sane_row()));
    }

    #[test]
    fn each_bound_rejects_independently() {
        let p = DegradePolicy::default();
        let cases: [(usize, f64); 9] = [
            (col::NUM_CPUS, 0.0),
            (col::NUM_CPUS, 4096.0),
            (col::ACTIVE, 4.5),
            (col::UPC, 100.0),
            (col::L3, 1000.0),
            (col::BUS, 4.0e6),
            (col::DMA, 4.0),
            (col::DISK_INT, 1.0),
            (col::DEV_INT, 1.0),
        ];
        for (i, v) in cases {
            let mut row = sane_row();
            row[i] = v;
            assert!(!p.row_is_sane(&row), "col {i} = {v} must be insane");
        }
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            let mut row = sane_row();
            row[col::UPC] = bad;
            assert!(!p.row_is_sane(&row), "{bad} must be insane");
        }
        // Squared-rate columns are bounded too (a consistent sum with
        // an impossible square means the payload lies).
        let mut row = sane_row();
        row[col::L3_SQ] = 1e9;
        assert!(!p.row_is_sane(&row));
    }

    /// The batched column mask is the per-row verdict, bit for bit, on
    /// every adversarial row the per-row tests use — under both
    /// dispatch flavours.
    #[test]
    fn sane_mask_is_bit_identical_to_row_is_sane() {
        let p = DegradePolicy::default();
        let mut rows: Vec<[f64; COLUMNS]> = vec![sane_row()];
        for c in 0..COLUMNS {
            for v in [
                f64::NAN,
                f64::INFINITY,
                f64::NEG_INFINITY,
                -1.0,
                -0.0,
                0.0,
                1.0,
                4.0,
                1e30,
                5e-4,
            ] {
                let mut row = sane_row();
                row[c] = v;
                rows.push(row);
            }
        }
        // Boundary rows: every cap exactly met (sane) and just over.
        let mut at_cap = [0.0; COLUMNS];
        at_cap[col::NUM_CPUS] = p.max_cpus;
        let n = p.max_cpus;
        at_cap[col::ACTIVE] = n;
        at_cap[col::UPC] = p.max_upc * n;
        at_cap[col::L3] = p.max_l3_per_kilocycle * n;
        at_cap[col::L3_SQ] = p.max_l3_per_kilocycle * p.max_l3_per_kilocycle * n;
        at_cap[col::BUS] = p.max_bus_per_megacycle * n;
        at_cap[col::BUS_SQ] = p.max_bus_per_megacycle * p.max_bus_per_megacycle * n;
        at_cap[col::DMA] = p.max_dma_per_cycle * n;
        at_cap[col::DMA_SQ] = p.max_dma_per_cycle * p.max_dma_per_cycle * n;
        at_cap[col::DISK_INT] = p.max_interrupts_per_cycle * n;
        at_cap[col::DISK_INT_SQ] = p.max_interrupts_per_cycle * p.max_interrupts_per_cycle * n;
        at_cap[col::DEV_INT] = at_cap[col::DISK_INT];
        at_cap[col::DEV_INT_SQ] = at_cap[col::DISK_INT_SQ];
        rows.push(at_cap);
        for c in 0..COLUMNS {
            let mut row = at_cap;
            row[c] = at_cap[c] * (1.0 + 1e-9) + f64::MIN_POSITIVE;
            rows.push(row);
        }

        let mut colv: [Vec<f64>; COLUMNS] = std::array::from_fn(|_| vec![0.0; rows.len()]);
        for (i, row) in rows.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                colv[c][i] = *v;
            }
        }
        let mut it = colv.iter_mut();
        let cols: [&mut [f64]; COLUMNS] =
            std::array::from_fn(|_| it.next().expect("COLUMNS slices").as_mut_slice());

        let mut mask = Vec::new();
        for d in [Dispatch::Scalar, Dispatch::active()] {
            p.sane_mask(d, &cols, &mut mask);
            assert_eq!(mask.len(), rows.len());
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(
                    mask[i] != 0,
                    p.row_is_sane(row),
                    "row {i} ({row:?}) disagrees under {d:?}"
                );
            }
        }
    }

    #[test]
    fn health_block_display_and_cleanliness() {
        let clean = PipelineHealth::default();
        assert!(clean.is_clean());
        let mut dirty = clean;
        dirty.rows_quarantined = 3;
        assert!(!dirty.is_clean());
        let s = dirty.to_string();
        assert!(s.contains("quarantined=3"), "{s}");
    }
}
