//! Deterministic fault injection for wire streams.
//!
//! A [`FaultPlan`] wraps the bytes a [`WireEncoder`](crate::WireEncoder)
//! produced for one window and returns a damaged copy: bit flips,
//! dropped/duplicated/reordered frames, truncated tails, inserted
//! garbage, spiked counter payloads and window-sequence resets. Every
//! choice is drawn from a [splitmix64] generator keyed on
//! `(seed, window)`, so a given seed replays the identical fault
//! schedule on every run — chaos tests and `repro --faults SEED` are
//! reproducible bit for bit.
//!
//! Each fault kind is engineered to damage **only its target**:
//!
//! * [`BitFlip`](FaultKind::BitFlip) touches byte 8 onward of a frame
//!   (never magic/version/type/length), so framing survives and the
//!   checksum — which detects every single-bit flip — rejects exactly
//!   one frame;
//! * [`GarbageInsert`](FaultKind::GarbageInsert) bytes exclude the
//!   first magic byte, so the decoder resynchronises at precisely the
//!   next real frame;
//! * [`TruncateTail`](FaultKind::TruncateTail) cuts into the stream's
//!   final frame only.
//!
//! The returned [`FaultedWindow`] lists what was injected and which
//! machines can no longer be expected to match a fault-free run
//! ([`affected`](FaultedWindow::affected)) — the complement is the
//! clean subset whose estimates must stay **bit-identical**, which is
//! exactly what the chaos integration test asserts.
//!
//! [splitmix64]: https://prng.di.unimi.it/splitmix64.c

use crate::decode::{CursorItem, FrameCursor};
use crate::frame::{FrameHeader, FrameType, HEADER_LEN};
use std::collections::BTreeSet;

/// One way a stream can be damaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip one bit in a frame (header byte ≥ 8 or payload): the frame
    /// checksums wrong and is rejected; framing is untouched.
    BitFlip,
    /// Remove one frame entirely: its machine falls silent this
    /// window.
    DropFrame,
    /// Replace a sample payload with an all-ones counter pattern
    /// (every event = 1, cycles = 1): the frame checksums *correctly*
    /// but describes impossible rates, exercising quarantine.
    RateSpike,
    /// Rewrite `window_seq` to 0 (checksum recomputed): a machine
    /// reboot / counter reset as seen on the wire.
    SeqReset,
    /// Deliver one frame twice back to back.
    DuplicateFrame,
    /// Insert non-frame bytes at a frame boundary, forcing a resync
    /// scan.
    GarbageInsert,
    /// Swap two adjacent frames of different machines (per-machine
    /// order is preserved — provably benign).
    ReorderFrames,
    /// Cut the stream partway through its final frame.
    TruncateTail,
}

/// One fault actually applied to a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// What was done.
    pub kind: FaultKind,
    /// The machine whose frame was targeted, when the fault targets a
    /// frame ([`GarbageInsert`](FaultKind::GarbageInsert) targets a
    /// boundary; [`ReorderFrames`](FaultKind::ReorderFrames) reports
    /// the first of the swapped pair).
    pub machine: Option<u64>,
}

/// A damaged copy of one window's wire bytes, with full provenance.
#[derive(Debug, Clone, Default)]
pub struct FaultedWindow {
    /// The damaged stream.
    pub bytes: Vec<u8>,
    /// Every fault applied, in application order.
    pub injected: Vec<InjectedFault>,
    /// Machines whose rows this window may now differ from a
    /// fault-free run (fresh row lost, withheld, or replaced). The
    /// complement is the clean subset the chaos tests hold to
    /// bit-identity.
    pub affected: BTreeSet<u64>,
}

impl FaultedWindow {
    /// How many injected faults were of `kind`.
    pub fn count(&self, kind: FaultKind) -> u64 {
        self.injected.iter().filter(|f| f.kind == kind).count() as u64
    }
}

/// A seeded, replayable fault schedule. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
}

/// splitmix64: tiny, statistically solid, and stateless per step.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One frame (or pass-through byte run) of the window being damaged.
struct Seg {
    bytes: Vec<u8>,
    header: Option<FrameHeader>,
    dropped: bool,
    duplicated: bool,
    /// Bytes to cut from the end of this segment (tail truncation).
    cut: usize,
}

impl FaultPlan {
    /// A plan keyed on `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The seed this plan replays.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Damages one window's clean wire bytes. Deterministic in
    /// `(seed, window)`; 1–3 faults per window, each aimed at a
    /// distinct frame.
    pub fn apply(&self, window: u64, clean: &[u8]) -> FaultedWindow {
        let mut rng = self
            .seed
            .wrapping_add(window.wrapping_mul(0xa076_1d64_78bd_642f));
        // Decompose the clean stream into frames (resync runs in a
        // *clean* stream would be an encoder bug; passed through).
        let mut segs: Vec<Seg> = Vec::new();
        let mut pos = 0usize;
        for item in FrameCursor::new(clean) {
            match item {
                CursorItem::Frame { start, header } => {
                    let end = start + HEADER_LEN + header.payload_len as usize;
                    segs.push(Seg {
                        bytes: clean[start..end].to_vec(),
                        header: Some(header),
                        dropped: false,
                        duplicated: false,
                        cut: 0,
                    });
                    pos = end;
                }
                CursorItem::Resync { skipped } => {
                    segs.push(Seg {
                        bytes: clean[pos..pos + skipped].to_vec(),
                        header: None,
                        dropped: false,
                        duplicated: false,
                        cut: 0,
                    });
                    pos += skipped;
                }
            }
        }

        let mut out = FaultedWindow::default();
        if segs.is_empty() {
            out.bytes = clean.to_vec();
            return out;
        }

        const KINDS: [FaultKind; 8] = [
            FaultKind::BitFlip,
            FaultKind::DropFrame,
            FaultKind::RateSpike,
            FaultKind::SeqReset,
            FaultKind::DuplicateFrame,
            FaultKind::GarbageInsert,
            FaultKind::ReorderFrames,
            FaultKind::TruncateTail,
        ];
        let n_faults = 1 + (splitmix64(&mut rng) % 3) as usize;
        let mut targets: BTreeSet<usize> = BTreeSet::new();
        // boundary b = "before segment b"; one garbage run per
        // boundary keeps each run a distinct resync event.
        let mut garbage: Vec<(usize, Vec<u8>)> = Vec::new();

        // Sample frames are the only sensible targets for frame-level
        // faults (layout frames are shared infrastructure).
        let pick_sample = |rng: &mut u64, targets: &BTreeSet<usize>, segs: &[Seg]| {
            let candidates: Vec<usize> = segs
                .iter()
                .enumerate()
                .filter(|(i, s)| {
                    !targets.contains(i) && s.header.is_some_and(|h| h.frame_type.is_sample())
                })
                .map(|(i, _)| i)
                .collect();
            if candidates.is_empty() {
                None
            } else {
                Some(candidates[(splitmix64(rng) % candidates.len() as u64) as usize])
            }
        };

        for _ in 0..n_faults {
            let kind = KINDS[(splitmix64(&mut rng) % KINDS.len() as u64) as usize];
            match kind {
                FaultKind::BitFlip => {
                    let Some(i) = pick_sample(&mut rng, &targets, &segs) else {
                        continue;
                    };
                    let seg = &mut segs[i];
                    // Byte 8 onward: past magic/version/type/length,
                    // so framing survives; the checksum catches every
                    // single-bit flip of what remains.
                    let span = seg.bytes.len() - 8;
                    let byte = 8 + (splitmix64(&mut rng) % span as u64) as usize;
                    let bit = (splitmix64(&mut rng) % 8) as u8;
                    seg.bytes[byte] ^= 1 << bit;
                    let machine = seg.header.map(|h| h.machine_id);
                    targets.insert(i);
                    out.affected.extend(machine);
                    out.injected.push(InjectedFault { kind, machine });
                }
                FaultKind::DropFrame => {
                    let Some(i) = pick_sample(&mut rng, &targets, &segs) else {
                        continue;
                    };
                    segs[i].dropped = true;
                    let machine = segs[i].header.map(|h| h.machine_id);
                    targets.insert(i);
                    out.affected.extend(machine);
                    out.injected.push(InjectedFault { kind, machine });
                }
                FaultKind::RateSpike => {
                    let Some(i) = pick_sample(&mut rng, &targets, &segs) else {
                        continue;
                    };
                    let seg = &mut segs[i];
                    let mut h = seg.header.expect("sample target has a header");
                    // All-ones counters: CPU 0 carries raw value 1 for
                    // every event, later CPUs carry zero deltas.
                    // Checksums correctly — the *producer* is insane,
                    // not the wire. Same decoded counts in either
                    // sample encoding; a planar target additionally
                    // leads with an all-1-byte-width directory.
                    let n_events = h.n_events as usize;
                    let cpus = (h.cpu_count as usize).max(1);
                    let mut payload = Vec::new();
                    if h.frame_type == FrameType::PlanarSample {
                        payload.extend(std::iter::repeat_n(0x00u8, n_events));
                    }
                    payload.extend(std::iter::repeat_n(0x01u8, n_events));
                    payload.extend(std::iter::repeat_n(0x00u8, (cpus - 1) * n_events));
                    h.payload_len = payload.len() as u32;
                    h.checksum = h.expected_checksum(&payload);
                    seg.bytes.truncate(0);
                    seg.bytes.resize(HEADER_LEN, 0);
                    h.write(&mut seg.bytes);
                    seg.bytes.extend_from_slice(&payload);
                    seg.header = Some(h);
                    let machine = Some(h.machine_id);
                    targets.insert(i);
                    out.affected.extend(machine);
                    out.injected.push(InjectedFault { kind, machine });
                }
                FaultKind::SeqReset => {
                    let Some(i) = pick_sample(&mut rng, &targets, &segs) else {
                        continue;
                    };
                    let seg = &mut segs[i];
                    let mut h = seg.header.expect("sample target has a header");
                    h.window_seq = 0;
                    let payload = &seg.bytes[HEADER_LEN..];
                    h.checksum = h.expected_checksum(payload);
                    h.write(&mut seg.bytes[..HEADER_LEN]);
                    seg.header = Some(h);
                    // The row itself is intact, but a second reset in
                    // a later window collides with the re-baselined
                    // sequence and gets treated as a duplicate — so
                    // the machine is conservatively marked affected.
                    let machine = Some(h.machine_id);
                    targets.insert(i);
                    out.affected.extend(machine);
                    out.injected.push(InjectedFault { kind, machine });
                }
                FaultKind::DuplicateFrame => {
                    let Some(i) = pick_sample(&mut rng, &targets, &segs) else {
                        continue;
                    };
                    segs[i].duplicated = true;
                    let machine = segs[i].header.map(|h| h.machine_id);
                    targets.insert(i);
                    out.injected.push(InjectedFault { kind, machine });
                }
                FaultKind::GarbageInsert => {
                    // Interior boundaries only — never directly before
                    // the final segment (the tail belongs to
                    // TruncateTail: garbage adjacent to a truncated
                    // tail shorter than a header coalesces into one
                    // resync and breaks per-fault accounting). ≥ 2
                    // bytes so the resync scan — which starts two
                    // bytes past a bad magic — still lands on the
                    // next real frame.
                    if segs.len() < 2 {
                        continue;
                    }
                    let b = (splitmix64(&mut rng) % (segs.len() - 1) as u64) as usize;
                    if garbage.iter().any(|(gb, _)| *gb == b) {
                        continue;
                    }
                    let len = 2 + (splitmix64(&mut rng) % 31) as usize;
                    let bytes: Vec<u8> = (0..len)
                        .map(|_| {
                            let v = (splitmix64(&mut rng) & 0xff) as u8;
                            // Never the first magic byte: the garbage
                            // run can't fake a frame boundary.
                            if v == 0x54 {
                                0x55
                            } else {
                                v
                            }
                        })
                        .collect();
                    garbage.push((b, bytes));
                    out.injected.push(InjectedFault {
                        kind,
                        machine: None,
                    });
                }
                FaultKind::ReorderFrames => {
                    // Adjacent sample frames of *different* machines,
                    // both untouched by other faults.
                    let pairs: Vec<usize> = (0..segs.len().saturating_sub(1))
                        .filter(|&i| {
                            !targets.contains(&i)
                                && !targets.contains(&(i + 1))
                                && match (&segs[i].header, &segs[i + 1].header) {
                                    (Some(a), Some(b)) => {
                                        a.frame_type.is_sample()
                                            && b.frame_type.is_sample()
                                            && a.machine_id != b.machine_id
                                    }
                                    _ => false,
                                }
                        })
                        .collect();
                    if pairs.is_empty() {
                        continue;
                    }
                    let i = pairs[(splitmix64(&mut rng) % pairs.len() as u64) as usize];
                    let machine = segs[i].header.map(|h| h.machine_id);
                    segs.swap(i, i + 1);
                    targets.insert(i);
                    targets.insert(i + 1);
                    out.injected.push(InjectedFault { kind, machine });
                }
                FaultKind::TruncateTail => {
                    let i = segs.len() - 1;
                    let is_sample = segs[i].header.is_some_and(|h| h.frame_type.is_sample());
                    if targets.contains(&i) || !is_sample || segs[i].bytes.len() < 3 {
                        continue;
                    }
                    // Cut 1..len-1 bytes: the damaged tail stays on
                    // the wire, so the decoder must detect and skip
                    // it, not merely miss it.
                    let span = segs[i].bytes.len() - 2;
                    segs[i].cut = 1 + (splitmix64(&mut rng) % span as u64) as usize;
                    let machine = segs[i].header.map(|h| h.machine_id);
                    targets.insert(i);
                    out.affected.extend(machine);
                    out.injected.push(InjectedFault { kind, machine });
                }
            }
        }

        // Assemble.
        out.bytes = Vec::with_capacity(clean.len() + 64);
        for (i, seg) in segs.iter().enumerate() {
            for (_, g) in garbage.iter().filter(|(b, _)| *b == i) {
                out.bytes.extend_from_slice(g);
            }
            if seg.dropped {
                continue;
            }
            let keep = seg.bytes.len() - seg.cut;
            out.bytes.extend_from_slice(&seg.bytes[..keep]);
            if seg.duplicated {
                out.bytes.extend_from_slice(&seg.bytes);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WireEncoder;
    use tdp_simsys::{Machine, MachineConfig};

    fn clean_window(machines: u64, window: u64) -> Vec<u8> {
        let mut enc = WireEncoder::new();
        for id in 0..machines {
            let mut m = Machine::new(MachineConfig::default());
            for _ in 0..200 {
                m.tick();
            }
            let mut set = m.read_counters();
            set.seq = window;
            enc.push_sample_set(id, &set).unwrap();
        }
        enc.finish()
    }

    #[test]
    fn same_seed_same_window_is_bit_identical() {
        let clean = clean_window(6, 3);
        let plan = FaultPlan::new(0xfeed);
        let a = plan.apply(3, &clean);
        let b = plan.apply(3, &clean);
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.injected, b.injected);
        assert_eq!(a.affected, b.affected);
        assert!(!a.injected.is_empty(), "a populated window gets faults");
    }

    #[test]
    fn different_windows_draw_different_schedules() {
        let clean = clean_window(6, 0);
        let plan = FaultPlan::new(7);
        let schedules: Vec<Vec<InjectedFault>> =
            (0..16).map(|w| plan.apply(w, &clean).injected).collect();
        assert!(
            schedules.iter().any(|s| s != &schedules[0]),
            "16 windows with identical fault schedules is vanishingly unlikely"
        );
    }

    #[test]
    fn empty_stream_passes_through() {
        let out = FaultPlan::new(1).apply(0, &[]);
        assert!(out.bytes.is_empty());
        assert!(out.injected.is_empty());
        assert!(out.affected.is_empty());
    }

    #[test]
    fn garbage_never_contains_the_magic_prefix_byte() {
        // Drive many windows and check every inserted garbage run is
        // free of 0x54, the byte the resync scanner hunts for.
        let clean = clean_window(4, 1);
        let plan = FaultPlan::new(42);
        for w in 0..64 {
            let f = plan.apply(w, &clean);
            if f.count(FaultKind::GarbageInsert) == 0 {
                continue;
            }
            // The faulted stream must still decompose into frames plus
            // resync runs that contain no fake boundaries: walk it and
            // count resyncs — each garbage run is exactly one.
            let mut resyncs = 0;
            for item in FrameCursor::new(&f.bytes) {
                if matches!(item, CursorItem::Resync { .. }) {
                    resyncs += 1;
                }
            }
            let floor = f.count(FaultKind::GarbageInsert);
            assert!(
                resyncs >= floor,
                "window {w}: {resyncs} resyncs < {floor} garbage runs"
            );
        }
    }

    #[test]
    fn affected_machines_cover_every_destructive_fault() {
        let clean = clean_window(8, 2);
        let plan = FaultPlan::new(99);
        for w in 0..64 {
            let f = plan.apply(w, &clean);
            for inj in &f.injected {
                let destructive = matches!(
                    inj.kind,
                    FaultKind::BitFlip
                        | FaultKind::DropFrame
                        | FaultKind::RateSpike
                        | FaultKind::SeqReset
                        | FaultKind::TruncateTail
                );
                if destructive {
                    let m = inj.machine.expect("destructive faults name a machine");
                    assert!(f.affected.contains(&m), "window {w}: {inj:?}");
                }
            }
        }
    }
}
