//! The column-planar fixed-width sample payload
//! ([`FrameType::PlanarSample`](crate::frame::FrameType::PlanarSample)).
//!
//! The varint sample payload is compact but serial: every varint's
//! length is data-dependent, so decode is a loop-carried
//! load→scan→advance chain with a hard per-varint latency floor
//! (DESIGN.md §4h measured it at ~136 ns of the ~268 ns fused budget).
//! The planar payload removes the dependency by moving the length
//! information out of the data and into a tiny per-frame directory:
//!
//! ```text
//! offset            size                    field
//! 0                 n_events                width directory
//! n_events          Σ base_w[e]             bases: CPU 0 raw counts
//! (after bases)     (cpu_count−1)·delta_w[0]  event 0 delta plane
//! …                 …                       … one plane per event
//! ```
//!
//! Directory byte `e` packs two width codes, low nibble for the base
//! and high nibble for the event's delta plane: code `c ∈ 0..=3` means
//! `1 << c` bytes per lane (1/2/4/8). The base is CPU 0's raw count,
//! little-endian at its width. A **delta plane** holds the event's
//! `cpu_count − 1` zigzag CPU-over-CPU deltas — the same values the
//! varint payload stores row-major — contiguous and fixed-width, so
//! decode is three branch-free bulk passes over the whole frame:
//! widen to u64 ([`widen_u8_to_u64`] and friends, one call per run of
//! equal-width planes), [`zigzag_decode_batch`], and one
//! [`delta_unfold`] prefix-sum. Each plane's width is the smallest that
//! fits the plane's largest zigzag delta (bases likewise), so the
//! encoding is canonical: one window has exactly one planar payload.
//!
//! Because the deltas and the delta chain are identical to the varint
//! encoding's, a decoder reconstructs bit-identical counts from either
//! payload — property-tested in `tests/planar.rs` across random
//! layouts and width-boundary values.

use crate::frame::PayloadChecksum;
use crate::varint::zigzag;
use tdp_counters::SampleSet;
use tdp_simd::{
    delta_unfold, widen_u16_to_u64, widen_u32_to_u64, widen_u8_to_u64, zigzag_decode_batch,
    Dispatch,
};

/// The smallest width code (`0..=3`, meaning `1 << code` bytes) whose
/// lane holds `v`.
#[inline]
fn width_code(v: u64) -> u8 {
    if v < 1 << 8 {
        0
    } else if v < 1 << 16 {
        1
    } else if v < 1 << 32 {
        2
    } else {
        3
    }
}

/// Appends the planar payload for `set` to `buf`: directory, bases,
/// then one delta plane per event.
///
/// The caller (`encode_planar_sample_frame`) has already validated the
/// set's geometry — uniform layouts, bounded event/CPU counts — so this
/// only lays out bytes. An empty set (no CPUs) produces an empty
/// payload.
pub(crate) fn encode_payload(buf: &mut Vec<u8>, set: &SampleSet) {
    let Some(first) = set.per_cpu.first() else {
        return;
    };
    let n = first.counts().len();
    let cpus = set.per_cpu.len();
    let count = |cpu: usize, e: usize| set.per_cpu[cpu].counts()[e].1;
    let zz = |cpu: usize, e: usize| zigzag(count(cpu, e).wrapping_sub(count(cpu - 1, e)) as i64);

    // Directory: per-event width codes from this window's value range.
    let dir_start = buf.len();
    for e in 0..n {
        let base_code = width_code(count(0, e));
        let delta_code = (1..cpus)
            .map(|cpu| width_code(zz(cpu, e)))
            .max()
            .unwrap_or(0);
        buf.push(delta_code << 4 | base_code);
    }
    // Bases: CPU 0 raw, little-endian at the declared width.
    for e in 0..n {
        let w = 1usize << (buf[dir_start + e] & 0x0f);
        buf.extend_from_slice(&count(0, e).to_le_bytes()[..w]);
    }
    // Delta planes: contiguous per event, fixed-width zigzag deltas.
    for e in 0..n {
        let w = 1usize << (buf[dir_start + e] >> 4);
        for cpu in 1..cpus {
            buf.extend_from_slice(&zz(cpu, e).to_le_bytes()[..w]);
        }
    }
}

/// Decodes a planar payload into `out` and reconstructs every count:
/// `out[0..n_events]` holds the raw CPU 0 bases and
/// `out[n_events + e·(cpus−1) + (cpu−1)]` the reconstructed count of
/// event `e` on CPU `cpu ≥ 1` (plane-major, delta chain already
/// unfolded). Returns `None` on any structural defect — bad directory
/// nibble or a payload length that disagrees with the directory's
/// declared widths.
///
/// `ck` absorbs the payload as the walk passes it (monotone
/// watermarks), matching the varint path's checksum overlap; the caller
/// finishes the checksum over whatever remains and gives its verdict
/// precedence, exactly as for varint sample frames.
///
/// Scratch growth is bounded by the input: every base and delta lane is
/// at least one byte, so `out` never exceeds `payload.len()` entries —
/// a corrupt header cannot request an absurd allocation.
pub fn decode_planes(
    d: Dispatch,
    payload: &[u8],
    n_events: usize,
    cpus: usize,
    out: &mut Vec<u64>,
    ck: &mut PayloadChecksum,
) -> Option<()> {
    let n = n_events;
    if payload.len() < n {
        return None;
    }
    let stride = cpus.saturating_sub(1);
    // Nibble validation in one OR-reduce: a width code is legal iff it
    // fits two bits, so a directory is legal iff no byte sets bits
    // 2–3 or 6–7.
    if payload[..n].iter().fold(0u8, |a, &b| a | b) & 0xcc != 0 {
        return None;
    }
    let total = n + n * stride;
    // Price floor *before* sizing scratch: every base and delta lane is
    // at least one byte, so a structurally valid payload carries no
    // fewer than `n` directory bytes plus one byte per lane. A header
    // whose cpu_count prices past the payload (a corrupt cpu_count can
    // claim 65535 CPUs against a 100-byte payload) is rejected here,
    // so `out` never exceeds `payload.len()` entries and a corrupt
    // header cannot request an absurd allocation.
    if payload.len() < n + total {
        return None;
    }
    // The decode passes overwrite every entry, so resize only on a
    // geometry change (no steady-state memset) — same policy as the
    // varint scratch.
    if out.len() != total {
        out.clear();
        out.resize(total, 0);
    }
    // Exact pricing falls out of the walk itself: every lane read
    // checks its bounds, and the final `pos == payload.len()` check
    // rejects a payload with trailing bytes — together equivalent to
    // pre-pricing the directory, without the extra pass.
    let pos = if stride * n >= WIDE_LANES {
        decode_bulk(d, payload, n, stride, out)?
    } else {
        decode_fused(payload, n, stride, out)?
    };
    if pos != payload.len() {
        return None;
    }
    // One absorb watermark at the end of the walk: the bytes are still
    // warm in cache, and the chunk→lane mapping is position-pure, so
    // the cadence cannot change the checksum.
    ck.absorb_to(payload, pos);
    Some(())
}

/// Delta-lane count above which the bulk SIMD passes (one widen call
/// per width run + batch zigzag + batch unfold) beat the fused scalar
/// walk. Below it, per-call dispatch overhead dominates the handful of
/// lanes; measured crossover on AVX2 is well above typical 4–16 CPU
/// frames.
const WIDE_LANES: usize = 128;

/// One little-endian lane of constant width `W` at `pos`. The constant
/// width turns the read into a single fixed-size load — no variable
/// shift, no mask — with one bounds check. Returns `None` on overrun.
#[inline(always)]
fn read_lane<const W: usize>(payload: &[u8], pos: &mut usize) -> Option<u64> {
    let src = payload.get(*pos..*pos + W)?;
    let mut le = [0u8; 8];
    le[..W].copy_from_slice(src);
    *pos += W;
    Some(u64::from_le_bytes(le))
}

/// Reads the lane whose two-bit width `code` the directory declared.
/// Each arm monomorphises to a fixed-size load, so the only per-lane
/// branch is the (predictable) directory dispatch.
#[inline(always)]
fn read_coded_lane(payload: &[u8], pos: &mut usize, code: u8) -> Option<u64> {
    match code {
        0 => read_lane::<1>(payload, pos),
        1 => read_lane::<2>(payload, pos),
        2 => read_lane::<4>(payload, pos),
        _ => read_lane::<8>(payload, pos),
    }
}

/// Unfolds one event's delta plane at constant lane width: read,
/// unzigzag (`(z >> 1) ⊕ −(z & 1)` leaves the signed delta's bit
/// pattern), and the wrapping prefix add — the varint path's
/// `prev.wrapping_add(unzigzag(c) as u64)` exactly.
#[inline(always)]
fn unfold_plane<const W: usize>(
    payload: &[u8],
    pos: &mut usize,
    mut acc: u64,
    out: &mut [u64],
) -> Option<()> {
    for slot in out.iter_mut() {
        let z = read_lane::<W>(payload, pos)?;
        acc = acc.wrapping_add((z >> 1) ^ 0u64.wrapping_sub(z & 1));
        *slot = acc;
    }
    Some(())
}

/// The small-frame decode: bases and planes in one scalar walk,
/// unzigzag and prefix-sum fused into the lane loop. Integer-exact, so
/// bit-identical to the bulk-kernel path by construction.
#[inline(always)]
fn decode_fused(payload: &[u8], n: usize, stride: usize, out: &mut [u64]) -> Option<usize> {
    let mut pos = n;
    for e in 0..n {
        out[e] = read_coded_lane(payload, &mut pos, payload[e] & 0x0f)?;
    }
    let (bases, deltas) = out.split_at_mut(n);
    for e in 0..n {
        let dst = &mut deltas[e * stride..(e + 1) * stride];
        match payload[e] >> 4 {
            0 => unfold_plane::<1>(payload, &mut pos, bases[e], dst),
            1 => unfold_plane::<2>(payload, &mut pos, bases[e], dst),
            2 => unfold_plane::<4>(payload, &mut pos, bases[e], dst),
            _ => unfold_plane::<8>(payload, &mut pos, bases[e], dst),
        }?;
    }
    Some(pos)
}

/// The wide-frame decode: one widen kernel call per run of equal-width
/// planes, then batch zigzag and batch delta unfold — three branch-free
/// bulk passes whose SIMD width pays once planes carry enough lanes.
fn decode_bulk(
    d: Dispatch,
    payload: &[u8],
    n: usize,
    stride: usize,
    out: &mut [u64],
) -> Option<usize> {
    let mut pos = n;
    for e in 0..n {
        out[e] = read_coded_lane(payload, &mut pos, payload[e] & 0x0f)?;
    }
    let (bases, deltas) = out.split_at_mut(n);
    let mut e = 0usize;
    while e < n {
        let code = payload[e] >> 4;
        let mut run_end = e + 1;
        while run_end < n && payload[run_end] >> 4 == code {
            run_end += 1;
        }
        let lanes = (run_end - e) * stride;
        let w = 1usize << code;
        let src = payload.get(pos..pos + lanes * w)?;
        let dst = &mut deltas[e * stride..run_end * stride];
        match code {
            0 => widen_u8_to_u64(d, src, dst),
            1 => widen_u16_to_u64(d, src, dst),
            2 => widen_u32_to_u64(d, src, dst),
            _ => {
                let (words, _) = src.as_chunks::<8>();
                for (v, c) in dst.iter_mut().zip(words) {
                    *v = u64::from_le_bytes(*c);
                }
            }
        }
        pos += lanes * w;
        e = run_end;
    }
    // Two bulk passes finish every count: undo the zigzag (leaving
    // signed-delta bit patterns), then run each plane's wrapping
    // prefix sum from its base — the exact arithmetic of the varint
    // path's per-count `prev.wrapping_add(unzigzag(c) as u64)`.
    zigzag_decode_batch(d, deltas);
    delta_unfold(d, bases, deltas);
    Some(pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{FrameHeader, FrameType};
    use tdp_counters::{CounterSample, CpuId, InterruptSnapshot, PerfEvent};

    fn set_of(counts: &[Vec<u64>]) -> SampleSet {
        let events = [
            PerfEvent::Cycles,
            PerfEvent::HaltedCycles,
            PerfEvent::L2Misses,
        ];
        SampleSet {
            time_ms: 1000,
            window_ms: 1000,
            seq: 1,
            per_cpu: counts
                .iter()
                .enumerate()
                .map(|(cpu, vals)| {
                    CounterSample::new(
                        CpuId::new(cpu as u8),
                        1,
                        events.iter().copied().zip(vals.iter().copied()).collect(),
                    )
                })
                .collect(),
            interrupts: InterruptSnapshot::default(),
        }
    }

    fn header_for(payload_len: usize, cpus: u16, n_events: u16) -> FrameHeader {
        FrameHeader {
            frame_type: FrameType::PlanarSample,
            payload_len: payload_len as u32,
            machine_id: 1,
            window_seq: 1,
            layout_hash: 0,
            cpu_count: cpus,
            n_events,
            checksum: 0,
        }
    }

    fn decode(payload: &[u8], n: usize, cpus: usize) -> Option<Vec<u64>> {
        let h = header_for(payload.len(), cpus as u16, n as u16);
        let mut out = Vec::new();
        let mut ck = PayloadChecksum::new(&h);
        decode_planes(Dispatch::active(), payload, n, cpus, &mut out, &mut ck)?;
        // The absorb cadence must agree with the one-shot checksum.
        assert_eq!(ck.finish(payload), h.expected_checksum(payload));
        Some(out)
    }

    #[test]
    fn payload_roundtrips_and_widths_are_minimal() {
        // Event 0: tiny values (1-byte base, 1-byte deltas); event 1:
        // large base, negative delta; event 2: width-boundary values.
        let set = set_of(&[
            vec![200, 5_000_000_000, 1 << 31],
            vec![201, 4_999_999_000, (1 << 31) + 127],
            vec![190, 5_000_001_000, 1 << 31],
        ]);
        let mut payload = Vec::new();
        encode_payload(&mut payload, &set);
        // Directory: e0 base 1B delta 1B; e1 base 8B (≥ 2^32) deltas
        // 2B (zigzag(±1000) ≈ 2000); e2 base 4B... 2^31 < 2^32 so 4B,
        // deltas 1B (zigzag(127)=254, zigzag(-127)=253).
        assert_eq!(payload[0], 0x00);
        assert_eq!(payload[1], 0x13);
        assert_eq!(payload[2], 0x02);
        let out = decode(&payload, 3, 3).expect("clean payload");
        let n = 3;
        for e in 0..n {
            assert_eq!(out[e], set.per_cpu[0].counts()[e].1, "base {e}");
            for cpu in 1..3 {
                assert_eq!(
                    out[n + e * 2 + (cpu - 1)],
                    set.per_cpu[cpu].counts()[e].1,
                    "event {e} cpu {cpu}"
                );
            }
        }
    }

    #[test]
    fn structural_defects_are_rejected() {
        let set = set_of(&[vec![10, 20, 30], vec![11, 19, 31]]);
        let mut payload = Vec::new();
        encode_payload(&mut payload, &set);
        assert!(decode(&payload, 3, 2).is_some(), "clean baseline");
        // Bad directory nibble (width code > 3).
        let mut bad = payload.clone();
        bad[0] = 0x40;
        assert!(decode(&bad, 3, 2).is_none());
        let mut bad = payload.clone();
        bad[0] = 0x04;
        assert!(decode(&bad, 3, 2).is_none());
        // Truncated and padded payloads disagree with the directory.
        assert!(decode(&payload[..payload.len() - 1], 3, 2).is_none());
        let mut long = payload.clone();
        long.push(0);
        assert!(decode(&long, 3, 2).is_none());
        // Payload shorter than the directory itself.
        assert!(decode(&payload[..2], 3, 2).is_none());
    }

    #[test]
    fn i64_min_delta_selects_the_eight_byte_lane_and_roundtrips() {
        // A CPU-over-CPU step of exactly i64::MIN zigzags to u64::MAX —
        // the one value where a sign-magnitude width heuristic would
        // underprice the lane. It must take width code 3 and come back
        // bit-exact through the fused scalar path...
        let base = 3u64;
        let stepped = base.wrapping_add(i64::MIN as u64);
        let set = set_of(&[vec![base, 1, 2], vec![stepped, 1, 2]]);
        let mut payload = Vec::new();
        encode_payload(&mut payload, &set);
        assert_eq!(payload[0] >> 4, 3, "i64::MIN delta must price 8 bytes");
        let out = decode(&payload, 3, 2).expect("fused path");
        assert_eq!(out[3], stepped, "fused roundtrip");
        // ...and through the bulk kernel path (≥ WIDE_LANES delta
        // lanes: 3 events × 64 deltas = 192), alternating the extreme
        // step so every lane in event 0's plane is ±i64::MIN.
        let cpus = 65usize;
        let rows: Vec<Vec<u64>> = (0..cpus)
            .map(|cpu| {
                let v = if cpu % 2 == 0 { base } else { stepped };
                vec![v, cpu as u64, 7]
            })
            .collect();
        let wide = set_of(&rows);
        let mut payload = Vec::new();
        encode_payload(&mut payload, &wide);
        assert_eq!(payload[0] >> 4, 3);
        let stride = cpus - 1;
        assert!(3 * stride >= WIDE_LANES, "must exercise decode_bulk");
        let out = decode(&payload, 3, cpus).expect("bulk path");
        for cpu in 1..cpus {
            for e in 0..3 {
                assert_eq!(
                    out[3 + e * stride + (cpu - 1)],
                    rows[cpu][e],
                    "event {e} cpu {cpu}"
                );
            }
        }
    }

    #[test]
    fn corrupt_cpu_count_is_rejected_before_allocating() {
        // A flipped header can claim 65535 CPUs against a tiny payload;
        // the price floor must reject it before sizing scratch.
        let set = set_of(&[vec![10, 20, 30], vec![11, 19, 31]]);
        let mut payload = Vec::new();
        encode_payload(&mut payload, &set);
        let h = header_for(payload.len(), u16::MAX, 3);
        let mut out = Vec::new();
        let mut ck = PayloadChecksum::new(&h);
        assert!(decode_planes(Dispatch::active(), &payload, 3, 65535, &mut out, &mut ck).is_none());
        assert_eq!(out.capacity(), 0, "no scratch growth on rejection");
    }

    #[test]
    fn single_cpu_and_empty_frames_decode() {
        let set = set_of(&[vec![7, 300, u64::MAX]]);
        let mut payload = Vec::new();
        encode_payload(&mut payload, &set);
        let out = decode(&payload, 3, 1).expect("single CPU");
        assert_eq!(out, [7, 300, u64::MAX]);
        // No CPUs: empty payload, nothing decoded.
        let empty = set_of(&[]);
        let mut payload = Vec::new();
        encode_payload(&mut payload, &empty);
        assert!(payload.is_empty());
        assert_eq!(decode(&payload, 0, 0), Some(Vec::new()));
    }
}
