//! The column-planar fixed-width sample payload
//! ([`FrameType::PlanarSample`](crate::frame::FrameType::PlanarSample)).
//!
//! The varint sample payload is compact but serial: every varint's
//! length is data-dependent, so decode is a loop-carried
//! load→scan→advance chain with a hard per-varint latency floor
//! (DESIGN.md §4h measured it at ~136 ns of the ~268 ns fused budget).
//! The planar payload removes the dependency by moving the length
//! information out of the data and into a tiny per-frame directory:
//!
//! ```text
//! offset            size                    field
//! 0                 n_events                width directory
//! n_events          Σ base_w[e]             bases: CPU 0 raw counts
//! (after bases)     (cpu_count−1)·delta_w[0]  event 0 delta plane
//! …                 …                       … one plane per event
//! ```
//!
//! Directory byte `e` packs two width codes, low nibble for the base
//! and high nibble for the event's delta plane: code `c ∈ 0..=3` means
//! `1 << c` bytes per lane (1/2/4/8). The base is CPU 0's raw count,
//! little-endian at its width. A **delta plane** holds the event's
//! `cpu_count − 1` zigzag CPU-over-CPU deltas — the same values the
//! varint payload stores row-major — contiguous and fixed-width, so
//! decode is one fused pass over the payload: small frames take a
//! scalar walk that reads each plane as a single bounds-checked slice
//! and unzigzags + prefix-sums + widens in the lane loop; large frames
//! widen each run of equal-width planes in bulk ([`widen_u8_to_u64`]
//! and friends) and finish with one [`unfold_planes_to_f64`] kernel
//! pass. Either way the decode **emits f64 lanes directly** —
//! event-major, CPU 0's base first — so the downstream column fold
//! consumes them without per-count conversion, and the payload
//! checksum is absorbed while the bytes are cache-hot — per width run
//! on bulk frames, one trailing absorb over the still-resident lines
//! on small ones — so the payload is effectively read once for decode
//! and verification together. Each plane's width
//! is the smallest that fits the plane's largest zigzag delta (bases
//! likewise), so the encoding is canonical: one window has exactly one
//! planar payload.
//!
//! Because the deltas and the delta chain are identical to the varint
//! encoding's — and `count as f64` is the same IEEE rounding wherever
//! it is performed — a decoder reconstructs bit-identical fleet rows
//! from either payload, property-tested in `tests/planar.rs` across
//! random layouts and width-boundary values.

use crate::frame::PayloadChecksum;
use crate::varint::zigzag;
use tdp_counters::SampleSet;
use tdp_simd::{
    unfold_planes_to_f64, widen_u16_to_u64, widen_u32_to_u64, widen_u8_to_u64, Dispatch,
};

/// The smallest width code (`0..=3`, meaning `1 << code` bytes) whose
/// lane holds `v`.
#[inline]
fn width_code(v: u64) -> u8 {
    if v < 1 << 8 {
        0
    } else if v < 1 << 16 {
        1
    } else if v < 1 << 32 {
        2
    } else {
        3
    }
}

/// Appends the planar payload for `set` to `buf`: directory, bases,
/// then one delta plane per event.
///
/// The caller (`encode_planar_sample_frame`) has already validated the
/// set's geometry — uniform layouts, bounded event/CPU counts — so this
/// only lays out bytes. An empty set (no CPUs) produces an empty
/// payload.
pub(crate) fn encode_payload(buf: &mut Vec<u8>, set: &SampleSet) {
    let Some(first) = set.per_cpu.first() else {
        return;
    };
    let n = first.counts().len();
    let cpus = set.per_cpu.len();
    let count = |cpu: usize, e: usize| set.per_cpu[cpu].counts()[e].1;
    let zz = |cpu: usize, e: usize| zigzag(count(cpu, e).wrapping_sub(count(cpu - 1, e)) as i64);

    // Directory: per-event width codes from this window's value range.
    let dir_start = buf.len();
    for e in 0..n {
        let base_code = width_code(count(0, e));
        let delta_code = (1..cpus)
            .map(|cpu| width_code(zz(cpu, e)))
            .max()
            .unwrap_or(0);
        buf.push(delta_code << 4 | base_code);
    }
    // Bases: CPU 0 raw, little-endian at the declared width.
    for e in 0..n {
        let w = 1usize << (buf[dir_start + e] & 0x0f);
        buf.extend_from_slice(&count(0, e).to_le_bytes()[..w]);
    }
    // Delta planes: contiguous per event, fixed-width zigzag deltas.
    for e in 0..n {
        let w = 1usize << (buf[dir_start + e] >> 4);
        for cpu in 1..cpus {
            buf.extend_from_slice(&zz(cpu, e).to_le_bytes()[..w]);
        }
    }
}

/// Decodes a planar payload into `out` as **f64 event lanes**,
/// event-major with CPU 0's base first: `out[e·cpus + c]` is event
/// `e`'s reconstructed count on CPU `c`, widened to f64 (the delta
/// chain already unfolded — the same `count as f64` the column fold
/// would otherwise perform per count per window). Returns `None` on
/// any structural defect — bad directory nibble or a payload length
/// that disagrees with the directory's declared widths.
///
/// `ck` absorbs the payload while its bytes are cache-hot: bulk frames
/// absorb *inside* the walk, one watermark per width run — the
/// single-pass read the varint leg's `read_uvarints_wide_ck` performs
/// at window granularity — while small frames (a cache line or two)
/// absorb once after the walk, over lines the walk just touched.
/// [`PayloadChecksum::absorb_to`] is position-pure and monotone, so
/// the cadence cannot change the checksum; the caller finishes it over
/// whatever remains and gives its verdict precedence, exactly as for
/// varint sample frames.
///
/// `dir_valid` skips the directory nibble validation and the price
/// floor when the caller has already proven this exact `(geometry,
/// directory)` pair valid — the layout-epoch identity-directory memo
/// (`FrameDecoder`) sets it only when the frame's directory bytes are
/// byte-identical to a previously accepted frame's with identical
/// geometry, so the skipped checks could only repeat their earlier
/// verdict. Every per-lane/per-plane bounds check still runs.
///
/// `scratch` stages bases and raw zigzag lanes for the bulk path only;
/// small frames never touch it. Scratch growth is bounded by the
/// input: every base and delta lane is at least one byte, so neither
/// buffer ever exceeds `payload.len()` entries — a corrupt header
/// cannot request an absurd allocation.
#[allow(clippy::too_many_arguments)]
pub fn decode_planes(
    d: Dispatch,
    payload: &[u8],
    n_events: usize,
    cpus: usize,
    dir_valid: bool,
    out: &mut Vec<f64>,
    scratch: &mut Vec<u64>,
    ck: &mut PayloadChecksum,
) -> Option<()> {
    let n = n_events;
    if payload.len() < n {
        return None;
    }
    let stride = cpus.saturating_sub(1);
    let lanes = n + n * stride;
    if !dir_valid {
        // Nibble validation in one OR-reduce: a width code is legal iff
        // it fits two bits, so a directory is legal iff no byte sets
        // bits 2–3 or 6–7.
        if payload[..n].iter().fold(0u8, |a, &b| a | b) & 0xcc != 0 {
            return None;
        }
        // Price floor *before* sizing scratch: every base and delta
        // lane is at least one byte, so a structurally valid payload
        // carries no fewer than `n` directory bytes plus one byte per
        // lane. A header whose cpu_count prices past the payload (a
        // corrupt cpu_count can claim 65535 CPUs against a 100-byte
        // payload) is rejected here, so neither `out` nor `scratch`
        // ever exceeds `payload.len()` entries and a corrupt header
        // cannot request an absurd allocation.
        if payload.len() < n + lanes {
            return None;
        }
    }
    // The decode passes overwrite every entry, so resize only on a
    // geometry change (no steady-state memset) — same policy as the
    // varint scratch.
    let out_len = n * cpus;
    if out.len() != out_len {
        out.clear();
        out.resize(out_len, 0.0);
    }
    // Exact pricing falls out of the walk itself: every plane read
    // checks its bounds, and the final `pos == payload.len()` check
    // rejects a payload with trailing bytes — together equivalent to
    // pre-pricing the directory, without the extra pass.
    let pos = if stride * n >= WIDE_LANES {
        decode_bulk(d, payload, n, stride, out, scratch, ck)?
    } else {
        decode_fused(payload, n, cpus, out)?
    };
    if pos != payload.len() {
        return None;
    }
    // Final watermark: for small frames this is the whole absorb (the
    // payload is still in L1 from the walk); for bulk frames it only
    // covers whatever the per-run absorbs left short of the end.
    ck.absorb_to(payload, pos);
    Some(())
}

/// Delta-lane count above which the bulk SIMD passes (one widen call
/// per width run + batch zigzag + batch unfold) beat the fused scalar
/// walk. Below it, per-call dispatch overhead dominates the handful of
/// lanes; measured crossover on AVX2 is well above typical 4–16 CPU
/// frames.
const WIDE_LANES: usize = 128;

/// One little-endian lane of constant width `W` at `pos`. The constant
/// width turns the read into a single fixed-size load — no variable
/// shift, no mask — with one bounds check. Returns `None` on overrun.
#[inline(always)]
fn read_lane<const W: usize>(payload: &[u8], pos: &mut usize) -> Option<u64> {
    let src = payload.get(*pos..*pos + W)?;
    let mut le = [0u8; 8];
    le[..W].copy_from_slice(src);
    *pos += W;
    Some(u64::from_le_bytes(le))
}

/// Reads the lane whose two-bit width `code` the directory declared.
/// Each arm monomorphises to a fixed-size load, so the only per-lane
/// branch is the (predictable) directory dispatch.
#[inline(always)]
fn read_coded_lane(payload: &[u8], pos: &mut usize, code: u8) -> Option<u64> {
    match code {
        0 => read_lane::<1>(payload, pos),
        1 => read_lane::<2>(payload, pos),
        2 => read_lane::<4>(payload, pos),
        _ => read_lane::<8>(payload, pos),
    }
}

/// Unfolds one event's delta plane at constant lane width: one bounds
/// check for the whole plane, then per lane unzigzag
/// (`(z >> 1) ⊕ −(z & 1)` leaves the signed delta's bit pattern), the
/// wrapping prefix add — the varint path's
/// `prev.wrapping_add(unzigzag(c) as u64)` exactly — and the `as f64`
/// Unfolds one event's delta plane at constant lane width: one bounds
/// check for the whole plane, then per lane unzigzag
/// (`(z >> 1) ⊕ −(z & 1)` leaves the signed delta's bit pattern), the
/// wrapping prefix add — the varint path's
/// `prev.wrapping_add(unzigzag(c) as u64)` exactly — and the `as f64`
/// widen the column fold would otherwise perform per count.
#[inline(always)]
fn unfold_plane<const W: usize>(
    payload: &[u8],
    pos: &mut usize,
    mut acc: u64,
    out: &mut [f64],
) -> Option<()> {
    let bytes = out.len() * W;
    let src = payload.get(*pos..*pos + bytes)?;
    for (slot, lane) in out.iter_mut().zip(src.chunks_exact(W)) {
        let mut le = [0u8; 8];
        le[..W].copy_from_slice(lane);
        let z = u64::from_le_bytes(le);
        acc = acc.wrapping_add((z >> 1) ^ 0u64.wrapping_sub(z & 1));
        *slot = acc as f64;
    }
    *pos += bytes;
    Some(())
}

/// The small-frame decode: a two-cursor walk — `bpos` over the bases
/// region, `ppos` over the planes region — that emits each event's
/// full f64 lane (base first, then the unfolded deltas) in one visit.
/// Integer-exact before the final widen, so bit-identical to the
/// bulk-kernel path by construction.
///
/// No in-walk checksum absorbs here: a small frame's whole payload is
/// a cache line or two, so the caller's trailing [`absorb_to`] pass
/// runs over lines the walk just touched — the same single read of
/// the payload — while per-plane absorb calls would pay watermark
/// bookkeeping nine times for at most a handful of 16-byte chunks
/// (measured ≈ +18 ns/frame on 4-CPU fleets). The bulk path absorbs
/// per width run instead, where a second pass would genuinely re-read
/// memory.
///
/// With no CPUs there are no lanes to emit; the walk still parses (and
/// prices) the bases region so trailing garbage is rejected exactly as
/// before.
///
/// [`absorb_to`]: PayloadChecksum::absorb_to
#[inline(always)]
fn decode_fused(payload: &[u8], n: usize, cpus: usize, out: &mut [f64]) -> Option<usize> {
    // Where the planes start: the directory declares every base width,
    // so the bases region's extent is known before walking it. Each
    // lane read below still bounds-checks, so a payload shorter than
    // this sum fails at the read, never at a slice index.
    let mut bases_end = n;
    for &b in &payload[..n] {
        bases_end += 1usize << (b & 0x0f);
    }
    let mut bpos = n;
    let mut ppos = bases_end;
    for e in 0..n {
        let base = read_coded_lane(payload, &mut bpos, payload[e] & 0x0f)?;
        if cpus == 0 {
            continue;
        }
        let dst = &mut out[e * cpus..(e + 1) * cpus];
        dst[0] = base as f64;
        match payload[e] >> 4 {
            0 => unfold_plane::<1>(payload, &mut ppos, base, &mut dst[1..]),
            1 => unfold_plane::<2>(payload, &mut ppos, base, &mut dst[1..]),
            2 => unfold_plane::<4>(payload, &mut ppos, base, &mut dst[1..]),
            _ => unfold_plane::<8>(payload, &mut ppos, base, &mut dst[1..]),
        }?;
    }
    Some(if cpus == 0 { bpos } else { ppos })
}

/// The wide-frame decode: one widen kernel call per run of equal-width
/// planes staging raw zigzag lanes in `scratch`, then a single
/// [`unfold_planes_to_f64`] pass — unzigzag, wrapping prefix sum, and
/// the f64 widen in one branch-free kernel whose SIMD width pays once
/// planes carry enough lanes. The checksum absorbs after the bases and
/// after each width run, while those bytes are still warm.
fn decode_bulk(
    d: Dispatch,
    payload: &[u8],
    n: usize,
    stride: usize,
    out: &mut [f64],
    scratch: &mut Vec<u64>,
    ck: &mut PayloadChecksum,
) -> Option<usize> {
    let total = n + n * stride;
    if scratch.len() != total {
        scratch.clear();
        scratch.resize(total, 0);
    }
    let mut pos = n;
    for e in 0..n {
        scratch[e] = read_coded_lane(payload, &mut pos, payload[e] & 0x0f)?;
    }
    ck.absorb_to(payload, pos);
    let (bases, deltas) = scratch.split_at_mut(n);
    let mut e = 0usize;
    while e < n {
        let code = payload[e] >> 4;
        let mut run_end = e + 1;
        while run_end < n && payload[run_end] >> 4 == code {
            run_end += 1;
        }
        let lanes = (run_end - e) * stride;
        let w = 1usize << code;
        let src = payload.get(pos..pos + lanes * w)?;
        let dst = &mut deltas[e * stride..run_end * stride];
        match code {
            0 => widen_u8_to_u64(d, src, dst),
            1 => widen_u16_to_u64(d, src, dst),
            2 => widen_u32_to_u64(d, src, dst),
            _ => {
                let (words, _) = src.as_chunks::<8>();
                for (v, c) in dst.iter_mut().zip(words) {
                    *v = u64::from_le_bytes(*c);
                }
            }
        }
        pos += lanes * w;
        ck.absorb_to(payload, pos);
        e = run_end;
    }
    // One fused kernel pass finishes every lane: undo the zigzag
    // (leaving signed-delta bit patterns), run each plane's wrapping
    // prefix sum from its base, and widen to f64 — the exact
    // arithmetic of the varint path's per-count
    // `prev.wrapping_add(unzigzag(c) as u64)` followed by the column
    // fold's `count as f64`.
    unfold_planes_to_f64(d, bases, deltas, out);
    Some(pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{FrameHeader, FrameType};
    use tdp_counters::{CounterSample, CpuId, InterruptSnapshot, PerfEvent};

    fn set_of(counts: &[Vec<u64>]) -> SampleSet {
        let events = [
            PerfEvent::Cycles,
            PerfEvent::HaltedCycles,
            PerfEvent::L2Misses,
        ];
        SampleSet {
            time_ms: 1000,
            window_ms: 1000,
            seq: 1,
            per_cpu: counts
                .iter()
                .enumerate()
                .map(|(cpu, vals)| {
                    CounterSample::new(
                        CpuId::new(cpu as u8),
                        1,
                        events.iter().copied().zip(vals.iter().copied()).collect(),
                    )
                })
                .collect(),
            interrupts: InterruptSnapshot::default(),
        }
    }

    fn header_for(payload_len: usize, cpus: u16, n_events: u16) -> FrameHeader {
        FrameHeader {
            frame_type: FrameType::PlanarSample,
            payload_len: payload_len as u32,
            machine_id: 1,
            window_seq: 1,
            layout_hash: 0,
            cpu_count: cpus,
            n_events,
            checksum: 0,
        }
    }

    fn decode(payload: &[u8], n: usize, cpus: usize) -> Option<Vec<f64>> {
        let h = header_for(payload.len(), cpus as u16, n as u16);
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        let mut ck = PayloadChecksum::new(&h);
        decode_planes(
            Dispatch::active(),
            payload,
            n,
            cpus,
            false,
            &mut out,
            &mut scratch,
            &mut ck,
        )?;
        // The in-walk absorb cadence must agree with the one-shot
        // checksum.
        assert_eq!(ck.finish(payload), h.expected_checksum(payload));
        // A pre-validated directory (the identity-directory fast path)
        // must land on the same lanes and the same checksum.
        let mut out2 = Vec::new();
        let mut scratch2 = Vec::new();
        let mut ck2 = PayloadChecksum::new(&h);
        decode_planes(
            Dispatch::active(),
            payload,
            n,
            cpus,
            true,
            &mut out2,
            &mut scratch2,
            &mut ck2,
        )
        .expect("dir_valid re-decode");
        assert_eq!(ck2.finish(payload), ck.finish(payload));
        assert_eq!(
            out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            out2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
        Some(out)
    }

    #[test]
    fn payload_roundtrips_and_widths_are_minimal() {
        // Event 0: tiny values (1-byte base, 1-byte deltas); event 1:
        // large base, negative delta; event 2: width-boundary values.
        let set = set_of(&[
            vec![200, 5_000_000_000, 1 << 31],
            vec![201, 4_999_999_000, (1 << 31) + 127],
            vec![190, 5_000_001_000, 1 << 31],
        ]);
        let mut payload = Vec::new();
        encode_payload(&mut payload, &set);
        // Directory: e0 base 1B delta 1B; e1 base 8B (≥ 2^32) deltas
        // 2B (zigzag(±1000) ≈ 2000); e2 base 4B... 2^31 < 2^32 so 4B,
        // deltas 1B (zigzag(127)=254, zigzag(-127)=253).
        assert_eq!(payload[0], 0x00);
        assert_eq!(payload[1], 0x13);
        assert_eq!(payload[2], 0x02);
        let out = decode(&payload, 3, 3).expect("clean payload");
        for e in 0..3 {
            for cpu in 0..3 {
                assert_eq!(
                    out[e * 3 + cpu].to_bits(),
                    (set.per_cpu[cpu].counts()[e].1 as f64).to_bits(),
                    "event {e} cpu {cpu}"
                );
            }
        }
    }

    #[test]
    fn structural_defects_are_rejected() {
        let set = set_of(&[vec![10, 20, 30], vec![11, 19, 31]]);
        let mut payload = Vec::new();
        encode_payload(&mut payload, &set);
        assert!(decode(&payload, 3, 2).is_some(), "clean baseline");
        // Bad directory nibble (width code > 3).
        let mut bad = payload.clone();
        bad[0] = 0x40;
        assert!(decode(&bad, 3, 2).is_none());
        let mut bad = payload.clone();
        bad[0] = 0x04;
        assert!(decode(&bad, 3, 2).is_none());
        // Truncated and padded payloads disagree with the directory.
        assert!(decode(&payload[..payload.len() - 1], 3, 2).is_none());
        let mut long = payload.clone();
        long.push(0);
        assert!(decode(&long, 3, 2).is_none());
        // Payload shorter than the directory itself.
        assert!(decode(&payload[..2], 3, 2).is_none());
    }

    #[test]
    fn i64_min_delta_selects_the_eight_byte_lane_and_roundtrips() {
        // A CPU-over-CPU step of exactly i64::MIN zigzags to u64::MAX —
        // the one value where a sign-magnitude width heuristic would
        // underprice the lane. It must take width code 3 and come back
        // bit-exact through the fused scalar path...
        let base = 3u64;
        let stepped = base.wrapping_add(i64::MIN as u64);
        let set = set_of(&[vec![base, 1, 2], vec![stepped, 1, 2]]);
        let mut payload = Vec::new();
        encode_payload(&mut payload, &set);
        assert_eq!(payload[0] >> 4, 3, "i64::MIN delta must price 8 bytes");
        let out = decode(&payload, 3, 2).expect("fused path");
        assert_eq!(
            out[1].to_bits(),
            (stepped as f64).to_bits(),
            "fused roundtrip"
        );
        // ...and through the bulk kernel path (≥ WIDE_LANES delta
        // lanes: 3 events × 64 deltas = 192), alternating the extreme
        // step so every lane in event 0's plane is ±i64::MIN.
        let cpus = 65usize;
        let rows: Vec<Vec<u64>> = (0..cpus)
            .map(|cpu| {
                let v = if cpu % 2 == 0 { base } else { stepped };
                vec![v, cpu as u64, 7]
            })
            .collect();
        let wide = set_of(&rows);
        let mut payload = Vec::new();
        encode_payload(&mut payload, &wide);
        assert_eq!(payload[0] >> 4, 3);
        let stride = cpus - 1;
        assert!(3 * stride >= WIDE_LANES, "must exercise decode_bulk");
        let out = decode(&payload, 3, cpus).expect("bulk path");
        for cpu in 0..cpus {
            for e in 0..3 {
                assert_eq!(
                    out[e * cpus + cpu].to_bits(),
                    (rows[cpu][e] as f64).to_bits(),
                    "event {e} cpu {cpu}"
                );
            }
        }
    }

    #[test]
    fn corrupt_cpu_count_is_rejected_before_allocating() {
        // A flipped header can claim 65535 CPUs against a tiny payload;
        // the price floor must reject it before sizing scratch.
        let set = set_of(&[vec![10, 20, 30], vec![11, 19, 31]]);
        let mut payload = Vec::new();
        encode_payload(&mut payload, &set);
        let h = header_for(payload.len(), u16::MAX, 3);
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        let mut ck = PayloadChecksum::new(&h);
        assert!(decode_planes(
            Dispatch::active(),
            &payload,
            3,
            65535,
            false,
            &mut out,
            &mut scratch,
            &mut ck
        )
        .is_none());
        assert_eq!(out.capacity(), 0, "no lane-buffer growth on rejection");
        assert_eq!(scratch.capacity(), 0, "no scratch growth on rejection");
    }

    #[test]
    fn single_cpu_and_empty_frames_decode() {
        let set = set_of(&[vec![7, 300, u64::MAX]]);
        let mut payload = Vec::new();
        encode_payload(&mut payload, &set);
        let out = decode(&payload, 3, 1).expect("single CPU");
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].to_bits(), 7.0f64.to_bits());
        assert_eq!(out[1].to_bits(), 300.0f64.to_bits());
        assert_eq!(out[2].to_bits(), (u64::MAX as f64).to_bits());
        // No CPUs: empty payload, nothing decoded.
        let empty = set_of(&[]);
        let mut payload = Vec::new();
        encode_payload(&mut payload, &empty);
        assert!(payload.is_empty());
        assert_eq!(decode(&payload, 0, 0), Some(Vec::new()));
    }
}
