//! **tdp-wire** — zero-copy telemetry wire codec and lock-free
//! streaming ingest for fleet power estimation.
//!
//! A fleet controller doesn't read PMUs itself: machines ship their
//! counter windows over the network, and the estimator's real input is
//! a byte stream. This crate defines that stream and makes decoding it
//! cost about as much as reading local memory:
//!
//! * [`frame`] — the format: 44-byte little-endian headers, two
//!   negotiated sample encodings — LEB128 varints with cross-CPU zigzag
//!   deltas (fleet siblings count nearly alike, so payloads stay
//!   small), and the default column-[`planar`] fixed-width planes whose
//!   decode is branch-free bulk kernels instead of a serial varint
//!   walk — and a mix-based 64-bit checksum that provably catches
//!   every single-bit corruption.
//! * [`WireEncoder`] — the producer side: self-describing streams that
//!   interleave a layout frame whenever a machine's PMU programming
//!   changes, emitting either sample encoding ([`FrameKind`], planar by
//!   default).
//! * [`FrameDecoder`] — the zero-copy consumer: validates frames in
//!   place and reduces them straight to [`SampleBatch`] rows through
//!   the same [`RowAccumulator`] arithmetic in-memory ingestion uses,
//!   memoising event layouts by hash ([`LayoutTable`]). No intermediate
//!   sample structs, no steady-state allocation.
//! * [`stream_window`] — the pipeline: decoder shards on the existing
//!   [`tdp_parallel::WorkerPool`] (machines sharded by id), bounded
//!   lock-free SPSC [`ring`]s, explicit backpressure, and a streamed
//!   result that is bit-identical to serial ingestion for any decoder
//!   count.
//! * [`health`](PipelineHealth) — graceful degradation under a hostile
//!   stream: per-machine [`HealthState`] ledgers, sequence
//!   reset/duplicate detection, [`DegradePolicy`] sanity quarantine,
//!   bounded last-good-row holds, and a per-window counter block in
//!   which every fault is accounted.
//! * [`faults`] — a seeded, deterministic fault injector
//!   ([`FaultPlan`]) that damages encoded windows in replayable ways,
//!   for chaos tests and `repro --faults`.
//!
//! [`SampleBatch`]: tdp_fleet::SampleBatch
//! [`RowAccumulator`]: tdp_fleet::RowAccumulator
//!
//! # Quickstart
//!
//! ```
//! use tdp_fleet::FleetEstimator;
//! use tdp_simsys::{Machine, MachineConfig};
//! use tdp_wire::{ingest_serial, WireEncoder};
//! use trickledown::SystemPowerModel;
//!
//! // Three machines encode their windows onto one wire.
//! let mut enc = WireEncoder::new();
//! for id in 0..3u64 {
//!     let mut m = Machine::new(MachineConfig::default());
//!     for _ in 0..500 {
//!         m.tick();
//!     }
//!     enc.push_sample_set(id, &m.read_counters()).unwrap();
//! }
//! let wire = enc.finish();
//!
//! // The controller decodes the bytes straight into fleet estimates.
//! let mut est = FleetEstimator::with_capacity(SystemPowerModel::paper(), 3);
//! let report = ingest_serial(&wire, 3, &mut est);
//! assert_eq!(report.rows_written, 3);
//! assert_eq!(report.corrupt_frames, 0);
//! assert_eq!(est.estimate().len(), 3);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod varint;

mod decode;
mod encode;
pub mod faults;
mod health;
pub mod planar;
#[allow(unsafe_code)]
pub mod ring;
mod stream;

pub use decode::{CursorItem, DecodeError, Decoded, FrameCursor, FrameDecoder, LayoutTable};
pub use encode::{
    encode_layout_frame, encode_layout_frame_with_decimation, encode_planar_sample_frame,
    encode_sample_frame, EncodeError, WireEncoder,
};
pub use faults::{FaultKind, FaultPlan, FaultedWindow, InjectedFault};
pub use frame::FrameKind;
pub use health::{DegradePolicy, HealthState, PipelineHealth};
pub use stream::{
    ingest_serial, ingest_serial_with, stream_window, stream_window_with, IngestState,
    StreamConfig, StreamReport,
};
