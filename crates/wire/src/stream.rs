//! Streaming wire ingest: sharded decoders → SPSC rings → one consumer
//! writing fleet sample rows.
//!
//! # Topology
//!
//! With `D` decoder shards on a [`WorkerPool`], `D + 1` tasks run under
//! one `par_map`: shard `k` walks the *whole* stream with a
//! [`FrameCursor`] but fully decodes only frames whose
//! `machine_id % D == k` (header-skipping the rest is a length add, so
//! the redundant scans cost little), batching decoded rows into chunks
//! it pushes onto its own bounded [`ring`]; the single consumer task
//! drains all `D` rings round-robin and writes each row at its
//! machine's fixed index with [`SampleBatch::set_row`]. The consumer
//! task is listed first and `D ≤ workers − 1`, so the pool always has a
//! participant for it — a blocking producer can never wait on a
//! consumer that nobody will run. (Corollary: do not call
//! [`stream_window`] from inside a `par_map` closure, where the pool
//! degrades to a serial loop.)
//!
//! # Backpressure
//!
//! Rings are bounded. A producer that finds its ring full observes the
//! occupancy and, by default, yields until the consumer catches up —
//! lossless and deterministic. With
//! [`drop_when_full`](StreamConfig::drop_when_full) it sheds the chunk
//! instead, bounding decoder latency at the price of dropped rows;
//! both pressure events are counted in the [`StreamReport`].
//!
//! # Determinism
//!
//! In lossless mode the streamed result is **bit-identical** for any
//! decoder count, including the serial fused path: a machine's row is
//! produced by [`FrameDecoder`]'s arithmetic (itself bit-identical to
//! in-memory ingestion) from the last frame for that machine in stream
//! order, every machine is owned by exactly one shard, and rows land at
//! fixed indices — so neither sharding nor ring interleaving can
//! reorder any machine's writes.

use crate::decode::{CursorItem, DecodeError, Decoded, FrameCursor, FrameDecoder};
use crate::frame::FrameType;
use crate::health::{DegradePolicy, HealthLedger, HealthState, Hold, SeqNote};
use crate::ring::{ring, Consumer, Producer};
use tdp_fleet::{FleetEstimator, SampleBatch, COLUMNS};
use tdp_parallel::WorkerPool;
use tdp_simd::Dispatch;

/// Tuning for [`stream_window`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Decoder shards; `0` means auto (`workers − 1`). Clamped to
    /// `workers − 1` so the consumer always has a participant; on a
    /// single-worker pool the serial fused path runs instead.
    pub decoders: usize,
    /// Chunks each ring holds before its producer feels backpressure.
    pub ring_capacity: usize,
    /// Rows per chunk (amortises ring traffic).
    pub chunk_rows: usize,
    /// `false` (default): block (yield) on a full ring — lossless,
    /// deterministic. `true`: drop the chunk — bounded latency, lossy,
    /// and dependent on scheduling timing.
    pub drop_when_full: bool,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            decoders: 0,
            ring_capacity: 8,
            chunk_rows: 32,
            drop_when_full: false,
        }
    }
}

/// What happened during one streamed window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamReport {
    /// Decoder shards actually used — the real decode parallelism in
    /// both modes. The serial fused path reports `1`: one decoder ran,
    /// fused with the consumer.
    pub decoders: usize,
    /// Sample frames whose decode was attempted (owned frames only).
    pub sample_frames: u64,
    /// Layout frames accepted.
    pub layout_frames: u64,
    /// Rows written into the batch.
    pub rows_written: u64,
    /// Frames rejected: checksum mismatch or malformed structure.
    pub corrupt_frames: u64,
    /// Framing failures (bad magic/version/type or overrunning length)
    /// that forced a scan for the next frame boundary.
    pub resyncs: u64,
    /// Bytes discarded while resynchronising.
    pub resync_bytes: u64,
    /// Sample frames naming a layout never declared on the stream.
    pub unknown_layout_frames: u64,
    /// Decoded rows for machines beyond the window's machine count.
    pub out_of_range_frames: u64,
    /// Window-sequence regressions: a machine's frame carried a lower
    /// sequence than its last accepted one (reboot / counter reset).
    /// The row is accepted and the machine re-baselined as
    /// [`HealthState::Suspect`].
    pub resets_detected: u64,
    /// Frames re-delivering a machine's already-accepted window
    /// sequence; the redundant row is skipped.
    pub duplicate_windows: u64,
    /// Decoded rows withheld because they failed the
    /// [`DegradePolicy`] sanity bounds.
    pub rows_quarantined: u64,
    /// Rows emitted from a machine's last good window because this
    /// window brought no acceptable fresh row.
    pub rows_held: u64,
    /// Rows reconstructed for machines silent *by protocol* — within
    /// their negotiated sampling decimation (see
    /// [`WireEncoder::set_decimation`](crate::WireEncoder::set_decimation)).
    /// Expected in the steady state of a decimated stream, so not part
    /// of [`PipelineHealth`](crate::PipelineHealth).
    pub rows_reconstructed: u64,
    /// Machines declared [`HealthState::Stale`] this window after
    /// exceeding [`DegradePolicy::max_stale_windows`] (counted once
    /// per outage, not once per silent window).
    pub machines_stale: u64,
    /// Rows shed under backpressure (only with
    /// [`StreamConfig::drop_when_full`]).
    pub dropped_rows: u64,
    /// Full-ring events a producer waited (or dropped) on.
    pub backpressure_events: u64,
}

impl StreamReport {
    /// Adds `o`'s event counters into `self` (all fields except
    /// [`decoders`](Self::decoders), which describes a topology, not a
    /// count) — for aggregating per-shard or per-window reports.
    pub fn absorb(&mut self, o: &StreamReport) {
        self.sample_frames += o.sample_frames;
        self.layout_frames += o.layout_frames;
        self.rows_written += o.rows_written;
        self.corrupt_frames += o.corrupt_frames;
        self.resyncs += o.resyncs;
        self.resync_bytes += o.resync_bytes;
        self.unknown_layout_frames += o.unknown_layout_frames;
        self.out_of_range_frames += o.out_of_range_frames;
        self.resets_detected += o.resets_detected;
        self.duplicate_windows += o.duplicate_windows;
        self.rows_quarantined += o.rows_quarantined;
        self.rows_held += o.rows_held;
        self.rows_reconstructed += o.rows_reconstructed;
        self.machines_stale += o.machines_stale;
        self.dropped_rows += o.dropped_rows;
        self.backpressure_events += o.backpressure_events;
    }

    /// The window's [`PipelineHealth`](crate::PipelineHealth) block —
    /// shorthand for [`PipelineHealth::from_report`](crate::PipelineHealth::from_report).
    pub fn health(&self) -> crate::PipelineHealth {
        crate::PipelineHealth::from_report(self)
    }
}

/// One decoded machine row in flight from a decoder shard to the
/// consumer.
#[derive(Debug, Clone, Copy)]
struct WireRow {
    machine: u64,
    row: [f64; COLUMNS],
}

/// One decoder shard's cross-window state: its [`FrameDecoder`]
/// (layout memo) plus the health ledger for every machine it owns.
///
/// The [`HealthLedger`] is dense, indexed by machine id — ids are
/// `< machines` by the time the degradation ladder runs, so the
/// hot-path lookup is one bounds-checked index instead of a tree walk.
/// A machine the shard has never decoded is exactly one whose ledger
/// `seen` flag is unset (every write path notes the sequence first).
///
/// The remaining vectors are the serial fused path's per-window
/// scratch, retained across windows so the steady state allocates
/// nothing: which machines staged a fresh row into the batch columns
/// this epoch, each staged row's reset flag, and the batched sanity
/// mask. The sharded path leaves them empty.
#[derive(Debug, Default)]
struct ShardState {
    dec: FrameDecoder,
    ledger: HealthLedger,
    pending: Vec<u32>,
    staged_epoch: Vec<u64>,
    staged_reset: Vec<bool>,
    sane_mask: Vec<u8>,
}

/// Ingest state that survives across windows: one [`FrameDecoder`] per
/// shard — so a steady-state stream (layouts announced once, then
/// sample frames only — see [`WireEncoder`](crate::WireEncoder)) pays
/// for layout registration exactly once — plus per-machine health
/// ([`HealthState`]) driving the graceful-degradation ladder: duplicate
/// and reset detection on window sequences, quarantine of rows that
/// fail the [`DegradePolicy`] sanity bounds, bounded last-good-row
/// holds for silent machines, and staleness cut-off.
///
/// Every shard walks the whole stream and registers every layout
/// frame, so shards that existed when a layout was announced all know
/// it. Keep the decoder count stable across a stream: a shard added
/// later (a grown pool) starts with an empty layout table and health
/// ledger, so it reports
/// [`unknown_layout_frames`](StreamReport::unknown_layout_frames) for
/// its machines until layouts are re-announced, and re-learns their
/// health from scratch.
#[derive(Debug, Default)]
pub struct IngestState {
    shards: Vec<ShardState>,
    policy: DegradePolicy,
    epoch: u64,
}

impl IngestState {
    /// State with no layouts registered and the default
    /// [`DegradePolicy`].
    pub fn new() -> Self {
        Self::default()
    }

    /// State enforcing a caller-chosen [`DegradePolicy`].
    pub fn with_policy(policy: DegradePolicy) -> Self {
        Self {
            policy,
            ..Self::default()
        }
    }

    /// The degradation policy this state enforces.
    pub fn policy(&self) -> &DegradePolicy {
        &self.policy
    }

    /// How many windows this state has ingested.
    pub fn windows_ingested(&self) -> u64 {
        self.epoch
    }

    /// The last known [`HealthState`] of `machine`, or `None` if no
    /// shard has ever decoded a row for it.
    pub fn machine_health(&self, machine: u64) -> Option<HealthState> {
        let idx = machine as usize;
        self.shards
            .iter()
            .find(|s| s.ledger.seen(idx))
            .map(|s| s.ledger.state(idx))
    }

    /// Drops every shard decoder's identity-directory memo for
    /// `machine` — the eviction hook for a machine leaving the fleet.
    /// Purely an optimisation-state reset: the machine's next planar
    /// frame takes the full validation path once and re-memoises, with
    /// byte-identical decode results either way.
    pub fn evict_machine_dir(&mut self, machine: u64) {
        for s in &mut self.shards {
            s.dec.evict_dir_memo(machine);
        }
    }

    /// Opens the next ingest window: bumps the epoch and makes sure
    /// `d` shards exist. Returns the new epoch.
    fn begin(&mut self, d: usize) -> u64 {
        self.epoch += 1;
        if self.shards.len() < d {
            self.shards.resize_with(d, ShardState::default);
        }
        self.epoch
    }
}

/// Everything a shard needs to know about the window it is decoding
/// (`Copy`, so each parallel task takes its own).
#[derive(Clone, Copy)]
struct ShardCtx {
    policy: DegradePolicy,
    epoch: u64,
    shard: u64,
    nshards: u64,
    machines: usize,
}

/// Walks the whole stream as shard `ctx.shard` of `ctx.nshards`,
/// decoding owned frames and emitting accepted rows, then runs the
/// hold/staleness pass over owned machines that produced nothing this
/// window. Every shard runs this same function over the same buffer, so
/// all shards agree on framing and ownership; counters for
/// unattributable events (resyncs) are taken by shard 0 alone so
/// fleet-wide sums are exact.
fn run_shard(
    state: &mut ShardState,
    ctx: ShardCtx,
    buf: &[u8],
    mut emit: impl FnMut(WireRow),
) -> StreamReport {
    let mut stats = StreamReport::default();
    let mut cursor = FrameCursor::new(buf);
    while let Some(item) = cursor.next() {
        let (start, header) = match item {
            CursorItem::Resync { skipped } => {
                if ctx.shard == 0 {
                    stats.resyncs += 1;
                    stats.resync_bytes += skipped as u64;
                }
                continue;
            }
            CursorItem::Frame { start, header } => (start, header),
        };
        let mine = header.machine_id % ctx.nshards == ctx.shard;
        match header.frame_type {
            FrameType::Layout => {
                // Every shard registers every layout (any shard may own
                // samples encoded against it); only the owner counts —
                // and only the owner's ledger learns the machine's
                // negotiated decimation, since only it runs the hold
                // pass for that machine.
                match state
                    .dec
                    .decode_frame(&header, cursor.payload(start, &header))
                {
                    Ok(d) => {
                        if mine {
                            stats.layout_frames += 1;
                            let idx = header.machine_id as usize;
                            if let Decoded::Layout { decimation } = d {
                                if idx < ctx.machines {
                                    state.ledger.ensure(idx + 1);
                                    state.ledger.set_decimation(idx, decimation);
                                }
                            }
                        }
                    }
                    Err(_) => {
                        if mine {
                            stats.corrupt_frames += 1;
                        }
                    }
                }
            }
            FrameType::Sample | FrameType::PlanarSample => {
                if !mine {
                    continue;
                }
                stats.sample_frames += 1;
                match state
                    .dec
                    .decode_frame(&header, cursor.payload(start, &header))
                {
                    Ok(Decoded::Row {
                        machine_id,
                        window_seq,
                        row,
                    }) => {
                        if (machine_id as usize) < ctx.machines {
                            state.accept_row(
                                machine_id, &ctx, window_seq, &row, &mut stats, &mut emit,
                            );
                        } else {
                            stats.out_of_range_frames += 1;
                        }
                    }
                    Ok(Decoded::Layout { .. }) => {}
                    Err(DecodeError::UnknownLayout) => stats.unknown_layout_frames += 1,
                    Err(_) => stats.corrupt_frames += 1,
                }
            }
        }
    }
    hold_pass(state, &ctx, &mut stats, &mut emit);
    stats
}

impl ShardState {
    /// Screens one decoded in-range row through the degradation
    /// ladder: duplicate skip, reset re-baseline, sanity quarantine,
    /// then emission with the machine's ledger updated.
    fn accept_row(
        &mut self,
        machine: u64,
        ctx: &ShardCtx,
        window_seq: u64,
        row: &[f64; COLUMNS],
        stats: &mut StreamReport,
        emit: &mut impl FnMut(WireRow),
    ) {
        let idx = machine as usize;
        self.ledger.ensure(idx + 1);
        let reset = match self.ledger.note_seq(idx, window_seq) {
            SeqNote::Duplicate => {
                // Same window delivered again (duplicated frame or
                // replayed chunk): the first delivery already decided
                // this window.
                stats.duplicate_windows += 1;
                return;
            }
            SeqNote::Reset => {
                // The producer's sequence went backwards: reboot or
                // counter reset. Counters are read-and-clear, so the
                // row is still a valid per-window delta — accept it,
                // re-baseline the sequence, and flag the machine.
                stats.resets_detected += 1;
                true
            }
            SeqNote::Fresh => false,
        };
        if !ctx.policy.row_is_sane(row) {
            // The bytes arrived as sent (checksummed) but describe an
            // impossible machine: never let it touch the estimator.
            stats.rows_quarantined += 1;
            self.ledger.quarantine(idx);
            return;
        }
        emit(WireRow { machine, row: *row });
        self.ledger.commit_row(idx, ctx.epoch, row, reset);
    }
}

/// After the cursor walk: every owned machine that contributed nothing
/// this window is either carried at its last good row (bounded by
/// [`DegradePolicy::max_stale_windows`]) or declared stale.
fn hold_pass(
    state: &mut ShardState,
    ctx: &ShardCtx,
    stats: &mut StreamReport,
    emit: &mut impl FnMut(WireRow),
) {
    for idx in 0..state.ledger.len() {
        let machine = idx as u64;
        if !state.ledger.seen(idx) // dense ledger slot never decoded into
            || machine % ctx.nshards != ctx.shard
            || idx >= ctx.machines
            || state.ledger.emitted_this(idx, ctx.epoch)
        {
            continue;
        }
        match state
            .ledger
            .hold(idx, ctx.epoch, ctx.policy.max_stale_windows)
        {
            Hold::Reconstructed(row) => {
                emit(WireRow { machine, row });
                stats.rows_reconstructed += 1;
            }
            Hold::Held(row) => {
                emit(WireRow { machine, row });
                stats.rows_held += 1;
            }
            Hold::NewlyStale => stats.machines_stale += 1,
            Hold::AlreadyStale => {}
        }
    }
}

/// Ships `chunk` to the consumer, observing ring occupancy for
/// backpressure. Returns `(dropped_rows, pressure_events)`.
fn ship(
    producer: &mut Producer<Vec<WireRow>>,
    chunk: Vec<WireRow>,
    drop_when_full: bool,
) -> (u64, u64) {
    let rows = chunk.len() as u64;
    match producer.push(chunk) {
        Ok(()) => (0, 0),
        Err(back) if drop_when_full => {
            drop(back);
            (rows, 1)
        }
        Err(back) => {
            let mut c = back;
            loop {
                std::thread::yield_now();
                match producer.push(c) {
                    Ok(()) => return (0, 1),
                    Err(b) => c = b,
                }
            }
        }
    }
}

/// Serial fused ingest: decode frames and write rows straight into the
/// estimator's batch — no threads, no rings, no allocation in the
/// steady state. This is the single-worker fallback of
/// [`stream_window`] and the best-latency path when the stream is
/// already in memory. Uses a fresh decoder, so `buf` must be
/// self-describing; use [`ingest_serial_with`] to carry layouts across
/// windows.
pub fn ingest_serial(buf: &[u8], machines: usize, est: &mut FleetEstimator) -> StreamReport {
    ingest_serial_with(&mut IngestState::new(), buf, machines, est)
}

/// [`ingest_serial`] with persistent decoder state: layouts registered
/// by earlier windows (or earlier in this one) stay known, so
/// steady-state windows can carry sample frames only.
///
/// This is the fused hot path, and it is *batched*: the cursor walk
/// delta-unfolds each accepted frame straight into the batch columns
/// (no intermediate row copy — checksum verification already overlaps
/// the varint walk inside the decoder), sequence bookkeeping runs per
/// frame, and the sanity screen runs once at the end as thirteen
/// AND-accumulating column passes — [`DegradePolicy`]'s batched mask,
/// bit-identical to the per-row ladder that the sharded path still
/// runs as the semantic reference. A perfectly clean window — every
/// machine exactly one fresh sane row, no resets — commits the whole
/// health ledger with column memcpys; any degradation falls back to
/// per-machine resolution with identical transitions and counters
/// (pinned serial-vs-sharded by the chaos property suite).
pub fn ingest_serial_with(
    state: &mut IngestState,
    buf: &[u8],
    machines: usize,
    est: &mut FleetEstimator,
) -> StreamReport {
    let epoch = state.begin(1);
    let policy = state.policy;
    let ShardState {
        dec,
        ledger,
        pending,
        staged_epoch,
        staged_reset,
        sane_mask,
    } = &mut state.shards[0];
    ledger.ensure(machines);
    if staged_epoch.len() < machines {
        // Stale epochs from earlier (possibly smaller) windows are
        // harmless: the epoch strictly increases, so they never match.
        staged_epoch.resize(machines, 0);
        staged_reset.resize(machines, false);
    }
    pending.clear();

    est.begin_window();
    let batch = est.batch_mut();
    batch.resize_rows(machines);
    let mut cols = batch.columns_mut();

    let mut stats = StreamReport {
        decoders: 1,
        ..StreamReport::default()
    };
    let mut resolved_early = false;
    let mut any_reset = false;

    // Phase 1: one pass over the frames, unfolding accepted samples
    // straight into the batch columns and deferring their sanity
    // verdicts to the batched screen below.
    let mut cursor = FrameCursor::new(buf);
    while let Some(item) = cursor.next() {
        let (start, header) = match item {
            CursorItem::Resync { skipped } => {
                stats.resyncs += 1;
                stats.resync_bytes += skipped as u64;
                continue;
            }
            CursorItem::Frame { start, header } => (start, header),
        };
        match header.frame_type {
            FrameType::Layout => match dec.decode_frame(&header, cursor.payload(start, &header)) {
                Ok(d) => {
                    stats.layout_frames += 1;
                    if let Decoded::Layout { decimation } = d {
                        let idx = header.machine_id as usize;
                        if idx < machines {
                            ledger.set_decimation(idx, decimation);
                        }
                    }
                }
                Err(_) => stats.corrupt_frames += 1,
            },
            FrameType::Sample | FrameType::PlanarSample => {
                stats.sample_frames += 1;
                let pend = match dec.decode_sample_pending(&header, cursor.payload(start, &header))
                {
                    Ok(p) => p,
                    Err(DecodeError::UnknownLayout) => {
                        stats.unknown_layout_frames += 1;
                        continue;
                    }
                    Err(_) => {
                        stats.corrupt_frames += 1;
                        continue;
                    }
                };
                let idx = pend.machine_id as usize;
                if idx >= machines {
                    stats.out_of_range_frames += 1;
                    continue;
                }
                let reset = match ledger.note_seq(idx, pend.window_seq) {
                    SeqNote::Duplicate => {
                        stats.duplicate_windows += 1;
                        continue;
                    }
                    SeqNote::Reset => {
                        stats.resets_detected += 1;
                        any_reset = true;
                        true
                    }
                    SeqNote::Fresh => false,
                };
                if staged_epoch[idx] == epoch {
                    // A second fresh frame for an already-staged
                    // machine: resolve the staged row now, per row —
                    // exactly what the unbatched ladder did on its
                    // delivery — before the new frame overwrites its
                    // column slot.
                    resolved_early = true;
                    let mut row = [0.0; COLUMNS];
                    for (v, c) in row.iter_mut().zip(cols.iter()) {
                        *v = c[idx];
                    }
                    if policy.row_is_sane(&row) {
                        ledger.commit_row(idx, epoch, &row, staged_reset[idx]);
                        stats.rows_written += 1;
                    } else {
                        stats.rows_quarantined += 1;
                        ledger.quarantine(idx);
                    }
                } else {
                    staged_epoch[idx] = epoch;
                    pending.push(idx as u32);
                }
                staged_reset[idx] = reset;
                dec.fold_into(&pend, &mut cols, idx);
            }
        }
    }

    // Phase 2: the batched sanity screen over the full columns.
    policy.sane_mask(Dispatch::active(), &cols, sane_mask);

    // Phase 3: resolve the staged rows. A clean window commits the
    // whole ledger in bulk; anything else resolves machine by machine.
    let clean = !resolved_early
        && !any_reset
        && pending.len() == machines
        && sane_mask.iter().all(|&m| m != 0);
    if clean {
        ledger.commit_all(epoch, &cols, machines);
        stats.rows_written += machines as u64;
    } else {
        for &idx in pending.iter() {
            let idx = idx as usize;
            if sane_mask[idx] != 0 {
                ledger.commit_from_cols(idx, epoch, &cols, staged_reset[idx]);
                stats.rows_written += 1;
            } else {
                stats.rows_quarantined += 1;
                ledger.quarantine(idx);
                if ledger.emitted_this(idx, epoch) {
                    // The quarantined frame overwrote a row this window
                    // already emitted (a resolve-early above) — put the
                    // last good row back.
                    ledger.restore_into(idx, &mut cols);
                } else {
                    // Never emitted this window: the slot must read as
                    // the zeros `resize_rows` left (the unbatched path
                    // never wrote it), pending a possible hold below.
                    for c in cols.iter_mut() {
                        c[idx] = 0.0;
                    }
                }
            }
        }
        // Phase 4: hold / staleness for machines that contributed
        // nothing this window (a clean window has none).
        for idx in 0..machines {
            if !ledger.seen(idx) || ledger.emitted_this(idx, epoch) {
                continue;
            }
            match ledger.hold(idx, epoch, policy.max_stale_windows) {
                Hold::Reconstructed(row) => {
                    for (c, v) in cols.iter_mut().zip(row) {
                        c[idx] = v;
                    }
                    stats.rows_reconstructed += 1;
                    stats.rows_written += 1;
                }
                Hold::Held(row) => {
                    for (c, v) in cols.iter_mut().zip(row) {
                        c[idx] = v;
                    }
                    stats.rows_held += 1;
                    stats.rows_written += 1;
                }
                Hold::NewlyStale => stats.machines_stale += 1,
                Hold::AlreadyStale => {}
            }
        }
    }
    stats
}

/// Streams one window of wire bytes into `est`'s batch across the
/// pool: `D` decoder shards feeding one consumer through bounded SPSC
/// rings (see the [module docs](self) for topology, backpressure and
/// determinism). Call [`FleetEstimator::estimate`] afterwards. Uses
/// fresh decoders, so `buf` must be self-describing; use
/// [`stream_window_with`] to carry layouts across windows.
pub fn stream_window(
    pool: &WorkerPool,
    cfg: &StreamConfig,
    buf: &[u8],
    machines: usize,
    est: &mut FleetEstimator,
) -> StreamReport {
    stream_window_with(&mut IngestState::new(), pool, cfg, buf, machines, est)
}

/// [`stream_window`] with persistent per-shard decoder state (see
/// [`IngestState`] for the layout-visibility contract when the shard
/// count changes between windows).
pub fn stream_window_with(
    state: &mut IngestState,
    pool: &WorkerPool,
    cfg: &StreamConfig,
    buf: &[u8],
    machines: usize,
    est: &mut FleetEstimator,
) -> StreamReport {
    let requested = if cfg.decoders == 0 {
        usize::MAX
    } else {
        cfg.decoders
    };
    let d = requested.min(pool.workers().saturating_sub(1));
    if d == 0 {
        return ingest_serial_with(state, buf, machines, est);
    }

    let epoch = state.begin(d);
    let policy = state.policy;
    est.begin_window();
    let batch = est.batch_mut();
    batch.resize_rows(machines);

    enum Task<'a> {
        Consume {
            consumers: Vec<Consumer<Vec<WireRow>>>,
            batch: &'a mut SampleBatch,
        },
        Decode {
            ctx: ShardCtx,
            producer: Producer<Vec<WireRow>>,
            shard_state: &'a mut ShardState,
        },
    }

    enum TaskOut {
        Rows(u64),
        Stats(StreamReport),
    }

    let mut consumers = Vec::with_capacity(d);
    let mut tasks: Vec<Task> = Vec::with_capacity(d + 1);
    let mut producers = Vec::with_capacity(d);
    for _ in 0..d {
        let (tx, rx) = ring(cfg.ring_capacity);
        producers.push(tx);
        consumers.push(rx);
    }
    // Consumer first: the submitting thread claims tasks in order, so
    // the drain side is running before any producer can fill a ring.
    tasks.push(Task::Consume { consumers, batch });
    for ((shard, producer), shard_state) in producers
        .into_iter()
        .enumerate()
        .zip(state.shards[..d].iter_mut())
    {
        tasks.push(Task::Decode {
            ctx: ShardCtx {
                policy,
                epoch,
                shard: shard as u64,
                nshards: d as u64,
                machines,
            },
            producer,
            shard_state,
        });
    }

    let chunk_rows = cfg.chunk_rows.max(1);
    let drop_when_full = cfg.drop_when_full;
    let outs = pool.par_map(tasks, |task| match task {
        Task::Consume {
            mut consumers,
            batch,
        } => {
            let mut rows = 0u64;
            while !consumers.is_empty() {
                let mut progressed = false;
                consumers.retain_mut(|c| {
                    while let Some(chunk) = c.pop() {
                        progressed = true;
                        for r in chunk {
                            batch.set_row(r.machine as usize, r.row);
                            rows += 1;
                        }
                    }
                    !c.is_drained()
                });
                if !progressed && !consumers.is_empty() {
                    std::thread::yield_now();
                }
            }
            TaskOut::Rows(rows)
        }
        Task::Decode {
            ctx,
            mut producer,
            shard_state,
        } => {
            let mut chunk: Vec<WireRow> = Vec::with_capacity(chunk_rows);
            let mut dropped = 0u64;
            let mut pressure = 0u64;
            let mut stats = run_shard(shard_state, ctx, buf, |r| {
                chunk.push(r);
                if chunk.len() == chunk_rows {
                    let full = std::mem::replace(&mut chunk, Vec::with_capacity(chunk_rows));
                    let (dr, pr) = ship(&mut producer, full, drop_when_full);
                    dropped += dr;
                    pressure += pr;
                }
            });
            if !chunk.is_empty() {
                let (dr, pr) = ship(&mut producer, chunk, drop_when_full);
                dropped += dr;
                pressure += pr;
            }
            producer.close();
            stats.dropped_rows = dropped;
            stats.backpressure_events = pressure;
            TaskOut::Stats(stats)
        }
    });

    let mut report = StreamReport {
        decoders: d,
        ..StreamReport::default()
    };
    for out in &outs {
        match out {
            TaskOut::Rows(r) => report.rows_written += r,
            TaskOut::Stats(s) => report.absorb(s),
        }
    }
    report
}
