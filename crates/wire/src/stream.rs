//! Streaming wire ingest: sharded decoders → SPSC rings → one consumer
//! writing fleet sample rows.
//!
//! # Topology
//!
//! With `D` decoder shards on a [`WorkerPool`], `D + 1` tasks run under
//! one `par_map`: shard `k` walks the *whole* stream with a
//! [`FrameCursor`] but fully decodes only frames whose
//! `machine_id % D == k` (header-skipping the rest is a length add, so
//! the redundant scans cost little), batching decoded rows into chunks
//! it pushes onto its own bounded [`ring`]; the single consumer task
//! drains all `D` rings round-robin and writes each row at its
//! machine's fixed index with [`SampleBatch::set_row`]. The consumer
//! task is listed first and `D ≤ workers − 1`, so the pool always has a
//! participant for it — a blocking producer can never wait on a
//! consumer that nobody will run. (Corollary: do not call
//! [`stream_window`] from inside a `par_map` closure, where the pool
//! degrades to a serial loop.)
//!
//! # Backpressure
//!
//! Rings are bounded. A producer that finds its ring full observes the
//! occupancy and, by default, yields until the consumer catches up —
//! lossless and deterministic. With
//! [`drop_when_full`](StreamConfig::drop_when_full) it sheds the chunk
//! instead, bounding decoder latency at the price of dropped rows;
//! both pressure events are counted in the [`StreamReport`].
//!
//! # Determinism
//!
//! In lossless mode the streamed result is **bit-identical** for any
//! decoder count, including the serial fused path: a machine's row is
//! produced by [`FrameDecoder`]'s arithmetic (itself bit-identical to
//! in-memory ingestion) from the last frame for that machine in stream
//! order, every machine is owned by exactly one shard, and rows land at
//! fixed indices — so neither sharding nor ring interleaving can
//! reorder any machine's writes.

use crate::decode::{CursorItem, DecodeError, Decoded, FrameCursor, FrameDecoder};
use crate::frame::FrameType;
use crate::ring::{ring, Consumer, Producer};
use tdp_fleet::{FleetEstimator, SampleBatch, COLUMNS};
use tdp_parallel::WorkerPool;

/// Tuning for [`stream_window`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Decoder shards; `0` means auto (`workers − 1`). Clamped to
    /// `workers − 1` so the consumer always has a participant; on a
    /// single-worker pool the serial fused path runs instead.
    pub decoders: usize,
    /// Chunks each ring holds before its producer feels backpressure.
    pub ring_capacity: usize,
    /// Rows per chunk (amortises ring traffic).
    pub chunk_rows: usize,
    /// `false` (default): block (yield) on a full ring — lossless,
    /// deterministic. `true`: drop the chunk — bounded latency, lossy,
    /// and dependent on scheduling timing.
    pub drop_when_full: bool,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            decoders: 0,
            ring_capacity: 8,
            chunk_rows: 32,
            drop_when_full: false,
        }
    }
}

/// What happened during one streamed window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamReport {
    /// Decoder shards actually used (`0` = serial fused path).
    pub decoders: usize,
    /// Sample frames whose decode was attempted (owned frames only).
    pub sample_frames: u64,
    /// Layout frames accepted.
    pub layout_frames: u64,
    /// Rows written into the batch.
    pub rows_written: u64,
    /// Frames rejected: checksum mismatch or malformed structure.
    pub corrupt_frames: u64,
    /// Framing failures (bad magic/version/type or overrunning length)
    /// that forced a scan for the next frame boundary.
    pub resyncs: u64,
    /// Bytes discarded while resynchronising.
    pub resync_bytes: u64,
    /// Sample frames naming a layout never declared on the stream.
    pub unknown_layout_frames: u64,
    /// Decoded rows for machines beyond the window's machine count.
    pub out_of_range_frames: u64,
    /// Rows shed under backpressure (only with
    /// [`StreamConfig::drop_when_full`]).
    pub dropped_rows: u64,
    /// Full-ring events a producer waited (or dropped) on.
    pub backpressure_events: u64,
}

impl StreamReport {
    /// Adds `o`'s event counters into `self` (all fields except
    /// [`decoders`](Self::decoders), which describes a topology, not a
    /// count) — for aggregating per-shard or per-window reports.
    pub fn absorb(&mut self, o: &StreamReport) {
        self.sample_frames += o.sample_frames;
        self.layout_frames += o.layout_frames;
        self.rows_written += o.rows_written;
        self.corrupt_frames += o.corrupt_frames;
        self.resyncs += o.resyncs;
        self.resync_bytes += o.resync_bytes;
        self.unknown_layout_frames += o.unknown_layout_frames;
        self.out_of_range_frames += o.out_of_range_frames;
        self.dropped_rows += o.dropped_rows;
        self.backpressure_events += o.backpressure_events;
    }
}

/// One decoded machine row in flight from a decoder shard to the
/// consumer.
#[derive(Debug, Clone, Copy)]
struct WireRow {
    machine: u64,
    row: [f64; COLUMNS],
}

/// Decoder state that survives across windows: one [`FrameDecoder`]
/// per shard, so a steady-state stream (layouts announced once, then
/// sample frames only — see [`WireEncoder`](crate::WireEncoder)) pays
/// for layout registration exactly once, not per window.
///
/// Every shard walks the whole stream and registers every layout
/// frame, so shards that existed when a layout was announced all know
/// it. Keep the decoder count stable across a stream: a shard added
/// later (a grown pool) starts with an empty table and reports
/// [`unknown_layout_frames`](StreamReport::unknown_layout_frames) for
/// its machines until layouts are re-announced.
#[derive(Debug, Default)]
pub struct IngestState {
    decoders: Vec<FrameDecoder>,
}

impl IngestState {
    /// State with no layouts registered.
    pub fn new() -> Self {
        Self::default()
    }

    fn shards(&mut self, d: usize) -> &mut [FrameDecoder] {
        if self.decoders.len() < d {
            self.decoders.resize_with(d, FrameDecoder::default);
        }
        &mut self.decoders[..d]
    }
}

/// Walks the whole stream as shard `shard` of `nshards`, decoding owned
/// frames and emitting in-range rows. Every shard runs this same
/// function over the same buffer, so all shards agree on framing and
/// ownership; counters for unattributable events (resyncs) are taken by
/// shard 0 alone so fleet-wide sums are exact.
fn run_shard(
    dec: &mut FrameDecoder,
    buf: &[u8],
    shard: u64,
    nshards: u64,
    machines: usize,
    mut emit: impl FnMut(WireRow),
) -> StreamReport {
    let mut stats = StreamReport::default();
    let mut cursor = FrameCursor::new(buf);
    while let Some(item) = cursor.next() {
        let (start, header) = match item {
            CursorItem::Resync { skipped } => {
                if shard == 0 {
                    stats.resyncs += 1;
                    stats.resync_bytes += skipped as u64;
                }
                continue;
            }
            CursorItem::Frame { start, header } => (start, header),
        };
        let mine = header.machine_id % nshards == shard;
        match header.frame_type {
            FrameType::Layout => {
                // Every shard registers every layout (any shard may own
                // samples encoded against it); only the owner counts.
                match dec.decode_frame(&header, cursor.payload(start, &header)) {
                    Ok(_) => {
                        if mine {
                            stats.layout_frames += 1;
                        }
                    }
                    Err(_) => {
                        if mine {
                            stats.corrupt_frames += 1;
                        }
                    }
                }
            }
            FrameType::Sample => {
                if !mine {
                    continue;
                }
                stats.sample_frames += 1;
                match dec.decode_frame(&header, cursor.payload(start, &header)) {
                    Ok(Decoded::Row {
                        machine_id, row, ..
                    }) => {
                        if (machine_id as usize) < machines {
                            emit(WireRow {
                                machine: machine_id,
                                row,
                            });
                        } else {
                            stats.out_of_range_frames += 1;
                        }
                    }
                    Ok(Decoded::Layout) => {}
                    Err(DecodeError::UnknownLayout) => stats.unknown_layout_frames += 1,
                    Err(_) => stats.corrupt_frames += 1,
                }
            }
        }
    }
    stats
}

/// Ships `chunk` to the consumer, observing ring occupancy for
/// backpressure. Returns `(dropped_rows, pressure_events)`.
fn ship(
    producer: &mut Producer<Vec<WireRow>>,
    chunk: Vec<WireRow>,
    drop_when_full: bool,
) -> (u64, u64) {
    let rows = chunk.len() as u64;
    match producer.push(chunk) {
        Ok(()) => (0, 0),
        Err(back) if drop_when_full => {
            drop(back);
            (rows, 1)
        }
        Err(back) => {
            let mut c = back;
            loop {
                std::thread::yield_now();
                match producer.push(c) {
                    Ok(()) => return (0, 1),
                    Err(b) => c = b,
                }
            }
        }
    }
}

/// Serial fused ingest: decode frames and write rows straight into the
/// estimator's batch — no threads, no rings, no allocation in the
/// steady state. This is the single-worker fallback of
/// [`stream_window`] and the best-latency path when the stream is
/// already in memory. Uses a fresh decoder, so `buf` must be
/// self-describing; use [`ingest_serial_with`] to carry layouts across
/// windows.
pub fn ingest_serial(buf: &[u8], machines: usize, est: &mut FleetEstimator) -> StreamReport {
    ingest_serial_with(&mut IngestState::new(), buf, machines, est)
}

/// [`ingest_serial`] with persistent decoder state: layouts registered
/// by earlier windows (or earlier in this one) stay known, so
/// steady-state windows can carry sample frames only.
pub fn ingest_serial_with(
    state: &mut IngestState,
    buf: &[u8],
    machines: usize,
    est: &mut FleetEstimator,
) -> StreamReport {
    let dec = &mut state.shards(1)[0];
    est.begin_window();
    let batch = est.batch_mut();
    batch.resize_rows(machines);
    let mut rows = 0u64;
    let mut stats = run_shard(dec, buf, 0, 1, machines, |r| {
        batch.set_row(r.machine as usize, r.row);
        rows += 1;
    });
    stats.rows_written = rows;
    stats.decoders = 0;
    stats
}

/// Streams one window of wire bytes into `est`'s batch across the
/// pool: `D` decoder shards feeding one consumer through bounded SPSC
/// rings (see the [module docs](self) for topology, backpressure and
/// determinism). Call [`FleetEstimator::estimate`] afterwards. Uses
/// fresh decoders, so `buf` must be self-describing; use
/// [`stream_window_with`] to carry layouts across windows.
pub fn stream_window(
    pool: &WorkerPool,
    cfg: &StreamConfig,
    buf: &[u8],
    machines: usize,
    est: &mut FleetEstimator,
) -> StreamReport {
    stream_window_with(&mut IngestState::new(), pool, cfg, buf, machines, est)
}

/// [`stream_window`] with persistent per-shard decoder state (see
/// [`IngestState`] for the layout-visibility contract when the shard
/// count changes between windows).
pub fn stream_window_with(
    state: &mut IngestState,
    pool: &WorkerPool,
    cfg: &StreamConfig,
    buf: &[u8],
    machines: usize,
    est: &mut FleetEstimator,
) -> StreamReport {
    let requested = if cfg.decoders == 0 {
        usize::MAX
    } else {
        cfg.decoders
    };
    let d = requested.min(pool.workers().saturating_sub(1));
    if d == 0 {
        return ingest_serial_with(state, buf, machines, est);
    }

    est.begin_window();
    let batch = est.batch_mut();
    batch.resize_rows(machines);

    enum Task<'a> {
        Consume {
            consumers: Vec<Consumer<Vec<WireRow>>>,
            batch: &'a mut SampleBatch,
        },
        Decode {
            shard: u64,
            producer: Producer<Vec<WireRow>>,
            dec: &'a mut FrameDecoder,
        },
    }

    enum TaskOut {
        Rows(u64),
        Stats(StreamReport),
    }

    let mut consumers = Vec::with_capacity(d);
    let mut tasks: Vec<Task> = Vec::with_capacity(d + 1);
    let mut producers = Vec::with_capacity(d);
    for _ in 0..d {
        let (tx, rx) = ring(cfg.ring_capacity);
        producers.push(tx);
        consumers.push(rx);
    }
    // Consumer first: the submitting thread claims tasks in order, so
    // the drain side is running before any producer can fill a ring.
    tasks.push(Task::Consume { consumers, batch });
    for ((shard, producer), dec) in producers
        .into_iter()
        .enumerate()
        .zip(state.shards(d).iter_mut())
    {
        tasks.push(Task::Decode {
            shard: shard as u64,
            producer,
            dec,
        });
    }

    let chunk_rows = cfg.chunk_rows.max(1);
    let drop_when_full = cfg.drop_when_full;
    let outs = pool.par_map(tasks, |task| match task {
        Task::Consume {
            mut consumers,
            batch,
        } => {
            let mut rows = 0u64;
            while !consumers.is_empty() {
                let mut progressed = false;
                consumers.retain_mut(|c| {
                    while let Some(chunk) = c.pop() {
                        progressed = true;
                        for r in chunk {
                            batch.set_row(r.machine as usize, r.row);
                            rows += 1;
                        }
                    }
                    !c.is_drained()
                });
                if !progressed && !consumers.is_empty() {
                    std::thread::yield_now();
                }
            }
            TaskOut::Rows(rows)
        }
        Task::Decode {
            shard,
            mut producer,
            dec,
        } => {
            let mut chunk: Vec<WireRow> = Vec::with_capacity(chunk_rows);
            let mut dropped = 0u64;
            let mut pressure = 0u64;
            let mut stats = run_shard(dec, buf, shard, d as u64, machines, |r| {
                chunk.push(r);
                if chunk.len() == chunk_rows {
                    let full = std::mem::replace(&mut chunk, Vec::with_capacity(chunk_rows));
                    let (dr, pr) = ship(&mut producer, full, drop_when_full);
                    dropped += dr;
                    pressure += pr;
                }
            });
            if !chunk.is_empty() {
                let (dr, pr) = ship(&mut producer, chunk, drop_when_full);
                dropped += dr;
                pressure += pr;
            }
            producer.close();
            stats.dropped_rows = dropped;
            stats.backpressure_events = pressure;
            TaskOut::Stats(stats)
        }
    });

    let mut report = StreamReport {
        decoders: d,
        ..StreamReport::default()
    };
    for out in &outs {
        match out {
            TaskOut::Rows(r) => report.rows_written += r,
            TaskOut::Stats(s) => report.absorb(s),
        }
    }
    report
}
