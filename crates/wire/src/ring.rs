//! A bounded lock-free single-producer/single-consumer ring.
//!
//! The classic Lamport queue: the producer owns `tail`, the consumer
//! owns `head`, each publishes its index with a release store and reads
//! the other's with an acquire load, so the slot an index hands over is
//! always fully written (or fully drained) before the other side
//! touches it. No CAS, no locks, no allocation after construction.
//!
//! This is the only module in the crate (and the workspace outside
//! `tdp-parallel`'s lifetime erasure) that uses `unsafe`; the safety
//! argument is confined to the slot-handover protocol documented on
//! [`push`](Producer::push) and [`pop`](Consumer::pop). Endpoint
//! exclusivity is enforced by the type system: [`Producer`] and
//! [`Consumer`] are not `Clone`, and both methods take `&mut self`.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

struct Ring<T> {
    mask: usize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next index the consumer will pop. Written only by the consumer.
    head: AtomicUsize,
    /// Next index the producer will fill. Written only by the producer.
    tail: AtomicUsize,
    closed: AtomicBool,
}

// SAFETY: the ring is shared between exactly one producer and one
// consumer thread; all slot accesses are ordered by the head/tail
// acquire/release protocol below, so sending the (T: Send) contents
// across threads is sound.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Both endpoints are gone (Arc refcount hit zero), so plain
        // loads are sufficient and the occupied range is stable.
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        let mut i = head;
        while i != tail {
            // SAFETY: indices in [head, tail) were written by a push
            // and never popped.
            unsafe { (*self.slots[i & self.mask].get()).assume_init_drop() };
            i = i.wrapping_add(1);
        }
    }
}

/// Creates a ring holding at most `capacity` items (rounded up to a
/// power of two, minimum 2).
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let ring = Arc::new(Ring {
        mask: cap - 1,
        slots: (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect(),
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        closed: AtomicBool::new(false),
    });
    (
        Producer {
            ring: Arc::clone(&ring),
        },
        Consumer { ring },
    )
}

/// The sending endpoint. Dropping it closes the ring.
pub struct Producer<T> {
    ring: Arc<Ring<T>>,
}

impl<T> Producer<T> {
    /// Attempts to enqueue `v`; hands it back if the ring is full (the
    /// backpressure signal — the caller decides whether to spin, yield
    /// or drop).
    ///
    /// # Errors
    ///
    /// Returns `Err(v)` when the ring is at capacity.
    pub fn push(&mut self, v: T) -> Result<(), T> {
        let tail = self.ring.tail.load(Ordering::Relaxed);
        let head = self.ring.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > self.ring.mask {
            return Err(v);
        }
        // SAFETY: tail − head ≤ mask, so slot (tail & mask) is outside
        // the occupied range [head, tail): the consumer finished with
        // it (its head release-store happened-before our acquire load),
        // and only this producer writes slots.
        unsafe { (*self.ring.slots[tail & self.ring.mask].get()).write(v) };
        self.ring
            .tail
            .store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Items currently queued — how far ahead of the consumer this
    /// producer is running (the backpressure observable).
    pub fn occupancy(&self) -> usize {
        self.ring
            .tail
            .load(Ordering::Relaxed)
            .wrapping_sub(self.ring.head.load(Ordering::Acquire))
    }

    /// Marks the stream complete; the consumer drains what is queued
    /// and then reports [`Consumer::is_drained`]. Dropping the producer
    /// closes implicitly (panic safety: an aborted decoder never wedges
    /// its consumer).
    pub fn close(&mut self) {
        self.ring.closed.store(true, Ordering::Release);
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.close();
    }
}

/// The receiving endpoint.
pub struct Consumer<T> {
    ring: Arc<Ring<T>>,
}

impl<T> Consumer<T> {
    /// Dequeues the oldest item, or `None` if the ring is currently
    /// empty (which does not mean the stream is over — see
    /// [`is_drained`](Self::is_drained)).
    pub fn pop(&mut self) -> Option<T> {
        let head = self.ring.head.load(Ordering::Relaxed);
        let tail = self.ring.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: head < tail, so slot (head & mask) was fully written
        // by the producer (its tail release-store happened-before our
        // acquire load) and has not been popped (only this consumer
        // advances head).
        let v = unsafe { (*self.ring.slots[head & self.ring.mask].get()).assume_init_read() };
        self.ring
            .head
            .store(head.wrapping_add(1), Ordering::Release);
        Some(v)
    }

    /// Whether the producer closed the stream *and* everything it
    /// pushed has been popped. Reads `closed` before re-checking
    /// emptiness, so a close racing with final pushes is never
    /// misreported: items pushed before `close` are visible by the
    /// time `closed` reads true.
    pub fn is_drained(&self) -> bool {
        let closed = self.ring.closed.load(Ordering::Acquire);
        closed && self.ring.head.load(Ordering::Relaxed) == self.ring.tail.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity_bound() {
        let (mut tx, mut rx) = ring::<u32>(4);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(99), "full ring refuses");
        assert_eq!(tx.occupancy(), 4);
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
        assert!(!rx.is_drained(), "open stream is not drained");
        tx.close();
        assert!(rx.is_drained());
    }

    #[test]
    fn capacity_rounds_up() {
        let (mut tx, _rx) = ring::<u8>(5);
        for i in 0..8 {
            tx.push(i).unwrap();
        }
        assert!(tx.push(8).is_err());
    }

    #[test]
    fn dropping_the_producer_closes() {
        let (tx, mut rx) = ring::<u8>(2);
        drop(tx);
        assert!(rx.is_drained());
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn unread_items_are_dropped_with_the_ring() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut tx, rx) = ring::<Counted>(4);
        tx.push(Counted).unwrap();
        tx.push(Counted).unwrap();
        drop(tx);
        drop(rx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn cross_thread_stream_preserves_every_item() {
        let (mut tx, mut rx) = ring::<u64>(8);
        let n = 10_000u64;
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                let mut v = i;
                while let Err(back) = tx.push(v) {
                    v = back;
                    std::thread::yield_now();
                }
            }
        });
        let mut expect = 0u64;
        loop {
            match rx.pop() {
                Some(v) => {
                    assert_eq!(v, expect);
                    expect += 1;
                }
                None if rx.is_drained() => break,
                None => std::thread::yield_now(),
            }
        }
        assert_eq!(expect, n);
        producer.join().unwrap();
    }
}
