//! Zero-copy frame decoding straight into fleet sample rows.
//!
//! [`FrameDecoder`] never materialises an intermediate `SampleSet` or
//! `SystemSample`: it walks a frame's varints in place, reconstructs
//! per-CPU counts in two reused scratch buffers (current and previous
//! CPU, for the delta chain), and folds them through
//! [`tdp_fleet::RowAccumulator`] — the *same* arithmetic
//! `SampleBatch::push_sample_set` applies to in-memory samples, which
//! is what makes wire ingestion bit-identical to in-memory ingestion by
//! construction. In the steady state (layouts already registered,
//! scratch sized) a decode performs no allocation.
//!
//! Layouts are resolved through [`LayoutTable`], keyed on the header's
//! `layout_hash`: a layout frame registers the positions of the nine
//! [`ROW_EVENTS`] within the wire event list once, and every subsequent
//! sample frame with that hash reuses the memoised positions (a
//! one-entry hot cache makes the common single-layout fleet a single
//! comparison). A sample frame whose hash was never declared is
//! reported as [`DecodeError::UnknownLayout`], never guessed at — and
//! because positions are keyed on the *hash of the full ordered list*,
//! a mid-stream PMU reprogramming (reordered or extended event list)
//! can never misattribute columns.

use crate::frame::{
    FrameHeader, FrameType, HeaderError, PayloadChecksum, HEADER_LEN, MAGIC, MAX_DECIMATION,
    MAX_WIRE_EVENTS,
};
use crate::varint::{read_uvarint, read_uvarints_ck, unzigzag};
use tdp_counters::layout_hash_indices;
use tdp_fleet::{fold_event_lanes, RowAccumulator, COLUMNS, ROW_EVENTS};
use tdp_simd::Dispatch;

/// Why a frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Stored checksum does not match header + payload.
    Checksum,
    /// A layout frame whose payload hashes differently than its header
    /// claims, or varints that overrun the payload, or out-of-bounds
    /// counts of events/CPUs.
    Malformed,
    /// A sample frame referencing a `layout_hash` no layout frame
    /// declared.
    UnknownLayout,
}

/// A successfully decoded frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decoded {
    /// A layout frame; its mapping is now registered in the decoder.
    Layout {
        /// The machine's negotiated sampling decimation, carried in the
        /// layout header's `cpu_count` field (normalised: a legacy `0`
        /// on the wire decodes as 1 — sample every window).
        decimation: u16,
    },
    /// One machine-window reduced to a fleet sample row.
    Row {
        /// Which machine the row describes.
        machine_id: u64,
        /// The window sequence number from the frame header.
        window_seq: u64,
        /// Machine aggregates, ready for
        /// [`SampleBatch::push_row`](tdp_fleet::SampleBatch::push_row) /
        /// [`set_row`](tdp_fleet::SampleBatch::set_row).
        row: [f64; COLUMNS],
    },
}

/// One registered wire layout: where each of the nine [`ROW_EVENTS`]
/// sits in the wire event list (`u16::MAX` = absent).
#[derive(Debug, Clone, Copy)]
struct LayoutEntry {
    hash: u64,
    n_events: u16,
    /// The layout is exactly [`ROW_EVENTS`] in order — the canonical
    /// producer layout, whose counts are consumed without position
    /// indirection.
    identity: bool,
    pos: [u16; ROW_EVENTS.len()],
}

/// Memoised `layout_hash → column positions` mapping.
///
/// Fleets overwhelmingly run one PMU programming, so lookups check a
/// hot index first; the fallback is a linear scan (distinct layouts per
/// stream are few — re-registration of a known hash is free).
#[derive(Debug, Clone, Default)]
pub struct LayoutTable {
    entries: Vec<LayoutEntry>,
    hot: usize,
}

impl LayoutTable {
    fn lookup(&mut self, hash: u64) -> Option<&LayoutEntry> {
        if let Some(e) = self.entries.get(self.hot) {
            if e.hash == hash {
                return self.entries.get(self.hot);
            }
        }
        let i = self.entries.iter().position(|e| e.hash == hash)?;
        self.hot = i;
        self.entries.get(i)
    }

    fn register(&mut self, entry: LayoutEntry) {
        if let Some(i) = self.entries.iter().position(|e| e.hash == entry.hash) {
            self.entries[i] = entry;
            self.hot = i;
        } else {
            self.hot = self.entries.len();
            self.entries.push(entry);
        }
    }

    /// Registered layouts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no layout has been registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Highest machine id the identity-directory memo will track. Ids at or
/// past the cap simply skip memoisation (every frame takes the full
/// validation path), so the cap bounds decoder memory without bounding
/// the fleet.
const MAX_DIR_MEMO: usize = 4096;

/// One machine's memoised planar frame shape: the header geometry and
/// width-directory bytes of its last **checksum-verified** planar
/// frame, plus the layout entry that frame resolved to.
///
/// Steady-state planar streams repeat the same `(layout, cpu_count,
/// width directory)` window after window — counter magnitudes drift
/// slowly, so minimal widths rarely change — and when the next frame's
/// header fields and directory bytes are byte-identical to a frame
/// already validated, re-running the layout lookup, the geometry
/// check, and the directory validation could only repeat their earlier
/// verdict. The memo skips them; every per-plane bounds check and the
/// full payload checksum still run per frame.
#[derive(Debug, Clone, Copy)]
struct DirEntry {
    /// Value of [`FrameDecoder::layout_epoch`] when memoised; any
    /// layout (re-)registration bumps the epoch and strands every memo,
    /// so a remapped `layout_hash` can never be consumed through a
    /// stale entry.
    epoch: u64,
    layout_hash: u64,
    payload_len: u32,
    n_events: u16,
    cpus: u16,
    /// The frame's width-directory bytes (first `n_events` meaningful).
    dir: [u8; MAX_WIRE_EVENTS],
    /// The resolved layout of the memoised frame.
    entry: LayoutEntry,
}

/// Streaming frame decoder; see the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct FrameDecoder {
    layouts: LayoutTable,
    /// Bumped on every layout registration; see [`DirEntry::epoch`].
    layout_epoch: u64,
    /// Per-machine identity-directory memo, indexed by machine id
    /// (grown lazily, capped at [`MAX_DIR_MEMO`]).
    dir_memo: Vec<Option<DirEntry>>,
    /// Scratch for a varint frame's reconstructed counts, row-major
    /// (`cpu_count × n_events`); the delta chain unfolds in place. The
    /// planar bulk path stages raw zigzag lanes here.
    cur: Vec<u64>,
    /// A planar frame's decoded f64 event lanes, event-major
    /// (`lanes[e · cpus + c]`), ready for the column fold.
    lanes: Vec<f64>,
}

impl FrameDecoder {
    /// A decoder with no layouts registered.
    pub fn new() -> Self {
        Self::default()
    }

    /// The layouts registered so far.
    pub fn layouts(&self) -> &LayoutTable {
        &self.layouts
    }

    /// Decodes one frame given its parsed header and payload slice
    /// (both still borrowed from the input buffer — nothing is copied
    /// out except the reconstructed counts).
    ///
    /// # Errors
    ///
    /// [`DecodeError::Checksum`] on any corruption (the checksum covers
    /// every header field and payload bit), [`DecodeError::Malformed`]
    /// on a structurally invalid frame that nonetheless checksums
    /// (encoder bug), [`DecodeError::UnknownLayout`] for a sample frame
    /// whose layout was never declared.
    pub fn decode_frame(
        &mut self,
        header: &FrameHeader,
        payload: &[u8],
    ) -> Result<Decoded, DecodeError> {
        match header.frame_type {
            FrameType::Layout => {
                if !header.verify(payload) {
                    return Err(DecodeError::Checksum);
                }
                if header.n_events as usize > MAX_WIRE_EVENTS {
                    return Err(DecodeError::Malformed);
                }
                self.decode_layout(header, payload)
            }
            // Sample frames (either encoding) fuse verification into
            // the payload walk (the hot path — see
            // `decode_sample_pending`); the checksum verdict still
            // takes precedence over every structural one, exactly as
            // the layout arm orders them.
            FrameType::Sample | FrameType::PlanarSample => {
                let pending = self.decode_sample_pending(header, payload)?;
                Ok(Decoded::Row {
                    machine_id: pending.machine_id,
                    window_seq: pending.window_seq,
                    row: self.fold_row(&pending),
                })
            }
        }
    }

    fn decode_layout(
        &mut self,
        header: &FrameHeader,
        payload: &[u8],
    ) -> Result<Decoded, DecodeError> {
        // Layout frames have no CPUs; their header's `cpu_count` field
        // carries the machine's negotiated sampling decimation instead
        // (0 = legacy every-window). An absurd value is an encoder bug
        // or corruption that slipped the checksum — reject it.
        if header.cpu_count > MAX_DECIMATION {
            return Err(DecodeError::Malformed);
        }
        let decimation = header.cpu_count.max(1);
        // Re-declaration of an already-registered hash: the checksum
        // proved this frame intact, and the hash → positions binding
        // was payload-verified when first registered, so re-parsing
        // would recompute the identical entry. Skipping it makes
        // producers that re-announce layouts (e.g. at stream joins)
        // nearly free — which matters, because a decimation change is
        // announced by re-sending the (already known) layout frame.
        if let Some(e) = self.layouts.lookup(header.layout_hash) {
            if e.n_events == header.n_events {
                return Ok(Decoded::Layout { decimation });
            }
        }
        let n = header.n_events as usize;
        self.cur.clear();
        let mut pos = 0usize;
        for _ in 0..n {
            self.cur
                .push(read_uvarint(payload, &mut pos).ok_or(DecodeError::Malformed)?);
        }
        if pos != payload.len() {
            return Err(DecodeError::Malformed);
        }
        // The payload must hash to what the header claims — otherwise
        // sample frames keyed on that hash would silently bind to the
        // wrong column mapping.
        if layout_hash_indices(self.cur.iter().copied()) != header.layout_hash {
            return Err(DecodeError::Malformed);
        }
        let mut entry = LayoutEntry {
            hash: header.layout_hash,
            n_events: header.n_events,
            identity: false,
            pos: [u16::MAX; ROW_EVENTS.len()],
        };
        for (k, e) in ROW_EVENTS.iter().enumerate() {
            // First occurrence wins, matching the in-memory rescan rule.
            entry.pos[k] = self
                .cur
                .iter()
                .position(|&i| i == e.index() as u64)
                .map_or(u16::MAX, |i| i as u16);
        }
        entry.identity = entry.n_events as usize == ROW_EVENTS.len()
            && entry.pos.iter().enumerate().all(|(k, &p)| p as usize == k);
        self.layouts.register(entry);
        // A registration can remap an existing hash, so every
        // identity-directory memo taken under the old table is stale:
        // bumping the epoch strands them all (each machine revalidates
        // once and re-memoises). The short-circuit return above keeps
        // no-op re-announcements from paying this.
        self.layout_epoch += 1;
        Ok(Decoded::Layout { decimation })
    }

    /// Drops the identity-directory memo for one machine — the hook for
    /// stream-level eviction (a machine leaving the fleet, or an
    /// operator reset); its next planar frame revalidates from scratch.
    pub fn evict_dir_memo(&mut self, machine_id: u64) {
        if let Some(slot) = self.dir_memo.get_mut(machine_id as usize) {
            *slot = None;
        }
    }

    /// Decodes a sample frame up to (but not including) the row
    /// reduction: checksum verification fused into the varint walk,
    /// delta chain unfolded in the decoder's scratch. The caller folds
    /// the counts with [`fold_row`](Self::fold_row) (sharded ingest,
    /// which ships rows through rings) or
    /// [`fold_into`](Self::fold_into) (serial fused ingest, straight
    /// into the batch's columns) — the fold must happen before the next
    /// decode reuses the scratch.
    ///
    /// Error precedence is identical to the historical two-pass decode:
    /// the checksum is *always* computed over the full payload (the
    /// walk absorbs what it reads, [`PayloadChecksum::finish`] the
    /// rest) and checked first, so a corrupt frame reports
    /// [`DecodeError::Checksum`] no matter how it is corrupt, and only
    /// a frame that checksums can report a structural error.
    pub(crate) fn decode_sample_pending(
        &mut self,
        header: &FrameHeader,
        payload: &[u8],
    ) -> Result<PendingSample, DecodeError> {
        let planar = header.frame_type == FrameType::PlanarSample;
        let mut ck = PayloadChecksum::new(header);
        let scanned = if planar {
            self.scan_planar(header, payload, &mut ck)
        } else {
            self.scan_sample(header, payload, &mut ck)
                .map(|e| (e, true))
        };
        if header.checksum != ck.finish(payload) {
            return Err(DecodeError::Checksum);
        }
        let (entry, memo_hit) = scanned?;
        if planar && !memo_hit {
            // Memoise only now — after the structural walk accepted the
            // frame *and* the checksum proved it intact — so a corrupt
            // or malformed frame can never seed the fast path.
            self.store_dir_memo(header, payload, entry);
        }
        let n = header.n_events as usize;
        let cpus = header.cpu_count as usize;
        if !planar {
            // The varint path's delta chain unfolds row over row in
            // place — integer-exact, so dispatch flavour cannot change
            // a single reconstructed count. (The planar path already
            // unfolded its planes in bulk during the scan.)
            for cpu in 1..cpus {
                let (done, rest) = self.cur.split_at_mut(cpu * n);
                let prev = &done[(cpu - 1) * n..];
                for (c, &p) in rest[..n].iter_mut().zip(prev) {
                    *c = p.wrapping_add(unzigzag(*c) as u64);
                }
            }
        }
        Ok(PendingSample {
            machine_id: header.machine_id,
            window_seq: header.window_seq,
            entry,
            cpus,
            planar,
        })
    }

    /// Dev-only profiling hook: sample decode without the row fold.
    #[doc(hidden)]
    pub fn profile_pending_only(
        &mut self,
        header: &FrameHeader,
        payload: &[u8],
    ) -> Result<u64, DecodeError> {
        self.decode_sample_pending(header, payload)
            .map(|p| p.window_seq)
    }

    /// Dev-only profiling hook: sample decode + fold, no `Decoded` enum.
    #[doc(hidden)]
    pub fn profile_row(
        &mut self,
        header: &FrameHeader,
        payload: &[u8],
    ) -> Result<[f64; COLUMNS], DecodeError> {
        let p = self.decode_sample_pending(header, payload)?;
        Ok(self.fold_row(&p))
    }

    /// The structural half of a planar sample decode: layout lookup,
    /// geometry checks, and the fused single-pass decode into the f64
    /// lane buffer (event-major — see [`crate::planar`]). Same contract
    /// as [`scan_sample`](Self::scan_sample): whatever this returns,
    /// the caller finishes the checksum and gives its verdict
    /// precedence. The returned flag reports whether the
    /// identity-directory memo supplied the layout (`true` = hit,
    /// nothing to memoise).
    fn scan_planar(
        &mut self,
        header: &FrameHeader,
        payload: &[u8],
        ck: &mut PayloadChecksum,
    ) -> Result<(LayoutEntry, bool), DecodeError> {
        let (entry, memo_hit) = match self.lookup_dir_memo(header, payload) {
            Some(entry) => (entry, true),
            None => {
                if header.n_events as usize > MAX_WIRE_EVENTS {
                    return Err(DecodeError::Malformed);
                }
                let entry = *self
                    .layouts
                    .lookup(header.layout_hash)
                    .ok_or(DecodeError::UnknownLayout)?;
                if entry.n_events != header.n_events {
                    return Err(DecodeError::Malformed);
                }
                (entry, false)
            }
        };
        crate::planar::decode_planes(
            Dispatch::active(),
            payload,
            header.n_events as usize,
            header.cpu_count as usize,
            memo_hit,
            &mut self.lanes,
            &mut self.cur,
            ck,
        )
        .ok_or(DecodeError::Malformed)?;
        Ok((entry, memo_hit))
    }

    /// The identity-directory fast path: returns the memoised layout
    /// entry iff this frame's geometry fields and width-directory bytes
    /// are byte-identical to the machine's last checksum-verified
    /// planar frame *and* no layout registration intervened. Directory
    /// validation and the price floor are pure functions of exactly
    /// those inputs, so a hit licenses `decode_planes` to skip them
    /// (`dir_valid`); the per-plane bounds checks and the full payload
    /// checksum still run.
    #[inline]
    fn lookup_dir_memo(&self, header: &FrameHeader, payload: &[u8]) -> Option<LayoutEntry> {
        let m = self.dir_memo.get(header.machine_id as usize)?.as_ref()?;
        let n = m.n_events as usize;
        (m.epoch == self.layout_epoch
            && m.layout_hash == header.layout_hash
            && m.payload_len == header.payload_len
            && m.n_events == header.n_events
            && m.cpus == header.cpu_count
            && payload.get(..n) == Some(&m.dir[..n]))
        .then_some(m.entry)
    }

    /// Memoises a just-verified planar frame's shape for
    /// [`lookup_dir_memo`](Self::lookup_dir_memo). Machine ids past
    /// [`MAX_DIR_MEMO`] are not tracked; the slab grows lazily to the
    /// highest tracked id.
    fn store_dir_memo(&mut self, header: &FrameHeader, payload: &[u8], entry: LayoutEntry) {
        let id = header.machine_id as usize;
        let n = header.n_events as usize;
        if id >= MAX_DIR_MEMO || payload.len() < n {
            return;
        }
        if self.dir_memo.len() <= id {
            self.dir_memo.resize(id + 1, None);
        }
        let mut dir = [0u8; MAX_WIRE_EVENTS];
        dir[..n].copy_from_slice(&payload[..n]);
        self.dir_memo[id] = Some(DirEntry {
            epoch: self.layout_epoch,
            layout_hash: header.layout_hash,
            payload_len: header.payload_len,
            n_events: header.n_events,
            cpus: header.cpu_count,
            dir,
            entry,
        });
    }

    /// The structural half of a sample decode: layout lookup, geometry
    /// checks, and the checksum-fused bulk varint walk into the scratch
    /// buffer. Whatever this returns, the caller finishes the checksum
    /// and gives its verdict precedence.
    fn scan_sample(
        &mut self,
        header: &FrameHeader,
        payload: &[u8],
        ck: &mut PayloadChecksum,
    ) -> Result<LayoutEntry, DecodeError> {
        if header.n_events as usize > MAX_WIRE_EVENTS {
            return Err(DecodeError::Malformed);
        }
        let entry = *self
            .layouts
            .lookup(header.layout_hash)
            .ok_or(DecodeError::UnknownLayout)?;
        if entry.n_events != header.n_events {
            return Err(DecodeError::Malformed);
        }
        let n = header.n_events as usize;
        let cpus = header.cpu_count as usize;
        let total = n * cpus;
        // Every varint is at least one byte, so a payload shorter than
        // the count cannot parse — and refusing it here keeps a corrupt
        // header's geometry from growing the scratch buffer.
        if total > payload.len() {
            return Err(DecodeError::Malformed);
        }
        // The scratch contents never leak between frames — the bulk
        // decode overwrites every entry — so resizing only on a frame
        // geometry change spares the steady state a memset per frame.
        if self.cur.len() != total {
            self.cur.clear();
            self.cur.resize(total, 0);
        }
        // Every varint of the frame in one bulk decode: the batched
        // decoder's 8-byte windows run straight across CPU-row
        // boundaries instead of discarding a partially consumed word at
        // each row, and the checksum absorbs each window as the walk
        // passes it — one read of the payload for both.
        let mut pos = 0usize;
        read_uvarints_ck(Dispatch::active(), payload, &mut pos, &mut self.cur, ck)
            .ok_or(DecodeError::Malformed)?;
        if pos != payload.len() {
            return Err(DecodeError::Malformed);
        }
        Ok(entry)
    }

    /// Reduces a pending sample's reconstructed counts to one fleet
    /// row — the arithmetic `SampleBatch::push_sample_set` applies to
    /// in-memory samples. Planar frames fold their decoded f64 event
    /// lanes through [`fold_event_lanes`] (whose widening and
    /// missing-event mapping are bit-identical to the `Option<u64>`
    /// reference path — see its docs); varint frames gather through the
    /// same [`RowAccumulator`] as always.
    pub(crate) fn fold_row(&self, p: &PendingSample) -> [f64; COLUMNS] {
        if p.planar {
            return fold_event_lanes(
                Dispatch::active(),
                &self.lanes,
                p.cpus,
                &p.entry.pos,
                p.entry.identity,
            );
        }
        let mut acc = RowAccumulator::new(p.cpus);
        self.accumulate(p, &mut acc);
        acc.finish()
    }

    /// [`fold_row`](Self::fold_row) writing straight into a batch's
    /// column slices at `idx` — the serial fused path, which skips the
    /// intermediate row copy through `set_row`.
    pub(crate) fn fold_into(
        &self,
        p: &PendingSample,
        cols: &mut [&mut [f64]; COLUMNS],
        idx: usize,
    ) {
        if p.planar {
            let row = fold_event_lanes(
                Dispatch::active(),
                &self.lanes,
                p.cpus,
                &p.entry.pos,
                p.entry.identity,
            );
            for (c, v) in cols.iter_mut().zip(row) {
                c[idx] = v;
            }
            return;
        }
        let mut acc = RowAccumulator::new(p.cpus);
        self.accumulate(p, &mut acc);
        acc.finish_into(cols, idx);
    }

    /// The varint-frame reduction over the row-major scratch.
    fn accumulate(&self, p: &PendingSample, acc: &mut RowAccumulator) {
        let n = p.entry.n_events as usize;
        for cpu in 0..p.cpus {
            let row = &self.cur[cpu * n..(cpu + 1) * n];
            // The absent-event sentinel (`u16::MAX`) is out of bounds
            // by construction, so one bounds-checked `get` folds the
            // presence test and the lookup into a single branch. The
            // canonical identity layout skips the indirection entirely.
            let counts: [Option<u64>; ROW_EVENTS.len()] = if p.entry.identity {
                std::array::from_fn(|k| Some(row[k]))
            } else {
                std::array::from_fn(|k| row.get(p.entry.pos[k] as usize).copied())
            };
            acc.accumulate_cpu(counts);
        }
    }
}

/// A sample frame that decoded cleanly (checksummed, delta-unfolded in
/// the decoder's scratch) but has not yet been reduced to a fleet row —
/// the handle [`FrameDecoder::fold_row`] / [`FrameDecoder::fold_into`]
/// consume. Valid only until the decoder's next sample decode.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingSample {
    /// Which machine the frame describes.
    pub machine_id: u64,
    /// The window sequence number from the frame header.
    pub window_seq: u64,
    entry: LayoutEntry,
    cpus: usize,
    /// Whether the decode landed in the f64 lane buffer (planar frames,
    /// event-major) rather than the row-major u64 scratch (varint).
    planar: bool,
}

/// One framing step over a raw byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CursorItem {
    /// A well-framed frame (header parsed; checksum **not** yet
    /// verified — skip-scanning shards only verify frames they own).
    Frame {
        /// Byte offset of the frame's header in the stream.
        start: usize,
        /// The parsed header.
        header: FrameHeader,
    },
    /// Bytes skipped while hunting for the next frame boundary after a
    /// framing failure (bad magic/version/type, or a length that
    /// overruns the buffer).
    Resync {
        /// How many bytes were discarded.
        skipped: usize,
    },
}

/// Splits a byte stream into frames, resynchronising on the magic
/// number after corruption. Every decoder shard runs an identical
/// cursor over the identical buffer, so all shards agree on frame
/// boundaries and ownership even around corrupt regions.
#[derive(Debug, Clone)]
pub struct FrameCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FrameCursor<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// The payload slice of a frame yielded by this cursor.
    pub fn payload(&self, start: usize, header: &FrameHeader) -> &'a [u8] {
        let p = start + HEADER_LEN;
        &self.buf[p..p + header.payload_len as usize]
    }

    /// Scans forward from `from` to the next possible magic, returning
    /// the new position (end of buffer if none).
    fn next_magic(&self, from: usize) -> usize {
        let magic = MAGIC.to_le_bytes();
        let mut i = from;
        while i + 1 < self.buf.len() {
            if self.buf[i] == magic[0] && self.buf[i + 1] == magic[1] {
                return i;
            }
            i += 1;
        }
        self.buf.len()
    }
}

impl Iterator for FrameCursor<'_> {
    type Item = CursorItem;

    fn next(&mut self) -> Option<CursorItem> {
        let remaining = self.buf.len() - self.pos;
        if remaining == 0 {
            return None;
        }
        let start = self.pos;
        match FrameHeader::parse(&self.buf[start..]) {
            Ok(h) => {
                let total = HEADER_LEN + h.payload_len as usize;
                if total <= remaining {
                    self.pos = start + total;
                    return Some(CursorItem::Frame { start, header: h });
                }
                // Length overruns the buffer: either truncation or a
                // corrupt length field. Hunt for the next boundary.
                self.pos = self.next_magic(start + 2);
                Some(CursorItem::Resync {
                    skipped: self.pos - start,
                })
            }
            Err(HeaderError::Truncated) => {
                self.pos = self.buf.len();
                Some(CursorItem::Resync { skipped: remaining })
            }
            Err(_) => {
                self.pos = self.next_magic(start + 2);
                Some(CursorItem::Resync {
                    skipped: self.pos - start,
                })
            }
        }
    }
}
