//! LEB128 varints and zigzag folding — the one home of every
//! byte-level integer codec helper in the crate (the frame module
//! re-exports them for compatibility).
//!
//! Three decode tiers, all with identical semantics:
//!
//! * [`read_uvarint`] — one value. When ≥ 8 buffer bytes remain, a
//!   single unaligned word load finds the terminator and three
//!   shift/mask rounds ([`compact7`]) compact the payload bits; buffer
//!   tails and > 8-byte encodings take the byte loop, whose own fast
//!   path peels the 1- and 2-byte classes that dominate real streams.
//! * [`read_uvarints`] — a run of values, dispatch-gated
//!   ([`tdp_simd::Dispatch`]). The wide flavour extracts *every*
//!   complete varint from each 8-byte window before reloading —
//!   typically 4–8 per load for the 1–2-byte encodings a delta stream
//!   produces — so the load/terminator-scan cost is amortised across
//!   the lane instead of paid per value. Pure shift/mask SWAR on
//!   `u64`s: no unsafe, no hardware gate; the dispatch knob exists so
//!   the CI equivalence matrix can force either flavour.
//! * the byte loop — the reference semantics both of the above fall
//!   back to and are tested against.

use crate::frame::PayloadChecksum;
use tdp_simd::Dispatch;

/// Longest LEB128 encoding of a `u64`.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends the LEB128 encoding of `v` to `out`.
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Loads the 8-byte little-endian word at `p`, or `None` within 8
/// bytes of the buffer end. Total: decode paths run on
/// attacker-controlled bytes, so even "provably in range" loads go
/// through this instead of a panicking conversion.
#[inline]
fn load_word(buf: &[u8], p: usize) -> Option<u64> {
    buf.get(p..)?
        .first_chunk::<8>()
        .map(|c| u64::from_le_bytes(*c))
}

/// Reads one LEB128 varint at `*pos`, advancing it past the encoding.
///
/// Returns `None` on buffer overrun or an encoding longer than
/// [`MAX_VARINT_LEN`] bytes (which no `u64` produces).
///
/// Hot path: when at least 8 bytes remain, one unaligned word load
/// finds the terminator (first byte without the continuation bit) and
/// compacts the 7-bit groups with three shift/mask rounds — no
/// per-byte loop for the ≤ 8-byte encodings that dominate real streams
/// (values below 2⁵⁶). Longer encodings and buffer tails fall back to
/// the byte loop with identical semantics.
#[inline]
pub fn read_uvarint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let p = *pos;
    if let Some(word) = load_word(buf, p) {
        let stops = !word & 0x8080_8080_8080_8080;
        if stops != 0 {
            let len = (stops.trailing_zeros() as usize >> 3) + 1;
            let data = word & (u64::MAX >> (64 - 8 * len as u32));
            *pos = p + len;
            return Some(compact7(data));
        }
    }
    read_uvarint_slow(buf, pos)
}

/// Compacts up to eight 7-bit LEB128 groups (continuation bits still
/// set or not — they are masked off) into one value.
#[inline]
fn compact7(w: u64) -> u64 {
    let w = w & 0x7f7f_7f7f_7f7f_7f7f;
    let w = (w & 0x7f00_7f00_7f00_7f00) >> 1 | (w & 0x007f_007f_007f_007f);
    let w = (w & 0x3fff_0000_3fff_0000) >> 2 | (w & 0x0000_3fff_0000_3fff);
    (w & 0x0fff_ffff_0000_0000) >> 4 | (w & 0x0000_0000_0fff_ffff)
}

/// Fallback for encodings longer than 8 bytes or closer than 8 bytes
/// to the end of the buffer. Peels the 1- and 2-byte classes — which
/// dominate buffer tails exactly as they dominate everywhere else —
/// before the general byte loop, so the scalar baseline doesn't pay
/// loop overhead for the common case merely because a frame ends.
fn read_uvarint_slow(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let b0 = *buf.get(*pos)?;
    if b0 < 0x80 {
        *pos += 1;
        return Some(b0 as u64);
    }
    if let Some(&b1) = buf.get(*pos + 1) {
        if b1 < 0x80 {
            *pos += 2;
            return Some((b0 & 0x7f) as u64 | (b1 as u64) << 7);
        }
    }
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && b > 1 {
            return None; // overflows u64 (or a >10-byte encoding)
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Decodes `dst.len()` consecutive varints starting at `*pos`,
/// advancing it past them — the bulk form a frame's per-CPU count rows
/// decode through.
///
/// Values, final position, and success/failure are identical to
/// `dst.len()` sequential [`read_uvarint`] calls in both dispatch
/// flavours (the values are integers — there is no arithmetic to
/// reassociate). On `None` (truncated or over-long encoding), `*pos`
/// and the tail of `dst` are unspecified, matching the sequential
/// contract.
#[inline]
pub fn read_uvarints(d: Dispatch, buf: &[u8], pos: &mut usize, dst: &mut [u64]) -> Option<()> {
    match d {
        Dispatch::Scalar => {
            for v in dst {
                *v = read_uvarint(buf, pos)?;
            }
            Some(())
        }
        Dispatch::Wide => read_uvarints_wide(buf, pos, dst),
    }
}

/// Word-batched decode: each 8-byte load yields every varint that ends
/// inside it — typically four to eight for the 1–2-byte encodings a
/// delta stream produces — so only the window advance is loop-carried.
///
/// Terminators are cleared from the stops mask one `stops & (stops − 1)`
/// at a time and each varint's bytes are masked out of the already
/// loaded word; no class-specialised branches (an 8×1-byte and a
/// 4×2-byte whole-window fold were both measured slower than this
/// uniform greedy extraction, as was a 16-byte `u128` double-word
/// window — the wider shifts and terminator scans cost more than the
/// halved reload count saves, even on 5-byte-heavy payloads). A varint
/// straddling the window boundary is simply re-read in the next window;
/// one with no terminator in sight (a > 8-byte encoding) or too few
/// buffer bytes for a word load degrades to [`read_uvarint`] for that
/// value alone.
fn read_uvarints_wide(buf: &[u8], pos: &mut usize, dst: &mut [u64]) -> Option<()> {
    const STOP: u64 = 0x8080_8080_8080_8080;
    let mut p = *pos;
    let mut i = 0;
    'outer: while i < dst.len() {
        if let Some(word) = load_word(buf, p) {
            let mut stops = !word & STOP;
            let mut off = 0usize;
            while stops != 0 {
                let end = ((stops.trailing_zeros() as usize) >> 3) + 1;
                let len = end - off;
                let data = (word >> (8 * off)) & (u64::MAX >> (64 - 8 * len as u32));
                dst[i] = compact7(data);
                i += 1;
                p += len;
                off = end;
                if i == dst.len() {
                    break 'outer;
                }
                stops &= stops - 1;
            }
            if off != 0 {
                continue; // window exhausted: reload at the new `p`
            }
        }
        // No terminator in the window (> 8-byte encoding) or < 8 bytes
        // left: decode this one value through the scalar path.
        *pos = p;
        dst[i] = read_uvarint(buf, pos)?;
        p = *pos;
        i += 1;
    }
    *pos = p;
    Some(())
}

/// [`read_uvarints`] fused with checksum absorption: as the varint walk
/// passes each byte position, the [`PayloadChecksum`] absorbs the
/// complete 16-byte chunks behind it — so a frame's payload is read
/// once, while the bytes are hot, and the checksum's serial mix chain
/// overlaps the varint extraction instead of running as its own pass.
///
/// Decoded values, final position, and success/failure are identical to
/// [`read_uvarints`] in both dispatch flavours, and the checksum state
/// after any outcome is a valid partial absorption (the caller's
/// [`finish`](PayloadChecksum::finish) completes it), so interleaving
/// cannot change either result.
#[inline]
pub(crate) fn read_uvarints_ck(
    d: Dispatch,
    buf: &[u8],
    pos: &mut usize,
    dst: &mut [u64],
    ck: &mut PayloadChecksum,
) -> Option<()> {
    match d {
        Dispatch::Scalar => {
            for v in dst {
                *v = read_uvarint(buf, pos)?;
                ck.absorb_to(buf, *pos);
            }
            Some(())
        }
        Dispatch::Wide => read_uvarints_wide_ck(buf, pos, dst, ck),
    }
}

/// [`read_uvarints_wide`] with the checksum absorb folded in at window
/// cadence (one `absorb_to` per 8-byte reload, i.e. per 4–8 decoded
/// values on real delta streams) and a **speculative window advance**:
/// when every varint ending in the window fits `dst`, the next window
/// position is computed from the stops mask alone (`8 − lzcnt/8`,
/// three ops after the load) *before* any value is extracted, so the
/// loop-carried dependency is load → mask → count rather than the full
/// per-varint tzcnt/advance chain — the next load issues while the
/// current window's values are still being compacted.
///
/// Measured on the `repro --wire 1024 --frame varint` fused path
/// (back-to-back A/B on this container, median of 3 runs each): the
/// `stage_varint` share drops ~148 → ~139 ns/machine-window and the
/// fused leg ~315 → ~303 — a real but modest ~6% win; the per-varint
/// extraction itself still bounds the path, which is why the planar
/// format exists. Recorded like the negative u128 result on
/// [`read_uvarints_wide`]: the varint chain's remaining cost is
/// structural, not an artefact of this loop's shape.
fn read_uvarints_wide_ck(
    buf: &[u8],
    pos: &mut usize,
    dst: &mut [u64],
    ck: &mut PayloadChecksum,
) -> Option<()> {
    const STOP: u64 = 0x8080_8080_8080_8080;
    let mut p = *pos;
    let mut i = 0;
    'outer: while i < dst.len() {
        if let Some(word) = load_word(buf, p) {
            let mut stops = !word & STOP;
            if stops != 0 && (stops.count_ones() as usize) <= dst.len() - i {
                // Whole window fits: advance `p` speculatively from the
                // mask and only then extract, breaking the serial
                // extract→advance recurrence between windows.
                p += 8 - ((stops.leading_zeros() as usize) >> 3);
                let mut off = 0usize;
                while stops != 0 {
                    let end = ((stops.trailing_zeros() as usize) >> 3) + 1;
                    let len = end - off;
                    let data = (word >> (8 * off)) & (u64::MAX >> (64 - 8 * len as u32));
                    dst[i] = compact7(data);
                    i += 1;
                    off = end;
                    stops &= stops - 1;
                }
                ck.absorb_to(buf, p);
                continue;
            }
            // `dst` fills mid-window: the tail greedy walk advances per
            // varint so `p` lands exactly past the last value consumed.
            let mut off = 0usize;
            while stops != 0 {
                let end = ((stops.trailing_zeros() as usize) >> 3) + 1;
                let len = end - off;
                let data = (word >> (8 * off)) & (u64::MAX >> (64 - 8 * len as u32));
                dst[i] = compact7(data);
                i += 1;
                p += len;
                off = end;
                if i == dst.len() {
                    break 'outer;
                }
                stops &= stops - 1;
            }
            if off != 0 {
                ck.absorb_to(buf, p);
                continue; // window exhausted: reload at the new `p`
            }
        }
        // No terminator in the window (> 8-byte encoding) or < 8 bytes
        // left: decode this one value through the scalar path.
        *pos = p;
        dst[i] = read_uvarint(buf, pos)?;
        p = *pos;
        ck.absorb_to(buf, p);
        i += 1;
    }
    *pos = p;
    ck.absorb_to(buf, p);
    Some(())
}

/// Zigzag-folds a signed delta into an unsigned varint-friendly value
/// (small magnitudes of either sign encode short).
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn varints_roundtrip() {
        let cases = [
            0u64,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &cases {
            put_uvarint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &cases {
            assert_eq!(read_uvarint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_fast_and_slow_paths_agree() {
        // Every encoded length 1..=10, read both far from the buffer
        // tail (word fast path) and exactly at it (byte-loop fallback).
        let mut values = vec![0u64, 1];
        for s in 1..64 {
            values.extend([(1u64 << s) - 1, 1u64 << s, (1u64 << s) | 1]);
        }
        values.push(u64::MAX);
        for v in values {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let padded: Vec<u8> = buf.iter().copied().chain([0u8; 16]).collect();
            let (mut a, mut b) = (0usize, 0usize);
            assert_eq!(read_uvarint(&padded, &mut a), Some(v), "fast path {v}");
            assert_eq!(read_uvarint(&buf, &mut b), Some(v), "tail path {v}");
            assert_eq!(a, b, "both paths consume the same bytes for {v}");
            assert_eq!(b, buf.len());
        }
    }

    #[test]
    fn varint_rejects_overruns_and_overflow() {
        let mut pos = 0;
        assert_eq!(read_uvarint(&[0x80, 0x80], &mut pos), None, "truncated");
        // 10 continuation bytes followed by a large final byte would
        // need a 71-bit value.
        let too_big = [0xff; 9]
            .iter()
            .copied()
            .chain([0x02u8])
            .collect::<Vec<_>>();
        let mut pos = 0;
        assert_eq!(read_uvarint(&too_big, &mut pos), None, "overflow");
        // The batched decoder agrees on both failure shapes.
        for bad in [vec![0x80u8, 0x80], too_big] {
            let mut pos = 0;
            let mut dst = [0u64; 1];
            assert_eq!(read_uvarints_wide(&bad, &mut pos, &mut dst), None);
        }
    }

    #[test]
    fn zigzag_roundtrips_and_keeps_small_magnitudes_short() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 12345, -9876] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert!(zigzag(-3) < 0x80, "small negative delta fits one byte");
        // Wrapping delta arithmetic roundtrips across the full u64 range.
        let (prev, cur) = (5u64, u64::MAX);
        let delta = cur.wrapping_sub(prev) as i64;
        assert_eq!(prev.wrapping_add(unzigzag(zigzag(delta)) as u64), cur);
    }

    /// Both dispatch flavours of the bulk decoder against the scalar
    /// reference, on the exact shape frames produce: a run of values,
    /// read to the very last buffer byte (no padding — the tail class
    /// is always exercised).
    fn assert_bulk_matches(values: &[u64]) {
        let mut buf = Vec::new();
        for &v in values {
            put_uvarint(&mut buf, v);
        }
        let mut reference = vec![0u64; values.len()];
        let mut ref_pos = 0usize;
        for r in &mut reference {
            *r = read_uvarint(&buf, &mut ref_pos).expect("reference decode");
        }
        for d in [Dispatch::Scalar, Dispatch::Wide] {
            let mut out = vec![0u64; values.len()];
            let mut pos = 0usize;
            assert_eq!(read_uvarints(d, &buf, &mut pos, &mut out), Some(()));
            assert_eq!(out, reference, "{d:?} values");
            assert_eq!(pos, ref_pos, "{d:?} final position");
            assert_eq!(pos, buf.len());
        }
    }

    proptest! {
        /// Satellite property: zigzag ∘ varint round-trips arbitrary
        /// signed deltas through an actual byte buffer, in both bulk
        /// dispatch flavours.
        #[test]
        fn zigzag_varint_roundtrip(deltas in proptest::collection::vec(any::<i64>(), 0..64)) {
            let mut buf = Vec::new();
            for &d in &deltas {
                put_uvarint(&mut buf, zigzag(d));
            }
            for disp in [Dispatch::Scalar, Dispatch::Wide] {
                let mut out = vec![0u64; deltas.len()];
                let mut pos = 0usize;
                prop_assert_eq!(read_uvarints(disp, &buf, &mut pos, &mut out), Some(()));
                prop_assert_eq!(pos, buf.len());
                for (&got, &want) in out.iter().zip(&deltas) {
                    prop_assert_eq!(unzigzag(got), want);
                }
            }
        }

        /// Bulk decode ≡ sequential decode for arbitrary value runs —
        /// the class draw skews toward the 1–3-byte encodings frames
        /// produce but includes full-range values, so windows split at
        /// every alignment.
        #[test]
        fn bulk_decode_matches_sequential(
            picks in proptest::collection::vec((0u8..4, any::<u64>()), 0..96)
        ) {
            let values: Vec<u64> = picks
                .iter()
                .map(|&(class, raw)| match class {
                    0 => raw % 0x80,                            // 1-byte class
                    1 => 0x80 + raw % (0x4000 - 0x80),          // 2-byte class
                    2 => 0x4000 + raw % (0x0020_0000 - 0x4000), // 3-byte class
                    _ => raw,                                   // up to 10 bytes
                })
                .collect();
            assert_bulk_matches(&values);
        }
    }

    /// The checksum-fused bulk decoder must agree with the plain one on
    /// values, final position, success/failure, *and* produce the exact
    /// one-shot checksum — in both dispatch flavours, on clean runs and
    /// on both failure shapes.
    #[test]
    fn fused_decode_matches_plain_and_one_shot_checksum() {
        use crate::frame::{FrameHeader, FrameType};
        let header = |len: usize| FrameHeader {
            frame_type: FrameType::Sample,
            payload_len: len as u32,
            machine_id: 7,
            window_seq: 99,
            layout_hash: 0xabcd,
            cpu_count: 4,
            n_events: 9,
            checksum: 0,
        };
        let shapes: Vec<Vec<u64>> = vec![
            vec![],
            vec![0; 40],
            vec![0x80; 40],
            vec![u64::MAX; 7],
            vec![1, u64::MAX, 2, 1 << 62, 3],
            (0..96).map(|i| (i * i * 37) as u64).collect(),
        ];
        for values in &shapes {
            let mut buf = Vec::new();
            for &v in values {
                put_uvarint(&mut buf, v);
            }
            let h = header(buf.len());
            let want_sum = h.expected_checksum(&buf);
            for d in [Dispatch::Scalar, Dispatch::Wide] {
                let mut plain = vec![0u64; values.len()];
                let mut plain_pos = 0usize;
                assert_eq!(read_uvarints(d, &buf, &mut plain_pos, &mut plain), Some(()));
                let mut fused = vec![0u64; values.len()];
                let mut pos = 0usize;
                let mut ck = PayloadChecksum::new(&h);
                assert_eq!(
                    read_uvarints_ck(d, &buf, &mut pos, &mut fused, &mut ck),
                    Some(())
                );
                assert_eq!(fused, plain, "{d:?} values");
                assert_eq!(pos, plain_pos, "{d:?} position");
                assert_eq!(ck.finish(&buf), want_sum, "{d:?} checksum");
            }
        }
        // Failure shapes: fused fails exactly where plain does, and the
        // partially absorbed checksum still finishes to the one-shot sum.
        let too_big: Vec<u8> = [0xff; 9].iter().copied().chain([0x02u8]).collect();
        for bad in [vec![0x80u8, 0x80], too_big] {
            let h = header(bad.len());
            for d in [Dispatch::Scalar, Dispatch::Wide] {
                let mut dst = [0u64; 1];
                let mut pos = 0usize;
                let mut ck = PayloadChecksum::new(&h);
                assert_eq!(read_uvarints_ck(d, &bad, &mut pos, &mut dst, &mut ck), None);
                assert_eq!(ck.finish(&bad), h.expected_checksum(&bad), "{d:?}");
            }
        }
    }

    #[test]
    fn bulk_decode_handles_boundary_shapes() {
        // All 1-byte (8 per window), all 2-byte (window-straddling at
        // every second value), the 9/10-byte in-window fallback, and a
        // tail shorter than a word.
        assert_bulk_matches(&[0; 40]);
        assert_bulk_matches(&[0x80; 40]);
        assert_bulk_matches(&[u64::MAX; 7]);
        assert_bulk_matches(&[1, u64::MAX, 2, 1 << 62, 3]);
        assert_bulk_matches(&[0x7f, 0x80, 0x3fff, 0x4000]);
    }
}
